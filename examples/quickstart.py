#!/usr/bin/env python3
"""Quickstart: evaluate the hard function three ways.

The paper's object is one function, ``Line^RO``, looked at from two
models.  This script builds a small instance and computes it

1. with the reference evaluator (the mathematical definition),
2. on the word-RAM (the Theorem 3.1 upper bound, with measured cost),
3. with an MPC cluster of memory-limited machines (the lower-bound side,
   with measured rounds),

then shows the crossover: give one machine enough memory and the round
count collapses to 1.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.functions import LineParams, evaluate_line, sample_input
from repro.oracle import LazyRandomOracle
from repro.protocols import (
    build_chain_protocol,
    build_fullmem_protocol,
    run_chain,
    run_fullmem,
)
from repro.ram import run_line_on_ram


def main() -> None:
    # Table 3 parameterization, scaled down: u bits per piece, v pieces,
    # w chain nodes.  S = u*v input bits, T = w oracle calls.
    params = LineParams(n=36, u=8, v=8, w=64)
    print(f"function : {params.describe()}")

    oracle = LazyRandomOracle(params.n, params.n, seed=2020)
    rng = np.random.default_rng(0)
    x = sample_input(params, rng)

    # 1. The definition.
    output = evaluate_line(params, x, oracle)
    print(f"reference: Line(x) = {output.to_str()[:24]}... ({params.n} bits)")

    # 2. Sequential RAM: O(T*n) time, O(S) space, measured.
    ram_output, ram = run_line_on_ram(params, x, oracle)
    assert ram_output == output
    print(
        f"word-RAM : same output; time={ram.stats.time} "
        f"(= {ram.stats.time / (params.w * params.n):.2f} * T*n), "
        f"peak={ram.stats.peak_memory_words} words"
    )

    # 3. MPC with memory-starved machines: rounds ~ (1-f) * T.
    setup = build_chain_protocol(params, x, num_machines=4, pieces_per_machine=2)
    result = run_chain(setup, oracle)
    assert output in result.outputs.values()
    print(
        f"MPC      : 4 machines, each holding f={setup.storage_fraction:.2f} "
        f"of the input (s={setup.mpc_params.s_bits} bits) -> "
        f"{result.rounds_to_output} rounds for T={params.w}"
    )

    # The crossover: one machine with s >= S finishes in one round.
    full = build_fullmem_protocol(params, x, colocated=True)
    full_result = run_fullmem(full, oracle)
    assert output in full_result.outputs.values()
    print(
        f"MPC      : one machine with s >= S ({full.mpc_params.s_bits} bits) "
        f"-> {full_result.rounds_to_output} round"
    )
    print(
        "\nThat is Theorem 1.1 in miniature: below the memory threshold the "
        "round count tracks T; at the threshold it collapses to O(1)."
    )


if __name__ == "__main__":
    main()
