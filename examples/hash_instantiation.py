#!/usr/bin/env python3
"""The random-oracle methodology: from ``f^RO`` to a concrete ``f^h``.

Theorem 1.1's last step swaps the ideal oracle for a cryptographic hash.
This script instantiates ``Line`` with from-scratch SHA-256, shows the
construction is completely oblivious to the swap (the same evaluators,
RAM program, and MPC protocol run unchanged), and measures the
``O(T * t_h)`` cost: hash work grows linearly in the chain length at a
fixed per-node cost ``t_h``.

Run:  python examples/hash_instantiation.py
"""

import numpy as np

from repro.analysis import format_table
from repro.functions import LineParams, evaluate_line, sample_input
from repro.hashes import HashOracle, sha256
from repro.oracle import LazyRandomOracle
from repro.protocols import build_chain_protocol, run_chain
from repro.ram import run_line_on_ram


def main() -> None:
    params = LineParams(n=36, u=8, v=8, w=64)
    rng = np.random.default_rng(3)
    x = sample_input(params, rng)

    ideal = LazyRandomOracle(params.n, params.n, seed=3)
    concrete = HashOracle(sha256, params.n, params.n, label=b"f^h")

    rows = []
    for name, oracle in (("ideal RO", ideal), ("SHA-256 h", concrete)):
        out = evaluate_line(params, x, oracle)
        ram_out, ram = run_line_on_ram(params, x, oracle)
        assert ram_out == out
        setup = build_chain_protocol(params, x, num_machines=4)
        mpc = run_chain(setup, oracle)
        assert out in mpc.outputs.values()
        rows.append(
            (name, out.to_str()[:16] + "...", ram.stats.time, mpc.rounds_to_output)
        )
    print(format_table(
        ("oracle", "Line(x) prefix", "RAM time", "MPC rounds"),
        rows,
        title="the same construction under the ideal and the concrete oracle",
    ))

    print()
    rows2 = []
    for w in (16, 32, 64, 128):
        p = LineParams(n=36, u=8, v=8, w=w)
        h = HashOracle(sha256, p.n, p.n, label=b"cost")
        evaluate_line(p, sample_input(p, np.random.default_rng(w)), h)
        rows2.append((w, h.hash_calls, h.bytes_hashed, h.bytes_hashed // w))
    print(format_table(
        ("T=w", "hash calls", "bytes hashed", "bytes/node (t_h)"),
        rows2,
        title="O(T * t_h): hash work per chain node is constant",
    ))
    print(
        "\nIf SHA-256 behaves like a random oracle (the methodology's "
        "heuristic), f^h inherits the Omega~(T) MPC round lower bound -- "
        "or else Line^h would be a natural counterexample to the "
        "methodology, which the paper argues would be surprising."
    )


if __name__ == "__main__":
    main()
