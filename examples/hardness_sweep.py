#!/usr/bin/env python3
"""The headline experiment sweep: regenerate the paper's claims.

Runs the round-complexity experiments (E-LINE, E-SIMLINE, E-MEM,
E-BEST) and prints their regenerated tables -- who wins, by what factor,
and where the crossover falls.  Pass ``--full`` for the larger sweeps.

Run:  python examples/hardness_sweep.py [--full]
"""

import sys

from repro.experiments import run_experiment


def main() -> None:
    scale = "full" if "--full" in sys.argv else "quick"
    for experiment_id in ("E-LINE", "E-SIMLINE", "E-MEM", "E-BEST"):
        result = run_experiment(experiment_id, scale=scale)
        print(result.render())
        print()
    print(
        "Shapes to read off: Line rounds grow ~linearly in T at every "
        "storage fraction f < 1 (the paper's Omega~(T)); SimLine rounds "
        "are ~T*u/s (Theorem A.1); extra machines do not help (E-MEM); "
        "and the RAM-vs-MPC gap stays polylog (E-BEST)."
    )


if __name__ == "__main__":
    main()
