#!/usr/bin/env python3
"""Throughput vs latency: what the theorem does and does not forbid.

The Omega~(T) round bound applies to *one* evaluation of the hard
function; a memory-starved cluster can still pipeline K independent
evaluations concurrently.  This script runs K domain-separated Line
chains through the multichain protocol and prints the round count (near
flat in K) next to the total oracle work (linear in K): the cluster
matches the RAM on latency and beats it K-fold on throughput -- the
precise sense in which the paper's hardness is "best possible".

Run:  python examples/throughput_vs_latency.py
"""

import numpy as np

from repro.analysis import format_table
from repro.functions import LineParams, sample_input
from repro.oracle import LazyRandomOracle
from repro.protocols import build_multichain_protocol, run_multichain
from repro.protocols.multichain import evaluate_instance


def main() -> None:
    n, u, v, w_each = 40, 8, 8, 48
    rows = []
    for instances in (1, 2, 4, 8):
        rng = np.random.default_rng(instances)
        piece_params = LineParams(n=n, u=u, v=v, w=instances * w_each)
        inputs = [sample_input(piece_params, rng) for _ in range(instances)]
        setup = build_multichain_protocol(
            n=n, u=u, v=v, w_each=w_each, instances=instances,
            inputs=inputs, num_machines=4, pieces_per_machine=2,
        )
        oracle = LazyRandomOracle(n, n, seed=instances)
        result = run_multichain(setup, oracle)
        combined = result.outputs[0]
        for k in range(instances):
            expected = evaluate_instance(setup.layout, inputs[k], k, oracle)
            assert combined[k * n : (k + 1) * n] == expected
        rows.append(
            (instances, result.rounds_to_output,
             result.stats.total_oracle_queries,
             f"{result.stats.total_oracle_queries / result.rounds_to_output:.1f}")
        )
    print(format_table(
        ("K instances", "rounds", "oracle work", "work per round"),
        rows,
        title=f"K concurrent Line chains, 4 machines, f=1/4, w={w_each} each",
    ))
    print(
        "\nRounds track max-of-K (nearly flat); work tracks sum-of-K.  The "
        "lower bound pins per-evaluation latency at ~T; utilization is the "
        "only thing K machines can improve -- and they do."
    )


if __name__ == "__main__":
    main()
