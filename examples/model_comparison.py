#!/usr/bin/env python3
"""Why the MPC model needed its own lower bound (Sections 1 and 1.2).

Three computational models solve pointer jumping over an oracle-defined
successor table:

* a sequential walker       -- k steps;
* a CREW PRAM (doubling)    -- ~2 log2 k steps;
* one MPC machine           -- ONE round (arbitrarily many adaptive
                               in-round queries), with O(log N) memory.

And the prior unconditional MPC bound (Roughgarden et al.'s s-shuffle
argument) tops out at floor(log_s N) rounds -- a constant once s is
polynomial -- which is why the paper reaches for the random-oracle
model to get Omega~(T).

Run:  python examples/model_comparison.py
"""

from repro.analysis import format_table
from repro.baselines import (
    build_tree_circuit,
    pram_pointer_jump_doubling,
    pram_pointer_jump_sequential,
    shuffle_depth_lower_bound,
)
from repro.bounds import compare_with_rvw
from repro.oracle import LazyRandomOracle
from repro.protocols import build_pointer_jump_protocol, run_pointer_jump


def main() -> None:
    oracle = LazyRandomOracle(12, 12, seed=9)
    rows = []
    for size, jumps in ((64, 48), (256, 200), (1024, 900)):
        setup = build_pointer_jump_protocol(oracle, size=size, start=1, jumps=jumps)
        mpc = run_pointer_jump(setup, oracle)
        node_seq, seq_steps = pram_pointer_jump_sequential(setup.instance)
        node_dbl, dbl_steps = pram_pointer_jump_doubling(setup.instance)
        assert mpc.outputs[0].value == node_seq == node_dbl
        rows.append((size, jumps, seq_steps, dbl_steps, mpc.rounds_to_output))
    print(format_table(
        ("N", "jumps k", "sequential steps", "PRAM doubling steps", "MPC rounds"),
        rows,
        title="pointer jumping across models (all agree on the answer)",
    ))

    print()
    xor = lambda args: __import__("functools").reduce(lambda a, b: a ^ b, args, 0)
    rows2 = []
    for N, s in ((4096, 8), (4096, 64)):
        tree = build_tree_circuit(N, s, xor)
        bound = shuffle_depth_lower_bound(N, s)
        rows2.append((N, s, bound, tree.depth))
    print(format_table(
        ("N", "fan-in s", "RVW lower bound", "tree circuit depth"),
        rows2,
        title="s-shuffle model: the unconditional bound and its matching tree",
    ))
    cmp = compare_with_rvw(N=2**30, s=2**10, T=2**30)
    print(
        f"\nAt N = 2^30, s = 2^10 the RVW bound is {cmp['rvw_rounds']:.0f} "
        f"rounds; the paper's random-oracle bound is {cmp['ro_rounds']:.2e} "
        f"-- a {cmp['improvement_factor']:.1e}x stronger statement, "
        f"conditional on the RO methodology."
    )


if __name__ == "__main__":
    main()
