#!/usr/bin/env python3
"""The compression argument, step by step, on a real execution.

This walks the proof of Lemma 3.6 / Claim 3.7 with actual bits:

1. sample ``(RO, X)`` -- a uniform oracle table plus a uniform input;
2. run an MPC chain protocol and freeze machine 0's round-0 state
   (``A1``) and round-0 queries (``A2``);
3. enumerate the ``v^p`` patched oracles ``RO^(k)_{a_1..a_p}`` of
   Definition 3.4 and extract the revealed-piece set ``B`` (Def. 3.5);
4. encode ``(RO, X)`` with the Claim 3.7 scheme, decode it back, and
   audit every bit of the length accounting;
5. evaluate the Claim 3.8 counting bound to show why a machine that
   revealed *many* pieces would be an information-theoretic
   impossibility -- the contradiction powering the lower bound.

Run:  python examples/compression_walkthrough.py
"""

import numpy as np

from repro.bits import Bits
from repro.compression import (
    LineCompressor,
    MPCRoundAlgorithm,
    compute_bset,
    message_space_log2_line,
    success_fraction_bound_log2,
)
from repro.functions import LineParams, sample_input, trace_line
from repro.oracle import TableOracle
from repro.protocols import build_chain_protocol


def main() -> None:
    params = LineParams(n=12, u=4, v=4, w=8)
    print(f"function : {params.describe()}   (tiny so 2^n tables fit)")
    rng = np.random.default_rng(7)

    # -- step 1: one sample of the probability space -------------------
    oracle = TableOracle.sample(params.n, params.n, rng)
    x = sample_input(params, rng)
    space = message_space_log2_line(params.n, params.u, params.v)
    print(f"sample   : |(RO, X)| space = 2^{space} pairs "
          f"(n*2^n + uv = {params.n}*{2**params.n} + {params.u * params.v})")

    # -- step 2: the (A1, A2) split -------------------------------------
    def build(xx):
        setup = build_chain_protocol(
            params, list(xx), num_machines=2, pieces_per_machine=2
        )
        return setup.mpc_params, setup.machines, setup.initial_memories

    algo = MPCRoundAlgorithm(
        build, machine_index=0, round_k=0,
        dummy_input=[Bits.zeros(params.u)] * params.v,
    )
    phase1 = algo.phase1(oracle, x)
    queries = algo.phase2(oracle, phase1.memory)
    print(f"A1/A2    : machine 0 memory = {len(phase1.memory)} bits; "
          f"round-0 queries = {len(queries)}")

    # -- step 3: B via patched-oracle enumeration -----------------------
    trace = trace_line(params, x, oracle)
    bset = compute_bset(
        params, algo.phase2, oracle, phase1.memory, x, trace.nodes[0], p=2
    )
    print(f"Def 3.5  : enumerated {params.v**2} patched oracles "
          f"RO^(0)_(a1,a2); revealed pieces B = {sorted(bset)} "
          f"(machine stores pieces 0,1 -- B cannot exceed its store)")

    # -- step 4: Enc / Dec ----------------------------------------------
    compressor = LineCompressor(params, algo, s_bits=64, q=16, p=2)
    encoding = compressor.encode(oracle, x)
    decoded = compressor.decode(encoding.payload)
    assert decoded == (oracle, x), "round-trip must be exact"
    bound = compressor.length_bound(encoding.alpha, len(encoding.blocks))
    print(f"Claim 3.7: |Enc| = {len(encoding.payload)} bits "
          f"(bound {bound}); breakdown {encoding.breakdown}; "
          f"decoded == original: True")

    # -- step 5: the contradiction at paper scale -----------------------
    # With u = 1024 and per-piece overhead ~200 bits, revealing 10
    # pieces compresses (RO, X) by ~8200 bits below the space size:
    u_paper, overhead, alpha = 1024, 200, 10
    eps = success_fraction_bound_log2(space - alpha * (u_paper - overhead), space)
    print(
        f"Claim 3.8: at paper scale that much compression can cover at "
        f"most a 2^{eps:.0f} fraction of (RO, X) pairs -- machines that "
        f"reveal many pieces per round are information-theoretically rare, "
        f"so the chain advances O(log^2 w) nodes per round and any MPC "
        f"algorithm needs ~w/log^2 w rounds."
    )


if __name__ == "__main__":
    main()
