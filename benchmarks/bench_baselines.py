"""E-BASE -- RVW shuffles and Miltersen PRAM.

Regenerates the experiment's tables under the benchmark timer; see
DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured.
"""


def bench_e_base(run_and_report):
    run_and_report("E-BASE")
