"""E-ENC-L -- Claim 3.7 encoding scheme and B-sets.

Regenerates the experiment's tables under the benchmark timer; see
DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured.
"""


def bench_e_enc_l(run_and_report):
    run_and_report("E-ENC-L")
