"""E-LINE -- Lemma 3.2 round complexity of Line.

Regenerates the experiment's tables under the benchmark timer; see
DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured.
"""


def bench_e_line(run_and_report):
    run_and_report("E-LINE")
