"""E-MHF -- memory hardness without round hardness (Section 1.2).

Regenerates the experiment's tables under the benchmark timer; see
DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured.
"""


def bench_e_mhf(run_and_report):
    run_and_report("E-MHF")
