"""E-ABL-PLACE -- input placement ablation.

Regenerates the experiment's tables under the benchmark timer; see
DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured.
"""


def bench_e_abl_place(run_and_report):
    run_and_report("E-ABL-PLACE")
