"""F1 -- Figure 1 chain structure.

Regenerates the experiment's tables under the benchmark timer; see
DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured.
"""


def bench_f1(run_and_report):
    run_and_report("F1")
