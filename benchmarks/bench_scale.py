"""E-SCALE -- the linear round law across six orders of magnitude.

Regenerates the experiment's tables under the benchmark timer; see
DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured.
"""


def bench_e_scale(run_and_report):
    run_and_report("E-SCALE")
