"""E-RAM -- Theorem 3.1 RAM upper bound.

Regenerates the experiment's tables under the benchmark timer; see
DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured.
"""


def bench_e_ram(run_and_report):
    run_and_report("E-RAM")
