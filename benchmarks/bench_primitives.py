"""Microbenchmarks of the substrates (throughput numbers for README)."""

import numpy as np

from repro.bits import Bits
from repro.functions import LineParams, evaluate_line, sample_input
from repro.hashes import sha256, toy_hash
from repro.mpc import MPCParams, MPCSimulator
from repro.oracle import LazyRandomOracle, TableOracle
from repro.protocols import build_chain_protocol
from repro.ram import run_line_on_ram


def bench_bits_concat_slice(benchmark):
    a = Bits(12345, 64)
    b = Bits(54321, 64)

    def op():
        c = a + b
        return c[10:100]

    benchmark(op)


def bench_bits_concat_many(benchmark):
    parts = [Bits(i & 0xFFFF, 16) for i in range(256)]
    benchmark(Bits.concat, parts)


def bench_bits_slice_hot(benchmark):
    big = Bits((1 << 4096) - 1, 4096)

    def op():
        # The codec access pattern: many narrow slices off one record.
        return [big[i : i + 16] for i in range(0, 4096, 16)]

    benchmark(op)


def bench_bitreader_read_stream(benchmark):
    from repro.bits.codec import BitReader

    stream = Bits((1 << 4096) - 1, 4096)

    def op():
        reader = BitReader(stream)
        total = 0
        while not reader.at_end():
            total += reader.read(16)
        return total

    benchmark(op)


def bench_record_codec_unpack(benchmark):
    from repro.bits.codec import Field, RecordCodec

    codec = RecordCodec(
        [Field("l", 20), Field("r", 20), Field("z", 8), Field("pad", 16)]
    )
    record = codec.pack(l=7, r=9, z=3)
    benchmark(codec.unpack, record)


def bench_sha256_1kib(benchmark):
    data = bytes(range(256)) * 4
    benchmark(sha256, data)


def bench_toy_hash_1kib(benchmark):
    data = bytes(range(256)) * 4
    benchmark(toy_hash, data)


def bench_lazy_oracle_query(benchmark):
    ro = LazyRandomOracle(64, 64, seed=1)
    queries = [Bits(i, 64) for i in range(1000)]
    counter = {"i": 0}

    def op():
        counter["i"] = (counter["i"] + 1) % 1000
        return ro.query(queries[counter["i"]])

    benchmark(op)


def bench_table_oracle_sample(benchmark):
    rng = np.random.default_rng(0)
    benchmark(TableOracle.sample, 12, 12, rng)


def bench_line_reference_eval(benchmark):
    params = LineParams(n=36, u=8, v=8, w=128)
    oracle = LazyRandomOracle(params.n, params.n, seed=2)
    x = sample_input(params, np.random.default_rng(2))
    benchmark(evaluate_line, params, x, oracle)


def bench_line_word_ram_eval(benchmark):
    params = LineParams(n=36, u=8, v=8, w=128)
    oracle = LazyRandomOracle(params.n, params.n, seed=3)
    x = sample_input(params, np.random.default_rng(3))
    benchmark(run_line_on_ram, params, x, oracle)


def bench_mpc_chain_protocol(benchmark):
    params = LineParams(n=36, u=8, v=8, w=64)
    x = sample_input(params, np.random.default_rng(4))

    def op():
        from repro.protocols import run_chain

        oracle = LazyRandomOracle(params.n, params.n, seed=4)
        setup = build_chain_protocol(params, x, num_machines=4)
        return run_chain(setup, oracle)

    benchmark(op)
