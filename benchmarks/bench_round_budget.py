"""E-BUDGET -- success probability transition in the round budget.

Regenerates the experiment's tables under the benchmark timer; see
DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured.
"""


def bench_e_budget(run_and_report):
    run_and_report("E-BUDGET")
