"""E-BEST -- Theorem 1.1 best-possible gap.

Regenerates the experiment's tables under the benchmark timer; see
DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured.
"""


def bench_e_best(run_and_report):
    run_and_report("E-BEST")
