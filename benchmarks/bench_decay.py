"""E-DECAY -- exponential decay of per-round progress.

Regenerates the experiment's tables under the benchmark timer; see
DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured.
"""


def bench_e_decay(run_and_report):
    run_and_report("E-DECAY")
