"""E-BOUND -- Claim 3.9 / A.8 assembled bounds.

Regenerates the experiment's tables under the benchmark timer; see
DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured.
"""


def bench_e_bound(run_and_report):
    run_and_report("E-BOUND")
