"""E-PROGRESS -- per-round progress capped by h (Lemma A.2, measured).

Regenerates the experiment's tables under the benchmark timer; see
DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured.
"""


def bench_e_progress(run_and_report):
    run_and_report("E-PROGRESS")
