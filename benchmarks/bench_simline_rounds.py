"""E-SIMLINE -- Theorem A.1 round complexity of SimLine.

Regenerates the experiment's tables under the benchmark timer; see
DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured.
"""


def bench_e_simline(run_and_report):
    run_and_report("E-SIMLINE")
