"""Ablation: free in-round adaptive queries are what kill PRAM bounds.

Restricting the MPC query budget to ``q = 1`` per round removes the
advantage Section 1.2 attributes to the model: pointer jumping falls
from 1 round back to ``k`` rounds, and the chain protocols lose their
within-round batching.
"""

import numpy as np

from repro.functions import LineParams, evaluate_line, sample_input
from repro.oracle import LazyRandomOracle
from repro.protocols import build_chain_protocol, run_chain


def bench_query_budget_ablation(benchmark):
    params = LineParams(n=36, u=8, v=8, w=64)

    def measure():
        rows = {}
        for q, label in ((None, "unbounded q"), (1, "q = 1")):
            rounds = []
            for t in range(3):
                oracle = LazyRandomOracle(params.n, params.n, seed=t)
                x = sample_input(params, np.random.default_rng(t))
                setup = build_chain_protocol(
                    params, x, num_machines=2, pieces_per_machine=4, q=q
                )
                result = run_chain(setup, oracle)
                assert evaluate_line(params, x, oracle) in result.outputs.values()
                rounds.append(result.rounds_to_output)
            rows[label] = sum(rounds) / len(rounds)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nrounds at f=1/2, T=64: {rows}")
    # q = 1 forces one node per round: ~w rounds; unbounded batches runs.
    assert rows["q = 1"] >= params.w
    assert rows["unbounded q"] < rows["q = 1"]
