"""Measured speedup of the ``fast`` backend over the python reference.

Two workloads, each run under both backends in one process:

* the E-LINE chain protocol at scale (``m=64`` machines, ``w=1024``
  chain nodes) -- the steady-state memo's target shape, where most
  machines idle-forward their stores every round;
* an untraced arithmetic-loop word-RAM program -- the compiled basic
  -block core's target shape.

Both runs are checked for *identical observables* before any timing is
trusted: a speedup over a wrong answer is not a speedup.  With
``REPRO_BENCH_JSON`` set, each workload drops a ``BENCH_*.json`` row
whose counters carry the measured speedup (x100, integral -- the bench
fingerprint format).  A committed snapshot of these rows lives in
``benchmarks/backend_speedup.json``.
"""

import json
import os
import time

import numpy as np

from repro.engine import use_backend
from repro.functions import LineParams, sample_input
from repro.oracle import CountingOracle, LazyRandomOracle
from repro.protocols import build_chain_protocol, run_chain
from repro.ram.isa import Instruction, Op, Program
from repro.ram.machine import RamMachine

#: Repetitions per backend; best-of damps scheduler noise.
REPEATS = 3

#: Conservative CI floors (the committed snapshot shows the real
#: numbers; these only catch a backend that stopped being fast).
MIN_MPC_SPEEDUP = 3.0
MIN_RAM_SPEEDUP = 8.0


def _best_of(fn, repeats=REPEATS):
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best, result


def _write_row(workload, speedup, python_s, fast_s, counters):
    out_dir = os.environ.get("REPRO_BENCH_JSON")
    if not out_dir:
        return
    os.makedirs(out_dir, exist_ok=True)
    payload = {
        "experiment_id": f"BACKEND-SPEEDUP-{workload}",
        "scale": "bench",
        "passed": True,
        "summary": f"fast backend {speedup:.1f}x over python",
        "duration_s": fast_s,
        "counters": {"speedup_x100": int(speedup * 100), **counters},
        "metrics": {"python_s": python_s, "fast_s": fast_s},
    }
    path = os.path.join(out_dir, f"BENCH_BACKEND-SPEEDUP-{workload}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"\nbench metrics -> {path}")


def _chain_shape(m=64, w=1024):
    params = LineParams(n=36, u=8, v=8, w=w)
    x = sample_input(params, np.random.default_rng(3))

    def run(backend):
        oracle = CountingOracle(
            LazyRandomOracle(params.n, params.n, seed=5)
        )
        setup = build_chain_protocol(params, x, num_machines=m)
        with use_backend(backend):
            return run_chain(setup, oracle)

    return run


def bench_backend_speedup_mpc_chain(benchmark):
    """E-LINE shape at scale: steady-state memo vs the reference loop."""
    run = _chain_shape()
    python_s, res_py = _best_of(lambda: run("python"))
    fast_s, res_fast = benchmark.pedantic(
        lambda: _best_of(lambda: run("fast")), rounds=1, iterations=1
    )
    # Equivalence before speed: outputs, rounds, and per-round stats.
    assert res_py.outputs == res_fast.outputs
    assert res_py.rounds == res_fast.rounds
    assert res_py.stats.rounds == res_fast.stats.rounds
    speedup = python_s / fast_s
    print(
        f"\nMPC chain (m=64, w=1024, {res_py.rounds} rounds): "
        f"python {python_s:.3f}s, fast {fast_s:.3f}s -> {speedup:.1f}x"
    )
    _write_row(
        "MPC", speedup, python_s, fast_s,
        {"mpc.rounds": res_py.rounds,
         "mpc.messages": res_py.stats.total_messages},
    )
    assert speedup >= MIN_MPC_SPEEDUP, (
        f"fast MPC backend regressed: {speedup:.1f}x < {MIN_MPC_SPEEDUP}x"
    )


_RAM_LOOP_ITERS = 200_000

#: mix of ALU ops and a backward branch: r0 counts down, r2/r3/r4 churn.
_RAM_PROGRAM = Program((
    Instruction(Op.LOADI, (0, _RAM_LOOP_ITERS)),
    Instruction(Op.LOADI, (1, 1)),
    Instruction(Op.LOADI, (2, 0x9E37)),
    Instruction(Op.MUL, (2, 2, 2)),
    Instruction(Op.XOR, (2, 2, 0)),
    Instruction(Op.ADD, (3, 3, 2)),
    Instruction(Op.SHR, (4, 2, 3)),
    Instruction(Op.SUB, (0, 0, 1)),
    Instruction(Op.JNZ, (0, 3)),
    Instruction(Op.HALT,),
))


def bench_backend_speedup_ram(benchmark):
    """RAM-heavy untraced loop: compiled basic blocks vs if/elif."""

    def run(backend):
        machine = RamMachine(
            memory_words=16, word_bits=64, max_steps=10_000_000
        )
        with use_backend(backend):
            return machine.run(_RAM_PROGRAM)

    python_s, res_py = _best_of(lambda: run("python"))
    fast_s, res_fast = benchmark.pedantic(
        lambda: _best_of(lambda: run("fast")), rounds=1, iterations=1
    )
    assert res_py.registers == res_fast.registers
    assert res_py.memory == res_fast.memory
    assert res_py.stats == res_fast.stats
    speedup = python_s / fast_s
    print(
        f"\nRAM loop ({res_py.stats.instructions} instructions): "
        f"python {python_s:.3f}s, fast {fast_s:.3f}s -> {speedup:.1f}x"
    )
    _write_row(
        "RAM", speedup, python_s, fast_s,
        {"ram.instructions": res_py.stats.instructions},
    )
    assert speedup >= MIN_RAM_SPEEDUP, (
        f"fast RAM backend regressed: {speedup:.1f}x < {MIN_RAM_SPEEDUP}x"
    )
