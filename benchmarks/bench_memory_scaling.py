"""E-MEM -- total memory does not help.

Regenerates the experiment's tables under the benchmark timer; see
DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured.
"""


def bench_e_mem(run_and_report):
    run_and_report("E-MEM")
