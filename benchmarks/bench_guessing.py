"""E-GUESS -- Lemma 3.3 / A.7 skip-ahead probability.

Regenerates the experiment's tables under the benchmark timer; see
DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured.
"""


def bench_e_guess(run_and_report):
    run_and_report("E-GUESS")
