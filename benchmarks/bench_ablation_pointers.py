"""Ablation: oracle-chosen pointers are the source of hardness.

``Line`` and ``SimLine`` differ in exactly one design choice -- whether
the next input piece is selected by the random oracle or by the
deterministic round robin ``i mod v``.  At equal storage per machine the
protocols' round counts must separate: ``~(1-f)·T`` vs ``~T/b``.
"""

import numpy as np

from repro.experiments.exp_line_rounds import measure_chain_rounds
from repro.experiments.exp_simline_rounds import measure_pipeline_rounds


def bench_pointer_ablation(benchmark):
    def measure():
        w = 128
        line_mean, _ = measure_chain_rounds(
            w=w, pieces_per_machine=4, num_machines=4, v=8, trials=3, base_seed=1
        )
        sim_rounds = measure_pipeline_rounds(
            w=w, pieces_per_machine=8, num_machines=2, v=16, seed=1
        )
        return line_mean, sim_rounds

    line_mean, sim_rounds = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        f"\nequal storage fraction f=1/2, T=128: "
        f"Line (random pointer) = {line_mean:.1f} rounds, "
        f"SimLine (round robin) = {sim_rounds} rounds"
    )
    # Random pointers must cost substantially more rounds.
    assert line_mean > 2.5 * sim_rounds
