"""E-ENC-A -- Claim A.4 encoding scheme.

Regenerates the experiment's tables under the benchmark timer; see
DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured.
"""


def bench_e_enc_a(run_and_report):
    run_and_report("E-ENC-A")
