"""T1 -- Tables 1-3 parameter derivations.

Regenerates the experiment's tables under the benchmark timer; see
DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured.
"""


def bench_t1(run_and_report):
    run_and_report("T1")
