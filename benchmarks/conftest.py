"""Shared helper: run one experiment under pytest-benchmark and print
the regenerated table (the paper-row output of deliverable (d)).

Set ``REPRO_BENCH_JSON=<dir>`` to additionally run each benchmark under
a recording tracer and drop a ``BENCH_<experiment>.json`` per run into
that directory: wall-clock timing plus the model-level counters
(rounds, messages, oracle queries, RAM instructions) aggregated by
:class:`repro.obs.TraceMetrics` and fingerprinted by
:mod:`repro.obs.baseline` -- the files ``repro bench-compare`` diffs
against the committed ``benchmarks/baseline.json``.  Unset, benchmarks
run under the zero-overhead null tracer exactly as before.
"""

import os

import pytest


@pytest.fixture
def run_and_report(benchmark):
    """Run an experiment exactly once under the benchmark timer, print
    its rendered tables, and assert the measured shape matched."""
    from repro.experiments import run_experiment
    from repro.obs import (
        TraceMetrics,
        Tracer,
        bench_payload,
        use_tracer,
        write_bench_json,
    )

    def _run(experiment_id: str, scale: str = "quick"):
        out_dir = os.environ.get("REPRO_BENCH_JSON")
        tracer = Tracer() if out_dir else None

        def target(eid, sc):
            if tracer is None:
                return run_experiment(eid, sc)
            with use_tracer(tracer):
                return run_experiment(eid, sc)

        result = benchmark.pedantic(
            target, args=(experiment_id, scale), rounds=1, iterations=1
        )
        if out_dir:
            metrics = TraceMetrics.from_records(tracer.records)
            result.metrics["trace"] = metrics.to_dict()
            path = write_bench_json(
                bench_payload(result, metrics, scale=scale), out_dir
            )
            print(f"\nbench metrics -> {path}")
        print()
        print(result.render())
        assert result.passed, f"{experiment_id} shape check failed"
        return result

    return _run
