"""Shared helper: run one experiment under pytest-benchmark and print
the regenerated table (the paper-row output of deliverable (d))."""

import pytest


@pytest.fixture
def run_and_report(benchmark):
    """Run an experiment exactly once under the benchmark timer, print
    its rendered tables, and assert the measured shape matched."""
    from repro.experiments import run_experiment

    def _run(experiment_id: str, scale: str = "quick"):
        result = benchmark.pedantic(
            run_experiment, args=(experiment_id, scale), rounds=1, iterations=1
        )
        print()
        print(result.render())
        assert result.passed, f"{experiment_id} shape check failed"
        return result

    return _run
