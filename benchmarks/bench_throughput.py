"""E-THROUGHPUT -- parallelism buys throughput, not latency.

Regenerates the experiment's tables under the benchmark timer; see
DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured.
"""


def bench_e_throughput(run_and_report):
    run_and_report("E-THROUGHPUT")
