"""E-LIMIT -- Claim 3.8 counting limit.

Regenerates the experiment's tables under the benchmark timer; see
DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured.
"""


def bench_e_limit(run_and_report):
    run_and_report("E-LIMIT")
