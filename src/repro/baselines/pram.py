"""A CREW PRAM and pointer jumping -- the Section 1.2 contrast.

The PRAM synchronizes every shared-memory access: a step lets each
processor read the *pre-step* memory snapshot, compute locally, and
write one cell (concurrent reads allowed, concurrent writes to one cell
forbidden).  Pointer jumping over an ``N``-node successor table takes

* ``k`` steps walked sequentially by one processor,
* ``~2·log2 k`` steps with ``N`` processors via pointer doubling,

and -- Miltersen's point, relative to an oracle -- no PRAM beats
polylog; whereas the MPC protocol in
:mod:`repro.protocols.pointer_jump` finishes in **one round** because a
round permits unboundedly many adaptive queries.  Experiment E-BASE
prints the three numbers side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.functions.pointer_jump import PointerJumpInstance

__all__ = [
    "PRAM",
    "WriteConflict",
    "pram_pointer_jump_sequential",
    "pram_pointer_jump_doubling",
]


class WriteConflict(Exception):
    """Two processors wrote the same cell in one step (CREW violation)."""


# A processor step: (step, pid, read) -> (address, value) or None.
StepFn = Callable[[int, int, Callable[[int], int]], Optional[tuple[int, int]]]


@dataclass
class PRAM:
    """A CREW PRAM with ``num_processors`` processors over ``memory``."""

    num_processors: int
    memory: list[int]
    steps_executed: int = 0

    def __post_init__(self) -> None:
        if self.num_processors <= 0:
            raise ValueError(
                f"need at least one processor, got {self.num_processors}"
            )

    def read(self, address: int) -> int:
        """Read a cell (between steps; in-step reads go through snapshots)."""
        return self.memory[address]

    def step(self, fn: StepFn) -> None:
        """One synchronous step: snapshot reads, exclusive writes."""
        snapshot = list(self.memory)

        def read(address: int) -> int:
            if not 0 <= address < len(snapshot):
                raise IndexError(f"PRAM read at {address} out of range")
            return snapshot[address]

        writes: dict[int, tuple[int, int]] = {}
        for pid in range(self.num_processors):
            out = fn(self.steps_executed, pid, read)
            if out is None:
                continue
            address, value = out
            if not 0 <= address < len(self.memory):
                raise IndexError(f"PRAM write at {address} out of range")
            if address in writes and writes[address][1] != value:
                raise WriteConflict(
                    f"processors {writes[address][0]} and {pid} wrote cell "
                    f"{address} in the same step"
                )
            writes[address] = (pid, value)
        for address, (_pid, value) in writes.items():
            self.memory[address] = value
        self.steps_executed += 1

    def run(self, fn: StepFn, steps: int) -> None:
        """Execute ``steps`` synchronous steps of ``fn``."""
        for _ in range(steps):
            self.step(fn)


def pram_pointer_jump_sequential(
    instance: PointerJumpInstance,
) -> tuple[int, int]:
    """One processor walks the chain: ``k`` steps.  Returns (node, steps)."""
    n = instance.size
    # memory: [0..n) successor table, [n] current position.
    pram = PRAM(num_processors=1, memory=list(instance.successors) + [instance.start])

    def walk(step: int, pid: int, read: Callable[[int], int]):
        pos = read(n)
        return (n, read(pos))

    pram.run(walk, instance.jumps)
    return pram.memory[n], pram.steps_executed


def pram_pointer_jump_doubling(
    instance: PointerJumpInstance,
) -> tuple[int, int]:
    """Pointer doubling with ``N`` processors: ``O(log k)`` steps.

    Alternates (a) one position step using the current jump table when
    the corresponding bit of ``k`` is set, and (b) squaring the jump
    table ``J <- J o J``.  Total steps ``<= 2·(bits of k)``.
    """
    n = instance.size
    k = instance.jumps
    # memory: [0..n) jump table (initially succ = succ^1), [n] position.
    pram = PRAM(
        num_processors=n, memory=list(instance.successors) + [instance.start]
    )

    bits = k.bit_length()
    for bit in range(bits):
        if (k >> bit) & 1:

            def advance(step: int, pid: int, read: Callable[[int], int]):
                if pid != 0:
                    return None
                return (n, read(read(n)))

            pram.step(advance)

        if bit < bits - 1:

            def square(step: int, pid: int, read: Callable[[int], int]):
                return (pid, read(read(pid)))

            pram.step(square)

    return pram.memory[n], pram.steps_executed
