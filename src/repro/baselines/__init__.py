"""Prior-work computational models the paper compares against.

* :mod:`~repro.baselines.shuffle` -- the s-shuffle circuit model in
  which Roughgarden, Vassilvitskii and Wang proved the unconditional
  ``floor(log_s N)`` round bound (footnote 2 of the paper): fan-in-``s``
  DAGs, an information-flow depth bound, and the tree circuit that meets
  it;
* :mod:`~repro.baselines.pram` -- a CREW PRAM simulator and pointer
  jumping (sequential and pointer-doubling), the Section 1.2 contrast
  showing why Miltersen's PRAM lower bound does not transfer to MPC.
"""

from repro.baselines.compile_mpc import CompiledCircuit, compile_execution
from repro.baselines.pram import (
    PRAM,
    WriteConflict,
    pram_pointer_jump_doubling,
    pram_pointer_jump_sequential,
)
from repro.baselines.shuffle import (
    ShuffleCircuit,
    build_tree_circuit,
    shuffle_depth_lower_bound,
)

__all__ = [
    "PRAM",
    "CompiledCircuit",
    "ShuffleCircuit",
    "WriteConflict",
    "build_tree_circuit",
    "compile_execution",
    "pram_pointer_jump_doubling",
    "pram_pointer_jump_sequential",
    "shuffle_depth_lower_bound",
]
