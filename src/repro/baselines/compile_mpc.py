"""Compile an MPC execution into an s-shuffle circuit (footnote 2).

The paper notes the RVW lower bound "holds in a stronger model called
s-shuffle circuits" -- every R-round MPC computation *is* an s-shuffle
circuit of depth R: one gate per active machine-round, wired by the
messages, with each gate's fan-in bounded because incoming bits are
bounded by ``s``.  This module performs that compilation on a recorded
:class:`~repro.mpc.simulator.MPCResult`, making the two models'
relationship checkable:

* compiled depth equals the execution's round count;
* the RVW counting bound then applies verbatim: if the output gate
  depends on all ``N`` input shares, ``rounds >= log_fanin(N)`` -- the
  unconditional floor underneath the paper's conditional ``~Omega(T)``.

Gates here carry no functions (the compilation is structural -- the
depth/fan-in skeleton is all the RVW argument uses); evaluation-capable
circuits live in :mod:`repro.baselines.shuffle`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpc.simulator import MPCResult

__all__ = ["CompiledCircuit", "compile_execution"]


@dataclass(frozen=True)
class CompiledCircuit:
    """The structural s-shuffle view of one MPC execution.

    Nodes are ``(round, machine)`` pairs for every machine that received
    data; input nodes are ``(-1, machine)`` for machines holding input
    shares.  ``wires[node]`` lists the nodes feeding it.
    """

    num_machines: int
    rounds: int
    wires: dict[tuple[int, int], tuple[tuple[int, int], ...]]
    output_node: tuple[int, int]
    max_fan_in: int

    def depth(self) -> int:
        """Longest input-to-output path length (gate count)."""
        memo: dict[tuple[int, int], int] = {}

        def walk(node: tuple[int, int]) -> int:
            if node[0] < 0:
                return 0
            if node in memo:
                return memo[node]
            sources = self.wires.get(node, ())
            memo[node] = 1 + max((walk(s) for s in sources), default=0)
            return memo[node]

        return walk(self.output_node)

    def reachable_inputs(self, node: tuple[int, int]) -> set[int]:
        """Input shares that can influence ``node``."""
        seen: set[tuple[int, int]] = set()
        inputs: set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            if current[0] < 0:
                inputs.add(current[1])
                continue
            stack.extend(self.wires.get(current, ()))
        return inputs

    def rvw_depth_floor(self) -> int:
        """``ceil(log_fanin(#inputs reachable from the output))`` --
        the unconditional bound instantiated on this very execution."""
        import math

        reach = len(self.reachable_inputs(self.output_node))
        if reach <= 1 or self.max_fan_in <= 1:
            return 1 if reach else 0
        return math.ceil(math.log(reach) / math.log(self.max_fan_in))


def compile_execution(
    result: MPCResult, *, num_machines: int, output_machine: int
) -> CompiledCircuit:
    """Build the structural circuit from a recorded execution.

    ``output_machine`` selects whose output gate anchors the circuit
    (for the chain protocols: the machine that produced the output).
    """
    if not 0 <= output_machine < num_machines:
        raise ValueError(
            f"output machine {output_machine} out of range for m={num_machines}"
        )
    wires: dict[tuple[int, int], list[tuple[int, int]]] = {}
    # Round 0 gates read the input shares.
    for machine in range(num_machines):
        wires[(0, machine)] = [(-1, machine)]
    for stats in result.stats.rounds:
        for sender, receiver, _bits in stats.edges:
            wires.setdefault((stats.round + 1, receiver), []).append(
                (stats.round, sender)
            )
    # A machine with no incoming messages at round k still "exists" but
    # carries no data; pruning it keeps fan-in counts honest.
    max_fan_in = max((len(srcs) for srcs in wires.values()), default=0)
    # The output gate is the output machine at its final active round.
    output_round = max(
        (node[0] for node in wires if node[1] == output_machine),
        default=0,
    )
    return CompiledCircuit(
        num_machines=num_machines,
        rounds=result.rounds,
        wires={node: tuple(srcs) for node, srcs in wires.items()},
        output_node=(output_round, output_machine),
        max_fan_in=max_fan_in,
    )
