"""The s-shuffle circuit model of Roughgarden--Vassilvitskii--Wang.

An s-shuffle circuit is a DAG whose internal gates each read at most
``s`` values (inputs or other gates' outputs) and compute an arbitrary
function of them.  Round complexity in MPC corresponds to circuit depth
here, and the unconditional bound is pure fan-in counting: a gate at
depth ``d`` can depend on at most ``s^d`` inputs, so any circuit whose
output depends on all ``N`` inputs needs depth ``>= log_s N``.  This
module implements the model, the bound, and the tree circuit that
matches it -- the baseline the paper's ``~Omega(T)`` bound is measured
against in experiment E-BASE.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

__all__ = ["ShuffleCircuit", "build_tree_circuit", "shuffle_depth_lower_bound"]


@dataclass
class _Gate:
    sources: tuple[int, ...]  # negative = ~(input index); nonnegative = gate id
    fn: Callable[[list[object]], object]
    depth: int = 0


@dataclass
class ShuffleCircuit:
    """A fan-in-``s`` DAG over ``num_inputs`` inputs."""

    num_inputs: int
    fan_in: int
    _gates: list[_Gate] = field(default_factory=list)
    _output: int | None = None

    def __post_init__(self) -> None:
        if self.num_inputs <= 0 or self.fan_in <= 1:
            raise ValueError(
                f"need inputs > 0 and fan-in > 1, got "
                f"({self.num_inputs}, {self.fan_in})"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def input_ref(self, index: int) -> int:
        """A source handle for input ``index``."""
        if not 0 <= index < self.num_inputs:
            raise ValueError(f"input {index} out of range")
        return -(index + 1)

    def add_gate(
        self, sources: Sequence[int], fn: Callable[[list[object]], object]
    ) -> int:
        """Add a gate reading ``sources`` (input refs or gate ids)."""
        if len(sources) > self.fan_in:
            raise ValueError(
                f"gate with {len(sources)} sources exceeds fan-in {self.fan_in}"
            )
        depth = 0
        for src in sources:
            if src >= 0:
                if src >= len(self._gates):
                    raise ValueError(f"gate source {src} does not exist yet")
                depth = max(depth, self._gates[src].depth)
        gate = _Gate(sources=tuple(sources), fn=fn, depth=depth + 1)
        self._gates.append(gate)
        return len(self._gates) - 1

    def set_output(self, gate_id: int) -> None:
        """Designate the output gate."""
        if not 0 <= gate_id < len(self._gates):
            raise ValueError(f"gate {gate_id} does not exist")
        self._output = gate_id

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Depth of the output gate (0 for an unset output)."""
        if self._output is None:
            return 0
        return self._gates[self._output].depth

    def reachable_inputs(self, gate_id: int) -> set[int]:
        """Which inputs can influence ``gate_id`` -- at most ``s^depth``."""
        seen_gates: set[int] = set()
        inputs: set[int] = set()
        stack = [gate_id]
        while stack:
            g = stack.pop()
            if g in seen_gates:
                continue
            seen_gates.add(g)
            for src in self._gates[g].sources:
                if src < 0:
                    inputs.add(-src - 1)
                else:
                    stack.append(src)
        return inputs

    def evaluate(self, inputs: Sequence[object]) -> object:
        """Evaluate the circuit on concrete input values."""
        if len(inputs) != self.num_inputs:
            raise ValueError(
                f"expected {self.num_inputs} inputs, got {len(inputs)}"
            )
        if self._output is None:
            raise ValueError("no output gate designated")
        values: list[object] = []
        for gate in self._gates:  # gates are topologically ordered by id
            args = [
                inputs[-src - 1] if src < 0 else values[src]
                for src in gate.sources
            ]
            values.append(gate.fn(args))
        return values[self._output]


def shuffle_depth_lower_bound(num_inputs: int, fan_in: int) -> int:
    """The RVW bound: depth ``>= ceil(log_s N)`` to touch all inputs.

    (``floor`` in their statement because of model details; the fan-in
    counting argument gives ``s^d >= N``, i.e. ``d >= log_s N``.)
    """
    if num_inputs <= 1 or fan_in <= 1:
        raise ValueError(f"need N > 1 and s > 1")
    return math.ceil(math.log(num_inputs) / math.log(fan_in))


def build_tree_circuit(
    num_inputs: int,
    fan_in: int,
    combine: Callable[[list[object]], object],
) -> ShuffleCircuit:
    """The matching upper bound: an ``s``-ary aggregation tree.

    Computes ``combine`` hierarchically over all inputs with depth
    exactly ``ceil(log_s N)`` -- the circuit that makes the RVW bound
    tight for associative aggregations.
    """
    circuit = ShuffleCircuit(num_inputs=num_inputs, fan_in=fan_in)
    frontier = [circuit.input_ref(i) for i in range(num_inputs)]
    if len(frontier) == 1:
        gate = circuit.add_gate(frontier, combine)
        circuit.set_output(gate)
        return circuit
    while len(frontier) > 1:
        next_frontier = []
        for off in range(0, len(frontier), fan_in):
            group = frontier[off : off + fan_in]
            next_frontier.append(circuit.add_gate(group, combine))
        frontier = next_frontier
    circuit.set_output(frontier[0])
    return circuit
