"""Bit-string substrate.

Everything in the paper is stated over fixed-width bit strings: the random
oracle maps ``{0,1}^n -> {0,1}^n``, machine memories are ``s``-bit strings,
and the compression argument trades in exact bit counts.  This package
provides the three primitives the rest of the library is built on:

* :class:`~repro.bits.bitstring.Bits` -- an immutable, integer-backed,
  MSB-first bit string with slicing, concatenation, and boolean algebra;
* :mod:`~repro.bits.codec` -- declarative fixed-width record layouts (the
  query and answer formats of ``Line``/``SimLine``, MPC state
  serialization) plus sequential :class:`~repro.bits.codec.BitWriter` /
  :class:`~repro.bits.codec.BitReader` streams used by the encoding
  schemes of Claims 3.7 and A.4;
* :mod:`~repro.bits.entropy` -- counting helpers, including the
  information-theoretic limit of Claim 3.8 / Claim A.5 as executable
  arithmetic.
"""

from repro.bits.bitstring import Bits
from repro.bits.codec import BitReader, BitWriter, Field, RecordCodec
from repro.bits.entropy import (
    bits_needed,
    max_codewords_of_length_at_most,
    min_possible_max_code_length,
    verify_injective_code,
)

__all__ = [
    "Bits",
    "BitReader",
    "BitWriter",
    "Field",
    "RecordCodec",
    "bits_needed",
    "max_codewords_of_length_at_most",
    "min_possible_max_code_length",
    "verify_injective_code",
]
