"""Declarative fixed-width record layouts and sequential bit streams.

Two pieces of machinery live here:

* :class:`RecordCodec` -- a named, fixed-width field layout.  The paper's
  oracle queries are records: ``Line`` queries the oracle on
  ``(i, x_{l_i}, r_i, 0^*)`` packed into ``n`` bits, and parses the
  ``n``-bit answer as ``(l_{i+1}, r_{i+1}, z_{i+1})``.  A codec makes
  those layouts explicit and bit-exact, which is what lets the MPC
  simulator account local memory honestly and the compression encoders
  reproduce the paper's byte-for-byte... bit-for-bit bookkeeping.

* :class:`BitWriter` / :class:`BitReader` -- sequential streams used by
  the encoding schemes of Claim 3.7 and Claim A.4, whose outputs are
  variable-length concatenations (oracle table, memory state, query
  positions, leftover inputs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Union

from repro.bits.bitstring import Bits

__all__ = ["Field", "RecordCodec", "BitWriter", "BitReader"]

FieldValue = Union[int, Bits]


@dataclass(frozen=True)
class Field:
    """One fixed-width field of a record.

    ``width`` may be zero (useful for degenerate parameters such as a
    padding field that happens to vanish); such fields always hold 0.
    """

    name: str
    width: int

    def __post_init__(self) -> None:
        if self.width < 0:
            raise ValueError(f"field {self.name!r} has negative width {self.width}")
        if not self.name:
            raise ValueError("field name must be non-empty")


class RecordCodec:
    """Packs and unpacks fixed-width records, MSB-first, left to right."""

    def __init__(self, fields: Iterable[Field]) -> None:
        self._fields = tuple(fields)
        names = [f.name for f in self._fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in {names}")
        self._total = sum(f.width for f in self._fields)

    @property
    def fields(self) -> tuple[Field, ...]:
        """The field layout, in order."""
        return self._fields

    @property
    def total_width(self) -> int:
        """Total record width in bits."""
        return self._total

    def width_of(self, name: str) -> int:
        """Width of the named field."""
        for f in self._fields:
            if f.name == name:
                return f.width
        raise KeyError(name)

    def pack(self, values: Mapping[str, FieldValue] | None = None, /, **kwargs: FieldValue) -> Bits:
        """Pack field values into a record.

        Values may be ints (must fit the field width) or :class:`Bits`
        (must match the field width exactly).  Omitted fields default to
        zero -- this is how the paper's ``0^*`` padding is expressed.
        """
        merged: dict[str, FieldValue] = dict(values or {})
        merged.update(kwargs)
        known = {f.name for f in self._fields}
        unknown = set(merged) - known
        if unknown:
            raise KeyError(f"unknown fields: {sorted(unknown)}")
        acc = 0
        for f in self._fields:
            raw = merged.get(f.name, 0)
            if isinstance(raw, Bits):
                if len(raw) != f.width:
                    raise ValueError(
                        f"field {f.name!r} expects {f.width} bits, got {len(raw)}"
                    )
                v = raw.value
            else:
                v = int(raw)
                if v < 0 or (f.width < v.bit_length()):
                    raise ValueError(
                        f"value {v} does not fit field {f.name!r} of width {f.width}"
                    )
            acc = (acc << f.width) | v
        return Bits(acc, self._total)

    def unpack(self, record: Bits) -> dict[str, int]:
        """Unpack a record into a dict of integer field values."""
        if len(record) != self._total:
            raise ValueError(
                f"record has {len(record)} bits, codec expects {self._total}"
            )
        # Walk right to left on the raw integer: per field one shift and
        # one mask, no intermediate Bits objects.
        out: dict[str, int] = {}
        raw = record.value
        shift = self._total
        for f in self._fields:
            shift -= f.width
            out[f.name] = (raw >> shift) & ((1 << f.width) - 1)
        return out

    def unpack_bits(self, record: Bits) -> dict[str, Bits]:
        """Unpack a record into a dict of :class:`Bits` field values."""
        if len(record) != self._total:
            raise ValueError(
                f"record has {len(record)} bits, codec expects {self._total}"
            )
        out: dict[str, Bits] = {}
        pos = 0
        for f in self._fields:
            out[f.name] = record[pos : pos + f.width]
            pos += f.width
        return out


class BitWriter:
    """An append-only bit stream with exact length accounting."""

    def __init__(self) -> None:
        self._value = 0
        self._length = 0

    def write(self, value: int, width: int) -> None:
        """Append ``width`` bits holding the unsigned integer ``value``."""
        if width < 0:
            raise ValueError(f"negative width: {width}")
        if value < 0 or value.bit_length() > width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._value = (self._value << width) | value
        self._length += width

    def write_bits(self, bits: Bits) -> None:
        """Append an existing bit string."""
        self._value = (self._value << len(bits)) | bits.value
        self._length += len(bits)

    def __len__(self) -> int:
        return self._length

    def getvalue(self) -> Bits:
        """The stream contents so far."""
        return Bits(self._value, self._length)


class BitReader:
    """Sequential reader over a bit string (the decoder's side).

    The stream's integer value and length are cached locally so the hot
    :meth:`read` path is pure integer arithmetic -- one shift, one mask,
    no intermediate :class:`Bits` allocation per field.
    """

    def __init__(self, bits: Bits) -> None:
        self._bits = bits
        self._value = bits.value
        self._length = len(bits)
        self._pos = 0

    @property
    def position(self) -> int:
        """Current read offset in bits."""
        return self._pos

    def remaining(self) -> int:
        """Number of unread bits."""
        return self._length - self._pos

    def read(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer."""
        if width < 0:
            raise ValueError(f"negative width: {width}")
        end = self._pos + width
        if end > self._length:
            raise EOFError(
                f"read of {width} bits at position {self._pos} overruns "
                f"stream of length {self._length}"
            )
        self._pos = end
        return (self._value >> (self._length - end)) & ((1 << width) - 1)

    def read_bits(self, width: int) -> Bits:
        """Read ``width`` bits as a :class:`Bits`."""
        return Bits._make(self.read(width), width)

    def at_end(self) -> bool:
        """True when every bit has been consumed."""
        return self._pos == self._length
