"""Immutable fixed-width bit strings.

A :class:`Bits` value is a string in ``{0,1}^length`` stored as a Python
integer.  Bit 0 is the *most significant* (leftmost) bit, matching the way
the paper writes strings such as ``(i, x_{l_i}, r_i, 0^*)`` left to right.

The class is deliberately small and allocation-light: all arithmetic is on
machine integers, so concatenating or slicing strings of tens of thousands
of bits (an entire oracle truth table, an encoder output) stays cheap.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["Bits"]


class Bits:
    """An immutable bit string of fixed ``length`` backed by an ``int``.

    ``Bits(value, length)`` interprets ``value`` as the big-endian integer
    whose binary expansion (left-padded with zeros to ``length`` digits) is
    the string.  ``value`` must satisfy ``0 <= value < 2**length``.
    """

    __slots__ = ("_value", "_length")

    def __init__(self, value: int, length: int) -> None:
        if length < 0:
            raise ValueError(f"negative length: {length}")
        if value < 0 or value >> length:
            raise ValueError(f"value {value} does not fit in {length} bits")
        self._value = value
        self._length = length

    @classmethod
    def _make(cls, value: int, length: int) -> "Bits":
        """Internal constructor for values already proven in range.

        Slicing, concatenation, and the boolean algebra can only produce
        in-range ``(value, length)`` pairs, so they skip ``__init__``'s
        validation -- the hot paths (message routing, codec decoding)
        allocate exactly one object per result and nothing else.
        """
        self = object.__new__(cls)
        self._value = value
        self._length = length
        return self

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, length: int) -> "Bits":
        """The all-zero string ``0^length``."""
        return cls(0, length)

    @classmethod
    def ones(cls, length: int) -> "Bits":
        """The all-one string ``1^length``."""
        return cls((1 << length) - 1, length)

    @classmethod
    def from_int(cls, value: int, length: int) -> "Bits":
        """Alias of the constructor, for symmetry with :meth:`to_int`."""
        return cls(value, length)

    @classmethod
    def from_str(cls, s: str) -> "Bits":
        """Parse a literal like ``"01101"`` (underscores/spaces ignored)."""
        cleaned = s.replace("_", "").replace(" ", "")
        if cleaned and set(cleaned) - {"0", "1"}:
            raise ValueError(f"not a bit string literal: {s!r}")
        return cls(int(cleaned, 2) if cleaned else 0, len(cleaned))

    @classmethod
    def from_bools(cls, flags: Iterable[bool]) -> "Bits":
        """Build from an iterable of booleans, MSB first."""
        value = 0
        length = 0
        for flag in flags:
            value = (value << 1) | (1 if flag else 0)
            length += 1
        return cls(value, length)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Bits":
        """Build from raw bytes, 8 bits per byte, MSB first."""
        return cls(int.from_bytes(data, "big"), 8 * len(data))

    @classmethod
    def concat(cls, parts: Iterable["Bits"]) -> "Bits":
        """Concatenate any number of bit strings left to right.

        Single-pass shift/accumulate on machine integers: no
        intermediate ``Bits`` objects and no re-validation -- the parts
        are already in range, so the result is by construction.
        """
        value = 0
        length = 0
        for part in parts:
            value = (value << part._length) | part._value
            length += part._length
        return cls._make(value, length)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def value(self) -> int:
        """The big-endian integer value of the string."""
        return self._value

    def to_int(self) -> int:
        """The big-endian integer value of the string."""
        return self._value

    def to_str(self) -> str:
        """Render as a literal ``0``/``1`` string."""
        return format(self._value, f"0{self._length}b") if self._length else ""

    def to_bytes(self) -> bytes:
        """Pack into bytes, left-aligned; length must be a multiple of 8."""
        if self._length % 8:
            raise ValueError(f"length {self._length} is not a whole number of bytes")
        return self._value.to_bytes(self._length // 8, "big")

    def bit(self, i: int) -> int:
        """The bit at position ``i`` (0 = leftmost / most significant)."""
        if not 0 <= i < self._length:
            raise IndexError(f"bit index {i} out of range for length {self._length}")
        return (self._value >> (self._length - 1 - i)) & 1

    def popcount(self) -> int:
        """Number of one bits."""
        return self._value.bit_count()

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[int]:
        for i in range(self._length):
            yield self.bit(i)

    def __getitem__(self, key):
        if isinstance(key, int):
            if key < 0:
                key += self._length
            return self.bit(key)
        if isinstance(key, slice):
            start, stop, step = key.indices(self._length)
            if step != 1:
                raise ValueError("Bits slicing requires step 1")
            width = stop - start
            if width <= 0:
                return _EMPTY
            shifted = self._value >> (self._length - stop)
            return Bits._make(shifted & ((1 << width) - 1), width)
        raise TypeError(f"invalid index: {key!r}")

    def split_at(self, *positions: int) -> tuple["Bits", ...]:
        """Split into consecutive pieces at the given cut positions."""
        cuts = [0, *positions, self._length]
        if any(b > a for a, b in zip(cuts[1:], cuts)) or cuts != sorted(cuts):
            raise ValueError(f"cut positions must be sorted within [0, {self._length}]")
        return tuple(self[a:b] for a, b in zip(cuts, cuts[1:]))

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _check_same_length(self, other: "Bits") -> None:
        if not isinstance(other, Bits):
            raise TypeError(f"expected Bits, got {type(other).__name__}")
        if other._length != self._length:
            raise ValueError(
                f"length mismatch: {self._length} vs {other._length}"
            )

    def __xor__(self, other: "Bits") -> "Bits":
        self._check_same_length(other)
        return Bits._make(self._value ^ other._value, self._length)

    def __and__(self, other: "Bits") -> "Bits":
        self._check_same_length(other)
        return Bits._make(self._value & other._value, self._length)

    def __or__(self, other: "Bits") -> "Bits":
        self._check_same_length(other)
        return Bits._make(self._value | other._value, self._length)

    def __invert__(self) -> "Bits":
        return Bits._make(self._value ^ ((1 << self._length) - 1), self._length)

    def __add__(self, other: "Bits") -> "Bits":
        """Concatenation (``+`` mirrors string concatenation, not addition)."""
        if not isinstance(other, Bits):
            return NotImplemented
        return Bits._make(
            (self._value << other._length) | other._value,
            self._length + other._length,
        )

    def pad_right(self, total_length: int) -> "Bits":
        """Append zeros on the right up to ``total_length`` (the ``0^*``)."""
        if total_length < self._length:
            raise ValueError(
                f"cannot pad length {self._length} down to {total_length}"
            )
        return Bits._make(
            self._value << (total_length - self._length), total_length
        )

    def pad_left(self, total_length: int) -> "Bits":
        """Prepend zeros on the left up to ``total_length``."""
        if total_length < self._length:
            raise ValueError(
                f"cannot pad length {self._length} down to {total_length}"
            )
        return Bits._make(self._value, total_length)

    # ------------------------------------------------------------------
    # Equality / hashing / repr
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bits):
            return NotImplemented
        return self._value == other._value and self._length == other._length

    def __hash__(self) -> int:
        return hash((self._value, self._length))

    def __repr__(self) -> str:
        if self._length <= 64:
            return f"Bits('{self.to_str()}')"
        return f"Bits(value=..., length={self._length})"

    def __bool__(self) -> bool:
        """True iff any bit is set (the empty string is falsy)."""
        return self._value != 0


#: The empty string, shared: empty slices are frequent at codec edges.
_EMPTY = Bits(0, 0)
