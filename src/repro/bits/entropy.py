"""Counting helpers and the information-theoretic encoding limit.

Claim 3.8 (identically Claim A.5) is the pivot of the paper's compression
argument: a deterministic injective encoding of a message set ``M`` into
variable-length bit strings must have maximum codeword length at least
``log2(|M|) - 1``, because there are only ``sum_{i<=t} 2^i <= 2^{t+1}``
strings of length at most ``t``.  This module states that claim as
executable arithmetic and provides an exhaustive verifier used by the
property tests and by experiment ``E-LIMIT``.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from repro.bits.bitstring import Bits

__all__ = [
    "bits_needed",
    "log2_ceil",
    "log2_floor",
    "max_codewords_of_length_at_most",
    "min_possible_max_code_length",
    "counting_bound_holds",
    "verify_injective_code",
]


def log2_ceil(x: int) -> int:
    """``ceil(log2(x))`` for a positive integer, exactly."""
    if x <= 0:
        raise ValueError(f"log2 of non-positive value: {x}")
    return (x - 1).bit_length()


def log2_floor(x: int) -> int:
    """``floor(log2(x))`` for a positive integer, exactly."""
    if x <= 0:
        raise ValueError(f"log2 of non-positive value: {x}")
    return x.bit_length() - 1


def bits_needed(num_values: int) -> int:
    """Bits required to index ``num_values`` distinct values.

    This is the paper's ``ceil(log v)`` used for the pointer field
    ``l_i`` of the ``Line`` function.  One value still needs zero bits.
    """
    if num_values <= 0:
        raise ValueError(f"need at least one value, got {num_values}")
    return log2_ceil(num_values) if num_values > 1 else 0


def max_codewords_of_length_at_most(t: int) -> int:
    """Number of distinct bit strings of length at most ``t``.

    Exactly ``sum_{i=0}^{t} 2^i = 2^{t+1} - 1`` (the paper upper-bounds
    this by ``2^{t+1}`` in Claim 3.8).
    """
    if t < 0:
        raise ValueError(f"negative length bound: {t}")
    return (1 << (t + 1)) - 1


def min_possible_max_code_length(num_messages: int) -> int:
    """Claim 3.8: the smallest achievable max codeword length for ``M``.

    Returns the least ``t`` with ``2^{t+1} - 1 >= num_messages``; Claim
    3.8's statement ``t >= log2(|M|) - 1`` follows since
    ``2^{t+1} >= 2^{t+1} - 1 >= |M|``.
    """
    if num_messages <= 0:
        raise ValueError(f"need at least one message, got {num_messages}")
    t = 0
    while max_codewords_of_length_at_most(t) < num_messages:
        t += 1
    return t


def counting_bound_holds(max_len: int, num_messages: int) -> bool:
    """Whether a max length ``max_len`` is consistent with Claim 3.8.

    True iff ``max_len >= log2(num_messages) - 1`` (evaluated exactly via
    integer comparison, no floating point).
    """
    # max_len >= log2(M) - 1   <=>   2^(max_len + 1) >= M.
    return (1 << (max_len + 1)) >= num_messages


def verify_injective_code(code: Mapping[object, Bits]) -> int:
    """Check a concrete code is injective; return its max codeword length.

    Raises ``ValueError`` on a collision.  Used to *exhaustively* confirm
    Claim 3.8 for small message sets: any injective code this function
    accepts satisfies ``counting_bound_holds(result, len(code))``.
    """
    seen: dict[Bits, object] = {}
    max_len = 0
    for message, word in code.items():
        if word in seen:
            raise ValueError(
                f"code collision: {message!r} and {seen[word]!r} both map to {word!r}"
            )
        seen[word] = message
        max_len = max(max_len, len(word))
    return max_len


def shannon_bits(probability: float) -> float:
    """Self-information ``-log2(p)`` of an event, for reporting."""
    if not 0.0 < probability <= 1.0:
        raise ValueError(f"probability out of range: {probability}")
    return -math.log2(probability)


def enumerate_bitstrings(max_length: int) -> Iterable[Bits]:
    """Yield every bit string of length at most ``max_length``.

    Ordered by length then value; the generator realizes the codeword
    census behind :func:`max_codewords_of_length_at_most`.
    """
    for length in range(max_length + 1):
        for value in range(1 << length):
            yield Bits(value, length)
