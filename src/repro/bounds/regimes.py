"""Parameter windows and the best-possible-hardness gap (Theorem 1.1).

Theorem 3.1 holds for ``n <= S < 2^{O(n^{1/4})}``, ``S <= T <
2^{O(n^{1/4})}``, ``m < 2^{O(n^{1/4})}``, ``q < 2^{n/4}``; setting
``n = polylog(T)`` turns the theorem into the headline statement: a
function computable in ``~O(T)`` RAM time whose MPC round complexity is
``~Omega(T)`` whenever ``s <= S/c`` -- parallelism buys at most polylog.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bounds.theorem31 import default_lookahead, lemma32_round_bound

__all__ = [
    "theorem31_window",
    "hardness_threshold",
    "polylog_instantiation",
    "best_possible_gap",
    "GapReport",
]


def theorem31_window(
    *, n: int, S: int, T: int, m: int, q: int, c_exp: float = 4.0
) -> dict[str, bool]:
    """Check every side condition of Theorem 3.1.

    ``c_exp`` is the constant hidden in ``2^{O(n^{1/4})}``: the window
    accepts values below ``2^{c_exp · n^{1/4}}``.
    """
    if min(n, S, T, m, q) <= 0:
        raise ValueError("parameters must be positive")
    cap = c_exp * n**0.25
    return {
        "S_at_least_n": S >= n,
        "S_below_subexp": math.log2(S) < cap,
        "T_at_least_S": T >= S,
        "T_below_subexp": math.log2(T) < cap,
        "m_below_subexp": math.log2(m) < cap,
        "q_below_2_n_over_4": math.log2(q) < n / 4,
    }


def hardness_threshold(S: int, c: float = 2.0) -> float:
    """Theorem 3.1's memory threshold ``S/c``: hardness applies below it."""
    if S <= 0 or c <= 1:
        raise ValueError(f"need S > 0 and c > 1, got S={S}, c={c}")
    return S / c


@dataclass(frozen=True)
class GapReport:
    """The Theorem 1.1 gap at one parameter point."""

    T: int
    n: int
    ram_time: int  # O(T·n)
    mpc_round_lower_bound: float  # w / log^2 w
    gap: float  # ram_time / round bound
    gap_polylog_exponent: float  # log_log2(T)(gap): gap = (log T)^this

    @property
    def is_polylog_gap(self) -> bool:
        """True when the gap is polylogarithmic in T (exponent bounded)."""
        return self.gap_polylog_exponent <= 8.0


def polylog_instantiation(T: int, *, exponent: int = 2) -> int:
    """The ``n = polylog(T)`` choice: ``n = ceil(log2 T)^exponent``."""
    if T <= 1:
        raise ValueError(f"T must exceed 1, got {T}")
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    return max(4, math.ceil(math.log2(T)) ** exponent)


def best_possible_gap(T: int, *, n_exponent: int = 2) -> GapReport:
    """Quantify "best-possible hardness up to polylog" at time budget ``T``.

    RAM computes ``f`` in ``T·n`` steps; any small-memory MPC needs
    ``T / log^2 T`` rounds; the ratio is ``n·log^2 T = polylog(T)``.
    """
    n = polylog_instantiation(T, exponent=n_exponent)
    ram_time = T * n
    round_bound = lemma32_round_bound(T)
    gap = ram_time / round_bound
    log_log = math.log2(math.log2(T)) if T > 2 else 1.0
    gap_exp = math.log2(gap) / log_log if log_log > 0 else 0.0
    return GapReport(
        T=T,
        n=n,
        ram_time=ram_time,
        mpc_round_lower_bound=round_bound,
        gap=gap,
        gap_polylog_exponent=gap_exp,
    )
