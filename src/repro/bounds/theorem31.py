"""Section 3 bound formulas (Lemmas 3.2/3.3/3.6, Claim 3.9, Theorem 3.1).

All probabilities are returned as ``log2`` values: at paper scale they
are far below double-precision range.  The look-ahead window the paper
writes as ``log^2 w`` is the explicit parameter ``p`` throughout
(:func:`default_lookahead` supplies the paper's choice).
"""

from __future__ import annotations

import math

__all__ = [
    "default_lookahead",
    "required_u_lemma36",
    "lemma36_h",
    "lemma36_probability_log2",
    "lemma32_round_bound",
    "claim39_bound_log2",
    "theorem31_success_log2",
    "log2_sum_exp",
]


def default_lookahead(w: int) -> int:
    """The paper's look-ahead window ``p = ceil(log2 w)^2``."""
    if w <= 0:
        raise ValueError(f"w must be positive, got {w}")
    return max(1, math.ceil(math.log2(w)) ** 2)


def required_u_lemma36(p: int, log_v: float, log_q: float) -> float:
    """Lemma 3.6's standing assumption: ``u >= (p+2)·log v + log q``."""
    if p <= 0 or log_v < 0 or log_q < 0:
        raise ValueError("invalid parameters")
    return (p + 2) * log_v + log_q


def lemma36_h(s: int, u: int, p: int, log_v: float, log_q: float) -> float:
    """Lemma 3.6's threshold ``h = s / (u - (p+2)log v - log q) + 1``.

    The denominator is the per-piece compression saving; ``h`` is the
    largest revealed-set size the encoding argument tolerates before the
    code beats the counting bound.
    """
    denom = u - required_u_lemma36(p, log_v, log_q)
    if denom <= 0:
        raise ValueError(
            f"u={u} violates the Lemma 3.6 assumption "
            f"u >= (p+2)log v + log q = {required_u_lemma36(p, log_v, log_q):.1f}"
        )
    return s / denom + 1


def lemma36_probability_log2(u: int, p: int, log_v: float, log_q: float) -> float:
    """``log2 Pr[|B_i^(k)| > h and not E^(k)]
    <= -(u - (p+2)log v - log q)``."""
    denom = u - required_u_lemma36(p, log_v, log_q)
    if denom <= 0:
        raise ValueError("u too small for Lemma 3.6")
    return -denom


def lemma32_round_bound(w: int, p: int | None = None) -> float:
    """Lemma 3.2's round lower bound ``R >= w / log^2 w``."""
    if w <= 1:
        return 1.0
    window = p if p is not None else default_lookahead(w)
    return w / window


def log2_sum_exp(log_terms: list[float]) -> float:
    """``log2(sum(2^t for t in log_terms))``, stable for tiny terms."""
    if not log_terms:
        return -math.inf
    peak = max(log_terms)
    if peak == -math.inf:
        return -math.inf
    return peak + math.log2(sum(math.exp2(t - peak) for t in log_terms))


def claim39_bound_log2(
    *,
    k: int,
    m: int,
    s: int,
    u: int,
    v: int,
    w: int,
    q: int,
    p: int | None = None,
) -> float:
    """Claim 3.9's bound on ``Pr[|Q^(<=k)| hits C^(k+1)]`` in log2:

    ``(k+1)·m·((h/v)^p + w·v^p·q·2^{-u} + 2^{-(u-(p+2)log v-log q)})``.
    """
    if min(k + 1, m, s, u, v, w, q) <= 0:
        raise ValueError("parameters must be positive")
    window = p if p is not None else default_lookahead(w)
    log_v = math.log2(v) if v > 1 else 0.0
    log_q = math.log2(q) if q > 1 else 0.0
    h = lemma36_h(s, u, window, log_v, log_q)
    terms = [
        window * (math.log2(h) - math.log2(v)) if h < v else 0.0,
        math.log2(w) + window * log_v + log_q - u,
        lemma36_probability_log2(u, window, log_v, log_q),
    ]
    return math.log2(k + 1) + math.log2(m) + log2_sum_exp(terms)


def theorem31_success_log2(
    *,
    m: int,
    s: int,
    u: int,
    v: int,
    w: int,
    q: int,
    p: int | None = None,
) -> float:
    """The final success-probability bound of Lemma 3.2's proof:

    ``(w / p) · m · ((h/v)^p + v^p·q·2^{-u} + 2^{-(u-(p+2)log v-log q)})``

    An algorithm running fewer than ``w/p`` rounds succeeds with at most
    this probability; Theorem 3.1 needs it below 1/3.
    """
    window = p if p is not None else default_lookahead(w)
    rounds = max(1, math.floor(w / window))
    return claim39_bound_log2(
        k=rounds - 1, m=m, s=s, u=u, v=v, w=w, q=q, p=window
    )
