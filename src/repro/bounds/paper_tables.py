"""The paper's Tables 1-3, regenerated verbatim with live values.

The paper's only "tables" are parameter glossaries; reproducing them
means rendering the same rows with the constraints *evaluated* against a
concrete configuration, so every stated relationship (``u = n/3``,
``v = S/u``, ``q < 2^{n/4}``, ...) is checked rather than transcribed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.functions.params import LineParams
from repro.mpc.model import MPCParams

__all__ = ["PaperTable", "table1", "table2", "table3"]


@dataclass(frozen=True)
class PaperTable:
    """One regenerated table: rows of (symbol, meaning, value, check)."""

    number: int
    caption: str
    rows: tuple[tuple[str, str, str, str], ...]

    @property
    def all_checks_pass(self) -> bool:
        """Whether every constraint column reads ok/n-a."""
        return all(r[3] in ("ok", "-") for r in self.rows)

    def render(self) -> str:
        """ASCII rendering in the paper's (symbol, meaning) style."""
        from repro.analysis.tables import format_table

        return format_table(
            ("symbol", "meaning", "value", "constraint"),
            self.rows,
            title=f"Table {self.number}: {self.caption}",
        )


def table1(mpc: MPCParams, N: int) -> PaperTable:
    """Table 1: parameters of massively parallel computation."""
    if N <= 0:
        raise ValueError(f"input size must be positive, got {N}")
    return PaperTable(
        number=1,
        caption="Parameters of massively parallel computation",
        rows=(
            ("s", "local memory size for each machine", str(mpc.s_bits), "-"),
            ("m", "number of machines", str(mpc.m), "-"),
            ("N", "size of the input", str(N), "-"),
        ),
    )


def table2(*, n: int, S: int, T: int, q: int, c_exp: float = 4.0) -> PaperTable:
    """Table 2: parameters of Theorem 3.1, with the window checks live."""
    if min(n, S, T, q) <= 0:
        raise ValueError("parameters must be positive")
    cap = c_exp * n**0.25

    def check(ok: bool) -> str:
        return "ok" if ok else "VIOLATED"

    return PaperTable(
        number=2,
        caption="Parameters of Theorem 3.1",
        rows=(
            ("n", "size of input and output of the random oracle", str(n), "-"),
            (
                "S",
                "memory used by the RAM algorithm: n <= S < 2^O(n^(1/4))",
                str(S),
                check(S >= n and math.log2(S) < cap),
            ),
            (
                "T",
                "oracle queries of the RAM algorithm: S <= T < 2^O(n^(1/4))",
                str(T),
                check(T >= S and math.log2(T) < cap),
            ),
            (
                "q",
                "oracle queries per machine per round: q < 2^(n/4)",
                str(q),
                check(math.log2(q) < n / 4),
            ),
        ),
    )


def table3(params: LineParams, *, q: int | None = None) -> PaperTable:
    """Table 3: parameters of the ``Line`` function, derivations checked."""

    def check(ok: bool) -> str:
        return "ok" if ok else "VIOLATED"

    u_ok = params.u == params.n // 3
    rows = [
        (
            "u",
            "size of each x_i (u = n/3; large enough to defeat guessing)",
            str(params.u),
            check(u_ok) if u_ok else "ok (explicit u)",
        ),
        (
            "v",
            "number of x_i's in the input (v = S/u)",
            str(params.v),
            check(params.u * params.v == params.space_S),
        ),
        (
            "w",
            "iterations of the random oracle (w = T)",
            str(params.w),
            check(params.w == params.time_T),
        ),
        (
            "l_i",
            "ceil(log v) bits of the previous answer, selecting x_{l_i}",
            f"{params.ell_width} bits",
            check(2**params.ell_width >= params.v),
        ),
        (
            "r_i",
            "u bits of the previous answer, fed into the next query",
            f"{params.u} bits",
            "ok",
        ),
        (
            "z_i",
            "redundant output of the previous iteration",
            f"{params.z_width} bits",
            check(
                params.ell_width + params.u + params.z_width == params.n
            ),
        ),
    ]
    if q is not None:
        import math

        log_q = math.log2(q) if q > 1 else 0.0
        log_v = math.log2(params.v) if params.v > 1 else 0.0
        rows.append(
            (
                "u vs q,v",
                "compression savings require u > log q + log v",
                f"{params.u} vs {log_q + log_v:.1f}",
                check(params.u > log_q + log_v),
            )
        )
    return PaperTable(
        number=3,
        caption="Parameters of the Line^RO function",
        rows=tuple(rows),
    )
