"""Appendix A bound formulas (Lemmas A.2/A.3/A.7, Claim A.8, Theorem A.1)."""

from __future__ import annotations

import math

from repro.bounds.theorem31 import log2_sum_exp

__all__ = [
    "lemma_a2_h",
    "lemma_a2_round_bound",
    "lemma_a3_probability_log2",
    "lemma_a7_probability_log2",
    "claim_a8_bound_log2",
    "theorem_a1_success_log2",
]


def lemma_a2_h(s: int, u: int, log_q: float, log_v: float) -> float:
    """Lemma A.2's per-round progress cap ``h = s/(u - log q - log v) + 1``."""
    denom = u - log_q - log_v
    if denom <= 0:
        raise ValueError(
            f"u={u} violates the Appendix A assumption u >= log q + log v"
        )
    return s / denom + 1


def lemma_a2_round_bound(w: int, s: int, u: int, q: int, v: int) -> float:
    """Lemma A.2: ``R >= w / h = Omega(T·u/s)`` rounds for ``SimLine``."""
    if min(w, s, u, q, v) <= 0:
        raise ValueError("parameters must be positive")
    log_q = math.log2(q) if q > 1 else 0.0
    log_v = math.log2(v) if v > 1 else 0.0
    return w / lemma_a2_h(s, u, log_q, log_v)


def lemma_a3_probability_log2(
    alpha: int, s: int, u: int, q: int, v: int
) -> float:
    """Lemma A.3: ``log2 Pr[|Q cap C| >= alpha]
    <= -(alpha(u - log q - log v) - s - 1)``."""
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    log_q = math.log2(q) if q > 1 else 0.0
    log_v = math.log2(v) if v > 1 else 0.0
    denom = u - log_q - log_v
    if denom <= 0:
        raise ValueError("u too small for Lemma A.3")
    return -(alpha * denom - s - 1)


def lemma_a7_probability_log2(u: int) -> float:
    """Lemma A.7: guessing the next entry succeeds w.p. at most ``2^-u``."""
    if u <= 0:
        raise ValueError(f"u must be positive, got {u}")
    return -float(u)


def claim_a8_bound_log2(
    *, k: int, m: int, s: int, u: int, v: int, w: int, q: int
) -> float:
    """Claim A.8 in log2:
    ``(k+1)(m·2^{-(u-log q-log v)} + w·m·q·2^{-u})``."""
    if min(k + 1, m, s, u, v, w, q) <= 0:
        raise ValueError("parameters must be positive")
    log_q = math.log2(q) if q > 1 else 0.0
    log_v = math.log2(v) if v > 1 else 0.0
    denom = u - log_q - log_v
    if denom <= 0:
        raise ValueError("u too small for Claim A.8")
    terms = [
        math.log2(m) - denom,
        math.log2(w) + math.log2(m) + log_q - u,
    ]
    return math.log2(k + 1) + log2_sum_exp(terms)


def theorem_a1_success_log2(
    *, m: int, s: int, u: int, v: int, w: int, q: int
) -> float:
    """Theorem A.1's final success bound for runs shorter than ``w/h``
    rounds: ``(w/h)(m·2^{-(u-log q-log v)} + w·m·q·2^{-u})``."""
    rounds = max(1, math.floor(lemma_a2_round_bound(w, s, u, q, v)))
    return claim_a8_bound_log2(k=rounds - 1, m=m, s=s, u=u, v=v, w=w, q=q)
