"""Prior-work bounds the paper positions itself against (Section 1/1.2).

Roughgarden, Vassilvitskii and Wang [64] proved the unconditional
``floor(log_s N)`` round lower bound -- constant when ``s`` is
polynomial in ``N``, which is exactly the gap the paper's conditional
``~Omega(T)`` bound closes.
"""

from __future__ import annotations

import math

from repro.bounds.theorem31 import lemma32_round_bound

__all__ = ["rvw_round_lower_bound", "compare_with_rvw"]


def rvw_round_lower_bound(N: int, s: int) -> int:
    """The RVW bound ``floor(log_s N)`` (their Theorem, via s-shuffles)."""
    if N <= 1 or s <= 1:
        raise ValueError(f"need N > 1 and s > 1, got N={N}, s={s}")
    return math.floor(math.log(N, s))


def compare_with_rvw(*, N: int, s: int, T: int) -> dict[str, float]:
    """Both lower bounds at one configuration.

    ``N`` is the input size (= ``S`` for ``Line``), ``s`` the local
    memory, ``T`` the chain length.  The ratio shows how much the
    random-oracle bound strengthens the unconditional one once ``s`` is
    polynomial in ``N``.
    """
    rvw = rvw_round_lower_bound(N, s)
    ro = lemma32_round_bound(T)
    return {
        "rvw_rounds": float(rvw),
        "ro_rounds": ro,
        "improvement_factor": ro / max(rvw, 1),
    }
