"""Numeric bound calculators.

Every quantitative statement in the paper -- Lemma 3.2/3.3/3.6, Claim
3.9, Theorem 3.1, and the Appendix A chain (Lemma A.2/A.3/A.7, Claim
A.8, Theorem A.1) -- is a closed-form expression in the parameters.
This package evaluates them exactly (in log2 where the values underflow
doubles), checks the parameter windows, and computes the
"best-possible hardness" gap of Theorem 1.1.
"""

from repro.bounds.appendix_a import (
    claim_a8_bound_log2,
    lemma_a2_h,
    lemma_a2_round_bound,
    lemma_a3_probability_log2,
    lemma_a7_probability_log2,
    theorem_a1_success_log2,
)
from repro.bounds.baselines import compare_with_rvw, rvw_round_lower_bound
from repro.bounds.regimes import (
    best_possible_gap,
    hardness_threshold,
    polylog_instantiation,
    theorem31_window,
)
from repro.bounds.theorem31 import (
    claim39_bound_log2,
    default_lookahead,
    lemma32_round_bound,
    lemma36_h,
    lemma36_probability_log2,
    required_u_lemma36,
    theorem31_success_log2,
)

__all__ = [
    "best_possible_gap",
    "claim39_bound_log2",
    "claim_a8_bound_log2",
    "compare_with_rvw",
    "default_lookahead",
    "hardness_threshold",
    "lemma32_round_bound",
    "lemma36_h",
    "lemma36_probability_log2",
    "lemma_a2_h",
    "lemma_a2_round_bound",
    "lemma_a3_probability_log2",
    "lemma_a7_probability_log2",
    "polylog_instantiation",
    "required_u_lemma36",
    "rvw_round_lower_bound",
    "theorem31_success_log2",
    "theorem31_window",
    "theorem_a1_success_log2",
]
