"""E-THROUGHPUT -- the flip side of the theorem: parallelism buys
throughput, never latency.

Theorem 3.1 bounds the *rounds of one evaluation*; nothing stops a
cluster from evaluating K independent ``Line`` instances concurrently.
The multichain protocol does exactly that -- K domain-separated chains,
all frontiers in flight at once -- and the measured rounds stay nearly
flat in K while total oracle work grows as ``K·w``.  Together with
E-LINE this completes the reading of "nearly best-possible hardness":
the memory-starved cluster matches the RAM on *latency* (both ~T per
instance) and beats it K-fold on *throughput*.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult, TableData, register
from repro.functions.inputs import sample_input
from repro.functions.params import LineParams
from repro.oracle import LazyRandomOracle
from repro.protocols.multichain import (
    build_multichain_protocol,
    evaluate_instance,
    run_multichain,
)

__all__ = ["run"]


@register("E-THROUGHPUT")
def run(scale: str) -> ExperimentResult:
    n, u, v, w_each = 40, 8, 8, 48
    trials = 3 if scale == "quick" else 8
    ks = [1, 2, 4] if scale == "quick" else [1, 2, 4, 8]

    rows = []
    means = {}
    all_correct = True
    for instances in ks:
        rounds = []
        work = []
        for t in range(trials):
            seed = instances * 100 + t
            rng = np.random.default_rng(seed)
            piece_params = LineParams(n=n, u=u, v=v, w=instances * w_each)
            inputs = [sample_input(piece_params, rng) for _ in range(instances)]
            setup = build_multichain_protocol(
                n=n, u=u, v=v, w_each=w_each, instances=instances,
                inputs=inputs, num_machines=4, pieces_per_machine=2,
            )
            oracle = LazyRandomOracle(n, n, seed=seed)
            result = run_multichain(setup, oracle)
            combined = result.outputs.get(0)
            if combined is None:
                all_correct = False
                continue
            for k in range(instances):
                expected = evaluate_instance(setup.layout, inputs[k], k, oracle)
                all_correct = all_correct and (
                    combined[k * n : (k + 1) * n] == expected
                )
            rounds.append(result.rounds_to_output)
            work.append(result.stats.total_oracle_queries)
        means[instances] = float(np.mean(rounds))
        rows.append(
            (instances, f"{np.mean(rounds):.1f}",
             f"{np.mean(rounds) / means[1]:.2f}x",
             int(np.mean(work)),
             f"{np.mean(work) / (means[instances] * 4):.2f}")
        )

    flat = means[ks[-1]] < (1.0 + 0.45 * np.log2(ks[-1]) + 0.35) * means[1]
    table = TableData(
        title=(
            f"K concurrent Line instances on 4 machines "
            f"(w={w_each} each, f=1/4 per instance)"
        ),
        headers=("K", "rounds", "vs K=1", "oracle work", "work/(rounds*m)"),
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id="E-THROUGHPUT",
        title="Parallelism buys throughput, not latency",
        paper_claim=(
            "the Omega~(T) bound is per evaluation; it does not preclude "
            "pipelining independent evaluations (implicit in Theorem 1.1's "
            "'best-possible' framing -- the cluster can always match RAM "
            "throughput K-fold)"
        ),
        tables=[table],
        summary=(
            f"rounds grow only {means[ks[-1]] / means[1]:.2f}x from K=1 to "
            f"K={ks[-1]} (max-of-K, not sum) while work grows {ks[-1]}x -- "
            f"machine utilization rises with K"
        ),
        passed=all_correct and flat,
    )
