"""E-ENC-L -- Claim 3.7 / Definitions 3.4-3.5: the Line encoder and B-sets.

Two measurements:

1. the full encoder (patched-oracle enumeration) round-trips and stays
   within its length accounting;
2. ``|B_i^(k)|`` tracks the machine's stored-piece budget ``~s/u`` --
   the quantity Lemma 3.6 bounds by ``h``.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.bits import Bits
from repro.compression import LineCompressor, MPCRoundAlgorithm, compute_bset
from repro.experiments.base import ExperimentResult, TableData, register
from repro.functions import LineParams, sample_input, trace_line
from repro.oracle import TableOracle
from repro.parallel import map_trials, seed_sequence, trial_seed
from repro.protocols import build_chain_protocol

__all__ = ["run", "encode_trial"]


def _algorithm(params: LineParams, num_machines: int, ppm: int) -> MPCRoundAlgorithm:
    def build(x):
        setup = build_chain_protocol(
            params, list(x), num_machines=num_machines, pieces_per_machine=ppm
        )
        return setup.mpc_params, setup.machines, setup.initial_memories

    dummy = [Bits.zeros(params.u)] * params.v
    return MPCRoundAlgorithm(build, machine_index=0, round_k=0, dummy_input=dummy)


def encode_trial(params: LineParams, seed: int) -> tuple[int, int, int, bool, bool]:
    """One seeded encoder round-trip: (alpha, blocks, bits, roundtrip, bounded).

    The compressor is rebuilt inside the trial: ``MPCRoundAlgorithm``
    closes over the protocol builder, so shipping the *recipe* to a
    worker is cheap where shipping the object would not pickle.
    """
    rng = np.random.default_rng(seed)
    compressor = LineCompressor(
        params, _algorithm(params, 2, 2), s_bits=64, q=16, p=2
    )
    oracle = TableOracle.sample(params.n, params.n, rng)
    x = sample_input(params, rng)
    enc = compressor.encode(oracle, x)
    roundtrip = compressor.decode(enc.payload) == (oracle, x)
    bounded = len(enc.payload) <= compressor.length_bound(
        enc.alpha, len(enc.blocks)
    )
    return (enc.alpha, len(enc.blocks), len(enc.payload), roundtrip, bounded)


@register("E-ENC-L")
def run(scale: str) -> ExperimentResult:
    trials = 4 if scale == "quick" else 15
    params = LineParams(n=12, u=4, v=4, w=8)

    enc_rows = []
    all_ok = True
    outcomes = map_trials(
        partial(encode_trial, params),
        seed_sequence("E-ENC-L", "encode", trials),
    )
    for t, (alpha, blocks, enc_bits, roundtrip, bounded) in enumerate(outcomes):
        all_ok = all_ok and roundtrip and bounded
        enc_rows.append(
            (t, alpha, blocks, enc_bits,
             "yes" if roundtrip else "NO", "yes" if bounded else "NO")
        )

    # B-set size vs per-machine storage.
    bset_rows = []
    bset_ok = True
    for ppm in (1, 2, 4):
        algo = _algorithm(params, 4 if ppm < 4 else 1, ppm)
        rng = np.random.default_rng(trial_seed("E-ENC-L", "bset", ppm))
        oracle = TableOracle.sample(params.n, params.n, rng)
        x = sample_input(params, rng)
        trace = trace_line(params, x, oracle)
        p1 = algo.phase1(oracle, x)
        bset = compute_bset(
            params, algo.phase2, oracle, p1.memory, x, trace.nodes[0], p=2
        )
        bset_ok = bset_ok and len(bset) <= ppm
        bset_rows.append((ppm, len(bset), "yes" if len(bset) <= ppm else "NO"))

    return ExperimentResult(
        experiment_id="E-ENC-L",
        title="Line compression scheme and B-sets (Claim 3.7, Defs 3.4-3.5)",
        paper_claim=(
            "enumerating v^p patched oracles RO^(k)_{a_1..a_p} extracts "
            "B_i^(k); |B| <= h ~ s/u w.h.p., and the encoding round-trips "
            "within its length bound"
        ),
        tables=[
            TableData(
                title=f"encoder over {trials} fresh samples (p=2, v^p=16 replays each)",
                headers=("trial", "alpha", "blocks", "|Enc| bits", "roundtrip", "bound"),
                rows=tuple(enc_rows),
            ),
            TableData(
                title="|B_i^(0)| vs pieces stored per machine",
                headers=("pieces/machine", "|B|", "|B| <= stored"),
                rows=tuple(bset_rows),
            ),
        ],
        summary=(
            "all encodings round-trip bit-exactly within bound; |B| never "
            "exceeds the machine's stored-piece budget (Lemma 3.6's h-shape)"
        ),
        passed=all_ok and bset_ok,
    )
