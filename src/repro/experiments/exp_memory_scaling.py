"""E-MEM -- Theorem 1.1 remark: total memory ``m·s >> S`` does not help.

"The hardness holds even when the total memory size ms >> S as long as
the local memory size is bounded."  The chain protocol is swept over
``m`` with the per-machine window fixed: measured rounds must stay flat
even as aggregate memory grows far beyond ``S``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import fit_power_law, mean_ci
from repro.experiments.base import ExperimentResult, TableData, register
from repro.functions import LineParams, sample_input
from repro.oracle import LazyRandomOracle
from repro.protocols import build_chain_protocol, run_chain

__all__ = ["run"]


@register("E-MEM")
def run(scale: str) -> ExperimentResult:
    params = LineParams(n=36, u=8, v=16, w=128)
    ms = [4, 8, 16, 32] if scale == "quick" else [4, 8, 16, 32, 64, 128]
    trials = 3 if scale == "quick" else 8
    ppm = 4  # fixed per-machine window: f = 1/4 regardless of m

    rows = []
    means = []
    for m in ms:
        rounds = []
        for t in range(trials):
            seed = m * 100 + t
            oracle = LazyRandomOracle(params.n, params.n, seed=seed)
            x = sample_input(params, np.random.default_rng(seed))
            setup = build_chain_protocol(
                params, x, num_machines=m, pieces_per_machine=ppm
            )
            rounds.append(run_chain(setup, oracle).rounds_to_output)
        mean, half = mean_ci(rounds)
        means.append(mean)
        total_over_S = m * setup.mpc_params.s_bits / params.space_S
        rows.append(
            (m, f"{total_over_S:.1f}x", f"{mean:.1f}", f"+-{half:.1f}")
        )

    fit = fit_power_law(ms, means)
    passed = abs(fit.exponent) < 0.15  # flat in m
    table = TableData(
        title=f"rounds vs machine count at fixed s (f = {ppm}/{params.v})",
        headers=("m", "m*s / S", "rounds", "CI"),
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id="E-MEM",
        title="Total memory does not rescue parallelism",
        paper_claim=(
            "hardness holds even when ms >> S as long as local memory s is "
            "bounded (Theorem 1.1 discussion)"
        ),
        tables=[table],
        summary=(
            f"rounds ~ m^{fit.exponent:.3f}: flat within noise while "
            f"aggregate memory grows to {rows[-1][1]} of S"
        ),
        passed=passed,
    )
