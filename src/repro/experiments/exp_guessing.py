"""E-GUESS -- Lemma 3.3 / Lemma A.7: skipping ahead costs ``2^-u``.

The skip-ahead adversary is handed everything except the answer to
chain entry ``j``; the measured frequency of correctly producing entry
``j+1`` must track ``2^-u`` and halve with each extra bit of ``u``.
"""

from __future__ import annotations

from repro.analysis import binomial_ci, fit_exponential_decay
from repro.experiments.base import ExperimentResult, TableData, register
from repro.functions import LineParams, SimLineParams
from repro.obs import EstimateStats, attach_estimates
from repro.protocols import (
    estimate_line_skip_probability,
    estimate_simline_skip_probability,
)

__all__ = ["run"]


@register("E-GUESS")
def run(scale: str) -> ExperimentResult:
    trials = 1500 if scale == "quick" else 8000
    us = [2, 3, 4] if scale == "quick" else [2, 3, 4, 5, 6]

    rows = []
    rates = []
    ok = True
    estimates = {}
    thresholds = {}
    for u in us:
        params = LineParams(n=4 + 3 * u, u=u, v=4, w=6)
        report = estimate_line_skip_probability(
            params, trials=trials, skip_at=2, strategy="uniform", seed=u
        )
        rate, low, high = binomial_ci(report.successes, report.trials)
        name = f"guess.line.u={u}.uniform"
        estimates[name] = EstimateStats(
            name, "binomial", report.trials, rate, low, high
        )
        thresholds[name] = report.bound
        rates.append(max(rate, 1e-9))
        within = low <= report.bound <= high or abs(rate - report.bound) < 0.02
        ok = ok and within
        rows.append(
            ("Line", u, f"{rate:.4f}", f"[{low:.4f},{high:.4f}]",
             f"{report.bound:.4f}", "yes" if within else "NO")
        )

    sim_params = SimLineParams(n=9, u=3, v=4, w=6)
    sim = estimate_simline_skip_probability(
        sim_params, trials=trials, skip_at=2, strategy="uniform", seed=42
    )
    s_rate, s_low, s_high = binomial_ci(sim.successes, sim.trials)
    sim_name = f"guess.simline.u={sim_params.u}.uniform"
    estimates[sim_name] = EstimateStats(
        sim_name, "binomial", sim.trials, s_rate, s_low, s_high
    )
    thresholds[sim_name] = sim.bound
    sim_ok = s_low <= sim.bound <= s_high or abs(s_rate - sim.bound) < 0.02
    rows.append(
        ("SimLine", 3, f"{s_rate:.4f}", f"[{s_low:.4f},{s_high:.4f}]",
         f"{sim.bound:.4f}", "yes" if sim_ok else "NO")
    )

    decay = fit_exponential_decay(us, rates)
    decay_ok = 0.4 <= decay.rate <= 0.62  # ideal 0.5 per extra bit
    table = TableData(
        title="skip-ahead success frequency vs the 2^-u bound",
        headers=("function", "u", "rate", "Wilson 95% CI", "2^-u", "bound met"),
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id="E-GUESS",
        title="Guessing the next entry succeeds w.p. 2^-u",
        paper_claim=(
            "Pr[query entry j+1 without entry j] <= 2^-u (Lemma 3.3 per "
            "guess; Lemma A.7 identically for SimLine)"
        ),
        tables=[table],
        summary=(
            f"measured rate halves per extra bit of u: decay rate "
            f"{decay.rate:.3f}/bit (ideal 0.5), R^2={decay.r_squared:.3f}"
        ),
        passed=ok and sim_ok and decay_ok,
        # `threshold` here is the lemma's 2^-u bound; `resolved=True`
        # means the measured rate is statistically distinguishable from
        # it (a potential bound violation unless within slack).
        metrics=attach_estimates({}, estimates, thresholds),
    )
