"""E-ABL-PLACE -- ablation: input placement does not change the shape.

Definition 2.1 lets the input be split *arbitrarily*; the lower bound
is placement-independent.  The chain protocol is run under three
placements of the pieces (contiguous windows, round-robin-equivalent
rotations, and windows rotated to start at the chain's first piece --
the friendliest option) and measured rounds must stay linear in ``T``
with comparable constants.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import mean_ci
from repro.experiments.base import ExperimentResult, TableData, register
from repro.functions import LineParams, sample_input
from repro.oracle import LazyRandomOracle
from repro.protocols import build_chain_protocol, run_chain

__all__ = ["run"]


@register("E-ABL-PLACE")
def run(scale: str) -> ExperimentResult:
    params = LineParams(n=36, u=8, v=8, w=96)
    trials = 4 if scale == "quick" else 12
    num_machines = 4
    ppm = 2

    def measure(rotate: int) -> list[float]:
        """Rotate the piece labelling so windows start at `rotate`."""
        rounds = []
        for t in range(trials):
            seed = rotate * 100 + t
            oracle = LazyRandomOracle(params.n, params.n, seed=seed)
            x = sample_input(params, np.random.default_rng(seed))
            rotated = x[rotate:] + x[:rotate]
            setup = build_chain_protocol(
                params, rotated, num_machines=num_machines, pieces_per_machine=ppm
            )
            rounds.append(run_chain(setup, oracle).rounds_to_output)
        return rounds

    rows = []
    means = []
    for rotate, label in ((0, "windows at 0 (chain-start friendly)"),
                          (3, "windows rotated by 3"),
                          (5, "windows rotated by 5")):
        mean, half = mean_ci(measure(rotate))
        means.append(mean)
        rows.append((label, f"{mean:.1f}", f"+-{half:.1f}", f"{mean / params.w:.3f}"))

    spread = max(means) / min(means)
    passed = spread < 1.4 and min(means) > 0.4 * params.w
    table = TableData(
        title=f"rounds under different placements (w={params.w}, f=1/4)",
        headers=("placement", "rounds", "CI", "rounds/T"),
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id="E-ABL-PLACE",
        title="Placement ablation: arbitrary distribution doesn't help",
        paper_claim=(
            "the input is 'arbitrarily split and distributed'; the bound "
            "holds for every placement (Definition 2.1 + Lemma 3.2)"
        ),
        tables=[table],
        summary=(
            f"round means across placements differ by only {spread:.2f}x "
            f"and all stay ~(1-f)T -- random pointers defeat placement"
        ),
        passed=passed,
    )
