"""E-BOUND -- Claim 3.9 / A.8 / Theorem 3.1: the assembled bounds.

Numeric sweep of the failure-probability formulas across the memory
ratio ``s/S``: inside the hardness regime (``s <= S/c``) the success
probability of any algorithm stopping before ``w/log^2 w`` rounds must
be far below 1/3; as ``s`` approaches ``S`` the bound collapses to
vacuity, matching the trivial 1-round protocol at ``s >= S``.
"""

from __future__ import annotations

import math

from repro.bounds import (
    claim_a8_bound_log2,
    lemma32_round_bound,
    lemma_a2_round_bound,
    theorem31_success_log2,
)
from repro.experiments.base import ExperimentResult, TableData, register

__all__ = ["run"]


@register("E-BOUND")
def run(scale: str) -> ExperimentResult:
    # A paper-scale configuration.
    u, v, w, m, q, p = 4096, 2**12, 2**16, 2**10, 2**16, 16
    S = u * v
    ratios = [1 / 64, 1 / 16, 1 / 4, 1 / 2, 1.0]

    rows = []
    hard_ok = True
    vacuous_ok = True
    third = math.log2(1 / 3)
    for ratio in ratios:
        s = int(S * ratio)
        line_bound = theorem31_success_log2(m=m, s=s, u=u, v=v, w=w, q=q, p=p)
        sim_bound = claim_a8_bound_log2(k=0, m=m, s=s, u=u, v=v, w=w, q=q)
        hard = line_bound < third
        if ratio <= 1 / 4:
            hard_ok = hard_ok and hard
        if ratio >= 1.0:
            vacuous_ok = vacuous_ok and not hard
        rows.append(
            (f"{ratio:.4g}", s,
             f"2^{line_bound:.0f}" if line_bound < 0 else ">= 1",
             f"2^{sim_bound:.0f}" if sim_bound < 0 else ">= 1",
             "hard" if hard else "no bound")
        )

    round_rows = [
        ("Line (Lemma 3.2)", f"{lemma32_round_bound(w, p=p):.0f}",
         f"w/p = {w}/{p}"),
        ("SimLine (Lemma A.2)",
         f"{lemma_a2_round_bound(w, int(S / 16), u, q, v):.0f}",
         "w/h at s=S/16"),
    ]
    return ExperimentResult(
        experiment_id="E-BOUND",
        title="Assembled failure-probability bounds (Claim 3.9 / A.8)",
        paper_claim=(
            "for s <= S/c the probability any (w/log^2 w)-round algorithm "
            "succeeds is below 1/3; at s ~ S the bound vanishes"
        ),
        tables=[
            TableData(
                title=f"success-probability bounds at u={u}, v=2^12, w=2^16, m=2^10, q=2^16",
                headers=("s/S", "s bits", "Line bound", "SimLine 1-round bound", "verdict"),
                rows=tuple(rows),
            ),
            TableData(
                title="round lower bounds",
                headers=("bound", "rounds", "formula"),
                rows=tuple(round_rows),
            ),
        ],
        summary=(
            "hardness verdicts flip exactly where the theorem says: tiny "
            "success probability for s/S <= 1/4, vacuous at s = S"
        ),
        passed=hard_ok and vacuous_ok,
    )
