"""T1 -- Tables 1/2/3: the parameter derivations are mutually satisfiable.

The paper's three tables pin down the model parameters (Table 1), the
theorem window (Table 2), and the ``Line`` derivation ``u = n/3``,
``v = S/u``, ``w = T`` (Table 3).  This experiment regenerates the
derived values across a sweep of ``n`` and verifies every side condition
of Theorem 3.1 plus the Lemma 3.6 assumption
``u >= (p+2)·log v + log q`` at the paper's look-ahead ``p = log^2 w``.
"""

from __future__ import annotations

import math

from repro.bounds import default_lookahead, required_u_lemma36, theorem31_window
from repro.bounds.paper_tables import table1, table2, table3
from repro.experiments.base import ExperimentResult, TableData, register
from repro.functions import LineParams
from repro.mpc import MPCParams

__all__ = ["run"]


@register("T1")
def run(scale: str) -> ExperimentResult:
    ns = [256, 1024, 4096] if scale == "quick" else [64, 256, 1024, 4096, 16384]
    rows = []
    all_ok = True
    for n in ns:
        # A representative point inside the Theorem 3.1 window.
        S = n * 8
        T = S * 16
        m = max(2, int(2 ** (n**0.25)))
        m = min(m, 2**30)
        q = min(2 ** (n // 8), 2**30)
        params = LineParams.from_paper(n=n, S=S, T=T)
        window = theorem31_window(n=n, S=S, T=T, m=m, q=q)
        p = default_lookahead(params.w)
        log_v = math.log2(params.v) if params.v > 1 else 0.0
        u_needed = required_u_lemma36(p, log_v, math.log2(q))
        lemma36_ok = params.u >= u_needed
        ok = all(window.values())
        all_ok = all_ok and ok
        rows.append(
            (
                n,
                params.u,
                params.v,
                params.w,
                params.space_S,
                "yes" if ok else "NO",
                f"{u_needed:.0f}",
                "yes" if lemma36_ok else "no (needs larger n)",
            )
        )
    table = TableData(
        title="Table 3 derivation across n (u = n/3, v = S/u, w = T)",
        headers=("n", "u", "v", "w", "S=uv", "window ok", "u needed (L3.6)", "u >= needed"),
        rows=tuple(rows),
    )

    # The literal paper tables, regenerated at one representative point.
    ref_n = 4096
    ref_params = LineParams.from_paper(n=ref_n, S=ref_n * 8, T=ref_n * 128)
    literal = []
    for paper_table in (
        table1(MPCParams(m=1024, s_bits=ref_params.space_S // 16), N=ref_params.space_S),
        table2(n=ref_n, S=ref_n * 8, T=ref_n * 128, q=2**20),
        table3(ref_params, q=2**20),
    ):
        all_ok = all_ok and paper_table.all_checks_pass
        literal.append(
            TableData(
                title=f"Table {paper_table.number}: {paper_table.caption} "
                f"(n={ref_n})",
                headers=("symbol", "meaning", "value", "constraint"),
                rows=paper_table.rows,
            )
        )

    return ExperimentResult(
        experiment_id="T1",
        title="Parameter tables are satisfiable",
        paper_claim=(
            "Tables 1-3: for n <= S < 2^O(n^1/4), S <= T < 2^O(n^1/4) the "
            "derivation u=n/3, v=S/u, w=T meets every side condition"
        ),
        tables=[table, *literal],
        summary=(
            "every swept n admits the derivation inside the theorem window; "
            "the Lemma 3.6 slack u - (p+2)log v - log q turns positive once "
            "n is large (the theorem's 'sufficiently large n')"
        ),
        passed=all_ok,
    )
