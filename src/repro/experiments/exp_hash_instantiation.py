"""E-HASH -- Theorem 1.1's instantiation step: ``f^RO -> f^h``.

The random-oracle methodology replaces the ideal oracle by a concrete
hash.  We instantiate ``Line`` with from-scratch SHA-256 and the toy
Merkle-Damgard hash and verify (a) the construction is oblivious to the
swap -- same chain semantics, same round counts for the chain protocol
-- and (b) RAM cost follows ``O(T·t_h)``: hash work grows linearly in
``T`` at ``t_h`` per node.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import fit_power_law
from repro.experiments.base import ExperimentResult, TableData, register
from repro.functions import LineParams, evaluate_line, sample_input
from repro.hashes import HashOracle, sha3_256, sha256, toy_hash
from repro.oracle import LazyRandomOracle
from repro.protocols import build_chain_protocol, run_chain

__all__ = ["run"]


@register("E-HASH")
def run(scale: str) -> ExperimentResult:
    params = LineParams(n=36, u=8, v=8, w=48 if scale == "quick" else 192)
    rng = np.random.default_rng(55)
    x = sample_input(params, rng)

    oracles = {
        "ideal (lazy RO)": LazyRandomOracle(params.n, params.n, seed=1),
        "SHA3-256 (the paper's pick)": HashOracle(
            sha3_256, params.n, params.n, label=b"line"
        ),
        "SHA-256": HashOracle(sha256, params.n, params.n, label=b"line"),
        "toy MD": HashOracle(
            lambda m: toy_hash(m, digest_size=8), params.n, params.n, label=b"line"
        ),
    }
    rows = []
    rounds_seen = []
    for name, oracle in oracles.items():
        out = evaluate_line(params, x, oracle)
        setup = build_chain_protocol(params, x, num_machines=4)
        result = run_chain(setup, oracle)
        correct = out in result.outputs.values()
        rounds_seen.append(result.rounds_to_output)
        rows.append(
            (name, f"{out.value % 2**16:04x}..", result.rounds_to_output,
             "yes" if correct else "NO")
        )

    # t_h accounting: hash work linear in T.
    ws = [16, 32, 64] if scale == "quick" else [16, 32, 64, 128, 256]
    work_rows = []
    works = []
    for w in ws:
        p = LineParams(n=36, u=8, v=8, w=w)
        h = HashOracle(sha256, p.n, p.n, label=b"work")
        evaluate_line(p, sample_input(p, np.random.default_rng(w)), h)
        works.append(h.bytes_hashed)
        work_rows.append((w, h.hash_calls, h.bytes_hashed))
    fit = fit_power_law(ws, works)

    # Rounds must be in the same ballpark for all instantiations (the
    # protocol cannot tell the oracles apart).
    spread_ok = max(rounds_seen) <= 1.6 * min(rounds_seen)
    passed = all(r[3] == "yes" for r in rows) and 0.95 <= fit.exponent <= 1.05 and spread_ok
    return ExperimentResult(
        experiment_id="E-HASH",
        title="Concrete-hash instantiation f^h (random-oracle methodology)",
        paper_claim=(
            "replacing RO by a cryptographic hash h yields f^h computable "
            "in O(T·t_h) RAM time with the same hardness under the RO "
            "methodology (Theorem 1.1)"
        ),
        tables=[
            TableData(
                title="instantiations: chain output and protocol rounds",
                headers=("oracle", "output tag", "rounds", "protocol correct"),
                rows=tuple(rows),
            ),
            TableData(
                title="hash work vs T (SHA-256 instantiation)",
                headers=("T=w", "hash calls", "bytes hashed"),
                rows=tuple(work_rows),
            ),
        ],
        summary=(
            f"identical construction runs unchanged under all three oracles; "
            f"hash work ~ T^{fit.exponent:.3f} (R^2={fit.r_squared:.4f}) -- "
            f"the O(T·t_h) cost"
        ),
        passed=passed,
    )
