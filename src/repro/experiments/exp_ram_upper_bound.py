"""E-RAM -- Theorem 3.1 upper bound: ``O(T·n)`` time, ``O(S)`` space.

The word-RAM program for ``Line`` is executed across a ``T`` sweep and
an ``S`` sweep; measured time must scale linearly in ``T`` (power-law
exponent ~1 with the per-step constant ~``n``) and peak memory linearly
in ``S`` (~``v`` words of ``~u`` bits).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import fit_power_law
from repro.experiments.base import ExperimentResult, TableData, register
from repro.functions import LineParams, sample_input
from repro.oracle import LazyRandomOracle
from repro.ram import run_line_on_ram

__all__ = ["run"]


@register("E-RAM")
def run(scale: str) -> ExperimentResult:
    ws = [32, 64, 128, 256] if scale == "quick" else [32, 64, 128, 256, 512, 1024]
    rng = np.random.default_rng(11)

    time_rows = []
    times = []
    for w in ws:
        params = LineParams(n=36, u=8, v=8, w=w)
        oracle = LazyRandomOracle(params.n, params.n, seed=w)
        x = sample_input(params, rng)
        _, result = run_line_on_ram(params, x, oracle)
        times.append(result.stats.time)
        time_rows.append(
            (w, result.stats.time, f"{result.stats.time / (w * params.n):.3f}",
             result.stats.oracle_queries)
        )
    time_fit = fit_power_law(ws, times)

    vs = [4, 8, 16, 32] if scale == "quick" else [4, 8, 16, 32, 64, 128]
    space_rows = []
    overheads = []
    for v in vs:
        params = LineParams(n=36, u=8, v=v, w=32)
        oracle = LazyRandomOracle(params.n, params.n, seed=v)
        x = sample_input(params, rng)
        _, result = run_line_on_ram(params, x, oracle)
        peak = result.stats.peak_memory_words
        overheads.append(peak - v)
        space_rows.append((params.space_S, v, peak, peak - v))
    # Space is affine in S: exactly v words of input plus a fixed
    # scratch region (oracle-gate I/O), independent of v.
    space_ok = len(set(overheads)) == 1 and overheads[0] <= 12

    passed = (
        0.9 <= time_fit.exponent <= 1.1
        and space_ok
        # time/(T*n) is a constant ~1.4: n per oracle gate plus ~15
        # loop instructions per node.
        and all(1.0 <= float(r[2]) <= 2.0 for r in time_rows)
        and max(float(r[2]) for r in time_rows)
        - min(float(r[2]) for r in time_rows)
        < 0.05
    )
    return ExperimentResult(
        experiment_id="E-RAM",
        title="RAM upper bound: O(T*n) time, O(S) space",
        paper_claim=(
            "Line^RO is computable in time O(T*n) using memory O(S) by a RAM "
            "algorithm with oracle access (Theorem 3.1, first half)"
        ),
        tables=[
            TableData(
                title="time sweep (n=36, S fixed): measured word-RAM time",
                headers=("T=w", "time", "time/(T*n)", "oracle queries"),
                rows=tuple(time_rows),
            ),
            TableData(
                title="space sweep (T fixed): peak memory words",
                headers=("S bits", "v", "peak words", "overhead"),
                rows=tuple(space_rows),
            ),
        ],
        summary=(
            f"time ~ T^{time_fit.exponent:.3f} (R^2={time_fit.r_squared:.4f}) with "
            f"constant ~n per node; space = v + {overheads[0]} words exactly "
            f"(input plus fixed oracle-gate scratch) = O(S) bits"
        ),
        passed=passed,
    )
