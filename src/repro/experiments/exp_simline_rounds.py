"""E-SIMLINE -- Theorem A.1 / Lemma A.2: ``SimLine`` takes ``Theta(T·u/s)``.

The pipeline protocol is swept in both axes: rounds must be ~linear in
``T`` and ~inverse in the window size ``b = s/u``.  Together with
E-LINE this is the pointer ablation: the *same* chain with a
deterministic pointer drops from ``~T`` to ``~T·u/s`` rounds.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import fit_power_law
from repro.experiments.base import ExperimentResult, TableData, register
from repro.functions import SimLineParams, evaluate_simline, sample_input
from repro.oracle import LazyRandomOracle
from repro.protocols import build_simline_pipeline, run_pipeline

__all__ = ["run", "measure_pipeline_rounds"]


def measure_pipeline_rounds(
    *, w: int, pieces_per_machine: int, num_machines: int = 4, v: int = 16, seed: int = 0
) -> int:
    """Rounds-to-output of one pipeline run (deterministic up to RO)."""
    params = SimLineParams(n=24, u=8, v=v, w=w)
    oracle = LazyRandomOracle(params.n, params.n, seed=seed)
    x = sample_input(params, np.random.default_rng(seed))
    setup = build_simline_pipeline(
        params, x, num_machines=num_machines, pieces_per_machine=pieces_per_machine
    )
    result = run_pipeline(setup, oracle)
    assert evaluate_simline(params, x, oracle) in result.outputs.values()
    return result.rounds_to_output


@register("E-SIMLINE")
def run(scale: str) -> ExperimentResult:
    ws = [64, 128, 256] if scale == "quick" else [64, 128, 256, 512, 1024]
    blocks = [2, 4, 8]  # strictly below v=16: partial storage per machine

    t_rows = []
    t_means = []
    for w in ws:
        rounds = measure_pipeline_rounds(w=w, pieces_per_machine=4, seed=w)
        t_means.append(rounds)
        t_rows.append((w, 4, rounds, f"{rounds / (w / 4):.2f}"))
    t_fit = fit_power_law(ws, t_means)

    b_rows = []
    b_means = []
    for b in blocks:
        # Enough machines to cover all v pieces at window size b.
        rounds = measure_pipeline_rounds(
            w=256, pieces_per_machine=b, num_machines=16 // b, seed=b
        )
        b_means.append(rounds)
        b_rows.append((256, b, rounds, f"{rounds / (256 / b):.2f}"))
    b_fit = fit_power_law(blocks, b_means)

    passed = 0.9 <= t_fit.exponent <= 1.1 and -1.2 <= b_fit.exponent <= -0.8
    return ExperimentResult(
        experiment_id="E-SIMLINE",
        title="SimLine round complexity is Theta(T*u/s)",
        paper_claim=(
            "SimLine needs Omega(T/ (s/(u - log q - log v) + 1)) ~ T*u/s "
            "rounds (Lemma A.2) and the pipeline protocol matches it"
        ),
        tables=[
            TableData(
                title="rounds vs T at window b=4 (expect ~T/b)",
                headers=("T=w", "b", "rounds", "rounds/(T/b)"),
                rows=tuple(t_rows),
            ),
            TableData(
                title="rounds vs window b at T=256 (expect ~T/b)",
                headers=("T=w", "b", "rounds", "rounds/(T/b)"),
                rows=tuple(b_rows),
            ),
        ],
        summary=(
            f"rounds ~ T^{t_fit.exponent:.2f} and ~ b^{b_fit.exponent:.2f} "
            f"(paper: exponents +1 and -1)"
        ),
        passed=passed,
    )
