"""E-PROGRESS -- Lemma A.2's mechanism: per-round progress is capped by h.

The Appendix A induction says each machine-round can learn at most
``h = s/(u - log q - log v) + 1`` new correct chain entries, which is
what forces ``>= w/h`` rounds.  This experiment runs the pipeline
protocol, extracts the per-round count of *new correct entries queried*
from the oracle transcript, and checks the measured progress never
exceeds the cap computed from the protocol's actual memory size --
the inductive step observed directly, not just its conclusion.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bounds import lemma_a2_h
from repro.compression.windows import measure_progress
from repro.experiments.base import ExperimentResult, TableData, register
from repro.functions import SimLineParams, sample_input, trace_simline
from repro.oracle import LazyRandomOracle
from repro.protocols import build_simline_pipeline, run_pipeline

__all__ = ["run"]


@register("E-PROGRESS")
def run(scale: str) -> ExperimentResult:
    # u must exceed log q + log v for Lemma A.2's formulas to apply.
    params = SimLineParams(n=36, u=12, v=16, w=96)
    q = 8
    blocks = [2, 4, 8] if scale == "quick" else [2, 4, 8, 16]

    rows = []
    all_capped = True
    for b in blocks:
        oracle = LazyRandomOracle(params.n, params.n, seed=b)
        x = sample_input(params, np.random.default_rng(b))
        setup = build_simline_pipeline(
            params, x, num_machines=max(2, 16 // b), pieces_per_machine=b, q=q
        )
        result = run_pipeline(setup, oracle)
        trace = trace_simline(params, x, oracle)
        s_bits = setup.mpc_params.s_bits
        h = lemma_a2_h(
            s_bits, params.u, math.log2(q), math.log2(params.v)
        )
        report = measure_progress(
            trace, result.oracle.transcript, h_cap=h
        )
        all_capped = all_capped and report.respects_cap
        rows.append(
            (b, s_bits, f"{h:.1f}", report.max_progress,
             result.rounds_to_output,
             f"{params.w / h:.1f}",
             "yes" if report.respects_cap else "NO")
        )

    table = TableData(
        title=(
            f"per-round new correct entries vs Lemma A.2's cap h "
            f"(SimLine, w={params.w}, q={q})"
        ),
        headers=("window b", "s bits", "h cap", "max progress/round",
                 "rounds", "w/h bound", "capped"),
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id="E-PROGRESS",
        title="Per-round progress cap (Lemma A.2's induction, measured)",
        paper_claim=(
            "each machine-round learns at most h = s/(u - log q - log v) + 1 "
            "new correct entries, forcing >= w/h rounds (Lemmas A.2/A.3)"
        ),
        tables=[table],
        summary=(
            "measured per-round progress never exceeds the cap computed "
            "from the protocol's actual s; measured rounds sit just above "
            "the w/h floor at every window size"
        ),
        passed=all_capped,
    )
