"""E-DECAY -- Section 1.1/3 intuition: advance probability decays
exponentially.

"Since s <= S/c, a machine can only store a constant fraction of x_i's,
and since the l_i's are random, the probability that a machine can learn
the value of p new nodes should decay exponentially in p."  We measure
exactly that: the chain's pointer sequence is traced under fresh
oracles, and the probability that a machine storing a fraction ``f`` of
the pieces can advance ``>= p`` nodes in one round is estimated; it must
fit ``~f^p``.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.analysis import fit_exponential_decay
from repro.experiments.base import ExperimentResult, TableData, register
from repro.functions import LineParams, sample_input, trace_line
from repro.obs import WelfordAccumulator, WilsonAccumulator, attach_estimates
from repro.oracle import LazyRandomOracle
from repro.parallel import map_trials, seed_sequence

__all__ = ["run", "advance_length"]


def advance_length(params: LineParams, stored: set[int], seed: int) -> int:
    """Nodes a machine holding ``stored`` advances from node 0.

    The machine can evaluate node ``i`` iff it holds ``x_{l_i}``; the
    run ends at the first pointer outside its store.
    """
    oracle = LazyRandomOracle(params.n, params.n, seed=seed)
    x = sample_input(params, np.random.default_rng(seed))
    trace = trace_line(params, x, oracle)
    count = 0
    for ell in trace.pieces_used():
        if ell not in stored:
            break
        count += 1
    return count


@register("E-DECAY")
def run(scale: str) -> ExperimentResult:
    trials = 400 if scale == "quick" else 2000
    params = LineParams(n=36, u=8, v=8, w=24)
    fractions = {"1/4": {0, 1}, "1/2": {0, 1, 2, 3}}
    depths = list(range(1, 7))

    # One seed list shared by both fractions: each trial's chain is
    # evaluated at every stored-fraction, so the curves are directly
    # comparable (paired samples, not independent sweeps).
    seeds = seed_sequence("E-DECAY", "advance", trials)

    rows = []
    passed = True
    fits = {}
    estimates = {}
    for label, stored in fractions.items():
        f = len(stored) / params.v
        lengths = map_trials(
            partial(advance_length, params, stored),
            seeds,
            estimate=f"decay.advance_len.f={label}",
        )
        # One streaming pass over the trial results: a Welford mean of
        # the advance length plus a Wilson (k, n) per depth -- the 95%
        # CIs below need no second traversal of `lengths`.
        mean_len = WelfordAccumulator()
        depth_acc = {p: WilsonAccumulator() for p in depths}
        for length in lengths:
            mean_len.add(float(length))
            for p in depths:
                depth_acc[p].add(length >= p)
        estimates[f"decay.advance_len.f={label}"] = mean_len.stats(
            f"decay.advance_len.f={label}"
        )
        probs = []
        for p in depths:
            stats = depth_acc[p].stats(f"decay.p_advance.f={label}.p={p}")
            estimates[stats.name] = stats
            prob = stats.value
            probs.append(prob)
            expected = f ** (p - 1)  # node 0's pointer is 0, always stored
            rows.append(
                (label, p, f"{prob:.4f}",
                 f"[{stats.low:.4f},{stats.high:.4f}]", f"{expected:.4f}")
            )
        # Fit only the observed support: a depth no trial reached has
        # probability ~f^(p-1) below Monte-Carlo resolution, and feeding
        # a zero (or epsilon placeholder) into a log-space fit would let
        # one empty cell dominate the slope.
        observed = [(p, q) for p, q in zip(depths, probs) if q > 0]
        fit = fit_exponential_decay(
            [p for p, _ in observed], [q for _, q in observed]
        )
        fits[label] = fit
        passed = passed and 0.6 * f <= fit.rate <= 1.4 * f

    table = TableData(
        title="Pr[advance >= p nodes in one round] vs f^(p-1)",
        headers=("f", "p", "measured", "Wilson 95% CI", "f^(p-1)"),
        rows=tuple(rows),
    )
    fit_summary = ", ".join(
        f"f={label}: rate {fit.rate:.3f}/node (R^2={fit.r_squared:.3f})"
        for label, fit in fits.items()
    )
    return ExperimentResult(
        experiment_id="E-DECAY",
        title="Exponential decay of per-round progress",
        paper_claim=(
            "with a fraction f of pieces stored and random pointers, the "
            "probability of learning p new nodes decays exponentially in p"
        ),
        tables=[table],
        summary=f"geometric decay with rate ~f per node: {fit_summary}",
        passed=passed,
        metrics=attach_estimates({}, estimates),
    )
