"""E-BEST -- Theorem 1.1: nearly best-possible hardness.

Two sides of the headline:

1. **gap**: with ``n = polylog(T)`` the RAM time ``O(T·n)`` exceeds the
   MPC round bound ``T/log^2 T`` by only a polylog factor, for every
   ``T`` -- the bound is 'best possible up to polylog';
2. **crossover**: measured rounds collapse from ``~T`` to ``O(1)``
   exactly when the local memory reaches ``S`` (trivial upper bound).
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.bounds import best_possible_gap, hardness_threshold
from repro.experiments.base import ExperimentResult, TableData, register
from repro.functions import LineParams, sample_input
from repro.oracle import LazyRandomOracle
from repro.parallel import map_trials, seed_sequence
from repro.protocols import (
    build_chain_protocol,
    build_fullmem_protocol,
    run_chain,
    run_fullmem,
)

__all__ = ["run", "crossover_trial"]


def crossover_trial(params: LineParams, pieces_per_machine: int, seed: int) -> int:
    """Rounds-to-output of one seeded chain run at a memory regime."""
    oracle = LazyRandomOracle(params.n, params.n, seed=seed)
    x = sample_input(params, np.random.default_rng(seed))
    setup = build_chain_protocol(
        params, x, num_machines=4, pieces_per_machine=pieces_per_machine
    )
    return run_chain(setup, oracle).rounds_to_output


@register("E-BEST")
def run(scale: str) -> ExperimentResult:
    # Side 1: the gap ratio across T.
    Ts = [2**12, 2**20, 2**28] if scale == "quick" else [2**12, 2**16, 2**20, 2**28, 2**36]
    gap_rows = []
    gaps_ok = True
    for T in Ts:
        report = best_possible_gap(T)
        gaps_ok = gaps_ok and report.is_polylog_gap
        gap_rows.append(
            (f"2^{T.bit_length()-1}", report.n, f"{report.ram_time:.2e}",
             f"{report.mpc_round_lower_bound:.2e}",
             f"{report.gap:.2e}", f"{report.gap_polylog_exponent:.2f}")
        )

    # Side 2: the measured crossover in s.
    params = LineParams(n=36, u=8, v=8, w=96)
    cross_rows = []
    small_rounds = []
    for ppm, label in ((2, "s = S/4"), (4, "s = S/2")):
        # trial_seed keys on (experiment, ppm, t): unlike the old
        # ``ppm * 10 + t`` arithmetic, regimes can never share a seed.
        rounds = map_trials(
            partial(crossover_trial, params, ppm),
            seed_sequence("E-BEST", f"crossover-ppm{ppm}", 3),
        )
        mean = float(np.mean(rounds))
        small_rounds.append(mean)
        cross_rows.append((label, f"{mean:.1f}"))
    oracle = LazyRandomOracle(params.n, params.n, seed=77)
    x = sample_input(params, np.random.default_rng(77))
    full = run_fullmem(
        build_fullmem_protocol(params, x, colocated=True), oracle
    )
    cross_rows.append(("s >= S (trivial)", f"{full.rounds_to_output}"))
    crossover_ok = full.rounds_to_output <= 2 and min(small_rounds) > 10

    return ExperimentResult(
        experiment_id="E-BEST",
        title="Nearly best-possible hardness (Theorem 1.1)",
        paper_claim=(
            "with n = polylog(T): RAM time ~O(T), MPC rounds ~Omega(T) for "
            "s <= S/c -- a polylog gap; at s >= S one round suffices"
        ),
        tables=[
            TableData(
                title="RAM-time vs MPC-round-bound gap at n = log^2 T",
                headers=("T", "n", "RAM time", "round bound", "gap", "gap exp (log log)"),
                rows=tuple(gap_rows),
            ),
            TableData(
                title=f"measured crossover (w={params.w}): rounds by memory regime",
                headers=("regime", "rounds"),
                rows=tuple(cross_rows),
            ),
        ],
        summary=(
            f"gap stays polylog across 24 octaves of T (exponent stable); "
            f"measured rounds drop {min(small_rounds):.0f} -> "
            f"{full.rounds_to_output} at the s = S threshold "
            f"(threshold S/c = {hardness_threshold(params.space_S):.0f} bits)"
        ),
        passed=gaps_ok and crossover_ok,
    )
