"""E-LINE -- Lemma 3.2 / Theorem 3.1: rounds grow linearly in ``T``.

The frontier chain-following protocol (the strongest explicit strategy
we have for ``Line``) is run across a ``T`` sweep at several stored
fractions ``f = s/S``.  The paper's lower bound says any protocol with
``f <= 1/c`` needs ``~Omega(T)`` rounds; the measured rounds must be
linear in ``T`` (power-law exponent ~1) with slope ``~(1-f)``, and the
slope must stay bounded away from 0 for every ``f < 1``.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.analysis import fit_power_law, mean_ci
from repro.experiments.base import ExperimentResult, TableData, register
from repro.functions import LineParams, evaluate_line, sample_input
from repro.obs import phase
from repro.oracle import LazyRandomOracle
from repro.parallel import map_trials, seed_sequence
from repro.protocols import build_chain_protocol, run_chain

__all__ = ["run", "chain_rounds_trial", "measure_chain_rounds"]


def chain_rounds_trial(
    params: LineParams, num_machines: int, pieces_per_machine: int, seed: int
) -> int:
    """One chain-following run on a fresh seeded ``(RO, X)``: its rounds."""
    oracle = LazyRandomOracle(params.n, params.n, seed=seed)
    x = sample_input(params, np.random.default_rng(seed))
    setup = build_chain_protocol(
        params, x, num_machines=num_machines,
        pieces_per_machine=pieces_per_machine,
    )
    result = run_chain(setup, oracle)
    assert evaluate_line(params, x, oracle) in result.outputs.values()
    return result.rounds_to_output


def measure_chain_rounds(
    *,
    w: int,
    pieces_per_machine: int,
    num_machines: int = 8,
    v: int = 8,
    trials: int = 3,
    base_seed: int = 0,
    jobs: int | None = None,
) -> tuple[float, float]:
    """Mean rounds-to-output (+CI half-width) over fresh (RO, X) pairs.

    ``base_seed`` names the sweep point (it keys the trial-seed
    derivation); ``jobs`` defaults to the ambient parallelism.
    """
    params = LineParams(n=36, u=8, v=v, w=w)
    rounds = map_trials(
        partial(chain_rounds_trial, params, num_machines, pieces_per_machine),
        seed_sequence("E-LINE.chain", base_seed, trials),
        jobs=jobs,
    )
    return mean_ci(rounds)


@register("E-LINE")
def run(scale: str) -> ExperimentResult:
    ws = [64, 128, 256] if scale == "quick" else [64, 128, 256, 512, 1024]
    trials = 3 if scale == "quick" else 8
    fractions = {"1/8": 1, "1/4": 2, "1/2": 4}  # pieces per machine of v=8

    rows = []
    fits = {}
    slopes = {}
    for label, ppm in fractions.items():
        with phase("sweep-f", f=label):
            means = []
            for w in ws:
                mean, half = measure_chain_rounds(
                    w=w, pieces_per_machine=ppm, trials=trials, base_seed=w + ppm
                )
                means.append(mean)
                rows.append((label, w, f"{mean:.1f}", f"+-{half:.1f}",
                             f"{mean / w:.3f}"))
            fits[label] = fit_power_law(ws, means)
            slopes[label] = means[-1] / ws[-1]  # rounds/T at the largest T

    f_map = {"1/8": 1 / 8, "1/4": 1 / 4, "1/2": 1 / 2}
    passed = True
    for label, fit in fits.items():
        passed = passed and 0.85 <= fit.exponent <= 1.15
        # rounds/T should be near (1 - f): 1/(1-f) nodes per round.
        expected_slope = 1 - f_map[label]
        passed = passed and 0.7 * expected_slope <= slopes[label] <= 1.3 * expected_slope

    table = TableData(
        title="rounds to output vs T at fixed storage fraction f = s/S",
        headers=("f", "T=w", "rounds", "CI", "rounds/T"),
        rows=tuple(rows),
    )
    fit_summary = ", ".join(
        f"f={label}: T^{fit.exponent:.2f} slope {slopes[label]:.2f}"
        for label, fit in fits.items()
    )
    return ExperimentResult(
        experiment_id="E-LINE",
        title="Line round complexity is linear in T",
        paper_claim=(
            "any MPC algorithm with s <= S/c needs Omega(T/log^2 T) rounds "
            "(Lemma 3.2); best explicit protocol achieves ~(1-f) T"
        ),
        tables=[table],
        summary=f"power-law fits: {fit_summary} (expected slope 1-f)",
        passed=passed,
    )
