"""E-ENC-A -- Claim A.4: the SimLine encoding round-trips within bound.

The encoder compresses real ``(RO, X)`` pairs through a pipeline
machine's round-0 queries; every trial must decode exactly and respect
the claim's length accounting, with the saving growing linearly in the
number of recovered pieces.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.bits import Bits
from repro.compression import MPCRoundAlgorithm, SimLineCompressor
from repro.experiments.base import ExperimentResult, TableData, register
from repro.functions import SimLineParams, sample_input
from repro.oracle import TableOracle
from repro.parallel import map_trials, seed_sequence
from repro.protocols import build_simline_pipeline

__all__ = ["run", "encode_trial"]


def _algorithm(params: SimLineParams, num_machines: int) -> MPCRoundAlgorithm:
    def build(x):
        setup = build_simline_pipeline(params, list(x), num_machines=num_machines)
        return setup.mpc_params, setup.machines, setup.initial_memories

    dummy = [Bits.zeros(params.u)] * params.v
    return MPCRoundAlgorithm(build, machine_index=0, round_k=0, dummy_input=dummy)


def encode_trial(params: SimLineParams, seed: int) -> tuple[int, int, int, bool, bool]:
    """One seeded Claim A.4 round-trip: (alpha, bits, bound, roundtrip, bounded).

    Rebuilds the compressor in-trial (its ``MPCRoundAlgorithm`` holds a
    closure, which does not pickle into workers -- the recipe does).
    """
    rng = np.random.default_rng(seed)
    compressor = SimLineCompressor(
        params, _algorithm(params, num_machines=2), s_bits=64, q=16
    )
    oracle = TableOracle.sample(params.n, params.n, rng)
    x = sample_input(params, rng)
    enc = compressor.encode(oracle, x)
    roundtrip = compressor.decode(enc.payload) == (oracle, x)
    bound = compressor.length_bound(enc.alpha)
    return (enc.alpha, len(enc.payload), bound, roundtrip, len(enc.payload) <= bound)


@register("E-ENC-A")
def run(scale: str) -> ExperimentResult:
    trials = 6 if scale == "quick" else 25
    params = SimLineParams(n=12, u=4, v=4, w=8)

    rows = []
    all_roundtrip = True
    all_bounded = True
    alphas = []
    outcomes = map_trials(
        partial(encode_trial, params),
        seed_sequence("E-ENC-A", "encode", trials),
    )
    for t, (alpha, enc_bits, bound, roundtrip, bounded) in enumerate(outcomes):
        all_roundtrip = all_roundtrip and roundtrip
        all_bounded = all_bounded and bounded
        alphas.append(alpha)
        if t < 8:
            rows.append(
                (t, alpha, enc_bits, bound,
                 "yes" if roundtrip else "NO",
                 "yes" if bounded else "NO")
            )

    table = TableData(
        title=f"Claim A.4 encoder over {trials} fresh (RO, X) samples",
        headers=("trial", "alpha", "|Enc| bits", "bound", "roundtrip", "within bound"),
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id="E-ENC-A",
        title="SimLine compression scheme (Claim A.4)",
        paper_claim=(
            "Dec(Enc(RO,X)) = (RO,X) and |Enc| <= s + alpha(log q + log v) "
            "+ (v - alpha)u + 2^n n"
        ),
        tables=[table],
        summary=(
            f"{trials}/{trials} exact round-trips; every length within "
            f"bound; mean alpha {np.mean(alphas):.1f} pieces recovered from "
            f"queries (machine window = 2 pieces)"
        ),
        passed=all_roundtrip and all_bounded,
    )
