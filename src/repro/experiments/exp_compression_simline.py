"""E-ENC-A -- Claim A.4: the SimLine encoding round-trips within bound.

The encoder compresses real ``(RO, X)`` pairs through a pipeline
machine's round-0 queries; every trial must decode exactly and respect
the claim's length accounting, with the saving growing linearly in the
number of recovered pieces.
"""

from __future__ import annotations

import numpy as np

from repro.bits import Bits
from repro.compression import MPCRoundAlgorithm, SimLineCompressor
from repro.experiments.base import ExperimentResult, TableData, register
from repro.functions import SimLineParams, sample_input
from repro.oracle import TableOracle
from repro.protocols import build_simline_pipeline

__all__ = ["run"]


def _algorithm(params: SimLineParams, num_machines: int) -> MPCRoundAlgorithm:
    def build(x):
        setup = build_simline_pipeline(params, list(x), num_machines=num_machines)
        return setup.mpc_params, setup.machines, setup.initial_memories

    dummy = [Bits.zeros(params.u)] * params.v
    return MPCRoundAlgorithm(build, machine_index=0, round_k=0, dummy_input=dummy)


@register("E-ENC-A")
def run(scale: str) -> ExperimentResult:
    trials = 6 if scale == "quick" else 25
    params = SimLineParams(n=12, u=4, v=4, w=8)
    rng = np.random.default_rng(123)
    compressor = SimLineCompressor(
        params, _algorithm(params, num_machines=2), s_bits=64, q=16
    )

    rows = []
    all_roundtrip = True
    all_bounded = True
    alphas = []
    for t in range(trials):
        oracle = TableOracle.sample(params.n, params.n, rng)
        x = sample_input(params, rng)
        enc = compressor.encode(oracle, x)
        got = compressor.decode(enc.payload)
        roundtrip = got == (oracle, x)
        bounded = len(enc.payload) <= compressor.length_bound(enc.alpha)
        all_roundtrip = all_roundtrip and roundtrip
        all_bounded = all_bounded and bounded
        alphas.append(enc.alpha)
        if t < 8:
            rows.append(
                (t, enc.alpha, len(enc.payload),
                 compressor.length_bound(enc.alpha),
                 "yes" if roundtrip else "NO",
                 "yes" if bounded else "NO")
            )

    table = TableData(
        title=f"Claim A.4 encoder over {trials} fresh (RO, X) samples",
        headers=("trial", "alpha", "|Enc| bits", "bound", "roundtrip", "within bound"),
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id="E-ENC-A",
        title="SimLine compression scheme (Claim A.4)",
        paper_claim=(
            "Dec(Enc(RO,X)) = (RO,X) and |Enc| <= s + alpha(log q + log v) "
            "+ (v - alpha)u + 2^n n"
        ),
        tables=[table],
        summary=(
            f"{trials}/{trials} exact round-trips; every length within "
            f"bound; mean alpha {np.mean(alphas):.1f} pieces recovered from "
            f"queries (machine window = 2 pieces)"
        ),
        passed=all_roundtrip and all_bounded,
    )
