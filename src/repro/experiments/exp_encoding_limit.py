"""E-LIMIT -- Claim 3.8 / A.5: the counting bound on injective codes.

Exhaustive at small sizes (every injective code respects
``max|Enc| >= log2|M| - 1``), arithmetic at large sizes, and the
rearranged form used by Lemma 3.6 (``epsilon <= 2^{L+1-log2|space|}``).
"""

from __future__ import annotations

import itertools

from repro.bits import (
    max_codewords_of_length_at_most,
    min_possible_max_code_length,
    verify_injective_code,
)
from repro.bits.entropy import counting_bound_holds, enumerate_bitstrings
from repro.compression import message_space_log2_line, success_fraction_bound_log2
from repro.experiments.base import ExperimentResult, TableData, register

__all__ = ["run"]


@register("E-LIMIT")
def run(scale: str) -> ExperimentResult:
    # Exhaustive check: all injective codes of M messages into words of
    # length <= t exist iff 2^{t+1}-1 >= M, and all satisfy the bound.
    rows = []
    exhaustive_ok = True
    sizes = [2, 3, 4, 5, 6, 7] if scale == "quick" else list(range(2, 10))
    for m_count in sizes:
        t_star = min_possible_max_code_length(m_count)
        words = list(enumerate_bitstrings(t_star))
        # sample a handful of injective assignments exhaustively for the
        # smallest cases, spot-check otherwise
        assignments = itertools.permutations(words, m_count)
        checked = 0
        for perm in assignments:
            code = dict(zip(range(m_count), perm))
            t = verify_injective_code(code)
            exhaustive_ok = exhaustive_ok and counting_bound_holds(t, m_count)
            checked += 1
            if checked >= (500 if scale == "quick" else 5000):
                break
        rows.append(
            (m_count, t_star, max_codewords_of_length_at_most(t_star), checked)
        )

    # The rearranged form at paper scale.
    n, u, v = 20, 512, 64
    space = message_space_log2_line(n, u, v)
    alpha, overhead = 8, 64
    eps_log2 = success_fraction_bound_log2(space - alpha * (u - overhead), space)
    arithmetic_ok = eps_log2 == -alpha * (u - overhead) + 1

    table = TableData(
        title="optimal max code length t* vs message count (2^{t+1}-1 >= M)",
        headers=("|M|", "t*", "codewords <= t*", "codes checked"),
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id="E-LIMIT",
        title="Information-theoretic encoding limit (Claim 3.8 / A.5)",
        paper_claim=(
            "any injective encoding of M has max length >= log2|M| - 1 "
            "(since there are only sum_i 2^i <= 2^{t+1} short strings)"
        ),
        tables=[table],
        summary=(
            f"every checked injective code respects the bound; rearranged "
            f"form gives epsilon <= 2^{eps_log2:.0f} for an 8-piece reveal "
            f"at u=512 -- the Lemma 3.6 contradiction"
        ),
        passed=exhaustive_ok and arithmetic_ok,
    )
