"""E-BASE -- Section 1 / 1.2 comparisons against prior models.

1. **RVW shuffles**: the unconditional bound is ``floor(log_s N)`` --
   constant once ``s`` is polynomial in ``N`` -- while the paper's
   conditional bound is ``~T``; the s-ary tree circuit shows the RVW
   bound is tight in its own model.
2. **Miltersen PRAM**: pointer jumping takes ``k`` sequential steps,
   ``~2 log k`` PRAM-doubling steps, and **one** MPC round, because an
   MPC machine may issue arbitrarily many adaptive queries per round.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import (
    build_tree_circuit,
    pram_pointer_jump_doubling,
    pram_pointer_jump_sequential,
    shuffle_depth_lower_bound,
)
from repro.bounds import compare_with_rvw
from repro.experiments.base import ExperimentResult, TableData, register
from repro.oracle import LazyRandomOracle
from repro.protocols import build_pointer_jump_protocol, run_pointer_jump

__all__ = ["run"]


def _xor(args):
    out = 0
    for a in args:
        out ^= a
    return out


@register("E-BASE")
def run(scale: str) -> ExperimentResult:
    # RVW comparison.
    rvw_rows = []
    rvw_ok = True
    configs = [(2**20, 2**10), (2**30, 2**10), (2**30, 2**15)]
    for N, s in configs:
        cmp = compare_with_rvw(N=N, s=s, T=N)
        tree = build_tree_circuit(min(N, 4096), min(s, 64), _xor)
        tight = tree.depth == shuffle_depth_lower_bound(
            min(N, 4096), min(s, 64)
        )
        rvw_ok = rvw_ok and cmp["improvement_factor"] > 100 and tight
        rvw_rows.append(
            (f"2^{N.bit_length()-1}", f"2^{s.bit_length()-1}",
             int(cmp["rvw_rounds"]), f"{cmp['ro_rounds']:.2e}",
             f"{cmp['improvement_factor']:.1e}")
        )

    # Pointer jumping three ways.
    sizes = [(64, 40)] if scale == "quick" else [(64, 40), (256, 180), (1024, 700)]
    pj_rows = []
    pj_ok = True
    for size, jumps in sizes:
        oracle = LazyRandomOracle(12, 12, seed=size)
        setup = build_pointer_jump_protocol(oracle, size=size, start=1, jumps=jumps)
        mpc = run_pointer_jump(setup, oracle)
        node_seq, seq_steps = pram_pointer_jump_sequential(setup.instance)
        node_dbl, dbl_steps = pram_pointer_jump_doubling(setup.instance)
        consistent = (
            mpc.outputs[0].value == node_seq == node_dbl == setup.instance.evaluate()
        )
        pj_ok = pj_ok and consistent and mpc.rounds_to_output == 1
        pj_rows.append(
            (size, jumps, seq_steps, dbl_steps, mpc.rounds_to_output,
             "yes" if consistent else "NO")
        )

    return ExperimentResult(
        experiment_id="E-BASE",
        title="Prior-model baselines (RVW shuffles, Miltersen PRAM)",
        paper_claim=(
            "RVW gives only floor(log_s N) rounds (constant for polynomial "
            "s); Miltersen's pointer jumping is easy in MPC: one round of "
            "adaptive queries (Section 1.2)"
        ),
        tables=[
            TableData(
                title="unconditional (RVW) vs random-oracle round bounds",
                headers=("N", "s", "RVW rounds", "RO rounds", "improvement"),
                rows=tuple(rvw_rows),
            ),
            TableData(
                title="pointer jumping: sequential vs PRAM doubling vs MPC",
                headers=("N", "k", "seq steps", "PRAM steps", "MPC rounds", "agree"),
                rows=tuple(pj_rows),
            ),
        ],
        summary=(
            "RVW bound stays constant while the RO bound scales with T; "
            "pointer jumping needs log-many PRAM steps but exactly 1 MPC "
            "round -- adaptive in-round queries are the difference"
        ),
        passed=rvw_ok and pj_ok,
    )
