"""E-MHF -- Section 1.2: memory hardness is not round hardness.

Three measurements on scrypt's ROMix, the construction the paper calls
analogous to ``Line``:

1. the checkpoint trade-off: peak memory drops with the spacing while
   CMC stays ``Theta(N^2)`` -- the MHF security notion at work;
2. the sequential structure: ROMix forces ``2N`` strictly sequential
   oracle calls, the same chain shape as ``Line``;
3. the punchline: one MPC machine evaluates ROMix in **one round** with
   one block of memory, because in-round adaptive queries are free --
   so MHF-style hardness proves nothing about MPC rounds, and the paper
   needed ``Line``'s store-the-input mechanism instead.
"""

from __future__ import annotations

from repro.bits import Bits
from repro.experiments.base import ExperimentResult, TableData, register
from repro.mhf import (
    build_one_round_romix,
    checkpoint_romix,
    cumulative_memory_complexity,
    romix_trace,
    run_one_round_romix,
    sequential_depth,
)
from repro.oracle import LazyRandomOracle

__all__ = ["run"]


@register("E-MHF")
def run(scale: str) -> ExperimentResult:
    n_bits = 32
    N = 32 if scale == "quick" else 128
    oracle = LazyRandomOracle(n_bits, n_bits, seed=99)
    x = Bits(0xCAFEBABE, n_bits)

    honest_out, honest = romix_trace(oracle, x, N)
    honest_cmc = cumulative_memory_complexity(honest)
    rows = [
        ("honest", honest.peak_memory, honest.time, honest_cmc,
         f"{honest_cmc / N**2:.2f}")
    ]
    cmc_ok = True
    outputs_ok = True
    for spacing in (2, 4, 8):
        out, attack = checkpoint_romix(oracle, x, N, spacing=spacing)
        outputs_ok = outputs_ok and out == honest_out
        cmc = cumulative_memory_complexity(attack)
        cmc_ok = cmc_ok and cmc >= honest_cmc / 8
        rows.append(
            (f"checkpoint c={spacing}", attack.peak_memory, attack.time,
             cmc, f"{cmc / N**2:.2f}")
        )

    setup = build_one_round_romix(x, N)
    mpc_result, reference = run_one_round_romix(setup, oracle)
    mpc_ok = (
        mpc_result.rounds_to_output == 1
        and mpc_result.outputs[0] == reference == honest_out
    )
    mpc_rows = [
        ("sequential RAM (honest)", N, honest.time, "2N chain"),
        ("MPC, 1 machine, 1 block",
         1, mpc_result.stats.total_oracle_queries,
         f"{mpc_result.rounds_to_output} round"),
    ]

    return ExperimentResult(
        experiment_id="E-MHF",
        title="ROMix: memory hardness without round hardness (Section 1.2)",
        paper_claim=(
            "Line uses RO analogously to MHFs (sequential queries), but "
            "MHF hardness comes from adaptive queries, which MPC gets for "
            "free in a round -- so MPC needs a different mechanism"
        ),
        tables=[
            TableData(
                title=f"ROMix N={N}: the time-memory trade-off vs CMC",
                headers=("evaluation", "peak blocks", "oracle calls", "CMC", "CMC/N^2"),
                rows=tuple(rows),
            ),
            TableData(
                title="round cost of the same function",
                headers=("model", "resident blocks", "oracle calls", "rounds/depth"),
                rows=tuple(mpc_rows),
            ),
        ],
        summary=(
            f"trade-off cuts peak memory {honest.peak_memory} -> "
            f"{rows[-2][1]} while CMC stays within a small constant of "
            f"N^2 (scrypt's guarantee); yet one MPC round with "
            f"{mpc_result.stats.total_oracle_queries} in-round queries "
            f"computes it with one block -- sequential depth "
            f"{sequential_depth(N)} does not translate into rounds"
        ),
        passed=outputs_ok and cmc_ok and mpc_ok,
    )
