"""F1 -- Figure 1: the structure of the ``Line`` chain.

Figure 1 illustrates node ``i+1`` being produced by querying
``RO(i, x_{l_i}, r_i, 0^*)`` with the pointer ``l`` chosen by the
previous answer.  This experiment traces a small instance and verifies
each structural feature the figure draws: sequential node indices,
oracle-chosen pointers that jump across the input, ``r`` values chained
from answer to query, and the output being the last answer.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult, TableData, register
from repro.functions import LineParams, sample_input, trace_line
from repro.oracle import LazyRandomOracle

__all__ = ["run"]


@register("F1")
def run(scale: str) -> ExperimentResult:
    params = LineParams(n=36, u=8, v=8, w=12 if scale == "quick" else 64)
    oracle = LazyRandomOracle(params.n, params.n, seed=2026)
    rng = np.random.default_rng(7)
    x = sample_input(params, rng)
    trace = trace_line(params, x, oracle)

    rows = []
    chained = True
    embeds = True
    for node in trace.nodes[: min(12, params.w)]:
        fields = params.query_codec.unpack(node.query)
        embeds = embeds and fields["x"] == x[node.ell].value
        rows.append((node.i, node.ell, f"{node.r.value:0{(params.u+3)//4}x}"))
    for prev, nxt in zip(trace.nodes, trace.nodes[1:]):
        ans = params.answer_codec.unpack(prev.answer)
        chained = chained and (
            nxt.ell == params.ell_of_answer(ans["ell"]) and nxt.r.value == ans["r"]
        )
    pointer_spread = len(set(trace.pieces_used()))
    output_is_last = trace.output == trace.nodes[-1].answer

    table = TableData(
        title=f"chain walk, first {len(rows)} nodes ({params.describe()})",
        headers=("node i", "pointer l_i", "r_i (hex)"),
        rows=tuple(rows),
    )
    passed = chained and embeds and output_is_last and pointer_spread > 1
    return ExperimentResult(
        experiment_id="F1",
        title="Line chain structure (Figure 1)",
        paper_claim=(
            "(l_{i+1}, r_{i+1}, z_{i+1}) := RO(i, x_{l_i}, r_i, 0^*); output "
            "is the answer to the last correct query; pointers jump across X"
        ),
        tables=[table],
        summary=(
            f"answer->query chaining holds at all {params.w} nodes; queries "
            f"embed the selected piece verbatim; pointers touched "
            f"{pointer_spread}/{params.v} distinct pieces; output = last answer"
        ),
        passed=passed,
    )
