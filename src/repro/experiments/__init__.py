"""The per-claim experiment drivers.

Each module reproduces one row of DESIGN.md's experiment index: it runs
the relevant simulation or calculation, renders the same rows/series the
paper's claim describes, and reports whether the measured *shape*
matches.  The registry lets the benchmark harness and the examples
enumerate everything:

    from repro.experiments import run_experiment, experiment_ids
    result = run_experiment("E-LINE", scale="quick")
    print(result.render())
"""

from repro.experiments.base import (
    ExperimentResult,
    TableData,
    experiment_ids,
    experiment_info,
    get_experiment,
    run_experiment,
)

# Importing the modules registers them.
from repro.experiments import (  # noqa: E402,F401
    exp_baselines,
    exp_best_possible,
    exp_bound_tables,
    exp_compression_line,
    exp_compression_simline,
    exp_decay,
    exp_encoding_limit,
    exp_guessing,
    exp_hash_instantiation,
    exp_line_rounds,
    exp_line_structure,
    exp_memory_scaling,
    exp_mhf,
    exp_parameters,
    exp_placement,
    exp_progress,
    exp_ram_upper_bound,
    exp_round_budget,
    exp_scale,
    exp_simline_rounds,
    exp_throughput,
)

__all__ = [
    "ExperimentResult",
    "TableData",
    "experiment_ids",
    "experiment_info",
    "get_experiment",
    "run_experiment",
]
