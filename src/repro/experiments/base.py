"""Experiment registry and result container."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.tables import format_table
from repro.obs import flatten_dotted, get_tracer

__all__ = [
    "TableData",
    "ExperimentResult",
    "register",
    "run_experiment",
    "get_experiment",
    "experiment_ids",
]


@dataclass(frozen=True)
class TableData:
    """One printed table: what the paper 'reports', regenerated."""

    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]

    def render(self) -> str:
        """The ASCII rendering the benchmarks print."""
        return format_table(self.headers, self.rows, title=self.title)


@dataclass
class ExperimentResult:
    """Outcome of one experiment run.

    ``metrics`` is the observability side-channel: ``run_experiment``
    always records ``duration_s``; when run under a tracer (``repro
    trace`` or the benchmark harness) the aggregated
    :class:`~repro.obs.metrics.TraceMetrics` view is merged in under
    ``"trace"``.
    """

    experiment_id: str
    title: str
    paper_claim: str
    tables: list[TableData] = field(default_factory=list)
    summary: str = ""
    passed: bool = True
    metrics: dict = field(default_factory=dict)

    def render(self) -> str:
        """Full human-readable report."""
        parts = [
            f"== {self.experiment_id}: {self.title} ==",
            f"paper claim : {self.paper_claim}",
        ]
        for table in self.tables:
            parts.append("")
            parts.append(table.render())
        parts.append("")
        parts.append(f"measured    : {self.summary}")
        parts.append(f"shape match : {'YES' if self.passed else 'NO'}")
        return "\n".join(parts)

    def flat_metrics(self) -> dict:
        """``metrics`` flattened to sorted dotted keys.

        The stable ``layer.metric[.stat]`` namespace shared with
        :meth:`repro.obs.TraceMetrics.to_flat_dict` -- e.g.
        ``duration_s``, ``trace.mpc.rounds``,
        ``trace.mpc.round_latency_s.mean`` -- so downstream tooling can
        index one flat mapping instead of walking the nested tree.
        """
        return flatten_dotted(self.metrics)

    def to_dict(self) -> dict:
        """A JSON-serializable view (for downstream plotting/automation)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_claim": self.paper_claim,
            "summary": self.summary,
            "passed": self.passed,
            "metrics": self.metrics,
            "tables": [
                {
                    "title": t.title,
                    "headers": list(t.headers),
                    "rows": [[str(v) for v in row] for row in t.rows],
                }
                for t in self.tables
            ],
        }


_REGISTRY: dict[str, Callable[[str], ExperimentResult]] = {}


def register(experiment_id: str):
    """Class-level decorator registering ``run(scale) -> ExperimentResult``."""

    def wrap(fn: Callable[[str], ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id}")
        _REGISTRY[experiment_id] = fn
        return fn

    return wrap


def experiment_ids() -> list[str]:
    """All registered experiment ids, sorted."""
    return sorted(_REGISTRY)


def get_experiment(experiment_id: str) -> Callable[[str], ExperimentResult]:
    """The driver for one id."""
    if experiment_id not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {experiment_ids()}"
        )
    return _REGISTRY[experiment_id]


def run_experiment(experiment_id: str, scale: str = "quick") -> ExperimentResult:
    """Run one experiment at ``scale`` in {'quick', 'full'}.

    The run is wrapped in an ``experiment`` trace span (a no-op under
    the default null tracer) and its wall-clock duration is recorded in
    ``result.metrics["duration_s"]``.
    """
    if scale not in ("quick", "full"):
        raise ValueError(f"scale must be 'quick' or 'full', got {scale!r}")
    driver = get_experiment(experiment_id)
    with get_tracer().span(
        "experiment", experiment_id=experiment_id, scale=scale
    ) as span_attrs:
        start = time.perf_counter()
        result = driver(scale)
        # Verdicts computed with numpy comparisons arrive as np.bool_,
        # which json.dumps rejects; normalize at the single choke point.
        result.passed = bool(result.passed)
        result.metrics["duration_s"] = time.perf_counter() - start
        span_attrs["passed"] = result.passed
    return result
