"""Experiment registry and result container."""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.tables import format_table
from repro.costmodel.models import runner_model_map
from repro.obs import flatten_dotted, get_tracer

__all__ = [
    "TableData",
    "ExperimentResult",
    "register",
    "run_experiment",
    "get_experiment",
    "experiment_ids",
    "experiment_info",
]


@dataclass(frozen=True)
class TableData:
    """One printed table: what the paper 'reports', regenerated."""

    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]

    def render(self) -> str:
        """The ASCII rendering the benchmarks print."""
        return format_table(self.headers, self.rows, title=self.title)


@dataclass
class ExperimentResult:
    """Outcome of one experiment run.

    ``metrics`` is the observability side-channel: ``run_experiment``
    always records ``duration_s``; when run under a tracer (``repro
    trace`` or the benchmark harness) the aggregated
    :class:`~repro.obs.metrics.TraceMetrics` view is merged in under
    ``"trace"``.
    """

    experiment_id: str
    title: str
    paper_claim: str
    tables: list[TableData] = field(default_factory=list)
    summary: str = ""
    passed: bool = True
    metrics: dict = field(default_factory=dict)

    def render(self) -> str:
        """Full human-readable report."""
        parts = [
            f"== {self.experiment_id}: {self.title} ==",
            f"paper claim : {self.paper_claim}",
        ]
        for table in self.tables:
            parts.append("")
            parts.append(table.render())
        parts.append("")
        parts.append(f"measured    : {self.summary}")
        parts.append(f"shape match : {'YES' if self.passed else 'NO'}")
        return "\n".join(parts)

    def flat_metrics(self) -> dict:
        """``metrics`` flattened to sorted dotted keys.

        The stable ``layer.metric[.stat]`` namespace shared with
        :meth:`repro.obs.TraceMetrics.to_flat_dict` -- e.g.
        ``duration_s``, ``trace.mpc.rounds``,
        ``trace.mpc.round_latency_s.mean`` -- so downstream tooling can
        index one flat mapping instead of walking the nested tree.
        """
        return flatten_dotted(self.metrics)

    def to_dict(self) -> dict:
        """A JSON-serializable view (for downstream plotting/automation)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_claim": self.paper_claim,
            "summary": self.summary,
            "passed": self.passed,
            "metrics": self.metrics,
            "tables": [
                {
                    "title": t.title,
                    "headers": list(t.headers),
                    "rows": [[str(v) for v in row] for row in t.rows],
                }
                for t in self.tables
            ],
        }


_REGISTRY: dict[str, Callable[[str], ExperimentResult]] = {}


def register(experiment_id: str):
    """Class-level decorator registering ``run(scale) -> ExperimentResult``."""

    def wrap(fn: Callable[[str], ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id}")
        _REGISTRY[experiment_id] = fn
        return fn

    return wrap


def experiment_ids() -> list[str]:
    """All registered experiment ids, sorted."""
    return sorted(_REGISTRY)


def get_experiment(experiment_id: str) -> Callable[[str], ExperimentResult]:
    """The driver for one id."""
    if experiment_id not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {experiment_ids()}"
        )
    return _REGISTRY[experiment_id]


#: Modules whose source legitimately mentions ``map_trials`` without
#: the caller being trial-parallel: the pool itself, and this module
#: (the detector's own source).
_MAP_TRIALS_EXEMPT = ("repro.parallel", __name__)


def _module_uses_map_trials(module, _depth: int = 0) -> bool:
    """Does ``module`` (or a ``repro.*`` module it imports) call
    :func:`repro.parallel.map_trials`?  Source-level detection, one
    import level deep -- enough to see through the protocol modules the
    experiments delegate their trial loops to."""
    if module is None or module.__name__.startswith(_MAP_TRIALS_EXEMPT):
        return False
    try:
        source = inspect.getsource(module)
    except (OSError, TypeError):
        return False
    if "map_trials" in source:
        return True
    if _depth >= 1:
        return False
    seen = set()
    for value in vars(module).values():
        dep = inspect.getmodule(value)
        if (
            dep is not None
            and dep is not module
            and dep.__name__ not in seen
            and dep.__name__.startswith("repro.")
        ):
            seen.add(dep.__name__)
            if _module_uses_map_trials(dep, _depth + 1):
                return True
    return False


def _module_cost_models(module) -> list[str]:
    """Which cost models the driver's runs announce, if traced.

    Source-level detection like :func:`_module_uses_map_trials`, but
    deliberately restricted to the driver module's *own* source: the
    runner names (``run_chain``, ``run_pipeline``, ...) only announce a
    model when the driver actually calls them, and following imports
    would flag protocol modules an experiment merely shares a helper
    with.
    """
    if module is None:
        return []
    try:
        source = inspect.getsource(module)
    except (OSError, TypeError):
        return []
    found: set[str] = set()
    for runner, models in runner_model_map().items():
        if runner in source:
            found.update(models)
    return sorted(found)


def experiment_info(experiment_id: str) -> dict:
    """One inventory row: description + parallelization, for ``repro list``.

    ``description`` is the first line of the driver module's docstring
    (falling back to the driver function's); ``trial_parallel`` reports
    whether the experiment fans its Monte-Carlo trials out through
    :func:`repro.parallel.map_trials`, detected from the driver
    module's source following one level of ``repro.*`` imports;
    ``cost_models`` lists the symbolic cost models the driver's runs
    announce to :class:`repro.costmodel.CostOracle` (empty = no cost
    coverage; see ``repro cost check``).
    """
    driver = get_experiment(experiment_id)
    module = inspect.getmodule(driver)
    doc = (inspect.getdoc(module) or inspect.getdoc(driver) or "").strip()
    description = doc.splitlines()[0].strip() if doc else ""
    return {
        "experiment_id": experiment_id,
        "description": description,
        "trial_parallel": _module_uses_map_trials(module),
        "cost_models": _module_cost_models(module),
    }


def run_experiment(experiment_id: str, scale: str = "quick") -> ExperimentResult:
    """Run one experiment at ``scale`` in {'quick', 'full'}.

    The run is wrapped in an ``experiment`` trace span (a no-op under
    the default null tracer) and its wall-clock duration is recorded in
    ``result.metrics["duration_s"]``.
    """
    if scale not in ("quick", "full"):
        raise ValueError(f"scale must be 'quick' or 'full', got {scale!r}")
    driver = get_experiment(experiment_id)
    with get_tracer().span(
        "experiment", experiment_id=experiment_id, scale=scale
    ) as span_attrs:
        start = time.perf_counter()
        result = driver(scale)
        # Verdicts computed with numpy comparisons arrive as np.bool_,
        # which json.dumps rejects; normalize at the single choke point.
        result.passed = bool(result.passed)
        result.metrics["duration_s"] = time.perf_counter() - start
        span_attrs["passed"] = result.passed
    return result
