"""E-BUDGET -- the theorem's literal statement: success probability vs R.

Theorem 1.1 asserts the probability of computing ``f^RO`` within
``o(T/log^2 T)`` rounds is at most 1/3 over ``(RO, X)``.  For the
explicit chain protocol the analogous transition sits at ``~(1-f)·T``:
this experiment sweeps the round budget ``R`` across that point and
measures Definition 2.5's average-case success probability, exhibiting
the sharp 0 -> 1 transition the bounds describe.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult, TableData, register
from repro.functions import LineParams, evaluate_line, sample_input
from repro.mpc.correctness import estimate_success_probability
from repro.oracle import LazyRandomOracle
from repro.protocols import build_chain_protocol

__all__ = ["run"]


@register("E-BUDGET")
def run(scale: str) -> ExperimentResult:
    params = LineParams(n=36, u=8, v=8, w=96)
    trials = 10 if scale == "quick" else 40
    f = 0.5  # 4 machines x 4 pieces of v=8
    expected_transition = (1 - f) * params.w  # ~48 rounds

    def sample_instance(seed: int):
        oracle = LazyRandomOracle(params.n, params.n, seed=seed)
        x = sample_input(params, np.random.default_rng(seed))
        setup = build_chain_protocol(
            params, x, num_machines=4, pieces_per_machine=4
        )
        expected = evaluate_line(params, x, oracle)
        return (
            setup.mpc_params,
            setup.machines,
            setup.initial_memories,
            oracle,
            expected,
        )

    budgets = [int(expected_transition * r) for r in (0.3, 0.6, 0.9, 1.3, 1.8)]
    rates = estimate_success_probability(
        sample_instance, budgets=budgets, trials=trials, base_seed=17
    )

    rows = [
        (b, f"{b / params.w:.2f}", f"{rates[b]:.2f}")
        for b in budgets
    ]
    low_budget = budgets[0]
    high_budget = budgets[-1]
    passed = rates[low_budget] <= 1 / 3 and rates[high_budget] >= 2 / 3
    table = TableData(
        title=(
            f"average-case success probability vs round budget "
            f"(w={params.w}, f={f}, transition expected near "
            f"{expected_transition:.0f} rounds)"
        ),
        headers=("budget R", "R/T", "Pr[success]"),
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id="E-BUDGET",
        title="Success probability transition in the round budget",
        paper_claim=(
            "Pr[A computes f^RO correctly in o(T/log^2 T) rounds] <= 1/3 "
            "over (RO, X) (Theorem 1.1 / Definition 2.5)"
        ),
        tables=[table],
        summary=(
            f"success probability {rates[low_budget]:.2f} well below 1/3 at "
            f"R = 0.3*(1-f)T and {rates[high_budget]:.2f} above 2/3 past the "
            f"transition -- a sharp threshold at ~(1-f)T rounds"
        ),
        passed=passed,
    )
