"""E-SCALE -- the round-complexity law at paper-scale ``T``.

The exact simulators top out around ``T ~ 10^3``; the validated
vectorized model (see :mod:`repro.analysis.fast_chain` and its
cross-validation tests) extends the sweep to ``T = 10^6``.  The law
``rounds ~ (1-f)·T`` must hold across the entire range, anchored by
exact bit-level runs at the small end.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import fit_power_law
from repro.analysis.fast_chain import expected_rounds, simulate_round_counts
from repro.experiments.base import ExperimentResult, TableData, register
from repro.functions import LineParams, sample_input
from repro.oracle import LazyRandomOracle
from repro.protocols import build_chain_protocol, run_chain

__all__ = ["run"]


@register("E-SCALE")
def run(scale: str) -> ExperimentResult:
    f = 0.5
    rng = np.random.default_rng(314)

    # Anchor: exact bit-level runs at small T.
    anchor_w = 80
    params = LineParams(n=36, u=8, v=8, w=anchor_w)
    exact = []
    for seed in range(4 if scale == "quick" else 12):
        oracle = LazyRandomOracle(params.n, params.n, seed=seed)
        x = sample_input(params, np.random.default_rng(seed))
        setup = build_chain_protocol(
            params, x, num_machines=4, pieces_per_machine=4
        )
        exact.append(run_chain(setup, oracle).rounds_to_output)
    exact_mean = float(np.mean(exact))
    model_at_anchor = expected_rounds(anchor_w, f)
    anchor_ok = abs(exact_mean - model_at_anchor) <= 0.25 * model_at_anchor

    # Extension: the vectorized model out to T = 10^6.
    ws = [10**3, 10**4, 10**5] if scale == "quick" else [10**3, 10**4, 10**5, 10**6]
    trials = 2000 if scale == "quick" else 20000
    rows = [(anchor_w, f"{exact_mean:.1f} (exact)", f"{model_at_anchor:.1f}",
             f"{exact_mean / anchor_w:.3f}")]
    means = []
    for w in ws:
        samples = simulate_round_counts(w, f, trials=trials, rng=rng)
        mean = float(samples.mean())
        means.append(mean)
        rows.append((w, f"{mean:.0f}", f"{expected_rounds(w, f):.0f}",
                     f"{mean / w:.3f}"))
    fit = fit_power_law(ws, means)
    passed = anchor_ok and 0.99 <= fit.exponent <= 1.01

    table = TableData(
        title=f"rounds vs T at f = {f} (exact anchor + validated model)",
        headers=("T=w", "rounds (mean)", "model (1-f)(T-1)+1", "rounds/T"),
        rows=tuple(rows),
    )
    return ExperimentResult(
        experiment_id="E-SCALE",
        title="The linear round law across six orders of magnitude",
        paper_claim=(
            "Omega~(T) rounds for s <= S/c at every T in the theorem's "
            "window T < 2^O(n^(1/4)) -- linearity does not flatten out"
        ),
        tables=[table],
        summary=(
            f"exact simulator agrees with the Bernoulli-pointer model at "
            f"T={anchor_w} ({exact_mean:.1f} vs {model_at_anchor:.1f}); the "
            f"model then gives rounds ~ T^{fit.exponent:.3f} up to T=10^"
            f"{len(str(ws[-1])) - 1} -- rounds/T pinned at (1-f) = {1-f}"
        ),
        passed=passed,
    )
