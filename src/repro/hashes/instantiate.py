"""The random-oracle methodology step: ``f^RO -> f^h``.

:class:`HashOracle` wraps a concrete hash function as an
``{0,1}^n_in -> {0,1}^n_out`` oracle.  Swapping a
:class:`~repro.oracle.lazy.LazyRandomOracle` for a :class:`HashOracle`
in any evaluator realizes the methodology exactly as the paper describes
it: the construction is unchanged, only the oracle box is replaced by a
hash computation of cost ``t_h``.

The wrapper also *measures* ``t_h``: it counts compression-function-level
work (bytes hashed) so the ``O(T * t_h)`` RAM cost claim of Theorem 1.1
becomes a measurable quantity in experiment E-HASH.
"""

from __future__ import annotations

from typing import Callable

from repro.bits import Bits
from repro.oracle.base import Oracle

__all__ = ["HashOracle"]


class HashOracle(Oracle):
    """An oracle computed by a concrete hash function.

    Parameters
    ----------
    hash_fn:
        ``bytes -> bytes`` one-shot hash (e.g. :func:`repro.hashes.sha256.sha256`
        or a :func:`repro.hashes.toy_md.toy_hash` partial).
    n_in, n_out:
        Oracle dimensions in bits.  Outputs longer than one digest are
        assembled by counter-mode expansion ``h(x || 0), h(x || 1), ...``
        (the standard domain-extension used by practical RO instantiations).
    label:
        Domain-separation tag mixed into every call, so distinct oracles
        can be instantiated from one hash.
    """

    def __init__(
        self,
        hash_fn: Callable[[bytes], bytes],
        n_in: int,
        n_out: int,
        *,
        label: bytes = b"repro",
    ) -> None:
        super().__init__(n_in, n_out)
        self._hash = hash_fn
        self._label = label
        self._in_bytes = (n_in + 7) // 8 or 1
        self._out_bytes = (n_out + 7) // 8
        self._calls = 0
        self._bytes_hashed = 0

    @property
    def hash_calls(self) -> int:
        """Number of underlying hash invocations (measures ``T`` vs ``t_h``)."""
        return self._calls

    @property
    def bytes_hashed(self) -> int:
        """Total bytes fed to the hash (proxy for ``t_h`` work)."""
        return self._bytes_hashed

    def _evaluate(self, x: Bits) -> Bits:
        material = self._label + x.value.to_bytes(self._in_bytes, "big")
        out = bytearray()
        counter = 0
        while len(out) < self._out_bytes:
            chunk_input = material + counter.to_bytes(4, "big")
            out += self._hash(chunk_input)
            self._calls += 1
            self._bytes_hashed += len(chunk_input)
            counter += 1
        value = int.from_bytes(bytes(out[: self._out_bytes]), "big")
        excess = 8 * self._out_bytes - self._n_out
        return Bits(value >> excess, self._n_out)
