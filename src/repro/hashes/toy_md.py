"""A fast toy Merkle-Damgard hash over 64-bit words.

The Monte-Carlo experiments make millions of oracle calls; pure-Python
SHA-256 would dominate their runtime.  This module provides a small,
fast, *non-cryptographic but well-mixing* hash built from the splitmix64
finalizer -- the same role a non-cryptographic PRF plays when lazily
sampling a random oracle for simulation.  It is explicitly NOT a secure
hash; DESIGN.md records this substitution (simulation fidelity only needs
uniform-looking, input-determined outputs).

Construction: absorb the message in 8-byte blocks with a Davies-Meyer-ish
chain ``state = mix(state ^ block) + block``, inject the message length,
then finalize.  Arbitrary digest sizes come from counter-mode expansion
of the final state.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["ToyMDHash", "toy_hash", "toy_hash_batch", "mix64"]

_MASK64 = 0xFFFFFFFFFFFFFFFF
_IV = 0x9E3779B97F4A7C15  # golden-ratio constant, the splitmix64 increment


def mix64(x: int) -> int:
    """The splitmix64 finalizer: a 64-bit bijection with strong avalanche."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class ToyMDHash:
    """Streaming toy hash with a configurable digest size in bytes."""

    block_size = 8

    def __init__(self, data: bytes = b"", *, digest_size: int = 8, seed: int = 0) -> None:
        if digest_size <= 0:
            raise ValueError(f"digest_size must be positive, got {digest_size}")
        self.digest_size = digest_size
        self._state = mix64(_IV ^ mix64(seed))
        self._length = 0
        self._buffer = b""
        if data:
            self.update(data)

    def update(self, data: bytes) -> "ToyMDHash":
        """Absorb more message bytes; returns self for chaining."""
        self._length += len(data)
        buf = self._buffer + data
        state = self._state
        offset = 0
        n_full = len(buf) // 8
        for i in range(n_full):
            block = int.from_bytes(buf[offset : offset + 8], "little")
            state = (mix64(state ^ block) + block) & _MASK64
            offset += 8
        self._state = state
        self._buffer = buf[offset:]
        return self

    def digest(self) -> bytes:
        """The digest of everything absorbed so far."""
        # Pad the final partial block with a 0x01 marker then zeros, and
        # inject the total length so that, as in real Merkle-Damgard
        # strengthening, prefixes do not collide.
        tail = self._buffer + b"\x01" + b"\x00" * (7 - len(self._buffer) % 8)
        state = self._state
        for offset in range(0, len(tail), 8):
            block = int.from_bytes(tail[offset : offset + 8], "little")
            state = (mix64(state ^ block) + block) & _MASK64
        state = mix64(state ^ self._length)
        # Counter-mode expansion for digests longer than 8 bytes.
        out = bytearray()
        counter = 0
        while len(out) < self.digest_size:
            out += mix64(state + counter).to_bytes(8, "little")
            counter += 1
        return bytes(out[: self.digest_size])

    def hexdigest(self) -> str:
        """The digest as a lowercase hex string."""
        return self.digest().hex()

    def copy(self) -> "ToyMDHash":
        """An independent copy of the current streaming state."""
        clone = ToyMDHash(digest_size=self.digest_size)
        clone._state = self._state
        clone._length = self._length
        clone._buffer = self._buffer
        return clone


def toy_hash(data: bytes, *, digest_size: int = 8, seed: int = 0) -> bytes:
    """One-shot toy hash of ``data``."""
    return ToyMDHash(data, digest_size=digest_size, seed=seed).digest()


def toy_hash_batch(
    messages: Sequence[bytes], *, digest_size: int = 8, seed: int = 0
) -> list[bytes]:
    """Hash many equal-length messages at once, bit-identical to
    :func:`toy_hash` on each.

    The Merkle-Damgard chain runs column-wise over a numpy ``uint64``
    block matrix: one vectorized :func:`mix64` per block position for
    the whole batch instead of one Python-level call per message block.
    This is the substrate of the oracle layer's ``query_batch`` fast
    path, where every message is ``seed || key`` at one fixed width.
    """
    if digest_size <= 0:
        raise ValueError(f"digest_size must be positive, got {digest_size}")
    if not messages:
        return []
    length = len(messages[0])
    if any(len(m) != length for m in messages):
        raise ValueError("toy_hash_batch requires equal-length messages")
    import numpy as np

    batch = len(messages)
    # Pad every message exactly as the scalar digest() does: a 0x01
    # marker then zeros up to the next 8-byte boundary -- so the padded
    # block stream equals "full message blocks, then the tail block".
    pad = b"\x01" + b"\x00" * (7 - length % 8)
    data = b"".join(m + pad for m in messages)
    blocks = np.frombuffer(data, dtype="<u8").reshape(batch, -1)

    def _mix(x: "np.ndarray") -> "np.ndarray":
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return x ^ (x >> np.uint64(31))

    with np.errstate(over="ignore"):
        state = np.full(batch, mix64(_IV ^ mix64(seed)), dtype=np.uint64)
        for j in range(blocks.shape[1]):
            block = blocks[:, j]
            state = _mix(state ^ block) + block
        state = _mix(state ^ np.uint64(length))
        # Counter-mode expansion, little-endian words, like digest().
        n_words = (digest_size + 7) // 8
        words = np.empty((batch, n_words), dtype=np.uint64)
        for counter in range(n_words):
            words[:, counter] = _mix(state + np.uint64(counter))
    raw = words.astype("<u8").tobytes()
    stride = 8 * n_words
    return [
        raw[i * stride : i * stride + digest_size] for i in range(batch)
    ]
