"""From-scratch SHA3-256 (FIPS 202, Keccak-f[1600]).

The paper's random-oracle methodology names its hash: "replace the
random oracle by a 'good cryptographic hashing function' h (such as
SHA3)".  This module provides that literal instantiation: the
Keccak-f[1600] permutation and the SHA3-256 sponge (rate 1088, capacity
512, domain suffix ``0x06``), pure Python, validated against FIPS
vectors and differentially against ``hashlib`` in the tests.
"""

from __future__ import annotations

__all__ = ["SHA3_256", "sha3_256", "keccak_f1600"]

_MASK64 = 0xFFFFFFFFFFFFFFFF

# Rotation offsets r[x][y] (FIPS 202 Table 2, rho step).
_ROTATION = (
    (0, 36, 3, 41, 18),
    (1, 44, 10, 45, 2),
    (62, 6, 43, 15, 61),
    (28, 55, 25, 21, 56),
    (27, 20, 39, 8, 14),
)

# Round constants (iota step), 24 rounds.
_ROUND_CONSTANTS = (
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
)


def _rotl(x: int, n: int) -> int:
    n %= 64
    return ((x << n) | (x >> (64 - n))) & _MASK64


def keccak_f1600(state: list[int]) -> list[int]:
    """The Keccak-f[1600] permutation over 25 lanes (5x5, column-major:
    lane (x, y) at index ``x + 5*y``)."""
    if len(state) != 25:
        raise ValueError(f"state must have 25 lanes, got {len(state)}")
    a = list(state)
    for rc in _ROUND_CONSTANTS:
        # theta
        c = [a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20] for x in range(5)]
        d = [c[(x - 1) % 5] ^ _rotl(c[(x + 1) % 5], 1) for x in range(5)]
        for x in range(5):
            for y in range(5):
                a[x + 5 * y] ^= d[x]
        # rho + pi
        b = [0] * 25
        for x in range(5):
            for y in range(5):
                b[y + 5 * ((2 * x + 3 * y) % 5)] = _rotl(
                    a[x + 5 * y], _ROTATION[x][y]
                )
        # chi
        for x in range(5):
            for y in range(5):
                a[x + 5 * y] = b[x + 5 * y] ^ (
                    (~b[(x + 1) % 5 + 5 * y] & _MASK64)
                    & b[(x + 2) % 5 + 5 * y]
                )
        # iota
        a[0] ^= rc
    return a


class SHA3_256:
    """Streaming SHA3-256: sponge with rate 136 bytes, suffix 0x06."""

    digest_size = 32
    rate_bytes = 136

    def __init__(self, data: bytes = b"") -> None:
        self._state = [0] * 25
        self._buffer = b""
        if data:
            self.update(data)

    def _absorb_block(self, block: bytes) -> None:
        for i in range(self.rate_bytes // 8):
            self._state[i] ^= int.from_bytes(block[8 * i : 8 * i + 8], "little")
        self._state = keccak_f1600(self._state)

    def update(self, data: bytes) -> "SHA3_256":
        """Absorb more message bytes; returns self for chaining."""
        buf = self._buffer + data
        offset = 0
        while offset + self.rate_bytes <= len(buf):
            self._absorb_block(buf[offset : offset + self.rate_bytes])
            offset += self.rate_bytes
        self._buffer = buf[offset:]
        return self

    def digest(self) -> bytes:
        """The 32-byte digest of everything absorbed so far."""
        # Pad: multi-rate padding with the SHA-3 domain suffix 01:
        # append 0x06, zero-fill, set the top bit of the last rate byte.
        pad_len = self.rate_bytes - len(self._buffer)
        if pad_len == 1:
            tail = b"\x86"
        else:
            tail = b"\x06" + b"\x00" * (pad_len - 2) + b"\x80"
        state = list(self._state)
        block = self._buffer + tail
        for i in range(self.rate_bytes // 8):
            state[i] ^= int.from_bytes(block[8 * i : 8 * i + 8], "little")
        state = keccak_f1600(state)
        out = b"".join(state[i].to_bytes(8, "little") for i in range(4))
        return out[:32]

    def hexdigest(self) -> str:
        """The digest as a lowercase hex string."""
        return self.digest().hex()

    def copy(self) -> "SHA3_256":
        """An independent copy of the current streaming state."""
        clone = SHA3_256()
        clone._state = list(self._state)
        clone._buffer = self._buffer
        return clone


def sha3_256(data: bytes) -> bytes:
    """One-shot SHA3-256 digest of ``data``."""
    return SHA3_256(data).digest()
