"""Concrete hash functions for the random-oracle methodology step.

Theorem 1.1's final move is the random oracle methodology: replace the
ideal oracle ``RO`` by a "good cryptographic hash function" ``h`` to get a
concrete hard function ``f^h``.  This package supplies two from-scratch
hash functions (no ``hashlib``) and the adapter that exposes them behind
the library's :class:`~repro.oracle.base.Oracle` interface:

* :mod:`~repro.hashes.sha256` -- FIPS 180-4 SHA-256, the stand-in for the
  paper's "SHA3-like" hash (time complexity ``t_h = poly(n)``);
* :mod:`~repro.hashes.toy_md` -- a fast 64-bit Merkle-Damgard toy hash
  used where millions of oracle calls are needed (Monte-Carlo sweeps);
* :mod:`~repro.hashes.instantiate` -- :class:`HashOracle`, mapping a hash
  over bytes to an ``{0,1}^n_in -> {0,1}^n_out`` oracle via counter-mode
  output expansion.
"""

from repro.hashes.instantiate import HashOracle
from repro.hashes.sha3 import SHA3_256, keccak_f1600, sha3_256
from repro.hashes.sha256 import SHA256, sha256
from repro.hashes.toy_md import ToyMDHash, toy_hash

__all__ = [
    "HashOracle",
    "SHA3_256",
    "SHA256",
    "ToyMDHash",
    "keccak_f1600",
    "sha256",
    "sha3_256",
    "toy_hash",
]
