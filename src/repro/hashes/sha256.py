"""From-scratch SHA-256 (FIPS 180-4).

This is the concrete hash the reproduction uses to instantiate the random
oracle when exercising Theorem 1.1's "replace RO by a good cryptographic
hash" step.  It is a direct transcription of the standard: 512-bit blocks,
64 rounds, Merkle-Damgard with length padding.  Pure Python -- the point
is faithfulness and auditability, not throughput; the throughput-sensitive
paths use :mod:`repro.hashes.toy_md` instead.
"""

from __future__ import annotations

import struct

__all__ = ["SHA256", "sha256"]

_MASK32 = 0xFFFFFFFF

# First 32 bits of the fractional parts of the cube roots of the first 64
# primes (FIPS 180-4 section 4.2.2).
_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
    0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
    0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174,
    0xE49B69C1, 0xEFBE4786, 0x0FC19DC6, 0x240CA1CC,
    0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7,
    0xC6E00BF3, 0xD5A79147, 0x06CA6351, 0x14292967,
    0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85,
    0xA2BFE8A1, 0xA81A664B, 0xC24B8B70, 0xC76C51A3,
    0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5,
    0x391C0CB3, 0x4ED8AA4A, 0x5B9CCA4F, 0x682E6FF3,
    0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)

# First 32 bits of the fractional parts of the square roots of the first 8
# primes (FIPS 180-4 section 5.3.3).
_H0 = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)


def _rotr(x: int, n: int) -> int:
    return ((x >> n) | (x << (32 - n))) & _MASK32


def _compress(state: tuple[int, ...], block: bytes) -> tuple[int, ...]:
    """One application of the SHA-256 compression function."""
    w = list(struct.unpack(">16I", block))
    for t in range(16, 64):
        s0 = _rotr(w[t - 15], 7) ^ _rotr(w[t - 15], 18) ^ (w[t - 15] >> 3)
        s1 = _rotr(w[t - 2], 17) ^ _rotr(w[t - 2], 19) ^ (w[t - 2] >> 10)
        w.append((w[t - 16] + s0 + w[t - 7] + s1) & _MASK32)

    a, b, c, d, e, f, g, h = state
    for t in range(64):
        big_s1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
        ch = (e & f) ^ (~e & g)
        t1 = (h + big_s1 + ch + _K[t] + w[t]) & _MASK32
        big_s0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
        maj = (a & b) ^ (a & c) ^ (b & c)
        t2 = (big_s0 + maj) & _MASK32
        a, b, c, d, e, f, g, h = (
            (t1 + t2) & _MASK32, a, b, c, (d + t1) & _MASK32, e, f, g,
        )
    return tuple(
        (x + y) & _MASK32 for x, y in zip(state, (a, b, c, d, e, f, g, h))
    )


class SHA256:
    """Streaming SHA-256: ``update`` with chunks, ``digest`` when done."""

    digest_size = 32
    block_size = 64

    def __init__(self, data: bytes = b"") -> None:
        self._state = _H0
        self._buffer = b""
        self._length = 0  # total message length in bytes
        if data:
            self.update(data)

    def update(self, data: bytes) -> "SHA256":
        """Absorb more message bytes; returns self for chaining."""
        self._length += len(data)
        buf = self._buffer + data
        offset = 0
        while offset + 64 <= len(buf):
            self._state = _compress(self._state, buf[offset : offset + 64])
            offset += 64
        self._buffer = buf[offset:]
        return self

    def digest(self) -> bytes:
        """The 32-byte digest of everything absorbed so far."""
        # Merkle-Damgard strengthening: 0x80, zero pad, 64-bit bit length.
        bit_length = self._length * 8
        pad_len = (55 - self._length) % 64
        tail = b"\x80" + b"\x00" * pad_len + struct.pack(">Q", bit_length)
        state = self._state
        buf = self._buffer + tail
        for offset in range(0, len(buf), 64):
            state = _compress(state, buf[offset : offset + 64])
        return struct.pack(">8I", *state)

    def hexdigest(self) -> str:
        """The digest as a lowercase hex string."""
        return self.digest().hex()

    def copy(self) -> "SHA256":
        """An independent copy of the current streaming state."""
        clone = SHA256()
        clone._state = self._state
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


def sha256(data: bytes) -> bytes:
    """One-shot SHA-256 digest of ``data``."""
    return SHA256(data).digest()
