"""Process-pool fan-out for independent Monte-Carlo trials.

The experiments' trial loops are embarrassingly parallel: each trial
derives its own seed (:mod:`repro.parallel.seeds`), samples a fresh
``(oracle, input)`` pair, and contributes one number.  This module is
the one engine they all share::

    from repro.parallel import map_trials, seed_sequence

    seeds = seed_sequence("E-DECAY", "advance", trials)
    lengths = map_trials(partial(advance_length, params, stored), seeds)

:func:`map_trials` fans the trials across a
``concurrent.futures.ProcessPoolExecutor`` in contiguous chunks and
returns results **in trial order**, so a parallel run is
result-for-result identical to a serial one.  The parallelism degree
comes from, in priority order: the explicit ``jobs`` argument, the
ambient :func:`use_jobs` scope (how the CLI's ``--jobs`` reaches code
that never sees argv), the ``REPRO_JOBS`` environment variable, and
finally 1 (serial).

**Serial fallback.**  ``jobs=1``, a single trial, or a trial function
that cannot be pickled (a lambda, a closure) all run inline in the
parent process -- the non-picklable case emits one ``RuntimeWarning``
and degrades gracefully instead of crashing.  The serial path uses the
*same* capture-and-replay tracing as the parallel one, so the trace a
run produces is structurally identical at every ``jobs`` value.

**Worker-side observability.**  When the ambient tracer is enabled,
each trial runs under a private :class:`~repro.obs.Tracer` (in the
worker process for parallel runs, inline for serial ones); its records
travel back with the result and the parent replays them onto the
ambient stream tagged ``worker=<chunk> trial=<t>``
(:meth:`~repro.obs.Tracer.replay`).  Metrics aggregation, the
invariant monitors, and the bench-gate counter fingerprints therefore
see the same deterministic stream regardless of ``jobs`` -- the
contract ``repro trace-diff`` enforces in CI.  The ``worker`` tag is
the *chunk index* (deterministic), not the OS process id
(scheduler-dependent).

**Worker heartbeats.**  When runtime telemetry is on
(:func:`repro.telemetry.use_telemetry` / ``REPRO_TELEMETRY``) and
tracing captures, every trial additionally records one
``telemetry.heartbeat`` event -- trial index, measured wall-clock, and
the worker's RSS -- which the parent-side
:class:`repro.telemetry.StallDetector` turns into ``telemetry.stall``
violations and straggler rankings.  Heartbeat *count* is one per trial
on both the serial and parallel paths, so it is deterministic; the
payloads (wall-clock, RSS) are not, which is why ``telemetry.*`` names
are excluded from the trace-diff contract.

**Failure semantics.**  A trial that raises aborts the map: the
original exception propagates in the parent with ``.trial_index`` set
(and a PEP-678 note naming trial and worker).  Unpicklable exceptions
degrade to a ``RuntimeError`` carrying their repr.  ``KeyboardInterrupt``
cancels all queued work before re-raising, so Ctrl-C exits promptly
instead of draining the queue.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from math import ceil
from typing import Callable, Iterator, Sequence

from repro.obs import NULL_TRACER, Tracer, get_tracer, set_tracer, use_tracer
from repro.obs.tracer import TraceRecord
from repro.telemetry.config import telemetry_enabled
from repro.telemetry.heartbeat import emit_heartbeat

__all__ = [
    "TrialPool",
    "map_trials",
    "use_jobs",
    "default_jobs",
    "resolve_jobs",
]

#: Chunks per worker the dispatcher aims for; >1 smooths out uneven
#: per-trial cost without paying per-trial submission overhead.
_CHUNKS_PER_WORKER = 4

#: Upper bound on trials per chunk, so worker->parent result/trace
#: payloads stay bounded even for multi-thousand-trial sweeps.
_MAX_CHUNK = 64

_ambient_jobs: int | None = None


def default_jobs() -> int:
    """The ambient parallelism degree (no explicit ``jobs=`` given).

    An enclosing :func:`use_jobs` scope wins; otherwise the
    ``REPRO_JOBS`` environment variable (ignored if unparseable);
    otherwise 1.
    """
    if _ambient_jobs is not None:
        return _ambient_jobs
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` argument: ``None`` means ambient, floor 1."""
    if jobs is None:
        return default_jobs()
    return max(1, int(jobs))


@contextmanager
def use_jobs(jobs: int | None) -> Iterator[int]:
    """Set the ambient parallelism for a scope (the CLI's ``--jobs``).

    ``None`` leaves the ambient value untouched (so callers can write
    ``with use_jobs(args.jobs):`` unconditionally).
    """
    global _ambient_jobs
    if jobs is None:
        yield default_jobs()
        return
    previous = _ambient_jobs
    _ambient_jobs = max(1, int(jobs))
    try:
        yield _ambient_jobs
    finally:
        _ambient_jobs = previous


def _freeze_exception(exc: BaseException) -> BaseException:
    """An exception safe to ship across the process boundary."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _worker_init() -> None:
    """Process-pool initializer: detach the worker from parent state.

    A forked worker inherits the parent's ambient tracer -- emitting
    into that copy would double-write the parent's sink file
    descriptors.  Workers report only through their private capture
    tracers, shipped back as records.
    """
    set_tracer(NULL_TRACER)


def _run_chunk(
    fn: Callable,
    chunk: Sequence[tuple[int, object]],
    capture: bool,
    heartbeat: bool = False,
) -> list[tuple[int, bool, object, tuple]]:
    """Worker entry point: run ``fn`` on each ``(t, item)`` of a chunk.

    Returns ``(t, ok, payload, records)`` tuples; on the first failing
    trial the chunk stops and the failure entry carries the exception.
    Also the *serial* executor (called inline with chunk size = all),
    so both paths share one code path and one trace shape.

    ``heartbeat`` is threaded in explicitly (not read from the ambient
    telemetry switch) because workers reset ambient state in
    ``_worker_init``; when set, every successful trial appends one
    ``telemetry.heartbeat`` record to its capture trace, carrying the
    trial index, measured wall-clock, and the worker's current RSS.
    """
    out: list[tuple[int, bool, object, tuple]] = []
    # Trials must never nest another pool: a worker is already one slot
    # of the parent's budget.
    with use_jobs(1):
        for t, item in chunk:
            records: tuple = ()
            try:
                if capture:
                    tracer = Tracer()
                    started = time.perf_counter()
                    with use_tracer(tracer):
                        value = fn(item)
                    if heartbeat:
                        emit_heartbeat(
                            tracer,
                            trial=t,
                            elapsed_s=time.perf_counter() - started,
                        )
                    records = tracer.records
                else:
                    value = fn(item)
            except Exception as exc:  # noqa: BLE001 - transported to parent
                if capture:
                    records = tracer.records
                out.append((t, False, _freeze_exception(exc), records))
                return out
            out.append((t, True, value, records))
    return out


def _replay(records: Sequence[TraceRecord], worker: int, trial: int) -> None:
    tracer = get_tracer()
    for record in records:
        tracer.replay(record, worker=worker, trial=trial)


def _raise_trial_failure(exc: BaseException, trial: int, worker: int):
    exc.trial_index = trial
    note = f"repro.parallel: raised in trial {trial} (worker {worker})"
    add_note = getattr(exc, "add_note", None)
    if add_note is not None:
        add_note(note)
    raise exc


def _is_picklable(fn: Callable) -> bool:
    try:
        pickle.dumps(fn)
        return True
    except Exception:
        return False


@dataclass
class TrialPool:
    """A reusable fan-out policy: how many workers, how big the chunks.

    ``jobs=None`` defers to the ambient degree at each :meth:`map` call
    (so one pool object can serve both ``--jobs 1`` and ``--jobs 8``
    invocations); ``chunk_size=None`` auto-sizes to
    ``len(items) / (jobs * 4)``, capped at 64.

    ``estimate`` names the Monte-Carlo estimate this map contributes
    to.  When set (and tracing is on), every numeric trial result is
    echoed into the ambient stream as a ``trial.result`` event --
    ``estimate=<name> trial=<t> worker=<chunk> value=<float>
    binary=<bool>`` -- during ordered collection in the *parent*, so
    the event stream is identical at every ``--jobs N``.  The
    :class:`~repro.obs.ConvergenceMonitor` folds these into streaming
    confidence intervals.
    """

    jobs: int | None = None
    chunk_size: int | None = None
    estimate: str | None = None

    def map(self, fn: Callable, items: Sequence) -> list:
        """Run ``fn`` over ``items``; results in item order.

        See the module docstring for the tracing, fallback, and failure
        contract.  ``fn`` must be picklable (a module-level function or
        a :func:`functools.partial` over one) for the parallel path;
        anything else falls back to serial with a warning.
        """
        items = list(items)
        jobs = resolve_jobs(self.jobs)
        capture = get_tracer().enabled
        heartbeat = capture and telemetry_enabled()
        if jobs > 1 and len(items) > 1 and not _is_picklable(fn):
            warnings.warn(
                f"repro.parallel: trial function {fn!r} is not picklable; "
                "running serially",
                RuntimeWarning,
                stacklevel=3,
            )
            jobs = 1
        indexed = list(enumerate(items))
        if jobs <= 1 or len(items) <= 1:
            return self._collect(
                [_run_chunk(fn, indexed, capture, heartbeat)], capture
            )
        size = self.chunk_size or min(
            _MAX_CHUNK, max(1, ceil(len(items) / (jobs * _CHUNKS_PER_WORKER)))
        )
        chunks = [indexed[i:i + size] for i in range(0, len(indexed), size)]
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(chunks)), initializer=_worker_init
        ) as pool:
            futures = [
                pool.submit(_run_chunk, fn, chunk, capture, heartbeat)
                for chunk in chunks
            ]
            try:
                # Ordered collection: chunk k's results (and trace
                # replay) always land before chunk k+1's, whatever the
                # completion order -- determinism over latency.
                outs = [future.result() for future in futures]
            except (KeyboardInterrupt, Exception):
                for future in futures:
                    future.cancel()
                pool.shutdown(wait=False, cancel_futures=True)
                raise
        return self._collect(outs, capture)

    def _collect(self, outs: list[list[tuple]], capture: bool) -> list:
        results: dict[int, object] = {}
        tracer = get_tracer()
        for worker, chunk_out in enumerate(outs):
            for t, ok, payload, records in chunk_out:
                if capture:
                    _replay(records, worker, t)
                if not ok:
                    _raise_trial_failure(payload, t, worker)
                if (
                    capture
                    and self.estimate is not None
                    and isinstance(payload, (bool, int, float))
                ):
                    tracer.event(
                        "trial.result",
                        estimate=self.estimate,
                        trial=t,
                        worker=worker,
                        value=float(payload),
                        binary=isinstance(payload, bool),
                    )
                results[t] = payload
        return [results[t] for t in sorted(results)]


def map_trials(
    fn: Callable,
    seeds: Sequence,
    *,
    jobs: int | None = None,
    chunk_size: int | None = None,
    estimate: str | None = None,
) -> list:
    """Run ``fn(seed)`` for every seed; results in seed order.

    The one-call form of :class:`TrialPool` -- the API the experiments
    use.  ``seeds`` is any sequence of picklable per-trial arguments
    (normally :func:`repro.parallel.seeds.seed_sequence` output).
    ``estimate`` names the Monte-Carlo estimate the results feed; see
    :class:`TrialPool`.
    """
    return TrialPool(
        jobs=jobs, chunk_size=chunk_size, estimate=estimate
    ).map(fn, seeds)
