"""Deterministic, collision-free trial-seed derivation.

Every experiment in this reproduction is a Monte-Carlo loop over
independent trials, each of which needs its own ``(oracle, input)``
sample -- i.e. its own RNG seed.  The seed derivations the experiments
grew organically (``ppm * 10 + t``, ``base_seed * 1000 + t``,
``1_000_000 + t``) are ad hoc arithmetic with two problems:

* **collisions** -- ``ppm * 10 + t`` maps ``(ppm=2, t=20)`` and
  ``(ppm=4, t=0)`` to the same seed the moment ``t`` reaches 10, so two
  nominally independent trials silently share their entire probability
  sample;
* **coupling** -- nearby ``(knob, t)`` pairs produce nearby integer
  seeds, which a keyed-PRF oracle tolerates but which makes any future
  seed-derived stream correlated by construction.

:func:`trial_seed` replaces all of them with one keyed derivation: the
seed for trial ``t`` of a sweep is ``blake2b(experiment_id | knob | t)``
truncated to 63 bits.  Distinct ``(experiment_id, knob, t)`` triples
give independent-looking, collision-free (up to 2^-63) seeds, the
derivation is stable across Python versions and platforms (pure
``hashlib``), and a worker process can compute the seed of *its* trial
without any shared state -- the property :mod:`repro.parallel.pool`
leans on for deterministic fan-out.

**Seed migration note.** Switching an experiment from its legacy
arithmetic to :func:`trial_seed` changes which oracles/inputs its
trials sample, so measured tables and the deterministic counters in
``benchmarks/baseline.json`` shift *once* at the migration commit
(regenerated knowingly there -- see docs/PERFORMANCE.md).  The legacy
formulas are kept in :data:`LEGACY_SEED_FORMULAS` so the old streams
remain reproducible and the collision they suffered stays pinned by a
regression test; they must not gain new callers.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterator

__all__ = [
    "trial_seed",
    "seed_sequence",
    "iter_seed_collisions",
    "LEGACY_SEED_FORMULAS",
]

_SEP = b"\x1f"  # unit separator: cannot appear in the int repr of t


def trial_seed(experiment_id: str, knob: object = "", t: int = 0) -> int:
    """The RNG seed for trial ``t`` of one ``(experiment, knob)`` sweep.

    ``experiment_id`` names the consuming sweep (usually the experiment
    id, e.g. ``"E-DECAY"``); ``knob`` distinguishes sweep points within
    it (a ``w`` value, a ``pieces_per_machine``, a strategy label --
    anything with a stable ``str()``); ``t`` is the trial index.

    Returns a non-negative 63-bit integer, accepted verbatim by
    ``numpy.random.default_rng`` and
    :class:`~repro.oracle.lazy.LazyRandomOracle`.
    """
    if t < 0:
        raise ValueError(f"trial index must be >= 0, got {t}")
    material = (
        str(experiment_id).encode()
        + _SEP
        + str(knob).encode()
        + _SEP
        + str(int(t)).encode()
    )
    digest = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 1


def seed_sequence(
    experiment_id: str, knob: object = "", trials: int = 0
) -> list[int]:
    """Seeds for trials ``0 .. trials-1`` of one sweep point.

    The list the experiments hand to
    :func:`repro.parallel.map_trials`; element ``t`` is exactly
    ``trial_seed(experiment_id, knob, t)``.
    """
    return [trial_seed(experiment_id, knob, t) for t in range(trials)]


def _legacy_best_possible(ppm: int, t: int) -> int:
    return ppm * 10 + t


def _legacy_chain_rounds(base_seed: int, t: int) -> int:
    return base_seed * 1000 + t


def _legacy_decay(t: int) -> int:
    return 1_000_000 + t


#: The retired derivations, kept only so the old streams stay
#: reproducible in tests (notably the ``ppm * 10 + t`` collision
#: regression).  Do not add callers.
LEGACY_SEED_FORMULAS: dict[str, Callable[..., int]] = {
    "E-BEST.crossover": _legacy_best_possible,
    "E-LINE.chain": _legacy_chain_rounds,
    "E-DECAY.advance": _legacy_decay,
}


def iter_seed_collisions(seeds: list[int]) -> Iterator[tuple[int, int]]:
    """Yield ``(i, j)`` index pairs (``i < j``) with equal seeds."""
    seen: dict[int, int] = {}
    for j, seed in enumerate(seeds):
        i = seen.setdefault(seed, j)
        if i != j:
            yield (i, j)
