"""Parallel trial execution: deterministic fan-out for Monte-Carlo loops.

Two parts (see docs/PERFORMANCE.md for the user-facing contract):

* :mod:`repro.parallel.pool` -- :class:`TrialPool` / :func:`map_trials`,
  a process-pool fan-out with chunked dispatch, ordered results, serial
  fallback, ambient ``--jobs`` plumbing (:func:`use_jobs`,
  ``REPRO_JOBS``), and worker-side trace capture replayed onto the
  parent's ambient tracer;
* :mod:`repro.parallel.seeds` -- :func:`trial_seed` /
  :func:`seed_sequence`, the blake2b-keyed per-trial seed derivation
  that replaced the collision-prone ad-hoc arithmetic.

The determinism contract: for every experiment built on these
primitives, ``--jobs N`` produces bit-identical tables, verdicts, and
model-level trace counters to ``--jobs 1``.
"""

from repro.parallel.pool import (
    TrialPool,
    default_jobs,
    map_trials,
    resolve_jobs,
    use_jobs,
)
from repro.parallel.seeds import (
    LEGACY_SEED_FORMULAS,
    iter_seed_collisions,
    seed_sequence,
    trial_seed,
)

__all__ = [
    "LEGACY_SEED_FORMULAS",
    "TrialPool",
    "default_jobs",
    "iter_seed_collisions",
    "map_trials",
    "resolve_jobs",
    "seed_sequence",
    "trial_seed",
    "use_jobs",
]
