"""Executable reproduction of *On the Hardness of Massively Parallel
Computation* (Chung, Ho, Sun; SPAA 2020).

The paper proves, in the random oracle model, that there are functions a
sequential RAM computes in time ``O(T*n)`` and space ``O(S)`` which
**no** MPC algorithm with per-machine memory ``s <= S/c`` can compute in
fewer than ``~Omega(T)`` rounds -- parallelism buys at most polylog.
This library makes every object in that statement runnable:

* the **models** -- a word-RAM with an oracle gate (:mod:`repro.ram`)
  and a bit-exact MPC simulator enforcing Definitions 2.1/2.2
  (:mod:`repro.mpc`) over a random-oracle substrate (:mod:`repro.oracle`);
* the **hard functions** -- ``Line^RO`` and the warm-up ``SimLine^RO``
  (:mod:`repro.functions`), plus concrete instantiations through
  from-scratch hashes (:mod:`repro.hashes`);
* the **protocols** -- the strongest explicit MPC strategies, whose
  measured round counts trace the lower bound's shape
  (:mod:`repro.protocols`);
* the **proof** -- the compression argument as executable encoders
  with bit-exact round trips (:mod:`repro.compression`) and the paper's
  closed-form bounds (:mod:`repro.bounds`);
* the **baselines** -- s-shuffle circuits and a CREW PRAM
  (:mod:`repro.baselines`);
* the **evaluation** -- per-claim experiments regenerating each table,
  figure, and theorem shape (:mod:`repro.experiments`), with the
  statistics harness in :mod:`repro.analysis`.

Quickstart::

    import numpy as np
    from repro import LineParams, LazyRandomOracle, sample_input, evaluate_line

    params = LineParams(n=36, u=8, v=8, w=64)
    oracle = LazyRandomOracle(params.n, params.n, seed=0)
    x = sample_input(params, np.random.default_rng(0))
    output = evaluate_line(params, x, oracle)

See ``examples/`` for the full tour and ``EXPERIMENTS.md`` for the
paper-vs-measured record.
"""

from repro.bits import Bits
from repro.functions import (
    LineParams,
    SimLineParams,
    evaluate_line,
    evaluate_simline,
    sample_input,
    trace_line,
    trace_simline,
)
from repro.mpc import MPCParams, MPCSimulator
from repro.oracle import LazyRandomOracle, TableOracle

__version__ = "1.0.0"

__all__ = [
    "Bits",
    "LazyRandomOracle",
    "LineParams",
    "MPCParams",
    "MPCSimulator",
    "SimLineParams",
    "TableOracle",
    "__version__",
    "evaluate_line",
    "evaluate_simline",
    "sample_input",
    "trace_line",
    "trace_simline",
]
