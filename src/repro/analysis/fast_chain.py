"""Vectorized chain-statistics engine for large-scale sweeps.

The exact simulators execute every oracle call; at ``w = 10^5`` and
thousands of Monte-Carlo trials that is Python-loop bound.  This module
exploits a structural fact the proofs also use: under a uniform oracle
(and absent the negligible-probability query collisions), the pointer
sequence ``l_1, l_2, ...`` of a ``Line`` evaluation is i.i.d. uniform
over ``[v]`` -- each pointer is a field of a fresh uniform answer.  For
the frontier protocol with cyclic windows of fraction ``f = b/v``, the
event "the next pointer stays on the current machine" is therefore
i.i.d. Bernoulli(``f``), and

* the number of rounds is ``1 + Binomial(w - 1, 1 - f)``,
* the per-visit advance length is geometric with ratio ``f``.

Everything here is a numpy one-liner over that reduction, which makes
paper-scale sweeps instantaneous.  The reduction itself is *validated*
against the exact bit-level simulator in
``tests/analysis/test_fast_chain.py`` -- the fast path is only trusted
because the slow path agrees with it.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "expected_rounds",
    "simulate_round_counts",
    "simulate_advance_lengths",
    "advance_tail_probability",
]


def _check_fraction(f: float) -> None:
    if not 0.0 < f < 1.0:
        raise ValueError(f"storage fraction must be in (0, 1), got {f}")


def expected_rounds(w: int, f: float) -> float:
    """``E[rounds] = 1 + (w-1)(1-f)`` for the frontier protocol."""
    if w <= 0:
        raise ValueError(f"w must be positive, got {w}")
    _check_fraction(f)
    return 1.0 + (w - 1) * (1.0 - f)


def simulate_round_counts(
    w: int, f: float, *, trials: int, rng: np.random.Generator
) -> np.ndarray:
    """``trials`` i.i.d. samples of the protocol's round count.

    Each pointer transition leaves the current window independently with
    probability ``1 - f``; a departure costs one handoff round.
    """
    if w <= 0 or trials <= 0:
        raise ValueError(f"invalid (w={w}, trials={trials})")
    _check_fraction(f)
    return 1 + rng.binomial(w - 1, 1.0 - f, size=trials)


def simulate_advance_lengths(
    f: float, *, trials: int, rng: np.random.Generator
) -> np.ndarray:
    """Per-visit advance lengths: geometric with success ratio ``f``.

    The visiting machine always advances the node it was handed (its
    window contains that pointer), then continues while consecutive
    pointers stay local.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    _check_fraction(f)
    # numpy's geometric counts trials to first success with p; we want
    # 1 + (number of consecutive f-events), i.e. geometric(1-f).
    return rng.geometric(1.0 - f, size=trials)


def advance_tail_probability(f: float, p: int) -> float:
    """``Pr[advance >= p] = f^(p-1)`` -- the E-DECAY closed form."""
    _check_fraction(f)
    if p <= 0:
        raise ValueError(f"p must be positive, got {p}")
    return f ** (p - 1)
