"""Measurement and reporting harness.

* :mod:`~repro.analysis.montecarlo` -- seeded trial runners;
* :mod:`~repro.analysis.statistics` -- confidence intervals and the
  log-log / exponential fits the shape checks use (scipy);
* :mod:`~repro.analysis.tables` -- ASCII rendering of the rows each
  benchmark prints.
"""

from repro.analysis.montecarlo import run_trials, spawn_seeds
from repro.analysis.statistics import (
    binomial_ci,
    fit_exponential_decay,
    fit_power_law,
    mean_ci,
)
from repro.analysis.tables import format_table

__all__ = [
    "binomial_ci",
    "fit_exponential_decay",
    "fit_power_law",
    "format_table",
    "mean_ci",
    "run_trials",
    "spawn_seeds",
]
