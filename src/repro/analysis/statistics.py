"""Statistical fits behind the shape checks.

The experiments validate *shapes*: rounds linear in ``T`` (power-law
exponent ~1), inverse in ``s`` (exponent ~-1), advance probabilities
decaying exponentially in the look-ahead depth.  These are ordinary
least squares fits in the appropriate transform, with confidence
intervals so the benchmark tables can state uncertainty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

__all__ = [
    "mean_ci",
    "binomial_ci",
    "fit_power_law",
    "fit_exponential_decay",
    "PowerLawFit",
    "DecayFit",
]


def mean_ci(
    values: Sequence[float], confidence: float = 0.95
) -> tuple[float, float]:
    """Sample mean and half-width of its t-based confidence interval."""
    if len(values) == 0:
        raise ValueError("no values")
    arr = np.asarray(values, dtype=float)
    mean = float(arr.mean())
    if len(arr) == 1:
        return mean, math.inf
    sem = float(stats.sem(arr))
    if sem == 0.0:
        return mean, 0.0
    half = float(sem * stats.t.ppf((1 + confidence) / 2, len(arr) - 1))
    return mean, half


def binomial_ci(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float, float]:
    """Wilson score interval: (rate, low, high)."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} out of [0, {trials}]")
    z = stats.norm.ppf((1 + confidence) / 2)
    phat = successes / trials
    denom = 1 + z**2 / trials
    center = (phat + z**2 / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(phat * (1 - phat) / trials + z**2 / (4 * trials**2))
        / denom
    )
    return phat, max(0.0, center - half), min(1.0, center + half)


@dataclass(frozen=True)
class PowerLawFit:
    """``y ~ C · x^exponent`` fitted on log-log axes."""

    exponent: float
    log2_constant: float
    r_squared: float


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """OLS on ``log2 y = e·log2 x + c``; requires positive data."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs of equal length")
    lx = np.log2(np.asarray(xs, dtype=float))
    ly = np.log2(np.asarray(ys, dtype=float))
    result = stats.linregress(lx, ly)
    return PowerLawFit(
        exponent=float(result.slope),
        log2_constant=float(result.intercept),
        r_squared=float(result.rvalue**2),
    )


@dataclass(frozen=True)
class DecayFit:
    """``p(k) ~ C · rate^k`` fitted on semi-log axes (rate in (0, 1))."""

    rate: float
    log2_constant: float
    r_squared: float


def fit_exponential_decay(
    ks: Sequence[float], probs: Sequence[float]
) -> DecayFit:
    """OLS on ``log2 p = k·log2(rate) + c``; zero probabilities dropped."""
    pairs = [(k, p) for k, p in zip(ks, probs) if p > 0]
    if len(pairs) < 2:
        raise ValueError("need at least two positive-probability points")
    lx = np.asarray([k for k, _ in pairs], dtype=float)
    ly = np.log2(np.asarray([p for _, p in pairs], dtype=float))
    result = stats.linregress(lx, ly)
    return DecayFit(
        rate=float(2.0**result.slope),
        log2_constant=float(result.intercept),
        r_squared=float(result.rvalue**2),
    )
