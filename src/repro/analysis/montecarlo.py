"""Seeded Monte-Carlo trial runners.

Every experiment derives per-trial seeds from one base seed so runs are
reproducible and trials are independent (numpy's ``SeedSequence``
spawning, the recommended idiom for parallel statistical work).
"""

from __future__ import annotations

from typing import Callable, TypeVar

import numpy as np

__all__ = ["spawn_seeds", "run_trials"]

T = TypeVar("T")


def spawn_seeds(base_seed: int, count: int) -> list[int]:
    """``count`` independent 63-bit seeds derived from ``base_seed``."""
    if count < 0:
        raise ValueError(f"negative count {count}")
    seq = np.random.SeedSequence(base_seed)
    return [int(s.generate_state(1)[0]) for s in seq.spawn(count)]


def run_trials(
    trial: Callable[[int], T], *, trials: int, base_seed: int = 0
) -> list[T]:
    """Run ``trial(seed)`` for ``trials`` independent seeds."""
    if trials <= 0:
        raise ValueError(f"need at least one trial, got {trials}")
    return [trial(seed) for seed in spawn_seeds(base_seed, trials)]
