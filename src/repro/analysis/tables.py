"""ASCII table rendering for benchmark and experiment output."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Render rows as a fixed-width ASCII table."""
    cells = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
