"""The "emulate the RAM step by step" observation (Section 1).

"It is easy to see that an MPC algorithm can compute the function in
``T`` rounds by emulating the RAM computation step by step, even when
each machine has ``O(log S)`` local memory size" -- modulo holding one
``u``-bit input piece, which is the smallest unit the input can be
split into.  The configuration is the chain protocol specialized to one
piece per machine (``m = v``, ``f = 1/v``): the frontier advances one
node per hop almost always, so the run takes ``~w`` rounds with tiny
machines.  This is the *upper* end of the paper's hardness claim: the
lower bound says nothing beats this by more than polylog factors when
``s <= S/c``.
"""

from __future__ import annotations

from repro.bits import Bits
from repro.functions.params import LineParams
from repro.protocols.chain import ChainSetup, build_chain_protocol

__all__ = ["build_ram_emulation"]


def build_ram_emulation(
    fn_params: LineParams,
    x: list[Bits],
    *,
    q: int | None = None,
    max_rounds: int | None = None,
) -> ChainSetup:
    """One machine per input piece: the ``T``-round step-by-step emulation.

    Each machine's memory is one piece plus the frontier --
    ``u + O(log S + log T)`` bits, the model's minimum for this input
    encoding.
    """
    return build_chain_protocol(
        fn_params,
        x,
        num_machines=fn_params.v,
        pieces_per_machine=1,
        q=q,
        max_rounds=max_rounds,
    )
