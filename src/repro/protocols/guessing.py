"""Skip-ahead adversaries -- the empirical side of Lemma 3.3 / Lemma A.7.

Both lemmas bound the probability that an algorithm queries chain entry
``j+1`` *without having queried entry ``j``*: the unseen running value
``r_{j+1}`` is uniform over ``2^u`` possibilities conditioned on
everything the algorithm has seen, so any guess succeeds with
probability at most ``2^-u``.

The Monte-Carlo drivers here hand the adversary *everything except* the
answer to entry ``j`` -- the full input ``X``, the chain prefix up to
``j``, even the oracle's entire table outside the entry being guessed --
and measure how often a guessed query hits the true entry ``j+1``.
Strategies:

* ``"uniform"`` -- guess ``r`` uniformly (the information-theoretic
  baseline; succeeds with probability exactly ``2^-u``);
* ``"zero"``    -- always guess ``r = 0^u`` (a fixed guess; same bound);
* ``"rerun"``   -- evaluate the chain against a *fresh* oracle that
  agrees with the true one everywhere except entry ``j``, and use the
  value that run produces (models an adversary extrapolating from
  correlated information; the patched entry's answer is independent, so
  the bound still applies).

Each trial draws a fresh ``TableOracle`` -- a fresh sample of the
paper's probability space -- so the measured frequency is an unbiased
estimate of the lemma's probability at the same (small) ``u``.

Trials are independent by construction: each one derives its own RNG
from :func:`repro.parallel.trial_seed` keyed on the caller's ``seed``
(the family selector), strategy, and trial index, and the drivers fan
them out with :func:`repro.parallel.map_trials` -- ``jobs=N`` returns
bit-identical reports to a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Literal

import numpy as np

from repro.bits import Bits
from repro.functions.line import line_query, trace_line
from repro.functions.params import LineParams
from repro.functions.simline import simline_query, trace_simline
from repro.functions.params import SimLineParams
from repro.functions.inputs import sample_input
from repro.obs import get_tracer
from repro.oracle.table import TableOracle
from repro.parallel import map_trials, seed_sequence

__all__ = ["GuessingReport", "estimate_line_skip_probability", "estimate_simline_skip_probability"]

Strategy = Literal["uniform", "zero", "rerun"]


@dataclass(frozen=True)
class GuessingReport:
    """Outcome of a skip-ahead Monte Carlo."""

    trials: int
    successes: int
    u: int
    strategy: str

    @property
    def rate(self) -> float:
        """Measured success frequency."""
        return self.successes / self.trials

    @property
    def bound(self) -> float:
        """The lemma's bound ``2^-u`` for one guess."""
        return 2.0 ** (-self.u)


def _random_bits(n: int, rng: np.random.Generator) -> Bits:
    """A uniform ``n``-bit string assembled from 32-bit limbs."""
    value = 0
    remaining = n
    while remaining > 0:
        take = min(32, remaining)
        value = (value << take) | int(rng.integers(0, 1 << take, dtype=np.uint64))
        remaining -= take
    return Bits(value, n)


def _guess_r(
    strategy: Strategy, u: int, rng: np.random.Generator, rerun_value: Bits | None
) -> Bits:
    if strategy == "uniform":
        return Bits(int(rng.integers(0, 1 << u)), u)
    if strategy == "zero":
        return Bits.zeros(u)
    if strategy == "rerun":
        assert rerun_value is not None
        return rerun_value
    raise ValueError(f"unknown strategy {strategy!r}")


def line_skip_trial(
    params: LineParams, skip_at: int, strategy: Strategy, seed: int
) -> bool:
    """One Lemma 3.3 trial: did the skip-ahead guess hit entry ``skip_at+1``?"""
    rng = np.random.default_rng(seed)
    oracle = TableOracle.sample(params.n, params.n, rng)
    x = sample_input(params, rng)
    trace = trace_line(params, x, oracle)
    target = trace.nodes[skip_at + 1]

    rerun_value: Bits | None = None
    if strategy == "rerun":
        # Re-run against an oracle whose entry `skip_at` is resampled:
        # everything the adversary can simulate without the true entry.
        hidden = trace.nodes[skip_at].query
        fresh = _random_bits(params.n, rng)
        rerun_trace = trace_line(
            params, x, oracle.with_overrides({hidden: fresh})
        )
        rerun_value = rerun_trace.nodes[skip_at + 1].r

    guess_r = _guess_r(strategy, params.u, rng, rerun_value)
    # The adversary knows i and can try every pointer value; success
    # means *some* pointer with the guessed r hits the true entry,
    # i.e. exactly that guess_r == r_{skip_at+1}.
    guessed = line_query(params, target.i, x[target.ell], guess_r)
    return guessed == target.query


def simline_skip_trial(
    params: SimLineParams, skip_at: int, strategy: Strategy, seed: int
) -> bool:
    """One Lemma A.7 trial (the ``SimLine`` twin of :func:`line_skip_trial`)."""
    rng = np.random.default_rng(seed)
    oracle = TableOracle.sample(params.n, params.n, rng)
    x = sample_input(params, rng)
    trace = trace_simline(params, x, oracle)
    target = trace.nodes[skip_at + 1]

    rerun_value: Bits | None = None
    if strategy == "rerun":
        hidden = trace.nodes[skip_at].query
        fresh = _random_bits(params.n, rng)
        rerun_trace = trace_simline(
            params, x, oracle.with_overrides({hidden: fresh})
        )
        rerun_value = rerun_trace.nodes[skip_at + 1].r

    guess_r = _guess_r(strategy, params.u, rng, rerun_value)
    guessed = simline_query(params, x[target.piece], guess_r)
    return guessed == target.query


def estimate_line_skip_probability(
    params: LineParams,
    *,
    trials: int,
    skip_at: int,
    strategy: Strategy = "uniform",
    seed: int = 0,
    jobs: int | None = None,
) -> GuessingReport:
    """Monte-Carlo Lemma 3.3 for ``Line``: guess entry ``skip_at + 1``.

    Per trial: sample ``(RO, X)`` fresh, reveal the chain up to node
    ``skip_at`` (exclusive) plus all of ``X``, and test whether the
    adversary's query for node ``skip_at + 1`` equals the true one --
    which requires guessing the unseen ``r_{skip_at+1}``.  ``seed``
    selects the trial family; ``jobs`` defaults to the ambient
    parallelism (see :mod:`repro.parallel`).
    """
    if not 0 <= skip_at < params.w - 1:
        raise ValueError(
            f"skip_at={skip_at} must leave a next node: 0 <= skip_at < w-1"
        )
    hits = map_trials(
        partial(line_skip_trial, params, skip_at, strategy),
        seed_sequence("guess.line", f"{seed}/{strategy}/skip{skip_at}", trials),
        jobs=jobs,
        estimate=f"guess.line.u={params.u}.{strategy}",
    )
    report = GuessingReport(
        trials=trials, successes=sum(hits), u=params.u, strategy=strategy
    )
    _announce_guessing_cost("guessing.line", report)
    return report


def estimate_simline_skip_probability(
    params: SimLineParams,
    *,
    trials: int,
    skip_at: int,
    strategy: Strategy = "uniform",
    seed: int = 0,
    jobs: int | None = None,
) -> GuessingReport:
    """Monte-Carlo Lemma A.7 for ``SimLine`` (same experiment shape)."""
    if not 0 <= skip_at < params.w - 1:
        raise ValueError(
            f"skip_at={skip_at} must leave a next node: 0 <= skip_at < w-1"
        )
    hits = map_trials(
        partial(simline_skip_trial, params, skip_at, strategy),
        seed_sequence(
            "guess.simline", f"{seed}/{strategy}/skip{skip_at}", trials
        ),
        jobs=jobs,
        estimate=f"guess.simline.u={params.u}.{strategy}",
    )
    report = GuessingReport(
        trials=trials, successes=sum(hits), u=params.u, strategy=strategy
    )
    _announce_guessing_cost("guessing.simline", report)
    return report


def _announce_guessing_cost(model: str, report: GuessingReport) -> None:
    """Emit an inline ``cost.model`` event: the Lemma 3.3 / A.7 check.

    The Monte Carlo has no run span to pair with, so the announcement
    carries its own measurement; the cost oracle checks the success
    count against ``trials * 2^-u`` plus the declared statistical slack
    on receipt.
    """
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            "cost.model",
            model=model,
            trigger="inline",
            params={
                "u": report.u,
                "trials": report.trials,
                "strategy": report.strategy,
            },
            measured={"successes": report.successes},
        )
