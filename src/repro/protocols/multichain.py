"""K independent ``Line`` instances in one MPC computation.

The theorem bounds the *latency* of one evaluation; it says nothing
against *throughput*.  This module makes that distinction concrete: K
independent chains (domain-separated through the node-index field, so
one oracle serves all instances) are evaluated concurrently by the same
memory-limited cluster.  All K frontiers circulate at once, so the run
finishes in ``~max_k (1-f)·w`` rounds -- barely more than a single
instance -- while doing ``K·w`` oracle work.  Parallel machines pay for
themselves on many evaluations, never on one: exactly the reading of
"nearly best-possible hardness" the introduction gives.

Wire format (module-local tag space, 2 bits):

* ``STORE``    count + (global piece id, piece) pairs, sent to self;
* ``FRONTIER`` global node index + global piece id + ``r``;
* ``OUTPUT``   instance id + the instance's n-bit answer (to machine 0);
* ``DONE``     broadcast by machine 0 once all K outputs arrived.

Global namespaces: instance ``k``'s node ``i`` has global index
``k·w + i`` (this is also what the oracle query's index field carries --
the domain separation); its piece ``j`` has global id ``k·v + j``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Sequence

from repro.bits import BitReader, BitWriter, Bits, bits_needed
from repro.functions.line import line_query
from repro.functions.params import LineParams
from repro.mpc.machine import Machine, RoundContext, RoundOutput
from repro.mpc.model import MPCParams
from repro.engine import make_simulator
from repro.mpc.simulator import MPCResult
from repro.oracle.base import Oracle
from repro.protocols.chain import cyclic_replicated_owners

__all__ = [
    "MultiChainSetup",
    "MultiChainMachine",
    "build_multichain_protocol",
    "run_multichain",
    "evaluate_instance",
]

_TAG_BITS = 2


class _Tag(IntEnum):
    STORE = 0
    FRONTIER = 1
    OUTPUT = 2
    DONE = 3


@dataclass(frozen=True)
class _Layout:
    """Bit widths of the combined namespaces."""

    instances: int
    params: LineParams  # combined: v = per-instance v, w = K * per-instance w
    w_each: int

    @property
    def node_bits(self) -> int:
        return bits_needed(self.params.w + 1)

    @property
    def piece_bits(self) -> int:
        return max(bits_needed(self.instances * self.params.v), 1)

    @property
    def count_bits(self) -> int:
        return max(bits_needed(self.instances * self.params.v + 1), 1)

    @property
    def instance_bits(self) -> int:
        return max(bits_needed(self.instances), 1)


def evaluate_instance(
    layout: _Layout, x: Sequence[Bits], instance: int, oracle: Oracle
) -> Bits:
    """Reference evaluation of instance ``k`` (domain-separated chain)."""
    params = layout.params
    if not 0 <= instance < layout.instances:
        raise ValueError(f"instance {instance} out of range")
    ell = 0
    r = Bits.zeros(params.u)
    answer = Bits.zeros(params.n)
    base = instance * layout.w_each
    for i in range(layout.w_each):
        answer = oracle.query(line_query(params, base + i, x[ell], r))
        fields = params.answer_codec.unpack_bits(answer)
        ell = params.ell_of_answer(fields["ell"].value)
        r = fields["r"]
    return answer


class MultiChainMachine(Machine):
    """Advances every frontier it holds; machine 0 collects outputs."""

    #: Output for rounds >= 1 is a pure function of the incoming
    #: messages; safe for the fast backend's steady-state memo.
    round_oblivious = True

    def __init__(
        self,
        layout: _Layout,
        machine_id: int,
        my_pieces: frozenset[int],  # global piece ids
        handoff: dict[int, int],  # global piece id -> machine
        start_frontiers: tuple[int, ...],  # instances whose chain starts here
    ) -> None:
        self._layout = layout
        self._id = machine_id
        self._my_pieces = my_pieces
        self._handoff = handoff
        self._starts = start_frontiers

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------
    def _encode_store(self, store: dict[int, Bits]) -> Bits:
        lay = self._layout
        w = BitWriter()
        w.write(_Tag.STORE, _TAG_BITS)
        w.write(len(store), lay.count_bits)
        for gid in sorted(store):
            w.write(gid, lay.piece_bits)
            w.write_bits(store[gid])
        return w.getvalue()

    def _encode_frontier(self, node: int, pointer: int, r: Bits) -> Bits:
        lay = self._layout
        w = BitWriter()
        w.write(_Tag.FRONTIER, _TAG_BITS)
        w.write(node, lay.node_bits)
        w.write(pointer, lay.piece_bits)
        w.write_bits(r)
        return w.getvalue()

    def _encode_output(self, instance: int, answer: Bits) -> Bits:
        lay = self._layout
        w = BitWriter()
        w.write(_Tag.OUTPUT, _TAG_BITS)
        w.write(instance, lay.instance_bits)
        w.write_bits(answer)
        return w.getvalue()

    def _decode(self, payload: Bits):
        lay = self._layout
        reader = BitReader(payload)
        while not reader.at_end():
            tag = _Tag(reader.read(_TAG_BITS))
            if tag is _Tag.STORE:
                count = reader.read(lay.count_bits)
                store = {}
                for _ in range(count):
                    gid = reader.read(lay.piece_bits)
                    store[gid] = reader.read_bits(lay.params.u)
                yield tag, store
            elif tag is _Tag.FRONTIER:
                node = reader.read(lay.node_bits)
                pointer = reader.read(lay.piece_bits)
                r = reader.read_bits(lay.params.u)
                yield tag, (node, pointer, r)
            elif tag is _Tag.OUTPUT:
                instance = reader.read(lay.instance_bits)
                answer = reader.read_bits(lay.params.n)
                yield tag, (instance, answer)
            else:
                yield tag, None

    # ------------------------------------------------------------------
    def run_round(self, ctx: RoundContext) -> RoundOutput:
        lay = self._layout
        params = lay.params
        store: dict[int, Bits] = {}
        frontiers: list[tuple[int, int, Bits]] = []
        collected: dict[int, Bits] = {}

        for _sender, payload in ctx.incoming:
            for tag, value in self._decode(payload):
                if tag is _Tag.DONE:
                    return RoundOutput(halt=True)
                if tag is _Tag.STORE:
                    store.update(value)
                elif tag is _Tag.FRONTIER:
                    frontiers.append(value)
                elif tag is _Tag.OUTPUT:
                    collected[value[0]] = value[1]

        if ctx.round == 0:
            for instance in self._starts:
                frontiers.append(
                    (instance * lay.w_each, instance * params.v, Bits.zeros(params.u))
                )

        out = RoundOutput()
        outputs_to_send: list[tuple[int, Bits]] = []
        outgoing: dict[int, list[Bits]] = {}
        for node, pointer, r in frontiers:
            node, pointer, r, answer = self._advance(ctx, store, node, pointer, r)
            if node % lay.w_each == 0 and node > 0 and answer is not None:
                # Ran off the end of this instance's chain: finished.
                outputs_to_send.append(((node - 1) // lay.w_each, answer))
            else:
                target = self._handoff[pointer]
                outgoing.setdefault(target, []).append(
                    self._encode_frontier(node, pointer, r)
                )

        # Machine 0 is the collector: local finishes merge directly,
        # remote finishes travel as OUTPUT records.
        if self._id == 0:
            collected.update(outputs_to_send)
            if len(collected) == lay.instances:
                final = Bits.concat([collected[k] for k in range(lay.instances)])
                return RoundOutput(
                    output=final,
                    messages={
                        j: Bits(_Tag.DONE, _TAG_BITS)
                        for j in range(ctx.num_machines)
                    },
                )
            if collected:
                outgoing.setdefault(self._id, []).append(
                    Bits.concat(
                        [self._encode_output(k, a) for k, a in sorted(collected.items())]
                    )
                )
        elif outputs_to_send:
            outgoing.setdefault(0, []).append(
                Bits.concat(
                    [self._encode_output(k, a) for k, a in outputs_to_send]
                )
            )

        if store:
            outgoing.setdefault(self._id, []).append(self._encode_store(store))
        out.messages = {dst: Bits.concat(parts) for dst, parts in outgoing.items()}
        return out

    def _advance(self, ctx, store, node, pointer, r):
        lay = self._layout
        params = lay.params
        answer = None
        while node < params.w and pointer in store:
            answer = ctx.oracle.query(
                line_query(params, node, store[pointer], r)
            )
            fields = params.answer_codec.unpack_bits(answer)
            node += 1
            if node % lay.w_each == 0:
                break  # end of this instance's chain
            instance = node // lay.w_each
            pointer = instance * params.v + params.ell_of_answer(
                fields["ell"].value
            )
            r = fields["r"]
        return node, pointer, r, answer


@dataclass
class MultiChainSetup:
    """Everything needed to simulate one multi-instance run."""

    layout: _Layout
    mpc_params: MPCParams
    machines: list[MultiChainMachine]
    initial_memories: list[Bits]
    inputs: list[list[Bits]]  # per instance

    @property
    def instances(self) -> int:
        """Number of concurrent chains K."""
        return self.layout.instances


def build_multichain_protocol(
    *,
    n: int,
    u: int,
    v: int,
    w_each: int,
    instances: int,
    inputs: Sequence[Sequence[Bits]],
    num_machines: int,
    pieces_per_machine: int | None = None,
    max_rounds: int | None = None,
) -> MultiChainSetup:
    """Configure K domain-separated chains over one cluster.

    Storage: per instance, each machine holds the same cyclic window of
    ``pieces_per_machine`` pieces, so the per-instance stored fraction
    ``f`` matches the single-chain protocol at equal window size.
    """
    if instances <= 0:
        raise ValueError(f"need at least one instance, got {instances}")
    if len(inputs) != instances:
        raise ValueError(
            f"got {len(inputs)} inputs for {instances} instances"
        )
    params = LineParams(n=n, u=u, v=v, w=instances * w_each)
    layout = _Layout(instances=instances, params=params, w_each=w_each)
    if pieces_per_machine is None:
        pieces_per_machine = -(-v // num_machines)
    owners = cyclic_replicated_owners(v, num_machines, pieces_per_machine)
    handoff_local = {p: lst[0] for p, lst in enumerate(owners)}

    machine_pieces: list[set[int]] = [set() for _ in range(num_machines)]
    handoff: dict[int, int] = {}
    for k in range(instances):
        for p, lst in enumerate(owners):
            gid = k * v + p
            handoff[gid] = handoff_local[p]
            for machine in lst:
                machine_pieces[machine].add(gid)

    start_owner = handoff_local[0]
    machines = [
        MultiChainMachine(
            layout,
            mid,
            frozenset(machine_pieces[mid]),
            handoff,
            start_frontiers=tuple(range(instances)) if mid == start_owner else (),
        )
        for mid in range(num_machines)
    ]
    initial_memories = []
    for mid in range(num_machines):
        store = {}
        for gid in machine_pieces[mid]:
            k, p = divmod(gid, v)
            store[gid] = inputs[k][p]
        initial_memories.append(
            machines[mid]._encode_store(store) if store else Bits(0, 0)
        )
    # Memory: store + up to K frontiers + K collected outputs (machine 0).
    store_bits = max(len(m) for m in initial_memories)
    frontier_bits = _TAG_BITS + layout.node_bits + layout.piece_bits + u
    output_bits = _TAG_BITS + layout.instance_bits + n
    # Worst inbox: the store, K frontiers, K fresh outputs, and machine
    # 0's persisted partial collection of K outputs.
    s_bits = store_bits + instances * (frontier_bits + 2 * output_bits) + 16
    mpc_params = MPCParams(
        m=num_machines,
        s_bits=s_bits,
        max_rounds=max_rounds if max_rounds is not None else 3 * w_each + 20,
    )
    return MultiChainSetup(
        layout=layout,
        mpc_params=mpc_params,
        machines=machines,
        initial_memories=initial_memories,
        inputs=[list(xs) for xs in inputs],
    )


def run_multichain(setup: MultiChainSetup, oracle: Oracle) -> MPCResult:
    """Simulate; machine 0's output is the K concatenated answers."""
    sim = make_simulator(setup.mpc_params, setup.machines, oracle=oracle)
    return sim.run(setup.initial_memories)
