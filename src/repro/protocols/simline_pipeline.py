"""Round-robin pipeline for ``SimLine`` -- the matching upper bound.

``SimLine``'s access pattern is the deterministic round robin
``x_0, x_1, ..., x_{v-1}, x_0, ...``, so a machine holding ``b``
*consecutive* pieces advances ``b`` nodes per visit: the frontier sweeps
across the machines like a pipeline, taking ``~w/b = w·u/s`` rounds
total.  This matches Lemma A.2's ``Omega(T·u/s)`` lower bound up to a
constant, demonstrating that the warm-up analysis is tight -- and, by
contrast with :mod:`repro.protocols.chain`, that the *random* pointer of
``Line`` is what destroys this speedup (ablation E-SIMLINE vs E-LINE).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits import Bits
from repro.costmodel.announce import pipeline_cost_bindings
from repro.functions.params import SimLineParams
from repro.functions.simline import simline_query
from repro.obs import get_tracer
from repro.mpc.machine import Machine, RoundContext, RoundOutput
from repro.mpc.model import MPCParams
from repro.engine import make_simulator
from repro.mpc.simulator import MPCResult
from repro.oracle.base import Oracle
from repro.protocols.chain import cyclic_replicated_owners
from repro.protocols.wire import (
    Frontier,
    MessageKind,
    decode_records,
    encode_done,
    encode_frontier,
    encode_store,
    frontier_bits_required,
    store_bits_required,
)

__all__ = ["PipelineSetup", "SimLinePipelineMachine", "build_simline_pipeline", "run_pipeline"]


class SimLinePipelineMachine(Machine):
    """One stage of the pipeline: a contiguous window of pieces."""

    #: Output for rounds >= 1 is a pure function of the incoming
    #: messages; safe for the fast backend's steady-state memo.
    round_oblivious = True

    def __init__(
        self,
        params: SimLineParams,
        machine_id: int,
        my_pieces: frozenset[int],
        handoff: dict[int, int],
        *,
        starts_frontier: bool,
        q: int | None = None,
    ) -> None:
        self._params = params
        self._id = machine_id
        self._my_pieces = my_pieces
        self._handoff = handoff
        self._starts_frontier = starts_frontier
        self._q = q

    def run_round(self, ctx: RoundContext) -> RoundOutput:
        params = self._params
        store: dict[int, Bits] = {}
        frontier: Frontier | None = None

        for _sender, payload in ctx.incoming:
            for kind, value in decode_records(params, payload):
                if kind is MessageKind.DONE:
                    return RoundOutput(halt=True)
                if kind is MessageKind.STORE:
                    store.update(value)
                elif kind is MessageKind.FRONTIER:
                    frontier = value

        if ctx.round == 0 and self._starts_frontier:
            frontier = Frontier(node=0, pointer=0, r=Bits.zeros(params.u))

        out = RoundOutput()
        if frontier is not None:
            frontier, answer = self._advance(ctx, store, frontier)
            if frontier.node >= params.w:
                out.output = answer
                out.messages = {
                    j: encode_done() for j in range(ctx.num_machines)
                }
                return out
            target = self._handoff[frontier.pointer]
            out.messages[target] = encode_frontier(params, frontier)

        if store:
            self_msg = encode_store(params, sorted(store.items()))
            prev = out.messages.get(self._id)
            out.messages[self._id] = (prev + self_msg) if prev else self_msg
        return out

    def _advance(
        self, ctx: RoundContext, store: dict[int, Bits], frontier: Frontier
    ) -> tuple[Frontier, Bits | None]:
        params = self._params
        answer: Bits | None = None
        queries = 0
        while (
            frontier.node < params.w
            and frontier.pointer in store
            and (self._q is None or queries < self._q)
        ):
            answer = ctx.oracle.query(
                simline_query(params, store[frontier.pointer], frontier.r)
            )
            queries += 1
            next_node = frontier.node + 1
            frontier = Frontier(
                node=next_node,
                pointer=params.piece_index(next_node),
                r=params.answer_codec.unpack_bits(answer)["r"],
            )
        return frontier, answer


@dataclass
class PipelineSetup:
    """Everything needed to simulate one pipeline run."""

    fn_params: SimLineParams
    mpc_params: MPCParams
    machines: list[SimLinePipelineMachine]
    initial_memories: list[Bits]
    x: list[Bits]
    piece_owners: list[list[int]]

    @property
    def pieces_per_machine(self) -> int:
        """Window size ``b`` (pieces per machine)."""
        counts: dict[int, int] = {}
        for owners in self.piece_owners:
            for k in owners:
                counts[k] = counts.get(k, 0) + 1
        return max(counts.values())


def build_simline_pipeline(
    fn_params: SimLineParams,
    x: list[Bits],
    *,
    num_machines: int,
    pieces_per_machine: int | None = None,
    q: int | None = None,
    max_rounds: int | None = None,
    slack_bits: int = 0,
) -> PipelineSetup:
    """Configure the pipeline: contiguous windows, tight memory.

    The realized local memory is ``store(b) + frontier + slack`` bits
    where ``b = pieces_per_machine``, so sweeping ``b`` sweeps ``s``
    while keeping the accounting honest.
    """
    v = fn_params.v
    if pieces_per_machine is None:
        pieces_per_machine = -(-v // num_machines)
    owners = cyclic_replicated_owners(v, num_machines, pieces_per_machine)
    machine_pieces: list[set[int]] = [set() for _ in range(num_machines)]
    for p, lst in enumerate(owners):
        for k in lst:
            machine_pieces[k].add(p)

    def run_length(k: int, p: int) -> int:
        # Consecutive pieces p, p+1, ... (mod v) held by machine k: the
        # number of nodes it can advance before stalling.
        length = 0
        while length < v and (p + length) % v in machine_pieces[k]:
            length += 1
        return length

    # Hand each piece to the owner that can carry the frontier furthest.
    handoff = {
        p: max(lst, key=lambda k: run_length(k, p))
        for p, lst in enumerate(owners)
    }
    start_machine = handoff[0]
    machines = [
        SimLinePipelineMachine(
            fn_params,
            k,
            frozenset(machine_pieces[k]),
            handoff,
            starts_frontier=(k == start_machine),
            q=q,
        )
        for k in range(num_machines)
    ]
    initial_memories = [
        encode_store(fn_params, sorted((p, x[p]) for p in machine_pieces[k]))
        if machine_pieces[k]
        else Bits(0, 0)
        for k in range(num_machines)
    ]
    s_bits = (
        store_bits_required(fn_params, pieces_per_machine)
        + frontier_bits_required(fn_params)
        + slack_bits
    )
    mpc_params = MPCParams(
        m=num_machines,
        s_bits=s_bits,
        q=q,
        max_rounds=max_rounds if max_rounds is not None else 2 * fn_params.w + 10,
    )
    return PipelineSetup(
        fn_params=fn_params,
        mpc_params=mpc_params,
        machines=machines,
        initial_memories=initial_memories,
        x=list(x),
        piece_owners=owners,
    )


def run_pipeline(setup: PipelineSetup, oracle: Oracle) -> MPCResult:
    """Simulate the pipeline against ``oracle``.

    Under a tracer, a ``cost.model`` announcement precedes the run: the
    pipeline is deterministic, so every counter -- including the round
    count -- is predicted exactly (see :mod:`repro.costmodel.models`).
    """
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            "cost.model",
            model="simline_pipeline",
            trigger="mpc.run",
            params=pipeline_cost_bindings(setup),
        )
    sim = make_simulator(setup.mpc_params, setup.machines, oracle=oracle)
    return sim.run(setup.initial_memories)
