"""Explicit MPC protocols.

A lower bound quantifies over *all* algorithms; what a reproduction can
run is the strongest explicit protocols, whose measured round counts
trace the bound's shape from above:

* :mod:`~repro.protocols.chain` -- frontier chain-following for ``Line``:
  the machine holding the current frontier advances while the next piece
  is local, then hands off.  With a fraction ``f`` of pieces per machine
  it advances ``1/(1-f)`` nodes per round in expectation, so rounds are
  ``~(1-f)·w`` -- linear in ``T`` exactly as Lemma 3.2 demands;
* :mod:`~repro.protocols.simline_pipeline` -- round-robin pipeline for
  ``SimLine`` achieving ``~w·u/s`` rounds, matching Theorem A.1's
  ``Omega(T/s)`` shape and showing the warm-up bound is tight;
* :mod:`~repro.protocols.fullmem` -- the trivial protocols at the other
  end of the memory axis (``s >= S``): one round when the input is
  co-located, two with a gather round;
* :mod:`~repro.protocols.emulation` -- the paper's "emulate the RAM step
  by step" observation: ``v`` machines, one piece each, ``~T`` rounds;
* :mod:`~repro.protocols.guessing` -- skip-ahead adversaries whose
  success probability Monte-Carlo-validates Lemma 3.3 / Lemma A.7;
* :mod:`~repro.protocols.pointer_jump` -- the one-round MPC solution to
  Miltersen's pointer-jumping problem (Section 1.2 contrast).
"""

from repro.protocols.chain import ChainSetup, build_chain_protocol, run_chain
from repro.protocols.emulation import build_ram_emulation
from repro.protocols.fullmem import (
    FullMemorySetup,
    build_fullmem_protocol,
    run_fullmem,
)
from repro.protocols.guessing import (
    GuessingReport,
    estimate_line_skip_probability,
    estimate_simline_skip_probability,
)
from repro.protocols.multichain import (
    MultiChainSetup,
    build_multichain_protocol,
    run_multichain,
)
from repro.protocols.pointer_jump import (
    PointerJumpSetup,
    build_pointer_jump_protocol,
    run_pointer_jump,
)
from repro.protocols.simline_pipeline import (
    PipelineSetup,
    build_simline_pipeline,
    run_pipeline,
)

__all__ = [
    "ChainSetup",
    "FullMemorySetup",
    "GuessingReport",
    "MultiChainSetup",
    "PipelineSetup",
    "PointerJumpSetup",
    "build_chain_protocol",
    "build_fullmem_protocol",
    "build_multichain_protocol",
    "build_pointer_jump_protocol",
    "build_ram_emulation",
    "build_simline_pipeline",
    "estimate_line_skip_probability",
    "estimate_simline_skip_probability",
    "run_chain",
    "run_fullmem",
    "run_multichain",
    "run_pipeline",
    "run_pointer_jump",
]
