"""One-round MPC pointer jumping (the Section 1.2 contrast).

The paper explains why Miltersen's PRAM lower bound does not transfer to
MPC: "in the MPC model, a local machine can make an arbitrary number of
queries to the oracle in one round, and thus solve the problem
considered in [54] in one round."  This protocol is that sentence as
code: machine 0 holds only the start node and jump count (``O(log N)``
bits -- far below the instance size) and walks the oracle-defined
successor chain with ``k`` adaptive in-round queries.

:mod:`repro.baselines.pram` runs the same instance on a PRAM, where each
jump costs a synchronous step; experiment E-BASE reports both numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits import BitReader, BitWriter, Bits, bits_needed
from repro.costmodel.announce import pointer_jump_cost_bindings
from repro.functions.pointer_jump import PointerJumpInstance
from repro.obs import get_tracer
from repro.mpc.machine import Machine, RoundContext, RoundOutput
from repro.mpc.model import MPCParams
from repro.engine import make_simulator
from repro.mpc.simulator import MPCResult
from repro.oracle.base import Oracle

__all__ = [
    "PointerJumpSetup",
    "OneRoundPointerJumpMachine",
    "build_pointer_jump_protocol",
    "run_pointer_jump",
]


class OneRoundPointerJumpMachine(Machine):
    """Walk ``k`` oracle-defined jumps with adaptive queries, in one round."""

    #: Output for rounds >= 1 is a pure function of the incoming
    #: messages; safe for the fast backend's steady-state memo.
    round_oblivious = True

    def __init__(self, size: int, node_bits: int, count_bits: int) -> None:
        self._size = size
        self._node_bits = node_bits
        self._count_bits = count_bits

    def run_round(self, ctx: RoundContext) -> RoundOutput:
        if not ctx.incoming:
            return RoundOutput(halt=True)
        reader = BitReader(ctx.incoming[0][1])
        node = reader.read(self._node_bits)
        jumps = reader.read(self._count_bits)
        for _ in range(jumps):
            answer = ctx.oracle.query(Bits(node, ctx.oracle.n_in))
            node = answer.value % self._size
        return RoundOutput(output=Bits(node, self._node_bits), halt=True)


@dataclass
class PointerJumpSetup:
    """Configuration for a one-round pointer-jump run."""

    instance: PointerJumpInstance
    mpc_params: MPCParams
    machines: list[OneRoundPointerJumpMachine]
    initial_memories: list[Bits]
    node_bits: int


def build_pointer_jump_protocol(
    oracle: Oracle, size: int, start: int, jumps: int
) -> PointerJumpSetup:
    """Set up the one-round protocol for an oracle-defined instance.

    Local memory is sized at ``O(log N + log k)`` bits: the machine never
    stores the successor table, it queries it.
    """
    if size <= 0 or not 0 <= start < size or jumps < 0:
        raise ValueError(f"invalid instance (size={size}, start={start}, jumps={jumps})")
    instance = PointerJumpInstance.from_oracle(oracle, size, start, jumps)
    node_bits = max(bits_needed(size), 1)
    count_bits = max(bits_needed(jumps + 1), 1)
    writer = BitWriter()
    writer.write(start, node_bits)
    writer.write(jumps, count_bits)
    memory = writer.getvalue()
    params = MPCParams(
        m=1, s_bits=len(memory), q=max(jumps, 1), max_rounds=4
    )
    return PointerJumpSetup(
        instance=instance,
        mpc_params=params,
        machines=[OneRoundPointerJumpMachine(size, node_bits, count_bits)],
        initial_memories=[memory],
        node_bits=node_bits,
    )


def run_pointer_jump(setup: PointerJumpSetup, oracle: Oracle) -> MPCResult:
    """Simulate; the result's single output is the reached node.

    Under a tracer, a ``cost.model`` announcement precedes the run (one
    round, zero messages, exactly ``k`` queries).
    """
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            "cost.model",
            model="pointer_jump",
            trigger="mpc.run",
            params=pointer_jump_cost_bindings(setup),
        )
    sim = make_simulator(setup.mpc_params, setup.machines, oracle=oracle)
    return sim.run(setup.initial_memories)
