"""Frontier chain-following for ``Line`` -- the natural best effort.

One token (the *frontier*: next node index, its pointer, the running
``r``) travels between machines.  The machine holding the token advances
the chain as long as the piece the next node needs is in its local
store, then hands the token to an owner of the missing piece.  Storage
can be replicated: each machine holds a cyclic window of
``pieces_per_machine`` pieces, i.e. a fraction ``f = pieces_per_machine/v``
of the input, which is the knob the hardness is about (``f <= 1/c``).

Expected behaviour under a uniform oracle: each advance step stays local
with probability ``f``, so a round advances ``1/(1-f)`` nodes in
expectation and the whole run takes ``~(1-f)·w + 2`` rounds -- linear in
``T`` however many machines exist, which is the shape Lemma 3.2 proves
unavoidable.  Experiments E-LINE and E-MEM measure exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits import Bits
from repro.bounds.regimes import hardness_threshold
from repro.bounds.theorem31 import default_lookahead, lemma32_round_bound
from repro.costmodel.announce import chain_cost_bindings
from repro.functions.line import line_query
from repro.obs import get_tracer
from repro.functions.params import LineParams
from repro.mpc.machine import Machine, RoundContext, RoundOutput
from repro.mpc.model import MPCParams
from repro.engine import make_simulator
from repro.mpc.simulator import MPCResult
from repro.oracle.base import Oracle
from repro.protocols.wire import (
    Frontier,
    MessageKind,
    decode_records,
    encode_done,
    encode_frontier,
    encode_store,
    frontier_bits_required,
    store_bits_required,
)

__all__ = [
    "ChainSetup",
    "LineChainMachine",
    "build_chain_protocol",
    "cyclic_replicated_owners",
    "run_chain",
]


def cyclic_replicated_owners(
    v: int, m: int, pieces_per_machine: int
) -> list[list[int]]:
    """Cyclic-window storage: machine ``k`` holds ``pieces_per_machine``
    consecutive pieces starting at ``k * v // m`` (indices mod ``v``).

    Returns ``owners[piece] = [machines holding it]``.  Coverage of every
    piece requires ``pieces_per_machine >= ceil(v / m)``.
    """
    if pieces_per_machine <= 0 or pieces_per_machine > v:
        raise ValueError(
            f"pieces_per_machine={pieces_per_machine} out of range for v={v}"
        )
    if m <= 0:
        raise ValueError(f"need at least one machine, got m={m}")
    owners: list[list[int]] = [[] for _ in range(v)]
    for k in range(m):
        start = k * v // m
        for j in range(pieces_per_machine):
            owners[(start + j) % v].append(k)
    missing = [p for p, lst in enumerate(owners) if not lst]
    if missing:
        raise ValueError(
            f"storage windows leave pieces {missing[:5]}... unowned; "
            f"need pieces_per_machine >= ceil(v/m) = {-(-v // m)}"
        )
    return owners


class LineChainMachine(Machine):
    """One machine of the chain-following protocol.

    Static (algorithmic) configuration: which pieces this machine stores,
    where to hand off each piece, whether it creates the initial
    frontier, and the per-round query budget.  Dynamic state -- the piece
    *values* and the frontier -- lives purely in messages.
    """

    #: Output for rounds >= 1 is a pure function of the incoming
    #: messages; safe for the fast backend's steady-state memo.
    round_oblivious = True

    def __init__(
        self,
        params: LineParams,
        machine_id: int,
        my_pieces: frozenset[int],
        handoff: dict[int, int],
        *,
        starts_frontier: bool,
        q: int | None = None,
    ) -> None:
        self._params = params
        self._id = machine_id
        self._my_pieces = my_pieces
        self._handoff = handoff
        self._starts_frontier = starts_frontier
        self._q = q

    def run_round(self, ctx: RoundContext) -> RoundOutput:
        params = self._params
        store: dict[int, Bits] = {}
        frontier: Frontier | None = None

        for _sender, payload in ctx.incoming:
            for kind, value in decode_records(params, payload):
                if kind is MessageKind.DONE:
                    return RoundOutput(halt=True)
                if kind is MessageKind.STORE:
                    store.update(value)
                elif kind is MessageKind.FRONTIER:
                    frontier = value

        if ctx.round == 0 and self._starts_frontier:
            frontier = Frontier(node=0, pointer=0, r=Bits.zeros(params.u))

        out = RoundOutput()
        if frontier is not None:
            frontier, answer = self._advance(ctx, store, frontier)
            if frontier.node >= params.w:
                # Finished: publish the output, tell everyone to stop.
                out.output = answer
                out.messages = {
                    j: encode_done() for j in range(ctx.num_machines)
                }
                return out
            target = self._handoff[frontier.pointer]
            out.messages[target] = encode_frontier(params, frontier)

        if store:
            self_msg = encode_store(params, sorted(store.items()))
            prev = out.messages.get(self._id)
            if prev is not None:
                # Frontier handed to ourselves is impossible (we advance
                # while the piece is local), but be defensive.
                out.messages[self._id] = prev + self_msg
            else:
                out.messages[self._id] = self_msg
        return out

    def _advance(
        self, ctx: RoundContext, store: dict[int, Bits], frontier: Frontier
    ) -> tuple[Frontier, Bits | None]:
        """Walk the chain while the needed piece is local; return the new
        frontier and the last oracle answer (the output if we finished)."""
        params = self._params
        answer: Bits | None = None
        queries = 0
        while (
            frontier.node < params.w
            and frontier.pointer in store
            and (self._q is None or queries < self._q)
        ):
            query = line_query(
                params, frontier.node, store[frontier.pointer], frontier.r
            )
            answer = ctx.oracle.query(query)
            queries += 1
            fields = params.answer_codec.unpack_bits(answer)
            frontier = Frontier(
                node=frontier.node + 1,
                pointer=params.ell_of_answer(fields["ell"].value),
                r=fields["r"],
            )
        return frontier, answer


@dataclass
class ChainSetup:
    """Everything needed to simulate one chain-protocol run."""

    fn_params: LineParams
    mpc_params: MPCParams
    machines: list[LineChainMachine]
    initial_memories: list[Bits]
    x: list[Bits]
    piece_owners: list[list[int]]

    @property
    def storage_fraction(self) -> float:
        """The per-machine input fraction ``f`` (max over machines)."""
        per_machine: dict[int, int] = {}
        for owners in self.piece_owners:
            for k in owners:
                per_machine[k] = per_machine.get(k, 0) + 1
        return max(per_machine.values()) / self.fn_params.v


def build_chain_protocol(
    fn_params: LineParams,
    x: list[Bits],
    *,
    num_machines: int,
    pieces_per_machine: int | None = None,
    q: int | None = None,
    max_rounds: int | None = None,
    slack_bits: int = 0,
) -> ChainSetup:
    """Configure machines, storage windows, and bit-exact memory sizes.

    ``pieces_per_machine`` defaults to an even split ``ceil(v/m)`` (no
    replication); larger values replicate pieces, raising the stored
    fraction ``f`` and with it the per-round progress.  The MPC memory
    ``s`` is set to exactly what the protocol needs (store + frontier)
    plus ``slack_bits``, so the run is as memory-tight as the model
    allows.
    """
    v = fn_params.v
    if pieces_per_machine is None:
        pieces_per_machine = -(-v // num_machines)
    owners = cyclic_replicated_owners(v, num_machines, pieces_per_machine)
    handoff = {p: lst[0] for p, lst in enumerate(owners)}

    machine_pieces: list[set[int]] = [set() for _ in range(num_machines)]
    for p, lst in enumerate(owners):
        for k in lst:
            machine_pieces[k].add(p)

    start_machine = handoff[0]  # owner of piece 0: l_0 = 0
    machines = [
        LineChainMachine(
            fn_params,
            k,
            frozenset(machine_pieces[k]),
            handoff,
            starts_frontier=(k == start_machine),
            q=q,
        )
        for k in range(num_machines)
    ]
    initial_memories = [
        encode_store(fn_params, sorted((p, x[p]) for p in machine_pieces[k]))
        if machine_pieces[k]
        else Bits(0, 0)
        for k in range(num_machines)
    ]
    s_bits = (
        store_bits_required(fn_params, pieces_per_machine)
        + frontier_bits_required(fn_params)
        + slack_bits
    )
    mpc_params = MPCParams(
        m=num_machines,
        s_bits=s_bits,
        q=q,
        max_rounds=max_rounds if max_rounds is not None else 2 * fn_params.w + 10,
    )
    return ChainSetup(
        fn_params=fn_params,
        mpc_params=mpc_params,
        machines=machines,
        initial_memories=initial_memories,
        x=list(x),
        piece_owners=owners,
    )


def run_chain(setup: ChainSetup, oracle: Oracle) -> MPCResult:
    """Simulate the protocol against ``oracle``.

    Under a tracer, the run is preceded by a ``bounds.expect_rounds``
    event declaring the theory prediction band for the round count:
    the upper edge is the protocol's worst case (one advance per round,
    ``w`` handoffs, plus the halt handshake); the lower edge is Lemma
    3.2's ``w / log^2 w`` whenever the stored fraction ``f = s/S`` sits
    in the hardness regime ``s <= S/c`` (:func:`hardness_threshold`).
    :class:`repro.obs.InvariantMonitor` checks the finished run against
    this band.

    A ``cost.model`` announcement precedes the run as well, so a
    subscribed :class:`repro.costmodel.CostOracle` can check the
    finished run's exact message/bit/query counters against the
    symbolic chain formulas.
    """
    tracer = get_tracer()
    if tracer.enabled:
        fn = setup.fn_params
        f = setup.storage_fraction
        in_hard_regime = f * fn.v <= hardness_threshold(fn.v)
        lo = lemma32_round_bound(fn.w) if in_hard_regime else 1.0
        tracer.event(
            "bounds.expect_rounds",
            lo=lo,
            hi=fn.w + 4,
            w=fn.w,
            f=round(f, 6),
            lookahead=default_lookahead(fn.w),
            hard_regime=in_hard_regime,
            source="lemma32",
        )
        tracer.event(
            "cost.model",
            model="chain",
            trigger="mpc.run",
            params=chain_cost_bindings(setup),
        )
    sim = make_simulator(
        setup.mpc_params, setup.machines, oracle=oracle
    )
    return sim.run(setup.initial_memories)
