"""Adversarial and noisy machines for stress-testing model enforcement.

A lower bound quantifies over all algorithms, including perverse ones;
the simulator and the proof machinery must therefore behave correctly
for machines that waste queries, repeat themselves, flood the network,
or try to skip ahead.  These machines exist to be run *against* the
enforcement and the encoders:

* :class:`JunkQuerier` -- burns the query budget on arbitrary strings;
* :class:`NoisyMachine` -- wraps a real protocol machine and interleaves
  junk/repeat queries around its computation (the encoders must still
  round-trip: recovery is position-addressed, not pattern-matched);
* :class:`Flooder` -- ships more bits than ``s`` to one receiver
  (the simulator must refuse);
* :class:`MisbehavingSender` -- addresses nonexistent machines.
"""

from __future__ import annotations

from repro.bits import Bits
from repro.hashes.toy_md import toy_hash
from repro.mpc.machine import Machine, RoundContext, RoundOutput

__all__ = ["JunkQuerier", "NoisyMachine", "Flooder", "MisbehavingSender"]


def _junk_string(n: int, round_k: int, machine: int, index: int, seed: int) -> Bits:
    """A deterministic arbitrary query (so replays stay replayable)."""
    material = bytes([round_k % 251, machine % 251, index % 251]) + seed.to_bytes(
        8, "little", signed=True
    )
    digest = toy_hash(material, digest_size=(n + 7) // 8 or 1)
    value = int.from_bytes(digest, "big")
    excess = 8 * ((n + 7) // 8 or 1) - n
    return Bits(value >> excess, n)


class JunkQuerier(Machine):
    """Makes ``count`` arbitrary queries per round, then halts."""

    def __init__(self, count: int, *, seed: int = 0, rounds: int = 1) -> None:
        if count < 0 or rounds <= 0:
            raise ValueError(f"invalid (count={count}, rounds={rounds})")
        self._count = count
        self._seed = seed
        self._rounds = rounds

    def run_round(self, ctx: RoundContext) -> RoundOutput:
        for i in range(self._count):
            ctx.oracle.query(
                _junk_string(ctx.oracle.n_in, ctx.round, ctx.machine_id, i, self._seed)
            )
        if ctx.round + 1 >= self._rounds:
            return RoundOutput(halt=True)
        state = ctx.incoming[0][1] if ctx.incoming else Bits(0, 0)
        return RoundOutput(messages={ctx.machine_id: state} if len(state) else {})


class NoisyMachine(Machine):
    """A real machine with junk and repeat queries interleaved.

    ``junk_before``/``junk_after`` arbitrary queries bracket the inner
    machine's round; with ``repeat_last`` the final inner query is
    re-issued (a duplicate the encoders' caching paths must absorb).
    Deterministic given (oracle, memory), as the compression split
    requires.
    """

    def __init__(
        self,
        inner: Machine,
        *,
        junk_before: int = 2,
        junk_after: int = 1,
        repeat_last: bool = True,
        seed: int = 0,
    ) -> None:
        if junk_before < 0 or junk_after < 0:
            raise ValueError("junk counts must be nonnegative")
        self._inner = inner
        self._before = junk_before
        self._after = junk_after
        self._repeat = repeat_last
        self._seed = seed

    def run_round(self, ctx: RoundContext) -> RoundOutput:
        if ctx.oracle is None:
            return self._inner.run_round(ctx)
        from repro.oracle.counting import CountingOracle

        for i in range(self._before):
            ctx.oracle.query(
                _junk_string(ctx.oracle.n_in, ctx.round, ctx.machine_id, i, self._seed)
            )
        # Observe the inner machine's queries so the last can be repeated.
        watcher = CountingOracle(ctx.oracle)
        inner_ctx = RoundContext(
            round=ctx.round,
            machine_id=ctx.machine_id,
            num_machines=ctx.num_machines,
            incoming=ctx.incoming,
            oracle=watcher,
            tape=ctx.tape,
        )
        out = self._inner.run_round(inner_ctx)
        if self._repeat and watcher.transcript:
            ctx.oracle.query(watcher.transcript[-1].query)
        for i in range(self._after):
            ctx.oracle.query(
                _junk_string(
                    ctx.oracle.n_in, ctx.round, ctx.machine_id, 1000 + i, self._seed
                )
            )
        return out


class Flooder(Machine):
    """Sends ``bits`` to machine 0 (to be caught by the s check)."""

    def __init__(self, bits: int) -> None:
        if bits <= 0:
            raise ValueError(f"bits must be positive, got {bits}")
        self._bits = bits

    def run_round(self, ctx: RoundContext) -> RoundOutput:
        if ctx.round == 0:
            return RoundOutput(messages={0: Bits.zeros(self._bits)})
        return RoundOutput(halt=True)


class MisbehavingSender(Machine):
    """Addresses a machine that does not exist (a ProtocolError)."""

    def run_round(self, ctx: RoundContext) -> RoundOutput:
        return RoundOutput(messages={ctx.num_machines + 7: Bits(0, 1)})
