"""Message formats shared by the chain protocols.

Every message starts with a 2-bit kind tag:

* ``STORE``    -- a machine's persisted input pieces (sent to itself);
* ``FRONTIER`` -- the chain token: current node, pointer, running value;
* ``DONE``     -- termination broadcast from the finishing machine.

Formats are bit-exact records so the simulator's ``s``-bit memory
accounting measures what the model measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable, Protocol

from repro.bits import BitReader, BitWriter, Bits, bits_needed

__all__ = [
    "MessageKind",
    "Frontier",
    "encode_store",
    "decode_store",
    "encode_frontier",
    "decode_frontier",
    "encode_done",
    "decode_records",
    "read_kind",
    "store_bits_required",
    "frontier_bits_required",
]

_KIND_BITS = 2


class MessageKind(IntEnum):
    """The 2-bit message tag."""

    STORE = 0
    FRONTIER = 1
    DONE = 2


class _ChainParams(Protocol):
    u: int
    v: int
    w: int


def _piece_index_bits(params: _ChainParams) -> int:
    return max(bits_needed(params.v), 1)


def _node_index_bits(params: _ChainParams) -> int:
    return bits_needed(params.w + 1)


def _count_bits(params: _ChainParams) -> int:
    return max(bits_needed(params.v + 1), 1)


@dataclass(frozen=True)
class Frontier:
    """The chain token: next node to evaluate and its inputs.

    ``node`` is the next 0-based chain index ``i``; ``pointer`` is the
    piece the node needs (``l_i`` for ``Line``, ``i mod v`` for
    ``SimLine`` -- carried explicitly so both protocols share a format);
    ``r`` is the running ``u``-bit value.
    """

    node: int
    pointer: int
    r: Bits


def read_kind(message: Bits) -> MessageKind:
    """Peek the 2-bit tag of a message."""
    if len(message) < _KIND_BITS:
        raise ValueError(f"message of {len(message)} bits has no kind tag")
    return MessageKind(message[:_KIND_BITS].value)


def decode_records(
    params: _ChainParams, payload: Bits
) -> list[tuple[MessageKind, object]]:
    """Parse a payload as a stream of typed records.

    One physical message may carry several records (e.g. a frontier that
    a budget-stalled machine sends to itself concatenated with its own
    store).  Returns ``(kind, value)`` pairs where the value is a
    ``{index: piece}`` dict for STORE, a :class:`Frontier` for FRONTIER,
    and ``None`` for DONE.
    """
    reader = BitReader(payload)
    records: list[tuple[MessageKind, object]] = []
    while not reader.at_end():
        kind = MessageKind(reader.read(_KIND_BITS))
        if kind is MessageKind.STORE:
            records.append((kind, _read_store(params, reader)))
        elif kind is MessageKind.FRONTIER:
            records.append((kind, _read_frontier(params, reader)))
        else:
            records.append((kind, None))
    return records


def _read_store(params: _ChainParams, reader: BitReader) -> dict[int, Bits]:
    count = reader.read(_count_bits(params))
    idx_bits = _piece_index_bits(params)
    out: dict[int, Bits] = {}
    for _ in range(count):
        idx = reader.read(idx_bits)
        out[idx] = reader.read_bits(params.u)
    return out


def _read_frontier(params: _ChainParams, reader: BitReader) -> Frontier:
    node = reader.read(_node_index_bits(params))
    pointer = reader.read(_piece_index_bits(params))
    rv = reader.read_bits(params.u)
    return Frontier(node=node, pointer=pointer, r=rv)


def encode_store(params: _ChainParams, pieces: Iterable[tuple[int, Bits]]) -> Bits:
    """Pack ``(piece index, piece value)`` pairs as a STORE message."""
    items = list(pieces)
    w = BitWriter()
    w.write(MessageKind.STORE, _KIND_BITS)
    w.write(len(items), _count_bits(params))
    idx_bits = _piece_index_bits(params)
    for idx, value in items:
        if not 0 <= idx < params.v:
            raise ValueError(f"piece index {idx} out of range for v={params.v}")
        if len(value) != params.u:
            raise ValueError(
                f"piece has {len(value)} bits, expected u={params.u}"
            )
        w.write(idx, idx_bits)
        w.write_bits(value)
    return w.getvalue()


def decode_store(params: _ChainParams, message: Bits) -> dict[int, Bits]:
    """Inverse of :func:`encode_store`; returns ``{index: value}``."""
    r = BitReader(message)
    kind = MessageKind(r.read(_KIND_BITS))
    if kind is not MessageKind.STORE:
        raise ValueError(f"expected STORE message, got {kind.name}")
    out = _read_store(params, r)
    if not r.at_end():
        raise ValueError("trailing bits after STORE payload")
    return out


def encode_frontier(params: _ChainParams, frontier: Frontier) -> Bits:
    """Pack the chain token as a FRONTIER message."""
    if not 0 <= frontier.node <= params.w:
        raise ValueError(f"node {frontier.node} out of range for w={params.w}")
    if not 0 <= frontier.pointer < params.v:
        raise ValueError(
            f"pointer {frontier.pointer} out of range for v={params.v}"
        )
    if len(frontier.r) != params.u:
        raise ValueError(f"r has {len(frontier.r)} bits, expected u={params.u}")
    w = BitWriter()
    w.write(MessageKind.FRONTIER, _KIND_BITS)
    w.write(frontier.node, _node_index_bits(params))
    w.write(frontier.pointer, _piece_index_bits(params))
    w.write_bits(frontier.r)
    return w.getvalue()


def decode_frontier(params: _ChainParams, message: Bits) -> Frontier:
    """Inverse of :func:`encode_frontier`."""
    r = BitReader(message)
    kind = MessageKind(r.read(_KIND_BITS))
    if kind is not MessageKind.FRONTIER:
        raise ValueError(f"expected FRONTIER message, got {kind.name}")
    frontier = _read_frontier(params, r)
    if not r.at_end():
        raise ValueError("trailing bits after FRONTIER payload")
    return frontier


def encode_done() -> Bits:
    """The 2-bit DONE broadcast."""
    return Bits(MessageKind.DONE, _KIND_BITS)


def store_bits_required(params: _ChainParams, num_pieces: int) -> int:
    """Exact STORE size for ``num_pieces`` pieces (for sizing ``s``)."""
    return (
        _KIND_BITS
        + _count_bits(params)
        + num_pieces * (_piece_index_bits(params) + params.u)
    )


def frontier_bits_required(params: _ChainParams) -> int:
    """Exact FRONTIER size (for sizing ``s``)."""
    return (
        _KIND_BITS
        + _node_index_bits(params)
        + _piece_index_bits(params)
        + params.u
    )
