"""The trivial protocols at the big-memory end of the axis.

Section 1: "if each machine has local memory size ``S``, then trivially
the function can be computed in one round."  Two variants:

* ``colocated=True`` -- the adversarially *friendly* input placement puts
  the whole input on machine 0, which evaluates the chain with ``w``
  in-round adaptive queries and outputs immediately: **1 round**;
* ``colocated=False`` -- the input is spread across machines, which all
  forward their shares to machine 0 in round 0; machine 0 computes in
  round 1: **2 rounds**.

Together with the chain protocol these trace the crossover the
best-possible-hardness statement is about: rounds collapse from
``~(1-f)·w`` to ``O(1)`` exactly when ``s`` reaches ``S``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits import Bits
from repro.costmodel.announce import fullmem_cost_bindings
from repro.functions.line import line_query
from repro.functions.params import LineParams
from repro.obs import get_tracer
from repro.mpc.machine import Machine, RoundContext, RoundOutput
from repro.mpc.model import MPCParams
from repro.engine import make_simulator
from repro.mpc.simulator import MPCResult
from repro.oracle.base import Oracle
from repro.protocols.wire import (
    Frontier,
    MessageKind,
    decode_records,
    encode_done,
    encode_store,
    frontier_bits_required,
    store_bits_required,
)

__all__ = ["FullMemorySetup", "FullMemoryMachine", "build_fullmem_protocol", "run_fullmem"]


class FullMemoryMachine(Machine):
    """Gather every piece on machine 0, then evaluate locally."""

    #: Output for rounds >= 1 is a pure function of the incoming
    #: messages; safe for the fast backend's steady-state memo.
    round_oblivious = True

    def __init__(self, params: LineParams, machine_id: int) -> None:
        self._params = params
        self._id = machine_id

    def run_round(self, ctx: RoundContext) -> RoundOutput:
        params = self._params
        store: dict[int, Bits] = {}
        for _sender, payload in ctx.incoming:
            for kind, value in decode_records(params, payload):
                if kind is MessageKind.DONE:
                    return RoundOutput(halt=True)
                if kind is MessageKind.STORE:
                    store.update(value)

        if self._id != 0:
            # Forward our share to machine 0 and go quiet.
            if store:
                return RoundOutput(
                    messages={0: encode_store(params, sorted(store.items()))}
                )
            return RoundOutput()

        if len(store) < params.v:
            # Not everything has arrived yet; persist what we have.
            if store:
                return RoundOutput(
                    messages={0: encode_store(params, sorted(store.items()))}
                )
            return RoundOutput()

        # Whole input local: walk the chain with in-round adaptive queries.
        frontier = Frontier(node=0, pointer=0, r=Bits.zeros(params.u))
        answer = Bits.zeros(params.n)
        while frontier.node < params.w:
            answer = ctx.oracle.query(
                line_query(params, frontier.node, store[frontier.pointer], frontier.r)
            )
            fields = params.answer_codec.unpack_bits(answer)
            frontier = Frontier(
                node=frontier.node + 1,
                pointer=params.ell_of_answer(fields["ell"].value),
                r=fields["r"],
            )
        return RoundOutput(
            output=answer,
            messages={j: encode_done() for j in range(ctx.num_machines)},
        )


@dataclass
class FullMemorySetup:
    """Configuration for a full-memory run."""

    fn_params: LineParams
    mpc_params: MPCParams
    machines: list[FullMemoryMachine]
    initial_memories: list[Bits]
    x: list[Bits]


def build_fullmem_protocol(
    fn_params: LineParams,
    x: list[Bits],
    *,
    num_machines: int = 2,
    colocated: bool = True,
    slack_bits: int = 0,
) -> FullMemorySetup:
    """Build the trivial protocol; ``s`` is sized to hold all of ``X``."""
    if num_machines <= 0:
        raise ValueError(f"need at least one machine, got {num_machines}")
    v = fn_params.v
    machines = [FullMemoryMachine(fn_params, k) for k in range(num_machines)]
    if colocated:
        shares: list[list[int]] = [list(range(v))] + [[] for _ in range(num_machines - 1)]
    else:
        per = -(-v // num_machines)
        shares = [list(range(k * per, min((k + 1) * per, v))) for k in range(num_machines)]
    initial_memories = [
        encode_store(fn_params, [(p, x[p]) for p in share]) if share else Bits(0, 0)
        for k, share in enumerate(shares)
    ]
    s_bits = (
        store_bits_required(fn_params, v)
        + frontier_bits_required(fn_params)
        + slack_bits
    )
    mpc_params = MPCParams(
        m=num_machines,
        s_bits=s_bits,
        q=fn_params.w,
        max_rounds=num_machines + 5,
    )
    return FullMemorySetup(
        fn_params=fn_params,
        mpc_params=mpc_params,
        machines=machines,
        initial_memories=initial_memories,
        x=list(x),
    )


def run_fullmem(setup: FullMemorySetup, oracle: Oracle) -> MPCResult:
    """Simulate the trivial protocol against ``oracle``.

    Under a tracer, a ``cost.model`` announcement (colocated or spread
    variant, detected from the initial placement) precedes the run for
    the cost oracle's exact counter check.
    """
    tracer = get_tracer()
    if tracer.enabled:
        model_id, bindings = fullmem_cost_bindings(setup)
        tracer.event(
            "cost.model", model=model_id, trigger="mpc.run", params=bindings
        )
    sim = make_simulator(setup.mpc_params, setup.machines, oracle=oracle)
    return sim.run(setup.initial_memories)
