"""Runtime telemetry & health: the layer that watches the *runtime*.

Everything in :mod:`repro.obs` observes the **model** -- rounds,
message bits, oracle queries, the quantities the paper bounds.  This
package observes the **process running the model**:

* :mod:`repro.telemetry.metrics` -- :class:`MetricsRegistry`
  (counters / gauges / fixed-bucket histograms, dotted-flat snapshots,
  Prometheus text exposition) and :class:`TelemetryCollector`, the
  tracer subscriber that folds the record stream into a registry;
* :mod:`repro.telemetry.sampler` -- :class:`ResourceSampler`, a
  background thread emitting periodic ``telemetry.sample`` events
  (RSS / peak RSS / CPU / GC / threads) from ``/proc/self`` +
  :mod:`resource` + :mod:`gc`;
* :mod:`repro.telemetry.heartbeat` -- per-trial ``telemetry.heartbeat``
  events through :mod:`repro.parallel.pool` and the parent-side
  :class:`StallDetector` (``telemetry.stall`` events, straggler
  ranking, strict-mode hard fail);
* :mod:`repro.telemetry.overhead` -- :class:`OverheadMeter`, tracer
  self-overhead accounting (``telemetry.overhead_frac``);
* :mod:`repro.telemetry.top` -- :class:`TelemetryTop`, the ``repro
  top`` live per-worker dashboard;
* :mod:`repro.telemetry.config` -- the ambient on/off switch
  (:func:`use_telemetry` / ``REPRO_TELEMETRY``) plus deadline and
  interval knobs.

Telemetry is opt-in and deterministic-by-exclusion: ``telemetry.*``
record names are ignored by the structural trace diff, excluded from
:func:`repro.obs.registry.deterministic_metrics`, and stored in their
own nullable registry columns (``rss_peak_kb`` / ``overhead_frac``),
so fingerprints stay bit-identical with telemetry on or off, at any
``--jobs N``.  See docs/OBSERVABILITY.md, "Runtime telemetry".
"""

from repro.telemetry.config import (
    DEFAULT_SAMPLE_INTERVAL_S,
    DEFAULT_STALL_DEADLINE_S,
    TELEMETRY_NAME_PREFIX,
    excluded_from_determinism,
    resolve_telemetry,
    sample_interval,
    stall_deadline,
    telemetry_enabled,
    use_telemetry,
)
from repro.telemetry.heartbeat import (
    StallDetector,
    current_rss_kb,
    emit_heartbeat,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryCollector,
    parse_prometheus,
    render_prometheus,
    write_prometheus,
)
from repro.telemetry.overhead import OverheadMeter, overhead_summary
from repro.telemetry.sampler import (
    ResourceSampler,
    read_proc_status,
    resource_snapshot,
)
from repro.telemetry.top import TelemetryTop

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_SAMPLE_INTERVAL_S",
    "DEFAULT_STALL_DEADLINE_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OverheadMeter",
    "ResourceSampler",
    "StallDetector",
    "TELEMETRY_NAME_PREFIX",
    "TelemetryCollector",
    "TelemetryTop",
    "current_rss_kb",
    "emit_heartbeat",
    "excluded_from_determinism",
    "overhead_summary",
    "parse_prometheus",
    "read_proc_status",
    "render_prometheus",
    "resolve_telemetry",
    "resource_snapshot",
    "sample_interval",
    "stall_deadline",
    "telemetry_enabled",
    "use_telemetry",
    "write_prometheus",
]
