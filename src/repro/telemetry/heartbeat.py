"""Worker heartbeats and stall detection for the trial pool.

The operational counterpart of the MPC model's per-machine budgets:
where the paper bounds what each machine may *use*, the heartbeat layer
watches whether each worker is still *making progress*.  Two halves:

* **Emission** (worker side).  When the ambient telemetry switch is on
  (:func:`repro.telemetry.use_telemetry`), ``repro.parallel.pool``'s
  ``_run_chunk`` calls :func:`emit_heartbeat` after every trial -- one
  ``telemetry.heartbeat`` event on the trial's capture tracer carrying
  the trial index, its measured wall-clock, and the worker process's
  current RSS.  Because both the serial and parallel paths share
  ``_run_chunk``, heartbeat *count and order* are deterministic (one
  per trial, replayed in chunk order) at every ``--jobs N``; only the
  wall-clock and RSS payloads vary.
* **Detection** (parent side).  :class:`StallDetector` subscribes to
  the parent tracer and watches replayed heartbeats: any trial whose
  ``elapsed_s`` exceeds the deadline becomes a ``telemetry.stall``
  event (a :class:`~repro.obs.Violation` payload, ``check=
  "worker_stall"`` -- the ``monitor.violation`` shape), and in strict
  mode raises :class:`~repro.obs.InvariantViolation` exactly like the
  invariant monitor, so ``--strict-bounds`` exits 2 on a stalled
  worker.  The detector also keeps a per-worker straggler ranking for
  the run summary and ``repro top``.

Detection is *post-hoc by design*: a chunk's records ship back when
the chunk completes, so a stall is flagged at collection time, not
mid-flight.  That is the right trade for this engine -- chunks are
bounded (<= 64 trials) and the contract is "no silent pathological
trial", not preemption.
"""

from __future__ import annotations

from repro.obs.monitor import InvariantViolation, Violation
from repro.obs.tracer import NullTracer, Tracer

from repro.telemetry.config import stall_deadline
from repro.telemetry.sampler import read_proc_status

__all__ = ["StallDetector", "current_rss_kb", "emit_heartbeat"]


def current_rss_kb() -> float | None:
    """The process's current RSS in kB (``None`` off-Linux)."""
    return read_proc_status().get("rss_kb")


def emit_heartbeat(
    tracer: Tracer | NullTracer, *, trial: int, elapsed_s: float
) -> None:
    """One per-trial liveness event on ``tracer``.

    Called by the pool at the end of every trial (worker process or
    serial inline); the parent replays it tagged ``worker=<chunk>``.
    """
    tracer.event(
        "telemetry.heartbeat",
        trial=trial,
        elapsed_s=round(elapsed_s, 9),
        rss_kb=current_rss_kb(),
    )


class StallDetector:
    """A tracer subscriber that turns late heartbeats into violations.

    Parameters
    ----------
    deadline_s:
        Per-trial wall-clock budget; ``None`` uses
        :func:`repro.telemetry.config.stall_deadline` (the
        ``REPRO_STALL_DEADLINE`` env var or 30s).  A zero deadline
        flags every heartbeat -- CI's stall-injection negative control.
    strict:
        Raise :class:`~repro.obs.InvariantViolation` on the first
        stall (the ``--strict-bounds`` contract, exit code 2).
    tracer:
        Where ``telemetry.stall`` events are emitted (normally the
        tracer this detector subscribes to).
    """

    def __init__(
        self,
        *,
        deadline_s: float | None = None,
        strict: bool = False,
        tracer: Tracer | None = None,
    ) -> None:
        if deadline_s is not None and deadline_s < 0:
            raise ValueError(f"deadline_s must be >= 0, got {deadline_s}")
        self.deadline_s = (
            float(deadline_s) if deadline_s is not None else stall_deadline()
        )
        self._strict = strict
        self._tracer = tracer
        self.heartbeats = 0
        self.stalls: list[Violation] = []
        # worker -> (slowest elapsed_s, its trial index)
        self._slowest: dict[int, tuple[float, int]] = {}

    def __call__(self, record) -> None:
        if record.name != "telemetry.heartbeat":
            return
        a = record.attrs
        elapsed = float(a.get("elapsed_s") or 0.0)
        worker = int(a.get("worker", 0) or 0)
        trial = int(a.get("trial", 0) or 0)
        self.heartbeats += 1
        known = self._slowest.get(worker)
        if known is None or elapsed > known[0]:
            self._slowest[worker] = (elapsed, trial)
        if elapsed > self.deadline_s:
            violation = Violation(
                check="worker_stall",
                message=(
                    f"trial {trial} (worker {worker}) took {elapsed:.6f}s, "
                    f"over the {self.deadline_s:.6f}s stall deadline"
                ),
                machine=None,
                observed=elapsed,
                limit=self.deadline_s,
            )
            self.stalls.append(violation)
            if self._tracer is not None:
                self._tracer.event(
                    "telemetry.stall",
                    worker=worker,
                    trial=trial,
                    rss_kb=a.get("rss_kb"),
                    **violation.to_attrs(),
                )
            if self._strict:
                raise InvariantViolation(violation)

    def straggler_ranking(self) -> list[dict]:
        """Workers by slowest trial, slowest first (the run summary)."""
        ranked = sorted(
            self._slowest.items(), key=lambda kv: (-kv[1][0], kv[0])
        )
        return [
            {"worker": worker, "trial": trial, "elapsed_s": round(elapsed, 9)}
            for worker, (elapsed, trial) in ranked
        ]

    def summary(self, *, top: int = 5) -> dict:
        """The detector's contribution to ``result.metrics['telemetry']``."""
        return {
            "heartbeats": self.heartbeats,
            "stalls": len(self.stalls),
            "stall_deadline_s": self.deadline_s,
            "stragglers": self.straggler_ranking()[:top],
        }

    def render(self, *, top: int = 5) -> str:
        """Human-readable straggler table for the run summary."""
        lines = [
            f"heartbeats: {self.heartbeats}, stalls: {len(self.stalls)} "
            f"(deadline {self.deadline_s:g}s)"
        ]
        for row in self.straggler_ranking()[:top]:
            lines.append(
                f"  worker {row['worker']:<3} slowest trial "
                f"{row['trial']:<5} {row['elapsed_s'] * 1e3:.3f}ms"
            )
        return "\n".join(lines)
