"""``repro top``: a live per-worker telemetry dashboard on the stream.

:class:`TelemetryTop` extends :class:`~repro.obs.LiveProgress` -- same
TTY redraw-in-place / every-Nth-line plumbing, same subscriber slot on
the tracer fan-out -- but narrates the *runtime* instead of the model:
one status line combining the latest resource sample (RSS / CPU) with
per-worker heartbeat lanes (last trial seen, slowest trial so far),
plus an alert line per ``telemetry.stall``.  After the run,
:meth:`render_summary` prints the worker-lane table and straggler
ranking::

    [top rss=64.2M cpu=0.31s] w0:t63(2.1ms) w1:t58(1.9ms) hb=128
    !! worker_stall: trial 17 (worker 1) took 0.412s, over the ...
    [experiment E-LINE] ok (0.7s)

Model-level lines (rounds, experiment verdicts, violations) still come
from the parent class, so one subscriber renders both worlds.
"""

from __future__ import annotations

from typing import IO

from repro.obs.progress import LiveProgress
from repro.obs.tracer import TraceRecord

__all__ = ["TelemetryTop"]


def _fmt_rss(kb: float | None) -> str:
    if kb is None:
        return "?"
    return f"{kb / 1024.0:.1f}M"


class TelemetryTop(LiveProgress):
    """Render per-worker runtime health from the trace stream.

    Parameters mirror :class:`~repro.obs.LiveProgress`: ``stream``
    defaults to stderr, ``every`` bounds non-TTY output (one dashboard
    line per that many heartbeats).  ``lanes`` caps how many worker
    lanes fit on the transient line.
    """

    def __init__(
        self,
        stream: IO[str] | None = None,
        *,
        every: int = 25,
        lanes: int = 8,
    ) -> None:
        super().__init__(stream, every=every)
        self._lanes = lanes
        self._rss_kb: float | None = None
        self._rss_peak_kb: float | None = None
        self._cpu_s: float | None = None
        self._heartbeats = 0
        self._stalls = 0
        # worker -> {"trial": last trial, "slowest": (elapsed, trial)}
        self._workers: dict[int, dict] = {}

    # -- rendering -------------------------------------------------------

    def _dashboard_line(self) -> str:
        lanes = []
        for worker in sorted(self._workers)[: self._lanes]:
            lane = self._workers[worker]
            slow_s, _ = lane["slowest"]
            lanes.append(
                f"w{worker}:t{lane['trial']}({slow_s * 1e3:.1f}ms)"
            )
        if len(self._workers) > self._lanes:
            lanes.append(f"+{len(self._workers) - self._lanes}w")
        lane_part = " ".join(lanes) if lanes else "no workers yet"
        cpu = f"{self._cpu_s:.2f}s" if self._cpu_s is not None else "?"
        stall_part = f" stalls={self._stalls}" if self._stalls else ""
        return (
            f"[top rss={_fmt_rss(self._rss_kb)} cpu={cpu}] {lane_part} "
            f"hb={self._heartbeats}{stall_part}"
        )

    def _redraw(self) -> None:
        line = self._dashboard_line()
        if self._isatty:
            self._write(line, transient=True)
        elif self._heartbeats % self._every == 0:
            self._write(line)

    # -- the subscriber --------------------------------------------------

    def __call__(self, record: TraceRecord) -> None:
        name, a = record.name, record.attrs
        if name == "telemetry.sample":
            if a.get("rss_kb") is not None:
                self._rss_kb = float(a["rss_kb"])
            if a.get("rss_peak_kb") is not None:
                self._rss_peak_kb = max(
                    self._rss_peak_kb or 0.0, float(a["rss_peak_kb"])
                )
            cpu = (a.get("cpu_user_s") or 0.0) + (a.get("cpu_sys_s") or 0.0)
            if cpu:
                self._cpu_s = cpu
            self._redraw()
        elif name == "telemetry.heartbeat":
            worker = int(a.get("worker", 0) or 0)
            trial = int(a.get("trial", 0) or 0)
            elapsed = float(a.get("elapsed_s") or 0.0)
            self._heartbeats += 1
            lane = self._workers.setdefault(
                worker, {"trial": trial, "count": 0, "slowest": (0.0, trial)}
            )
            lane["trial"] = trial
            lane["count"] += 1
            if elapsed > lane["slowest"][0]:
                lane["slowest"] = (elapsed, trial)
            self._redraw()
        elif name == "telemetry.stall":
            self._stalls += 1
            self._end_transient()
            self._write(f"!! {a.get('check')}: {a.get('message')}")
        else:
            super().__call__(record)

    # -- post-run summary ------------------------------------------------

    def render_summary(self) -> str:
        """The final worker-lane table (printed after the run)."""
        lines = [
            f"top: {self._heartbeats} heartbeats across "
            f"{len(self._workers)} worker lane(s), {self._stalls} stall(s); "
            f"rss peak {_fmt_rss(self._rss_peak_kb)}"
        ]
        ranked = sorted(
            self._workers.items(),
            key=lambda kv: (-kv[1]["slowest"][0], kv[0]),
        )
        for worker, lane in ranked:
            slow_s, slow_trial = lane["slowest"]
            lines.append(
                f"  worker {worker:<3} {lane['count']:>5} trials  "
                f"last t{lane['trial']:<5} slowest t{slow_trial} "
                f"({slow_s * 1e3:.3f}ms)"
            )
        if not self._workers:
            lines.append(
                "  (no heartbeats -- the experiment has no map_trials "
                "loop; see 'par' in repro list)"
            )
        return "\n".join(lines)
