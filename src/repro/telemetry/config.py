"""Ambient telemetry configuration: one switch, scoped like ``use_jobs``.

Runtime telemetry (resource sampling, worker heartbeats, stall
detection, overhead accounting) is **off by default**: the model-level
trace must stay bit-identical whether or not anyone watches the
runtime, and the cheapest telemetry is the kind never collected.  The
CLI's ``--telemetry`` flag (or the ``REPRO_TELEMETRY`` environment
variable) turns it on; :func:`use_telemetry` carries the decision to
code that never sees argv -- most importantly the trial pool, whose
``_run_chunk`` emits one ``telemetry.heartbeat`` per trial only when
the ambient switch is set::

    from repro.telemetry import use_telemetry

    with use_telemetry(True):
        map_trials(fn, seeds)       # heartbeats ride the capture tracer

Resolution order mirrors :func:`repro.parallel.use_jobs`: an explicit
flag, the enclosing :func:`use_telemetry` scope, the environment
variable, and finally off.  The stall deadline and sampler interval
follow the same pattern (``REPRO_STALL_DEADLINE`` /
``REPRO_TELEMETRY_INTERVAL``) so CI can inject a zero deadline as a
negative control without touching code.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "DEFAULT_SAMPLE_INTERVAL_S",
    "DEFAULT_STALL_DEADLINE_S",
    "TELEMETRY_NAME_PREFIX",
    "excluded_from_determinism",
    "resolve_telemetry",
    "sample_interval",
    "stall_deadline",
    "telemetry_enabled",
    "use_telemetry",
]

#: Every telemetry record name starts with this prefix; it is the
#: single marker all determinism contracts key off.
TELEMETRY_NAME_PREFIX = "telemetry."


def excluded_from_determinism(name: str) -> bool:
    """True when a record name is outside every determinism contract.

    The **exclusion contract** in one place: ``telemetry.*`` records
    describe the *host* (RSS, CPU, heartbeats, stalls, tracer
    overhead), never the model, so ``trace-diff``, the first-divergence
    explainer, ``counters_of`` fingerprints, and the run registry's
    deterministic metrics must all ignore them -- a telemetry-on trace
    diffs clean against a telemetry-off baseline, and the explainer
    never names a telemetry record as a divergence.  Consumers import
    this predicate instead of re-spelling the prefix.
    """
    return name.startswith(TELEMETRY_NAME_PREFIX)

#: Seconds between ``telemetry.sample`` emissions (override with
#: ``REPRO_TELEMETRY_INTERVAL``).  50ms keeps sub-second runs to a
#: handful of samples while still catching RSS ramps on long sweeps.
DEFAULT_SAMPLE_INTERVAL_S = 0.05

#: Per-trial wall-clock budget before a worker counts as stalled
#: (override with ``REPRO_STALL_DEADLINE`` or ``--stall-deadline``).
#: Generous by design: the quick-scale suite finishes whole experiments
#: in under a second, so 30s flags genuine hangs, not slow trials.
DEFAULT_STALL_DEADLINE_S = 30.0

_FALSY = ("", "0", "false", "off", "no")

_ambient: bool | None = None


def telemetry_enabled() -> bool:
    """The ambient telemetry switch (scope, then env var, then off)."""
    if _ambient is not None:
        return _ambient
    env = os.environ.get("REPRO_TELEMETRY")
    if env is not None:
        return env.strip().lower() not in _FALSY
    return False


def resolve_telemetry(flag: bool | None) -> bool:
    """Normalize a CLI flag: ``None`` means ambient/env default."""
    if flag is None:
        return telemetry_enabled()
    return bool(flag)


@contextmanager
def use_telemetry(flag: bool | None) -> Iterator[bool]:
    """Set the ambient telemetry switch for a scope.

    ``None`` leaves the ambient value untouched, so callers can write
    ``with use_telemetry(args.telemetry):`` unconditionally.
    """
    global _ambient
    if flag is None:
        yield telemetry_enabled()
        return
    previous = _ambient
    _ambient = bool(flag)
    try:
        yield _ambient
    finally:
        _ambient = previous


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw:
        try:
            return float(raw)
        except ValueError:
            pass
    return default


def sample_interval() -> float:
    """Seconds between resource samples (floor 1ms)."""
    return max(0.001, _env_float(
        "REPRO_TELEMETRY_INTERVAL", DEFAULT_SAMPLE_INTERVAL_S
    ))


def stall_deadline() -> float:
    """The default per-trial stall deadline in seconds (floor 0)."""
    return max(0.0, _env_float(
        "REPRO_STALL_DEADLINE", DEFAULT_STALL_DEADLINE_S
    ))
