"""Background resource sampling: RSS, CPU, GC, threads -> the trace.

:class:`ResourceSampler` is a daemon thread that periodically reads
cheap process-local sources -- ``/proc/self/status`` (VmRSS / VmHWM /
Threads on Linux), :func:`resource.getrusage`, and :mod:`gc` counters
-- and emits each reading as a ``telemetry.sample`` event on a tracer.
No third-party dependency (no psutil): everything comes from the
standard library plus procfs, and on platforms without ``/proc`` the
sampler degrades to the ``getrusage`` subset instead of failing.

Samples are wall-clock-paced and therefore **non-deterministic in
count**: a fast host produces fewer than a loaded one.  That is why
``telemetry.*`` record names are excluded from the structural trace
diff (:func:`repro.obs.analysis.diff_traces`) and why the run registry
stores the sampled peaks in their own nullable columns instead of the
deterministic ``metrics`` JSON.

Lifecycle: ``start()`` begins sampling, ``close()`` stops the thread,
emits one final sample (so even a run shorter than the interval gets
at least one reading), and is idempotent -- the CLI closes samplers
through a single ``contextlib.ExitStack`` so a mid-run exception can
never leak the thread.  ``with ResourceSampler(...)`` does both.
"""

from __future__ import annotations

import gc
import resource
import threading
import time

from repro.obs.tracer import NullTracer, Tracer, get_tracer

from repro.telemetry.config import sample_interval

__all__ = [
    "ResourceSampler",
    "read_proc_status",
    "resource_snapshot",
]

_PROC_FIELDS = {
    "VmRSS": "rss_kb",
    "VmHWM": "rss_peak_kb",
    "Threads": "threads",
}


def read_proc_status() -> dict:
    """``/proc/self/status`` fields we care about (empty off-Linux).

    ``VmRSS``/``VmHWM`` are reported by the kernel in kB; ``Threads``
    is a plain count.  Any read/parse failure returns what was parsed
    so far -- resource sampling must never take a run down.
    """
    out: dict = {}
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                key, _, rest = line.partition(":")
                field = _PROC_FIELDS.get(key)
                if field is None:
                    continue
                try:
                    out[field] = float(rest.split()[0])
                except (IndexError, ValueError):
                    continue
    except OSError:
        pass
    return out


def resource_snapshot() -> dict:
    """One point-in-time reading of process resource state.

    Keys: ``rss_kb`` / ``rss_peak_kb`` / ``threads`` (procfs, absent
    off-Linux except the ``ru_maxrss`` peak fallback), ``cpu_user_s`` /
    ``cpu_sys_s`` (rusage), ``gc_collections`` (lifetime collection
    count summed over generations), ``gc_objects`` (currently tracked).
    """
    snap = read_proc_status()
    usage = resource.getrusage(resource.RUSAGE_SELF)
    snap["cpu_user_s"] = round(usage.ru_utime, 6)
    snap["cpu_sys_s"] = round(usage.ru_stime, 6)
    # ru_maxrss is kB on Linux; use it as the peak fallback when procfs
    # is unavailable so rss_peak_kb is populated everywhere.
    snap.setdefault("rss_peak_kb", float(usage.ru_maxrss))
    snap["gc_collections"] = sum(
        s.get("collections", 0) for s in gc.get_stats()
    )
    snap["gc_objects"] = len(gc.get_objects(0))
    snap.setdefault("threads", float(threading.active_count()))
    return snap


class ResourceSampler:
    """Periodic ``telemetry.sample`` emission on a background thread.

    Parameters
    ----------
    tracer:
        Where samples land (default: the ambient tracer at
        construction time).  Emission from the sampler thread is safe:
        the tracer's fan-out appends and subscriber calls run under the
        GIL, and the JSONL exporter writes whole lines.
    interval_s:
        Seconds between samples (default :func:`sample_interval`,
        i.e. ``REPRO_TELEMETRY_INTERVAL`` or 50ms).
    """

    def __init__(
        self,
        tracer: Tracer | NullTracer | None = None,
        *,
        interval_s: float | None = None,
    ) -> None:
        self._tracer = tracer if tracer is not None else get_tracer()
        self._interval = (
            max(0.001, float(interval_s)) if interval_s is not None
            else sample_interval()
        )
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._closed = False
        self.samples = 0
        self.rss_peak_kb: float | None = None
        self.cpu_s: float | None = None

    @property
    def interval_s(self) -> float:
        return self._interval

    def _emit_sample(self) -> None:
        snap = resource_snapshot()
        peak = snap.get("rss_peak_kb")
        if peak is not None:
            self.rss_peak_kb = max(self.rss_peak_kb or 0.0, float(peak))
        self.cpu_s = snap["cpu_user_s"] + snap["cpu_sys_s"]
        self.samples += 1
        self._tracer.event(
            "telemetry.sample", interval_s=self._interval, **snap
        )

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            self._emit_sample()

    def start(self) -> "ResourceSampler":
        """Begin sampling (no-op if already started or closed)."""
        if self._thread is None and not self._closed:
            self._thread = threading.Thread(
                target=self._loop, name="repro-resource-sampler", daemon=True
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop the thread and emit one final sample; idempotent.

        The final emission guarantees at least one ``telemetry.sample``
        (with the true RSS peak) even for runs shorter than the
        interval, and gives the trace a closing resource reading.
        """
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._emit_sample()

    def summary(self) -> dict:
        """The sampler's contribution to ``result.metrics['telemetry']``."""
        return {
            "samples": self.samples,
            "interval_s": self._interval,
            "rss_peak_kb": self.rss_peak_kb,
            "cpu_s": self.cpu_s,
        }

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
