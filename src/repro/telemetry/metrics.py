"""Process-local metrics: counters, gauges, histograms, Prometheus text.

The registry half of the telemetry layer: where the tracer records
*what happened when*, a :class:`MetricsRegistry` holds *how much so
far* -- monotonically increasing counters, last-value gauges, and
fixed-bucket histograms.  Three properties matter here:

* **Deterministic shape.**  Histogram bucket edges are fixed at
  construction (:data:`DEFAULT_BUCKETS` unless overridden), never
  adapted to data, so two runs of one workload produce snapshots with
  identical keys -- the same contract the trace schema keeps.
* **Snapshot = dotted-flat dict.**  :meth:`MetricsRegistry.snapshot`
  returns the same dotted-key form :func:`repro.obs.metrics.flatten_dotted`
  produces, so registry output can flow anywhere flat metrics already
  go (JSON summaries, run comparisons, tests).
* **Prometheus text exposition.**  :meth:`MetricsRegistry.render_prometheus`
  emits the ``# HELP`` / ``# TYPE`` text format (the ``/metrics``
  payload a future ``repro serve`` will mount; today the CLI's
  ``--metrics-out metrics.prom`` writes it to disk).
  :func:`parse_prometheus` is the matching minimal parser CI uses to
  prove the file is well-formed.

:class:`TelemetryCollector` bridges the two worlds: it is a tracer
subscriber that folds the record stream -- model events (``mpc.round``,
``oracle.query``) and runtime events (``telemetry.sample``,
``telemetry.heartbeat``, ``telemetry.stall``) alike -- into a registry,
so one subscription yields a complete scrape.
"""

from __future__ import annotations

import re
import threading
from typing import Mapping

from repro.obs.tracer import TraceRecord

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TelemetryCollector",
    "parse_prometheus",
    "render_prometheus",
    "write_prometheus",
]

#: Fixed, deterministic histogram bucket edges (seconds-flavored but
#: unit-agnostic): never derived from observed data, so snapshot keys
#: are identical across runs and hosts.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0,
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Prometheus sample line: ``name{labels} value`` (labels optional).
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?\s+"
    r"(?P<value>[-+0-9.eEinfNa]+)$"
)


def _prom_name(name: str, *, prefix: str = "repro") -> str:
    """Sanitize a dotted metric name into a legal Prometheus name."""
    flat = _NAME_RE.sub("_", name.replace(".", "_"))
    return f"{prefix}_{flat}" if prefix else flat


def _edge_label(edge: float) -> str:
    """Bucket edge as Prometheus renders ``le`` labels (``0.001``)."""
    text = f"{edge:.12g}"
    return text


class Counter:
    """A monotonically increasing value (negative increments rejected)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name}: increment must be >= 0, got {amount}"
            )
        self.value += amount

    def items(self) -> list[tuple[str, float]]:
        return [(self.name, self.value)]


class Gauge:
    """A last-value metric (settable up or down)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def items(self) -> list[tuple[str, float]]:
        return [(self.name, self.value)]


class Histogram:
    """Fixed-bucket histogram: cumulative counts, sum, and count.

    ``buckets`` are upper edges (an implicit ``+Inf`` bucket is always
    present); they are frozen at construction and sorted, never
    data-dependent, so snapshots have stable keys.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets:
            raise ValueError(f"histogram {name}: needs at least one bucket")
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(edge, cumulative_count)`` pairs, finite edges only."""
        out = []
        running = 0
        for edge, count in zip(self.buckets, self.counts):
            running += count
            out.append((edge, running))
        return out

    def items(self) -> list[tuple[str, float]]:
        out: list[tuple[str, float]] = []
        for edge, cum in self.cumulative():
            out.append((f"{self.name}.le_{_edge_label(edge)}", float(cum)))
        out.append((f"{self.name}.count", float(self.count)))
        out.append((f"{self.name}.sum", self.sum))
        return out


class MetricsRegistry:
    """Get-or-create store of named metrics (thread-safe creation).

    Names are dotted (``telemetry.heartbeats``); re-requesting a name
    returns the existing metric, and requesting it as a different kind
    raises ``ValueError`` (one name, one type -- the Prometheus rule).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, requested {cls.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def metrics(self) -> list[Counter | Gauge | Histogram]:
        """All registered metrics, sorted by name."""
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def snapshot(self) -> dict[str, float]:
        """Dotted-flat view of every metric, keys sorted.

        Counters/gauges contribute ``name``; histograms contribute
        ``name.le_<edge>`` cumulative counts plus ``name.count`` and
        ``name.sum`` -- the same dotted-key convention as
        :func:`repro.obs.metrics.flatten_dotted` output.
        """
        out: dict[str, float] = {}
        for metric in self.metrics():
            out.update(metric.items())
        return dict(sorted(out.items()))

    def render_prometheus(self, *, prefix: str = "repro") -> str:
        """The text-exposition payload (``# HELP``/``# TYPE`` + samples)."""
        lines: list[str] = []
        for metric in self.metrics():
            name = _prom_name(metric.name, prefix=prefix)
            help_text = metric.help or metric.name
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                running = 0
                for edge, count in zip(metric.buckets, metric.counts):
                    running += count
                    lines.append(
                        f'{name}_bucket{{le="{_edge_label(edge)}"}} {running}'
                    )
                lines.append(f'{name}_bucket{{le="+Inf"}} {metric.count}')
                lines.append(f"{name}_sum {metric.sum:.9g}")
                lines.append(f"{name}_count {metric.count}")
            else:
                lines.append(f"{name} {metric.value:.9g}")
        return "\n".join(lines) + "\n"


def render_prometheus(registry: MetricsRegistry, *, prefix: str = "repro"
                      ) -> str:
    """Module-level alias of :meth:`MetricsRegistry.render_prometheus`."""
    return registry.render_prometheus(prefix=prefix)


def write_prometheus(
    registry: MetricsRegistry, path: str, *, prefix: str = "repro"
) -> int:
    """Write the exposition file; returns the number of bytes written."""
    content = registry.render_prometheus(prefix=prefix)
    with open(path, "w") as fh:
        fh.write(content)
    return len(content)


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse text exposition back into ``{name_or_labeled_name: value}``.

    A deliberately small parser -- enough for CI to assert the file is
    well-formed and to read gauges back.  Raises ``ValueError`` on any
    line that is neither a comment, blank, nor a valid sample.
    """
    out: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: not a prometheus sample: {line!r}")
        key = match.group("name") + (match.group("labels") or "")
        out[key] = float(match.group("value"))
    return out


class TelemetryCollector:
    """A tracer subscriber folding the record stream into a registry.

    Covers both halves of the stream: model-level events that already
    exist (rounds, oracle queries, experiment spans, monitor
    violations) and the runtime events this package adds (samples,
    heartbeats, stalls, overhead).  Subscribe it to any tracer; read
    ``collector.registry`` afterwards or hand it to
    :func:`write_prometheus`.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._rounds = r.counter("mpc.rounds", "MPC rounds completed")
        self._round_s = r.histogram("mpc.round_seconds", "per-round latency")
        self._queries = r.counter("oracle.queries", "oracle queries issued")
        self._experiments = r.counter("experiments", "experiment spans closed")
        self._violations = r.counter(
            "monitor.violations", "invariant-monitor violations"
        )
        self._samples = r.counter(
            "telemetry.samples", "resource samples emitted"
        )
        self._rss = r.gauge("telemetry.rss_kb", "latest sampled RSS (kB)")
        self._rss_peak = r.gauge("telemetry.rss_peak_kb", "peak RSS (kB)")
        self._cpu = r.gauge("telemetry.cpu_s", "process CPU seconds")
        self._threads = r.gauge("telemetry.threads", "thread count")
        self._heartbeats = r.counter(
            "telemetry.heartbeats", "per-trial worker heartbeats"
        )
        self._trial_s = r.histogram(
            "telemetry.trial_seconds", "per-trial wall-clock"
        )
        self._stalls = r.counter(
            "telemetry.stalls", "heartbeats past the stall deadline"
        )
        self._overhead_frac = r.gauge(
            "telemetry.overhead_frac",
            "tracer fan-out seconds / experiment seconds",
        )
        self._overhead_s = r.gauge(
            "telemetry.overhead_s", "seconds spent inside tracer fan-out"
        )

    def __call__(self, record: TraceRecord) -> None:
        name, a = record.name, record.attrs
        if name == "mpc.round" and record.kind == "span":
            self._rounds.inc()
            self._round_s.observe(record.dur or 0.0)
        elif name == "oracle.query":
            self._queries.inc()
        elif name == "experiment" and record.kind == "span":
            self._experiments.inc()
        elif name == "monitor.violation":
            self._violations.inc()
        elif name == "telemetry.sample":
            self._samples.inc()
            if a.get("rss_kb") is not None:
                self._rss.set(a["rss_kb"])
            if a.get("rss_peak_kb") is not None:
                self._rss_peak.set(max(
                    self._rss_peak.value, float(a["rss_peak_kb"])
                ))
            cpu = (a.get("cpu_user_s") or 0.0) + (a.get("cpu_sys_s") or 0.0)
            if cpu:
                self._cpu.set(cpu)
            if a.get("threads") is not None:
                self._threads.set(a["threads"])
        elif name == "telemetry.heartbeat":
            self._heartbeats.inc()
            self._trial_s.observe(a.get("elapsed_s") or 0.0)
        elif name == "telemetry.stall":
            self._stalls.inc()
        elif name == "telemetry.overhead":
            if a.get("overhead_frac") is not None:
                self._overhead_frac.set(a["overhead_frac"])
            if a.get("overhead_s") is not None:
                self._overhead_s.set(a["overhead_s"])

    def update_from(self, flat: Mapping) -> None:
        """Merge a ``telemetry`` summary dict (gauge keys only)."""
        mapping = {
            "rss_peak_kb": self._rss_peak,
            "cpu_s": self._cpu,
            "overhead_frac": self._overhead_frac,
            "overhead_s": self._overhead_s,
        }
        for key, gauge in mapping.items():
            value = flat.get(key)
            if isinstance(value, (int, float)):
                gauge.set(float(value))
