"""Observability self-overhead accounting: what does watching cost?

Every claim the ROADMAP's speed arcs will make ("the vectorized
backend is 10x faster") is measured *through* the tracer -- so the
tracer's own cost must be a known, subtractable quantity, not folded
invisibly into experiment wall-clock.  :class:`OverheadMeter` measures
it at the single choke point every record passes through:
:meth:`repro.obs.Tracer._emit` times its fan-out (the in-memory append
plus every subscriber call -- exporters, monitors, collectors) against
the meter when one is attached::

    meter = OverheadMeter().attach(tracer)
    ... run ...
    frac = meter.frac(result.metrics["duration_s"])

Accounting rules:

* **Outermost only.**  A subscriber may itself emit records (a monitor
  emitting ``monitor.violation``); nested emissions are already inside
  the outer timing window, so the meter counts them once, via a
  thread-local depth.
* **Thread-safe totals.**  The resource sampler emits from its own
  thread; totals accumulate under a lock.
* **Reported as** ``telemetry.overhead_frac`` -- fan-out seconds over
  experiment self-time -- in the run summary, the trace (a
  ``telemetry.overhead`` event), the Prometheus exposition, and the
  registry's ``overhead_frac`` column.
"""

from __future__ import annotations

import threading
import time

from repro.obs.tracer import Tracer

__all__ = ["OverheadMeter", "overhead_summary"]


class OverheadMeter:
    """Accumulates wall time spent inside tracer record fan-out.

    ``overhead_s`` is the summed outermost ``_emit`` duration;
    ``records`` the number of outermost emissions timed.  Attach with
    :meth:`attach` (or ``tracer.set_meter(meter)``); detach with
    ``tracer.set_meter(None)``.
    """

    def __init__(self) -> None:
        self.overhead_s = 0.0
        self.records = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- the Tracer._emit protocol ---------------------------------------

    def begin(self) -> float | None:
        """Enter an emission; returns a timing token only when outermost."""
        depth = getattr(self._local, "depth", 0)
        self._local.depth = depth + 1
        return time.perf_counter() if depth == 0 else None

    def end(self, token: float | None) -> None:
        """Leave an emission; accounts the interval for outermost tokens."""
        self._local.depth -= 1
        if token is not None:
            elapsed = time.perf_counter() - token
            with self._lock:
                self.overhead_s += elapsed
                self.records += 1

    # -- convenience -----------------------------------------------------

    def attach(self, tracer: Tracer) -> "OverheadMeter":
        """Install on ``tracer``; returns self."""
        tracer.set_meter(self)
        return self

    def frac(self, wall_s: float | None) -> float:
        """Overhead as a fraction of ``wall_s`` (0.0 when unmeasurable)."""
        if not wall_s or wall_s <= 0:
            return 0.0
        return self.overhead_s / wall_s

    def summary(self, wall_s: float | None = None) -> dict:
        out = {
            "overhead_s": round(self.overhead_s, 9),
            "records": self.records,
        }
        if wall_s is not None:
            out["overhead_frac"] = round(self.frac(wall_s), 6)
        return out


def overhead_summary(meter: OverheadMeter, wall_s: float | None) -> dict:
    """Module-level alias of :meth:`OverheadMeter.summary`."""
    return meter.summary(wall_s)
