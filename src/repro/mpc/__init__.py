"""Massively Parallel Computation substrate (Definitions 2.1 / 2.2).

The simulator enforces the model mechanically:

* ``m`` machines with ``s``-bit local memories -- a machine's entire
  state at the start of round ``k+1`` is the union of messages sent to it
  at the end of round ``k`` (machines persist state only by messaging
  themselves), and the simulator rejects any round in which a machine's
  incoming bits exceed ``s``;
* unlimited local computation per round, including up to ``q`` adaptive
  oracle queries (Definition 2.2), metered by a
  :class:`~repro.oracle.counting.CountingOracle`;
* a shared, read-only random tape (:mod:`~repro.mpc.tape`);
* per-round statistics: message bits, query counts, machine activity.
"""

from repro.mpc.correctness import (
    estimate_success_probability,
    estimate_worst_case_success,
    run_with_budget,
)
from repro.mpc.derandomize import DerandomizedMachine, split_oracle
from repro.mpc.errors import MemoryExceeded, ProtocolError
from repro.mpc.machine import Machine, RoundContext, RoundOutput
from repro.mpc.model import MPCParams
from repro.mpc.simulator import MPCResult, MPCSimulator
from repro.mpc.stats import MPCStats, RoundStats
from repro.mpc.tape import SharedTape

__all__ = [
    "DerandomizedMachine",
    "MPCParams",
    "MPCResult",
    "MPCSimulator",
    "MPCStats",
    "Machine",
    "MemoryExceeded",
    "ProtocolError",
    "RoundContext",
    "RoundOutput",
    "RoundStats",
    "SharedTape",
    "estimate_success_probability",
    "estimate_worst_case_success",
    "run_with_budget",
    "split_oracle",
]
