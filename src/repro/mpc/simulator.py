"""The round engine.

One round (Definition 2.1/2.2):

1. each machine ``i`` starts the round owning exactly the messages that
   were addressed to it at the end of the previous round (round 0 owns
   its share of the input); the simulator verifies this fits in ``s``
   bits *before* the machine runs;
2. the machine computes locally -- with oracle access metered to at most
   ``q`` queries when the oracle model is active -- and emits messages;
3. the simulator routes messages; delivery happens at the start of the
   next round.

The run ends when every machine halts in the same round (the union of
their ``output`` fields is the computation's answer, Definition 2.4) or
when ``max_rounds`` is hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.bits import Bits
from repro.mpc.errors import MemoryExceeded, ProtocolError
from repro.mpc.machine import Machine, RoundContext, RoundOutput
from repro.mpc.model import MPCParams
from repro.mpc.stats import MPCStats, RoundStats
from repro.mpc.tape import SharedTape
from repro.obs import get_tracer
from repro.oracle.base import Oracle
from repro.oracle.counting import CountingOracle

__all__ = ["MPCSimulator", "MPCResult"]


@dataclass
class MPCResult:
    """Outcome of a simulation."""

    rounds: int
    outputs: dict[int, Bits]
    stats: MPCStats
    halted: bool
    oracle: CountingOracle | None
    first_output_round: int | None = None

    def combined_output(self) -> Bits:
        """The union of machine outputs, concatenated by machine id."""
        return Bits.concat([self.outputs[i] for i in sorted(self.outputs)])

    @property
    def rounds_to_output(self) -> int | None:
        """Rounds until the answer existed (Definition 2.4's ``R``).

        This excludes the final halt-handshake round protocols use to
        shut every machine down; it is the number the experiments
        compare against the paper's round bounds.
        """
        if self.first_output_round is None:
            return None
        return self.first_output_round + 1


class MPCSimulator:
    """Runs a machine family under the model's resource constraints."""

    def __init__(
        self,
        params: MPCParams,
        machines: Sequence[Machine],
        *,
        oracle: Oracle | None = None,
        tape: SharedTape | None = None,
        inbox_observer: Callable[[int, int, tuple[tuple[int, Bits], ...]], None]
        | None = None,
    ) -> None:
        if len(machines) != params.m:
            raise ValueError(
                f"params declare m={params.m} machines, got {len(machines)}"
            )
        self._params = params
        self._machines = list(machines)
        self._tape = tape if tape is not None else SharedTape()
        self._oracle: CountingOracle | None = None
        # Called as (round, machine, incoming) just before each machine
        # runs -- the hook the compression encoders use to capture the
        # "A1 output" (a machine's memory at the start of a round).
        self._inbox_observer = inbox_observer
        if oracle is not None:
            self._oracle = CountingOracle(oracle, per_round_limit=params.q)

    @property
    def oracle(self) -> CountingOracle | None:
        """The metered oracle (transcript source for the proof machinery)."""
        return self._oracle

    def run(self, initial_memories: Sequence[Bits]) -> MPCResult:
        """Simulate until all machines halt or ``max_rounds`` is reached.

        ``initial_memories[i]`` is machine ``i``'s share of the
        arbitrarily-partitioned input (Definition 2.1); shares must fit
        in ``s`` bits.

        Halting follows Definition 2.4: the computation ends only in a
        round where **every** machine returns ``halt=True``.  A machine
        that votes ``halt=True`` while others continue is *not* retired
        -- it keeps being invoked (and may send, receive, query, and
        change its vote) in every later round.  The halt flag is a
        per-round vote, not a latch, which is what lets protocols run a
        final shutdown handshake once the answer exists.

        When a tracer is active (:func:`repro.obs.use_tracer`), the run
        emits one ``mpc.run_start`` event announcing the resource
        budgets (``m``, ``s_bits``, ``q``), one ``mpc.round`` span per
        round, one ``mpc.machine_step`` event per machine invocation
        (with received and sent bits, plus the per-destination
        ``sent_to`` map the communication-matrix analysis reads), and
        one closing ``mpc.run`` span.  Span hooks (scoped profilers)
        additionally see each machine's local computation as an
        ``mpc.machine_step`` window.
        """
        params = self._params
        if len(initial_memories) != params.m:
            raise ValueError(
                f"need {params.m} initial memories, got {len(initial_memories)}"
            )
        tracer = get_tracer()
        traced = tracer.enabled
        hooked = traced and tracer.has_span_hooks
        run_span = tracer.begin_span(
            "mpc.run", m=params.m, s_bits=params.s_bits, q=params.q
        ) if traced else None
        if traced:
            # Announce the resource budgets up front so stream
            # subscribers (invariant monitors, progress renderers) know
            # s, m, and q before the first round arrives.
            tracer.event(
                "mpc.run_start",
                m=params.m,
                s_bits=params.s_bits,
                q=params.q,
                max_rounds=params.max_rounds,
            )
        # Round 0 inboxes: the input partition, "sent" by the environment
        # (sender id -1 marks input shares).
        inboxes: list[list[tuple[int, Bits]]] = [
            [(-1, mem)] if len(mem) else [] for mem in initial_memories
        ]
        stats = MPCStats()
        outputs: dict[int, Bits] = {}
        first_output_round: int | None = None

        for round_k in range(params.max_rounds):
            round_span = (
                tracer.begin_span("mpc.round", round=round_k) if traced else None
            )
            next_inboxes: list[list[tuple[int, Bits]]] = [
                [] for _ in range(params.m)
            ]
            round_messages = 0
            round_message_bits = 0
            round_edges: list[tuple[int, int, int]] = []
            round_queries_before = (
                self._oracle.total_queries if self._oracle else 0
            )
            active = 0
            halted_count = 0

            for i, machine in enumerate(self._machines):
                incoming = tuple(inboxes[i])
                incoming_bits = sum(len(p) for _, p in incoming)
                if incoming_bits > params.s_bits:
                    raise MemoryExceeded(
                        f"machine {i} holds {incoming_bits} bits at round "
                        f"{round_k}, local memory is s={params.s_bits}"
                    )
                if self._inbox_observer is not None:
                    self._inbox_observer(round_k, i, incoming)
                if self._oracle is not None:
                    self._oracle.set_context(round=round_k, machine=i)
                ctx = RoundContext(
                    round=round_k,
                    machine_id=i,
                    num_machines=params.m,
                    incoming=incoming,
                    oracle=self._oracle,
                    tape=self._tape,
                )
                step_start = tracer.now() if traced else 0.0
                if hooked:
                    with tracer.hook_scope("mpc.machine_step"):
                        result = machine.run_round(ctx)
                else:
                    result = machine.run_round(ctx)
                step_dur = tracer.now() - step_start if traced else 0.0
                if not isinstance(result, RoundOutput):
                    raise ProtocolError(
                        f"machine {i} returned {type(result).__name__}, "
                        "expected RoundOutput"
                    )
                if incoming or result.messages or result.output is not None:
                    active += 1
                sent_messages = 0
                sent_bits = 0
                sent_to: dict[str, int] = {}
                for dst, payload in result.messages.items():
                    if not 0 <= dst < params.m:
                        raise ProtocolError(
                            f"machine {i} sent a message to invalid machine {dst}"
                        )
                    if not isinstance(payload, Bits):
                        raise ProtocolError(
                            f"machine {i} sent a non-Bits payload to {dst}"
                        )
                    next_inboxes[dst].append((i, payload))
                    round_messages += 1
                    round_message_bits += len(payload)
                    round_edges.append((i, dst, len(payload)))
                    sent_messages += 1
                    sent_bits += len(payload)
                    if traced:
                        # str keys: a JSONL round-trip must reproduce
                        # the in-memory attrs exactly (JSON has no int
                        # keys); the analysis layer int()s them back.
                        key = str(dst)
                        sent_to[key] = sent_to.get(key, 0) + len(payload)
                if traced:
                    tracer.event(
                        "mpc.machine_step",
                        round=round_k,
                        machine=i,
                        dur=step_dur,
                        incoming_bits=incoming_bits,
                        sent_messages=sent_messages,
                        sent_bits=sent_bits,
                        sent_to=sent_to,
                        oracle_queries=(
                            self._oracle.queries_in_context()
                            if self._oracle is not None
                            else 0
                        ),
                    )
                if result.output is not None:
                    outputs[i] = result.output
                    if first_output_round is None:
                        first_output_round = round_k
                if result.halt:
                    halted_count += 1

            queries = (
                self._oracle.total_queries - round_queries_before
                if self._oracle
                else 0
            )
            stats.record(
                RoundStats(
                    round=round_k,
                    message_count=round_messages,
                    message_bits=round_message_bits,
                    oracle_queries=queries,
                    active_machines=active,
                    edges=tuple(round_edges),
                )
            )
            if traced:
                tracer.end_span(
                    round_span,
                    messages=round_messages,
                    message_bits=round_message_bits,
                    oracle_queries=queries,
                    active_machines=active,
                    halted_machines=halted_count,
                )

            if halted_count == params.m:
                if traced:
                    self._trace_run(tracer, run_span, round_k + 1, True, stats)
                return MPCResult(
                    rounds=round_k + 1,
                    outputs=outputs,
                    stats=stats,
                    halted=True,
                    oracle=self._oracle,
                    first_output_round=first_output_round,
                )
            inboxes = next_inboxes

        if traced:
            self._trace_run(tracer, run_span, params.max_rounds, False, stats)
        return MPCResult(
            rounds=params.max_rounds,
            outputs=outputs,
            stats=stats,
            halted=False,
            oracle=self._oracle,
            first_output_round=first_output_round,
        )

    def _trace_run(self, tracer, run_span, rounds, halted, stats) -> None:
        tracer.end_span(
            run_span,
            rounds=rounds,
            halted=halted,
            total_messages=stats.total_messages,
            total_message_bits=stats.total_message_bits,
            total_oracle_queries=stats.total_oracle_queries,
        )
