"""Success probability under a round budget (Definitions 2.4 / 2.5).

The theorems are statements about *success probability within R rounds*:
"the probability that ``A^RO`` computes ``f^RO`` correctly in
``o(T/log^2 T)`` rounds is at most 1/3 over the random choice of RO and
input" (Theorem 1.1).  This module measures exactly that quantity for a
concrete protocol: run it with a hard round cut ``R`` and check whether
the correct output exists among the machine outputs at the cut
(Definition 2.4's "union of outputs at the end of round R").

``estimate_success_probability`` samples fresh ``(RO, X)`` pairs -- the
average-case distribution of Definition 2.5 -- and returns the success
frequency for each budget in a sweep, which experiment E-BUDGET turns
into the success-probability transition curve.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np

from repro.bits import Bits
from repro.mpc.machine import Machine
from repro.mpc.model import MPCParams
from repro.engine import make_simulator
from repro.oracle.base import Oracle

__all__ = [
    "BudgetedRun",
    "run_with_budget",
    "estimate_success_probability",
    "estimate_worst_case_success",
]


@dataclass(frozen=True)
class BudgetedRun:
    """Outcome of one budget-limited execution."""

    budget: int
    succeeded: bool
    rounds_used: int


def run_with_budget(
    params: MPCParams,
    machines: Sequence[Machine],
    initial_memories: Sequence[Bits],
    oracle: Oracle,
    *,
    budget: int,
    expected_output: Bits,
) -> BudgetedRun:
    """Execute at most ``budget`` rounds; success iff the expected output
    is among the machine outputs when the cut hits (or at halt)."""
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    capped = replace(params, max_rounds=budget)
    sim = make_simulator(capped, machines, oracle=oracle)
    result = sim.run(list(initial_memories))
    return BudgetedRun(
        budget=budget,
        succeeded=expected_output in result.outputs.values(),
        rounds_used=result.rounds,
    )


def estimate_success_probability(
    sample_instance: Callable[
        [int],
        tuple[MPCParams, Sequence[Machine], Sequence[Bits], Oracle, Bits],
    ],
    *,
    budgets: Sequence[int],
    trials: int,
    base_seed: int = 0,
) -> dict[int, float]:
    """Success frequency per budget over fresh ``(RO, X)`` samples.

    ``sample_instance(seed)`` draws one average-case instance and returns
    everything a budgeted run needs, including the correct output (the
    caller computes it with the reference evaluator).  Each trial reuses
    one instance across all budgets so the curves are paired -- lower
    variance on the transition location.
    """
    if trials <= 0:
        raise ValueError(f"need at least one trial, got {trials}")
    if not budgets:
        raise ValueError("need at least one budget")
    successes = {b: 0 for b in budgets}
    rng = np.random.default_rng(base_seed)
    for _ in range(trials):
        seed = int(rng.integers(0, 2**62))
        for budget in budgets:
            params, machines, memories, oracle, expected = sample_instance(seed)
            run = run_with_budget(
                params, machines, memories, oracle,
                budget=budget, expected_output=expected,
            )
            if run.succeeded:
                successes[budget] += 1
    return {b: successes[b] / trials for b in budgets}


def estimate_worst_case_success(
    sample_for_input: Callable[
        [int, int],
        tuple[MPCParams, Sequence[Machine], Sequence[Bits], Oracle, Bits],
    ],
    *,
    num_inputs: int,
    budget: int,
    trials_per_input: int,
    base_seed: int = 0,
) -> tuple[float, int]:
    """Definition 2.4's quantifier order: min over inputs of the
    oracle-randomness success probability.

    ``sample_for_input(input_index, oracle_seed)`` must fix the input by
    ``input_index`` (the adversarial choice) while the oracle varies
    with ``oracle_seed``.  Returns ``(worst rate, argmin input index)``
    -- the worst-case analogue of
    :func:`estimate_success_probability`'s average case.
    """
    if num_inputs <= 0 or trials_per_input <= 0:
        raise ValueError(
            f"invalid (num_inputs={num_inputs}, trials={trials_per_input})"
        )
    rng = np.random.default_rng(base_seed)
    worst_rate = 1.0
    worst_input = 0
    for input_index in range(num_inputs):
        hits = 0
        for _ in range(trials_per_input):
            oracle_seed = int(rng.integers(0, 2**62))
            params, machines, memories, oracle, expected = sample_for_input(
                input_index, oracle_seed
            )
            run = run_with_budget(
                params, machines, memories, oracle,
                budget=budget, expected_output=expected,
            )
            hits += run.succeeded
        rate = hits / trials_per_input
        if rate < worst_rate:
            worst_rate = rate
            worst_input = input_index
    return worst_rate, worst_input
