"""The machine interface: one round of local computation.

Definition 2.1 makes machines *memoryless across rounds*: the input of
machine ``i`` at round ``k+1`` is exactly the union of the messages sent
to it at the end of round ``k`` (a machine keeps state only by messaging
itself).  The interface mirrors that: ``run_round`` receives the
incoming messages and must return everything it wants to exist next
round as outgoing messages.

Protocol *code* (the per-round algorithms ``A_i^k``) may of course carry
static configuration -- the paper's algorithms are non-uniform in the
round index -- but the simulator never lets instance attributes smuggle
dynamic state between rounds: only message bits survive, and they are
counted against ``s``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.bits import Bits
from repro.mpc.tape import SharedTape
from repro.oracle.base import Oracle

__all__ = ["Machine", "RoundContext", "RoundOutput"]


@dataclass(frozen=True)
class RoundContext:
    """Everything machine ``i`` can see during round ``k``."""

    round: int
    machine_id: int
    num_machines: int
    incoming: tuple[tuple[int, Bits], ...]
    oracle: Oracle | None
    tape: SharedTape

    def incoming_bits(self) -> int:
        """Total size of the local memory this round (checked against s)."""
        return sum(len(payload) for _, payload in self.incoming)

    def from_sender(self, sender: int) -> Bits | None:
        """The message from ``sender``, if any (concatenated if several)."""
        parts = [payload for src, payload in self.incoming if src == sender]
        if not parts:
            return None
        return Bits.concat(parts)


@dataclass
class RoundOutput:
    """What a machine emits at the end of a round.

    ``messages[j]`` is delivered to machine ``j`` next round (send to
    your own id to persist state).  ``output`` contributes to the union
    of outputs that constitutes the computation's answer (Definition
    2.4).  ``halt`` signals this machine is done; the simulation stops
    when every machine halts in the same round.
    """

    messages: dict[int, Bits] = field(default_factory=dict)
    output: Bits | None = None
    halt: bool = False


class Machine(ABC):
    """The per-machine algorithm (the family ``A_i^k``)."""

    #: Declares that for every round ``k >= 1`` the machine's
    #: :meth:`run_round` output is a pure function of ``ctx.incoming``
    #: (plus the oracle and tape, which are themselves functional): it
    #: reads ``ctx.round`` only to detect round 0 and carries no mutable
    #: state across rounds.  The fast backend's steady-state memo
    #: (:class:`repro.engine.FastMPCSimulator`) replays a machine's
    #: previous round only when it opts in here; the default is the safe
    #: ``False``.
    round_oblivious: bool = False

    @abstractmethod
    def run_round(self, ctx: RoundContext) -> RoundOutput:
        """Execute round ``ctx.round`` from the incoming local memory."""
