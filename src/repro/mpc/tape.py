"""The shared, read-only random tape of Definition 2.1.

All machines may read any position of an arbitrarily long random bit
string.  As with the lazy oracle, positions are materialized on demand
from a seeded PRF so every machine sees the same tape regardless of
access order.  (Remark 2.3 notes randomness can also be drawn from spare
oracle entries; the explicit tape keeps the plain -- oracle-free -- model
self-contained.)
"""

from __future__ import annotations

from repro.bits import Bits
from repro.hashes.toy_md import toy_hash

__all__ = ["SharedTape"]

_BLOCK_BITS = 64


class SharedTape:
    """An unbounded random bit string, addressable by position."""

    def __init__(self, seed: int = 0) -> None:
        self._seed_bytes = seed.to_bytes(16, "little", signed=True)
        self._blocks: dict[int, int] = {}

    def _block(self, index: int) -> int:
        cached = self._blocks.get(index)
        if cached is None:
            digest = toy_hash(
                self._seed_bytes + index.to_bytes(8, "little"), digest_size=8
            )
            cached = int.from_bytes(digest, "big")
            self._blocks[index] = cached
        return cached

    def bit(self, position: int) -> int:
        """The bit at ``position`` (0-based)."""
        if position < 0:
            raise ValueError(f"negative tape position {position}")
        block = self._block(position // _BLOCK_BITS)
        offset = position % _BLOCK_BITS
        return (block >> (_BLOCK_BITS - 1 - offset)) & 1

    def read(self, position: int, count: int) -> Bits:
        """``count`` bits starting at ``position``."""
        if position < 0 or count < 0:
            raise ValueError(f"invalid tape range ({position}, {count})")
        value = 0
        for i in range(count):
            value = (value << 1) | self.bit(position + i)
        return Bits(value, count)
