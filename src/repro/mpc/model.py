"""MPC parameters (Table 1) and the standard regime checks.

The model's resource parameters are ``m`` machines, ``s`` bits of local
memory per machine, and (in the oracle model, Theorem 3.1) a per-round
per-machine query budget ``q``.  The paper's introduction also recalls
the standard non-triviality constraints ``m·s = Theta(N)`` and
``N^eps <= m <= N^{1-eps}``; :meth:`MPCParams.standard_regime_report`
evaluates them for a given input size so the experiment tables can flag
which configurations sit inside the conventional regime.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MPCParams"]


@dataclass(frozen=True)
class MPCParams:
    """Resource parameters of one MPC computation.

    Attributes
    ----------
    m: number of machines.
    s_bits: local memory per machine, in bits.
    q: oracle queries allowed per machine per round (``None`` = unmetered,
       the plain model of Definition 2.1).
    max_rounds: simulator safety stop.
    """

    m: int
    s_bits: int
    q: int | None = None
    max_rounds: int = 1_000_000

    def __post_init__(self) -> None:
        if self.m <= 0:
            raise ValueError(f"need at least one machine, got m={self.m}")
        if self.s_bits <= 0:
            raise ValueError(f"local memory must be positive, got s={self.s_bits}")
        if self.q is not None and self.q <= 0:
            raise ValueError(f"query budget must be positive, got q={self.q}")
        if self.max_rounds <= 0:
            raise ValueError(f"max_rounds must be positive: {self.max_rounds}")

    @property
    def total_memory_bits(self) -> int:
        """Aggregate memory ``m·s`` across the cluster."""
        return self.m * self.s_bits

    def memory_ratio(self, S: int) -> float:
        """``s/S`` -- the fraction of the RAM space one machine can hold.

        Theorem 3.1's hardness kicks in when this is at most ``1/c`` for
        the universal constant ``c > 1``.
        """
        if S <= 0:
            raise ValueError(f"S must be positive, got {S}")
        return self.s_bits / S

    def standard_regime_report(self, N: int, eps: float = 0.1) -> dict[str, bool]:
        """Check the conventional MPC constraints for input size ``N``.

        Returns which of ``m·s = Theta(N)`` (interpreted as
        ``N <= m·s <= 4N``) and ``N^eps <= m <= N^(1-eps)`` hold.  The
        hardness results do *not* require these -- they hold for any
        ``m`` up to ``2^{O(n^{1/4})}`` -- but the report situates a
        configuration against common practice.
        """
        if N <= 0:
            raise ValueError(f"input size must be positive, got {N}")
        if not 0 < eps < 0.5:
            raise ValueError(f"eps must be in (0, 0.5), got {eps}")
        return {
            "total_memory_theta_N": N <= self.total_memory_bits <= 4 * N,
            "machine_count_polynomial": N**eps <= self.m <= N ** (1 - eps),
        }

    def describe(self) -> str:
        """One-line summary used by the experiment tables."""
        q_part = f", q={self.q}" if self.q is not None else ""
        return f"MPC(m={self.m}, s={self.s_bits} bits{q_part})"
