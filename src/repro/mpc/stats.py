"""Per-round and aggregate MPC statistics.

Round complexity is the headline quantity of every experiment; the
stats also expose communication volume and oracle-query counts so the
benchmark tables can report the full cost profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RoundStats", "MPCStats"]


@dataclass(frozen=True)
class RoundStats:
    """Measurements for one round.

    ``edges`` is the communication topology: one ``(sender, receiver,
    bits)`` triple per message.  It is what
    :mod:`repro.baselines.compile_mpc` consumes to rebuild the execution
    as an s-shuffle circuit.
    """

    round: int
    message_count: int
    message_bits: int
    oracle_queries: int
    active_machines: int
    edges: tuple[tuple[int, int, int], ...] = ()


@dataclass
class MPCStats:
    """Aggregate measurements for one simulation."""

    rounds: list[RoundStats] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        """Rounds executed."""
        return len(self.rounds)

    @property
    def total_message_bits(self) -> int:
        """Communication volume over the whole run."""
        return sum(r.message_bits for r in self.rounds)

    @property
    def total_oracle_queries(self) -> int:
        """Oracle queries over the whole run."""
        return sum(r.oracle_queries for r in self.rounds)

    @property
    def max_queries_per_round(self) -> int:
        """Peak per-round query load (compared against ``m·q``)."""
        return max((r.oracle_queries for r in self.rounds), default=0)

    def record(self, stats: RoundStats) -> None:
        """Append one round's measurements."""
        self.rounds.append(stats)
