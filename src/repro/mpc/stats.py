"""Per-round and aggregate MPC statistics.

Round complexity is the headline quantity of every experiment; the
stats also expose communication volume and oracle-query counts so the
benchmark tables can report the full cost profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RoundStats", "MPCStats"]


@dataclass(frozen=True)
class RoundStats:
    """Measurements for one round.

    ``edges`` is the communication topology: one ``(sender, receiver,
    bits)`` triple per message.  It is what
    :mod:`repro.baselines.compile_mpc` consumes to rebuild the execution
    as an s-shuffle circuit.
    """

    round: int
    message_count: int
    message_bits: int
    oracle_queries: int
    active_machines: int
    edges: tuple[tuple[int, int, int], ...] = ()


@dataclass
class MPCStats:
    """Aggregate measurements for one simulation."""

    rounds: list[RoundStats] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        """Rounds executed."""
        return len(self.rounds)

    @property
    def total_message_bits(self) -> int:
        """Communication volume over the whole run."""
        return sum(r.message_bits for r in self.rounds)

    @property
    def total_oracle_queries(self) -> int:
        """Oracle queries over the whole run."""
        return sum(r.oracle_queries for r in self.rounds)

    @property
    def max_queries_per_round(self) -> int:
        """Peak per-round query load (compared against ``m·q``)."""
        return max((r.oracle_queries for r in self.rounds), default=0)

    @property
    def total_messages(self) -> int:
        """Messages routed over the whole run."""
        return sum(r.message_count for r in self.rounds)

    @property
    def max_message_bits_per_round(self) -> int:
        """Peak per-round communication volume (bandwidth high-water)."""
        return max((r.message_bits for r in self.rounds), default=0)

    @property
    def peak_inbox_bits(self) -> int:
        """Largest inbox any machine started a round with.

        Computed from the ``edges`` topology: the maximum over
        ``(round, receiver)`` of the bits addressed to that receiver.
        This is the quantity the simulator checks against ``s``
        (Definition 2.2); round-0 input shares are delivered by the
        environment, not as messages, so they are excluded here.
        """
        peak = 0
        for r in self.rounds:
            per_receiver: dict[int, int] = {}
            for _, dst, bits in r.edges:
                per_receiver[dst] = per_receiver.get(dst, 0) + bits
            if per_receiver:
                peak = max(peak, max(per_receiver.values()))
        return peak

    def active_machine_histogram(self) -> dict[int, int]:
        """Histogram: number of active machines -> rounds at that level.

        The tracer summary uses this to show how parallel a run really
        was (a protocol with m machines but histogram mass at 1 is a
        chain, not a parallel algorithm).
        """
        hist: dict[int, int] = {}
        for r in self.rounds:
            hist[r.active_machines] = hist.get(r.active_machines, 0) + 1
        return hist

    def record(self, stats: RoundStats) -> None:
        """Append one round's measurements."""
        self.rounds.append(stats)
