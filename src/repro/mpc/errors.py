"""MPC model violations."""

__all__ = ["MemoryExceeded", "ProtocolError"]


class MemoryExceeded(Exception):
    """A machine's local memory / incoming messages exceeded ``s`` bits."""


class ProtocolError(Exception):
    """A protocol produced malformed output (bad recipient, bad state)."""
