"""Remark 2.3: derandomizing MPC with a larger oracle domain.

"We can use a random oracle with a larger input domain and a
deterministic MPC can simulate a randomized MPC by obtaining random bits
from querying those extra oracle entries that are not used by the
randomized MPC."

Concretely: take an oracle on ``{0,1}^{n+1}``; queries prefixed ``0``
form an ``n``-bit *work oracle* (what the protocol's construction
uses); queries prefixed ``1`` are never touched by the construction, so
their answers are fresh uniform bits -- a shared random tape.  The
wrapper below runs any tape-using machine against that split, making the
whole computation a deterministic function of the big oracle.  This is
why Lemma 3.2 may assume deterministic algorithms without loss of
generality.
"""

from __future__ import annotations

from repro.bits import Bits
from repro.mpc.machine import Machine, RoundContext, RoundOutput
from repro.oracle.base import Oracle

__all__ = ["PrefixedOracleView", "OracleBackedTape", "DerandomizedMachine", "split_oracle"]


class PrefixedOracleView(Oracle):
    """The ``n``-bit work oracle: queries forwarded with a fixed prefix bit."""

    def __init__(self, base: Oracle, prefix: int = 0) -> None:
        if base.n_in < 1:
            raise ValueError("base oracle needs at least one input bit")
        if prefix not in (0, 1):
            raise ValueError(f"prefix must be a bit, got {prefix}")
        super().__init__(base.n_in - 1, base.n_out)
        self._base = base
        self._prefix = Bits(prefix, 1)

    def _evaluate(self, x: Bits) -> Bits:
        return self._base.query(self._prefix + x)


class OracleBackedTape:
    """A shared random tape materialized from prefix-``1`` oracle entries.

    Position ``p`` lives in block ``p // n_out``; block ``b``'s bits are
    the answer to the query ``1 || b`` (the block index, left-padded).
    Because the work side never issues prefix-``1`` queries, these
    answers are independent of the computation -- uniform tape bits.
    """

    def __init__(self, base: Oracle, prefix: int = 1) -> None:
        if prefix not in (0, 1):
            raise ValueError(f"prefix must be a bit, got {prefix}")
        self._base = base
        self._prefix = Bits(prefix, 1)
        self._index_bits = base.n_in - 1
        self._block_bits = base.n_out
        self._cache: dict[int, Bits] = {}

    def _block(self, index: int) -> Bits:
        cached = self._cache.get(index)
        if cached is None:
            if index.bit_length() > self._index_bits:
                raise ValueError(
                    f"tape block {index} exceeds the oracle's address space"
                )
            cached = self._base.query(self._prefix + Bits(index, self._index_bits))
            self._cache[index] = cached
        return cached

    def bit(self, position: int) -> int:
        """The tape bit at ``position``."""
        if position < 0:
            raise ValueError(f"negative tape position {position}")
        block = self._block(position // self._block_bits)
        return block[position % self._block_bits]

    def read(self, position: int, count: int) -> Bits:
        """``count`` tape bits starting at ``position``."""
        if position < 0 or count < 0:
            raise ValueError(f"invalid tape range ({position}, {count})")
        return Bits.from_bools(
            bool(self.bit(position + i)) for i in range(count)
        )


def split_oracle(base: Oracle) -> tuple[PrefixedOracleView, OracleBackedTape]:
    """The Remark 2.3 split: (work oracle, oracle-backed tape)."""
    return PrefixedOracleView(base, 0), OracleBackedTape(base, 1)


class DerandomizedMachine(Machine):
    """Run a tape-using machine with oracle-derived randomness.

    The wrapped machine sees an ``n``-bit oracle and a tape; both are
    views of the single ``(n+1)``-bit oracle the simulator provides, so
    the composite is deterministic given that oracle -- exactly the
    reduction Remark 2.3 sketches.
    """

    def __init__(self, inner: Machine) -> None:
        self._inner = inner

    def run_round(self, ctx: RoundContext) -> RoundOutput:
        if ctx.oracle is None:
            raise ValueError("derandomization requires an oracle-model context")
        work, tape = split_oracle(ctx.oracle)
        inner_ctx = RoundContext(
            round=ctx.round,
            machine_id=ctx.machine_id,
            num_machines=ctx.num_machines,
            incoming=ctx.incoming,
            oracle=work,
            tape=tape,  # type: ignore[arg-type] -- duck-typed SharedTape API
        )
        return self._inner.run_round(inner_ctx)
