"""Command-line interface.

::

    python -m repro list                     # experiment inventory
    python -m repro run E-LINE [--scale full] [--strict-bounds] [--jobs N]
    python -m repro run-all [--scale quick] [--json] [--jobs N]
    python -m repro report [--scale quick] [--output EXPERIMENTS.md]
    python -m repro report trace.jsonl -o report.html [--format chrome-json]
    python -m repro trace E-LINE [--trace-out t.jsonl] [--strict-bounds]
    python -m repro top E-LINE [--jobs N] [--stall-deadline S]
    python -m repro profile E-LINE [--cprofile-span mpc.round] [--memory]
    python -m repro profile --compare a.jsonl b.jsonl [--top N]
    python -m repro trace-diff baseline.jsonl current.jsonl
    python -m repro bench-compare benchmarks/baseline.json <bench-dir>
    python -m repro bench-baseline <bench-dir> [-o baseline.json]
    python -m repro bench run [--suite quick] [--backend fast] [--history]
    python -m repro bench trend [--source both] [--window 8] [--json]
    python -m repro cost show [chain ram.line] [--latex]
    python -m repro cost eval chain T=64 m=4 b=2 v=8 u=16 q=none R=40
    python -m repro cost check [E-LINE E-RAM] [--strict] [--trace t.jsonl]
    python -m repro runs list [-e E-LINE] [-n 30] [--registry PATH]
    python -m repro runs show <run-id>
    python -m repro runs compare <a> <b>
    python -m repro runs trend [--metric wall_s] [--window 5] [--html t.html]
    python -m repro runs gc --keep-last 50 [--before 2026-01-01]

``report`` with no positional argument regenerates the paper-vs-measured
record (the markdown committed to ``EXPERIMENTS.md``).  Given a JSONL
trace file it instead renders that trace as a self-contained static
HTML report (``--format html``, default) or as Chrome trace-event JSON
(``--format chrome-json``) that opens in ``ui.perfetto.dev``.

``trace`` runs one experiment under a recording tracer and prints the
span/event summary plus aggregated metrics (per-round latency, message
and query histograms, oracle cache behavior); ``--trace-out PATH``
additionally streams the raw JSONL trace to disk.  ``--trace-out`` is
also accepted by ``run``/``run-all``/``report`` (see
docs/OBSERVABILITY.md).

``profile`` runs one experiment under the hotspot profiler and prints
the per-span self/cumulative-time table plus the slowest rounds;
``--cprofile`` / ``--cprofile-span NAME`` attach ``cProfile`` (to the
whole run, or to one span kind only), ``--memory`` samples per-round
``tracemalloc`` peaks.  ``trace-diff`` structurally compares two JSONL
traces (record kinds, the bench gate's deterministic counters,
per-round latency) and exits 1 on structural drift.

``--jobs N`` (on ``run``/``run-all``/``trace``) fans the experiments'
Monte-Carlo trial loops across N worker processes via
:mod:`repro.parallel`; ``run-all`` additionally runs whole experiments
in parallel.  Results, verdicts, and model-level trace counters are
bit-identical at every N (the ``REPRO_JOBS`` environment variable sets
the default -- see docs/PERFORMANCE.md).

The ``cost`` family is the symbolic cost-model oracle
(:mod:`repro.costmodel`): ``cost show`` pretty-prints every protocol's
closed-form counter formulas (``--latex`` for paper-ready output),
``cost eval`` evaluates one model at concrete bindings, and ``cost
check`` runs experiments (or replays a ``--trace`` JSONL) under a
:class:`~repro.costmodel.CostOracle` and exits 1 the moment a measured
counter drifts from its prediction -- the CI contract for exact cost
regression.  Any traced ``run``/``run-all``/``trace`` invocation also
rides a cost oracle (when sympy is importable): verdict summaries land
in ``result.metrics["cost"]`` and the run registry, and
``cost.predicted``/``cost.mismatch`` events appear in the trace.

``--strict-bounds`` (on ``run``/``run-all``/``trace``) attaches a live
:class:`~repro.obs.InvariantMonitor` that hard-fails the command (exit
code 2) the moment a run violates a model invariant -- per-machine
memory over ``s``, round communication over ``s·m``, an oracle-query
budget, or a round count outside the theory prediction band.
``--progress`` renders per-round progress to stderr while a simulation
runs.  ``bench-compare`` diffs a ``REPRO_BENCH_JSON`` output directory
against a committed baseline and exits nonzero on deterministic-counter
drift; ``bench-baseline`` (re)generates that baseline file.

The ``bench`` family is the **performance observatory**
(:mod:`repro.perfwatch`): ``bench run`` drives a curated suite
(``--suite quick|full``) with warmup + best-of-k timing, stamps every
row with an environment fingerprint, writes ``BENCH_*.json`` payloads
plus registry ``bench_results`` rows, optionally appends the committed
``benchmarks/bench_history.json`` ledger (``--history``), and reports
advisory budget violations (``benchmarks/budgets.json``); ``bench
trend`` applies the robust changepoint gate (rolling median + MAD
z-score + absolute noise floor) over that history and exits 1 on a
confirmed regression.  ``profile --compare A B`` differentially aligns
two traces' hotspot tables, attributing the wall-clock delta to named
spans.  Wall-clock never enters any deterministic fingerprint -- see
docs/PERFORMANCE.md, "Performance observatory".

``--telemetry`` (on ``run``/``run-all``/``trace``; also the
``REPRO_TELEMETRY`` env var, vetoed by ``--no-telemetry``) turns on the
**runtime telemetry subsystem** (:mod:`repro.telemetry`): a background
resource sampler (``telemetry.sample`` events -- RSS / CPU / GC /
threads), one ``telemetry.heartbeat`` per Monte-Carlo trial with a
parent-side stall detector (``--stall-deadline SECONDS``; under
``--strict-bounds`` a stalled worker exits 2 like any invariant
violation), and tracer self-overhead accounting
(``telemetry.overhead_frac``).  ``--metrics-out PATH`` writes a
Prometheus text exposition of the run's metrics registry.  ``repro top
EXPERIMENT`` is the live per-worker dashboard.  Telemetry is excluded
from every determinism contract: fingerprints, registry ``metrics``,
and ``trace-diff`` are bit-identical with it on or off.

``run`` and ``run-all`` append one row per experiment to the
**persistent run registry** (``--registry PATH``, the ``REPRO_REGISTRY``
env var, or ``~/.repro/runs.db``; opt out with ``--no-record``).  The
``runs`` family queries that history: ``runs list``/``show`` browse
rows, ``runs compare A B`` diffs two runs' deterministic counters and
metrics, ``runs trend`` renders per-experiment sparkline series and
applies the rolling-window regression gate plus flaky-verdict detection
(exit 1 -- the cross-run CI contract), ``runs gc`` prunes old rows.
See docs/OBSERVABILITY.md, "Run registry & history".
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import time
from functools import partial
from typing import Sequence

from repro.costmodel import (
    CostEvalError,
    CostModelUnavailable,
    CostOracle,
    all_models,
    available as cost_available,
    check_trace_records,
    cost_model_for,
    eval_table,
    render_formulas,
    render_ledger,
)
from repro.engine import BACKENDS, resolve_backend, use_backend
from repro.experiments import experiment_ids, experiment_info, run_experiment
from repro.parallel import TrialPool, resolve_jobs, use_jobs
from repro.obs import (
    ConvergenceMonitor,
    InvariantMonitor,
    InvariantViolation,
    JsonlExporter,
    LiveProgress,
    QueryError,
    RunRecord,
    RunRegistry,
    TraceFormatError,
    TraceMetrics,
    Tracer,
    build_index,
    compare_benchmarks,
    compare_runs,
    counters_of,
    default_registry_path,
    diff_traces,
    ensure_index,
    explain_trace_files,
    get_tracer,
    git_sha,
    iter_trace_records,
    load_baseline,
    load_bench_dir,
    parse_query,
    profile_experiment,
    read_jsonl,
    render_divergence,
    render_result,
    render_runs_table,
    render_triage,
    run_query,
    save_baseline,
    summarize,
    trend_report,
    triage_file,
    use_tracer,
    write_chrome_trace,
    write_history_html,
    write_html_report,
)
from repro.perfwatch import (
    DEFAULT_HISTORY,
    append_bench_history,
    bench_trend,
    check_budgets,
    diff_trace_files,
    load_bench_history,
    load_budgets,
    merge_points,
    points_from_history,
    points_from_registry,
    render_budget_violations,
    run_suite,
    suite_experiments,
)
from repro.telemetry import (
    MetricsRegistry,
    OverheadMeter,
    ResourceSampler,
    StallDetector,
    TelemetryCollector,
    TelemetryTop,
    resolve_telemetry,
    use_telemetry,
    write_prometheus,
)

__all__ = ["main", "build_report"]

# One-line descriptions (mirrors DESIGN.md's experiment index).
DESCRIPTIONS = {
    "T1": "Tables 1-3: parameter derivations are satisfiable",
    "F1": "Figure 1: Line chain structure",
    "E-RAM": "Theorem 3.1 upper bound: O(T*n) time, O(S) space",
    "E-LINE": "Lemma 3.2: Line rounds are linear in T",
    "E-SIMLINE": "Theorem A.1: SimLine rounds are Theta(T*u/s)",
    "E-GUESS": "Lemma 3.3 / A.7: skip-ahead succeeds w.p. 2^-u",
    "E-DECAY": "Exponential decay of per-round progress",
    "E-ENC-A": "Claim A.4: SimLine encoding round-trips within bound",
    "E-ENC-L": "Claim 3.7 / Defs 3.4-3.5: Line encoder and B-sets",
    "E-LIMIT": "Claim 3.8 / A.5: the counting limit on injective codes",
    "E-BOUND": "Claim 3.9 / A.8: assembled probability bounds",
    "E-MEM": "Total memory m*s >> S does not help",
    "E-BEST": "Theorem 1.1: nearly best-possible hardness gap",
    "E-BASE": "Section 1/1.2: RVW shuffles and Miltersen PRAM baselines",
    "E-HASH": "Theorem 1.1: concrete-hash instantiation f^h",
    "E-ABL-PLACE": "Ablation: input placement does not help",
    "E-BUDGET": "Definition 2.5: success probability vs round budget",
    "E-MHF": "Section 1.2: ROMix memory hardness is not round hardness",
    "E-SCALE": "The linear round law at paper-scale T",
    "E-PROGRESS": "Lemma A.2: per-round progress capped by h, measured",
    "E-THROUGHPUT": "K concurrent instances: parallelism buys throughput, not latency",
}


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for experiment_id in experiment_ids():
        info = experiment_info(experiment_id)
        rows.append({
            "experiment_id": experiment_id,
            "description": (
                info["description"] or DESCRIPTIONS.get(experiment_id, "")
            ),
            "trial_parallel": info["trial_parallel"],
            "cost_models": info["cost_models"],
        })
    if getattr(args, "json", False):
        print(json.dumps(rows, indent=2))
        return 0
    width = max(len(r["experiment_id"]) for r in rows)
    for row in rows:
        par = "par" if row["trial_parallel"] else "-  "
        cost = "cost" if row["cost_models"] else "-   "
        print(
            f"{row['experiment_id']:<{width}}  {par}  {cost}  "
            f"{row['description']}"
        )
    print(
        "\n('par' = Monte-Carlo trials fan out with --jobs N; "
        "'cost' = traced runs announce symbolic cost models -- "
        "see repro cost check and docs/OBSERVABILITY.md)"
    )
    return 0


def _run_observed(
    experiment_id: str,
    scale: str,
    *,
    strict: bool = False,
    capture: bool = False,
    progress: bool = False,
    telemetry: bool = False,
    stall_deadline: float | None = None,
    collector: TelemetryCollector | None = None,
    top: TelemetryTop | None = None,
):
    """Run one experiment with optional monitor / capture / progress.

    Returns ``(result, records, monitor)``; ``records`` is a list of
    :class:`~repro.obs.TraceRecord` when ``capture`` is set, ``monitor``
    a strict :class:`~repro.obs.InvariantMonitor` when ``strict`` is
    set (in which case :class:`~repro.obs.InvariantViolation` may
    propagate).  Subscribes to the ambient tracer when one is active
    (global ``--trace-out``), otherwise installs a record-free tracer
    for the duration; with no options it is plain ``run_experiment``.

    Whenever a tracer is active (and sympy is importable) a
    :class:`~repro.costmodel.CostOracle` rides along; its verdict
    summary is merged into ``result.metrics["cost"]``, which flows to
    the run registry and ``runs compare``.

    ``telemetry`` (pre-resolved -- see
    :func:`repro.telemetry.resolve_telemetry`) attaches the runtime
    health rig: a :class:`~repro.telemetry.ResourceSampler`, a
    :class:`~repro.telemetry.StallDetector` (strict stalls raise like
    strict invariants), and an :class:`~repro.telemetry.OverheadMeter`
    on the tracer's emission path.  Their combined summary lands in
    ``result.metrics["telemetry"]`` and a ``telemetry.overhead`` event
    is emitted before teardown.  ``collector`` (a
    :class:`~repro.telemetry.TelemetryCollector`) and ``top`` (a
    :class:`~repro.telemetry.TelemetryTop`, replacing the plain
    progress renderer) ride as extra subscribers.  Every teardown --
    unsubscribes, sampler/progress close, meter detach -- is one
    :class:`contextlib.ExitStack`, so a mid-run raise cannot leak a
    thread or a subscriber.
    """
    ambient = get_tracer()
    observed = (
        strict or capture or progress or telemetry
        or collector is not None or top is not None
    )
    if ambient.enabled:
        tracer, own = ambient, False
    elif observed:
        tracer, own = Tracer(keep_records=False), True
    else:
        return run_experiment(experiment_id, scale=scale), None, None
    records: list | None = [] if capture else None
    monitor = InvariantMonitor(strict=strict, tracer=tracer) if strict else None
    cost = CostOracle(tracer=tracer) if cost_available() else None
    live = top if top is not None else (LiveProgress() if progress else None)
    health = sampler = meter = None
    if telemetry:
        health = StallDetector(
            deadline_s=stall_deadline, strict=strict, tracer=tracer
        )
        sampler = ResourceSampler(tracer)
        meter = OverheadMeter()
    subscribers = [s for s in (
        cost,  # before capture, so cost.* events land in `records`
        records.append if records is not None else None,
        collector,
        monitor,
        health,
        live,
    ) if s is not None]
    with contextlib.ExitStack() as stack:
        if meter is not None:
            meter.attach(tracer)
            stack.callback(tracer.set_meter, None)
        for subscriber in subscribers:
            tracer.subscribe(subscriber)
            stack.callback(tracer.unsubscribe, subscriber)
        if live is not None:
            stack.callback(live.close)
        if sampler is not None:
            stack.callback(sampler.close)
            sampler.start()
        stack.enter_context(use_telemetry(telemetry))
        if own:
            stack.enter_context(use_tracer(tracer))
        result = run_experiment(experiment_id, scale=scale)
        if telemetry:
            # Final sample first, then freeze the meter, then announce
            # the overhead while capture subscribers still listen.
            sampler.close()
            wall = result.metrics.get("duration_s")
            overhead = meter.summary(wall)
            tracer.event("telemetry.overhead", **overhead)
            result.metrics["telemetry"] = {
                **sampler.summary(),
                **overhead,
                **health.summary(),
            }
    if cost is not None and cost.checks:
        result.metrics["cost"] = cost.summary()
    return result, records, monitor


def _record_run(
    registry_path: str | None,
    result,
    *,
    scale: str,
    jobs: int,
    records=None,
    violations: int = 0,
) -> tuple[int, str]:
    """Append one run to the registry; returns ``(run_id, db_path)``."""
    counters: dict = {}
    trace_metrics = None
    if records:
        tm = TraceMetrics.from_records(records)
        counters = counters_of(tm)
        trace_metrics = tm.to_dict()
    record = RunRecord.from_result(
        result,
        scale=scale,
        jobs=jobs,
        counters=counters,
        trace_metrics=trace_metrics,
        violations=violations,
    )
    with RunRegistry.open(registry_path) as registry:
        run_id = registry.record(record)
        return run_id, registry.path


def _print_telemetry_summary(result) -> None:
    """The run's stderr telemetry one-liner plus straggler ranking."""
    tel = result.metrics.get("telemetry")
    if not tel:
        return
    rss = tel.get("rss_peak_kb")
    frac = tel.get("overhead_frac")
    print(
        f"telemetry: {tel.get('heartbeats', 0)} heartbeats, "
        f"{tel.get('stalls', 0)} stalls, "
        f"{tel.get('samples', 0)} resource samples, "
        f"rss peak {'-' if rss is None else f'{rss / 1024:.1f}M'}, "
        f"tracer overhead "
        f"{'-' if frac is None else f'{frac * 100:.2f}%'}",
        file=sys.stderr,
    )
    for row in tel.get("stragglers", []):
        print(
            f"  straggler: worker {row['worker']} trial {row['trial']} "
            f"({row['elapsed_s'] * 1e3:.3f}ms)",
            file=sys.stderr,
        )


def _write_metrics_out(registry: MetricsRegistry, result, path: str) -> None:
    """Fold the run's telemetry summary in, then write Prometheus text."""
    collector = TelemetryCollector(registry)
    collector.update_from(result.metrics.get("telemetry") or {})
    size = write_prometheus(registry, path)
    print(
        f"metrics: {len(registry)} metrics -> {path} ({size} bytes)",
        file=sys.stderr,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    record = not args.no_record
    telemetry = resolve_telemetry(args.telemetry)
    metrics_registry = MetricsRegistry() if args.metrics_out else None
    collector = (
        TelemetryCollector(metrics_registry)
        if metrics_registry is not None else None
    )
    try:
        with use_jobs(args.jobs), use_backend(args.backend):
            result, records, monitor = _run_observed(
                args.experiment,
                args.scale,
                strict=args.strict_bounds,
                # Recording wants the run's counter fingerprint, which
                # only exists if the run was captured.
                capture=record,
                progress=args.progress,
                telemetry=telemetry,
                stall_deadline=args.stall_deadline,
                collector=collector,
            )
    except InvariantViolation as exc:
        v = exc.violation
        print(f"strict-bounds violation [{v.check}]: {v.message}",
              file=sys.stderr)
        return 2
    if monitor is not None:
        print(f"strict-bounds: {len(monitor.violations)} violations",
              file=sys.stderr)
    cost_summary = result.metrics.get("cost")
    if cost_summary:
        print(
            f"cost oracle: verdict={cost_summary['verdict']} "
            f"({cost_summary['checks']} checks, "
            f"{cost_summary['mismatched_counters']} mismatched counters)",
            file=sys.stderr,
        )
    _print_telemetry_summary(result)
    if metrics_registry is not None:
        _write_metrics_out(metrics_registry, result, args.metrics_out)
    if record:
        run_id, db_path = _record_run(
            args.registry,
            result,
            scale=args.scale,
            jobs=resolve_jobs(args.jobs),
            records=records,
            violations=len(monitor.violations) if monitor else 0,
        )
        print(f"recorded run {run_id} -> {db_path}", file=sys.stderr)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.render())
    return 0 if result.passed else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    trace_out = getattr(args, "trace_out", None)
    telemetry = resolve_telemetry(args.telemetry)
    sink = JsonlExporter(trace_out) if trace_out else None
    tracer = Tracer(sink=sink)
    monitor = InvariantMonitor(strict=args.strict_bounds, tracer=tracer)
    convergence = ConvergenceMonitor(tracer=tracer)
    cost = CostOracle(tracer=tracer) if cost_available() else None
    live = LiveProgress() if args.progress else None
    metrics_registry = MetricsRegistry() if args.metrics_out else None
    collector = (
        TelemetryCollector(metrics_registry)
        if metrics_registry is not None else None
    )
    health = sampler = meter = None
    if telemetry:
        health = StallDetector(
            deadline_s=args.stall_deadline,
            strict=args.strict_bounds,
            tracer=tracer,
        )
        sampler = ResourceSampler(tracer)
        meter = OverheadMeter()
    try:
        with contextlib.ExitStack() as stack:
            if sink is not None:
                stack.callback(sink.close)
            if meter is not None:
                meter.attach(tracer)
                stack.callback(tracer.set_meter, None)
            for subscriber in (monitor, convergence, cost, collector,
                               health, live):
                if subscriber is not None:
                    tracer.subscribe(subscriber)
            if live is not None:
                stack.callback(live.close)
            if sampler is not None:
                stack.callback(sampler.close)
                sampler.start()
            stack.enter_context(use_telemetry(telemetry))
            stack.enter_context(use_tracer(tracer))
            stack.enter_context(use_jobs(args.jobs))
            stack.enter_context(use_backend(args.backend))
            # Label the stream with its producing backend.  telemetry.*
            # records are excluded from every determinism contract, so a
            # fast trace still diffs clean against a python baseline.
            tracer.event(
                "telemetry.backend", backend=resolve_backend(args.backend)
            )
            result = run_experiment(args.experiment, scale=args.scale)
            if telemetry:
                sampler.close()
                overhead = meter.summary(result.metrics.get("duration_s"))
                tracer.event("telemetry.overhead", **overhead)
                result.metrics["telemetry"] = {
                    **sampler.summary(),
                    **overhead,
                    **health.summary(),
                }
    except InvariantViolation as exc:
        v = exc.violation
        print(f"strict-bounds violation [{v.check}]: {v.message}",
              file=sys.stderr)
        return 2
    metrics = TraceMetrics.from_records(tracer.records)
    result.metrics["trace"] = metrics.to_dict()
    result.metrics["monitor"] = {
        "strict": args.strict_bounds,
        "violations": [v.to_attrs() for v in monitor.violations],
    }
    if convergence.names:
        result.metrics["convergence"] = convergence.to_dict()
    if cost is not None and cost.checks:
        result.metrics["cost"] = cost.summary()
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.render())
        print()
        print(summarize(tracer.records))
        print()
        print(json.dumps(metrics.to_dict(), indent=2))
        if convergence.names:
            print()
            print(convergence.render())
        if cost is not None and cost.checks:
            print()
            print(render_ledger(
                [c.to_attrs() for c in cost.checks],
                title="Predicted vs measured (cost oracle)",
            ))
        if monitor.violations:
            print()
            print(monitor.render())
    if sink is not None:
        print(f"trace: {sink.written} records -> {trace_out}", file=sys.stderr)
        sink.close()
        _auto_index(trace_out)
    if args.strict_bounds:
        print(f"strict-bounds: {len(monitor.violations)} violations",
              file=sys.stderr)
    _print_telemetry_summary(result)
    if metrics_registry is not None:
        _write_metrics_out(metrics_registry, result, args.metrics_out)
    return 0 if result.passed else 1


def _run_all_task(
    scale: str,
    strict: bool,
    want_counters: bool,
    record: bool,
    jobs: int,
    telemetry: bool,
    stall_deadline: float | None,
    experiment_id: str,
) -> dict:
    """One ``run-all`` unit of work, shaped for the process pool.

    Returns a picklable summary row.  Under a parallel ``run-all`` this
    executes in a worker whose ambient tracer is the pool's per-trial
    capture tracer (when the parent traces) -- the monitor subscribes
    to whatever is ambient, and counters are read back off its records,
    so the row is identical to what a serial run computes.  With
    ``record`` set, the row additionally carries a ready-to-insert
    registry record (``"record"``); the *parent* performs the inserts,
    so workers never contend on the SQLite file.

    ``telemetry`` (pre-resolved) arms per-trial heartbeats and the
    stall detector inside each experiment; the summary rides the row
    (and the registry record's nullable columns).  The resource sampler
    stays off here -- one background thread per run-all worker would
    measure the pool, not the experiment.
    """
    ambient = get_tracer()
    capture = want_counters or record
    own = not ambient.enabled and (strict or capture)
    tracer = Tracer(keep_records=False) if own else ambient
    # Per-experiment capture via subscription (not ``tracer.records``):
    # under a global --trace-out the ambient tracer accumulates records
    # across experiments, and counters must cover only this one.
    captured: list = []
    monitor = None
    cost = None
    health = None
    meter = None
    subscribers: list = []
    if tracer.enabled:
        if cost_available():
            cost = CostOracle(tracer=tracer)
            subscribers.append(cost)
        if capture:
            subscribers.append(captured.append)
        monitor = InvariantMonitor(strict=strict, tracer=tracer)
        subscribers.append(monitor)
        if telemetry:
            health = StallDetector(
                deadline_s=stall_deadline, strict=strict, tracer=tracer
            )
            subscribers.append(health)
            meter = OverheadMeter()
    start = time.time()
    try:
        with contextlib.ExitStack() as stack:
            if meter is not None:
                meter.attach(tracer)
                stack.callback(tracer.set_meter, None)
            for subscriber in subscribers:
                tracer.subscribe(subscriber)
                stack.callback(tracer.unsubscribe, subscriber)
            stack.enter_context(use_telemetry(telemetry))
            if own:
                stack.enter_context(use_tracer(tracer))
            result = run_experiment(experiment_id, scale=scale)
            if health is not None:
                result.metrics["telemetry"] = {
                    **meter.summary(result.metrics.get("duration_s")),
                    **health.summary(),
                }
    except InvariantViolation as exc:
        return {
            "experiment_id": experiment_id,
            "passed": False,
            "error": "invariant_violation",
            "violation": exc.violation.to_attrs(),
            "duration_s": round(time.time() - start, 6),
        }
    if cost is not None and cost.checks:
        result.metrics["cost"] = cost.summary()
    row = {
        "experiment_id": experiment_id,
        "title": result.title,
        "passed": result.passed,
        "duration_s": round(result.metrics.get("duration_s", 0.0), 6),
        "violations": len(monitor.violations) if monitor else 0,
        "cost_verdict": cost.verdict if cost is not None else "none",
    }
    if "telemetry" in result.metrics:
        row["telemetry"] = result.metrics["telemetry"]
    trace_metrics = (
        TraceMetrics.from_records(captured) if capture else None
    )
    if want_counters:
        row["counters"] = counters_of(trace_metrics)
    if record:
        row["record"] = RunRecord.from_result(
            result,
            scale=scale,
            jobs=jobs,
            counters=counters_of(trace_metrics),
            trace_metrics=trace_metrics.to_dict(),
            violations=row["violations"],
        ).to_dict()
    return row


def _run_all_line(row: dict) -> str:
    """One experiment's summary line: id, status, wall-time, title."""
    if row.get("error") == "invariant_violation":
        v = row["violation"]
        detail = f"[{v.get('check')}] {v.get('message')}"
        status = "BOUND"
    else:
        detail = row.get("title", "")
        status = "ok" if row["passed"] else "FAIL"
    return f"{row['experiment_id']:<12} {status:<5} {row['duration_s']:>7.2f}s  {detail}"


def _cmd_run_all(args: argparse.Namespace) -> int:
    jobs = resolve_jobs(args.jobs)
    record = not args.no_record
    telemetry = resolve_telemetry(args.telemetry)
    wall_start = time.time()
    rows: list[dict] = []
    task = partial(
        _run_all_task, args.scale, args.strict_bounds, args.json, record,
        jobs, telemetry, args.stall_deadline,
    )
    if jobs > 1:
        # Fan out across experiments; workers pin their inner trial
        # loops to jobs=1 (one slot each), and ship trace records back
        # for replay when a global --trace-out tracer is listening.
        if args.progress:
            print("run-all --jobs N skips --progress (per-round renderers "
                  "interleave meaninglessly across processes)",
                  file=sys.stderr)
        # use_backend mirrors the choice into REPRO_BACKEND, which the
        # pool's workers inherit -- every experiment runs on the same
        # backend regardless of fan-out.
        with use_backend(args.backend):
            rows = TrialPool(jobs=jobs).map(task, experiment_ids())
        if not args.json:
            for row in rows:
                print(_run_all_line(row))
    else:
        with use_jobs(args.jobs), use_backend(args.backend):
            for experiment_id in experiment_ids():
                row = task(experiment_id)
                rows.append(row)
                if not args.json:
                    print(_run_all_line(row))
    run_ids: dict[str, int] = {}
    db_path = None
    if record:
        # Single-writer inserts in the parent (workers only ship rows).
        with RunRegistry.open(args.registry) as registry:
            db_path = registry.path
            for row in rows:
                payload = row.pop("record", None)
                if payload is not None:
                    run_id = registry.record(RunRecord(**payload))
                    run_ids[row["experiment_id"]] = run_id
                    row["run_id"] = run_id
        print(
            f"recorded {len(run_ids)} runs -> {db_path}", file=sys.stderr
        )
    failures = [row["experiment_id"] for row in rows if not row["passed"]]
    wall_s = time.time() - wall_start
    if args.json:
        payload = {
            "scale": args.scale,
            "strict_bounds": args.strict_bounds,
            "jobs": jobs,
            "git_sha": git_sha(),
            "passed": not failures,
            "count": len(experiment_ids()),
            "failures": failures,
            "wall_s": round(wall_s, 6),
            "experiments": rows,
        }
        if record:
            payload["registry"] = {"path": db_path, "run_ids": run_ids}
        print(json.dumps(payload, indent=2))
        return 1 if failures else 0
    if failures:
        print(f"\nshape-check failures: {failures}", file=sys.stderr)
        return 1
    print(f"\nall {len(experiment_ids())} experiments matched the paper's "
          f"shapes ({wall_s:.1f}s wall, jobs={jobs})")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """``repro top``: run one experiment under the live worker dashboard.

    Forces telemetry on (the dashboard is nothing without heartbeats)
    and reuses the ``_run_observed`` rig with a
    :class:`~repro.telemetry.TelemetryTop` in the progress slot.
    """
    top = TelemetryTop()
    try:
        with use_jobs(args.jobs), use_backend(args.backend):
            result, _, _ = _run_observed(
                args.experiment,
                args.scale,
                telemetry=True,
                stall_deadline=args.stall_deadline,
                top=top,
            )
    except InvariantViolation as exc:
        v = exc.violation
        print(f"strict-bounds violation [{v.check}]: {v.message}",
              file=sys.stderr)
        return 2
    print(top.render_summary())
    _print_telemetry_summary(result)
    status = "ok" if result.passed else "FAIL"
    print(
        f"top: {args.experiment} {status} "
        f"({result.metrics.get('duration_s', 0.0):.2f}s, "
        f"jobs={resolve_jobs(args.jobs)})",
        file=sys.stderr,
    )
    return 0 if result.passed else 1


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    baseline = load_baseline(args.baseline)
    current = load_bench_dir(args.bench_dir)
    if not current:
        print(f"no BENCH_*.json files in {args.bench_dir}", file=sys.stderr)
        return 2
    comparison = compare_benchmarks(
        baseline, current, time_tolerance=args.time_tolerance
    )
    print(comparison.render())
    if comparison.fatal_drifts:
        return 1
    if args.fail_on_time and comparison.time_regressions:
        return 1
    if args.require_all and any(
        d.kind == "missing" for d in comparison.drifts
    ):
        print("missing baselined experiments (see table)", file=sys.stderr)
        return 1
    return 0


def _cmd_runs_list(args: argparse.Namespace) -> int:
    with RunRegistry.open(args.registry) as registry:
        records = registry.runs(args.experiment, limit=args.limit)
    if args.json:
        print(json.dumps([r.to_dict() for r in records], indent=2))
    else:
        print(render_runs_table(records))
    return 0


def _cmd_runs_show(args: argparse.Namespace) -> int:
    with RunRegistry.open(args.registry) as registry:
        try:
            record = registry.get(args.run_id)
        except KeyError as exc:
            print(f"runs show: {exc.args[0]}", file=sys.stderr)
            return 2
    print(json.dumps(record.to_dict(), indent=2))
    return 0


def _cmd_runs_compare(args: argparse.Namespace) -> int:
    with RunRegistry.open(args.registry) as registry:
        try:
            comparison = compare_runs(registry, args.a, args.b)
        except KeyError as exc:
            print(f"runs compare: {exc.args[0]}", file=sys.stderr)
            return 2
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2))
    else:
        print(comparison.render())
    return 0 if comparison.identical else 1


def _cmd_runs_trend(args: argparse.Namespace) -> int:
    with RunRegistry.open(args.registry) as registry:
        report = trend_report(
            registry,
            experiment_id=args.experiment,
            metric=args.metric,
            window=args.window,
            threshold=args.threshold,
            min_delta=args.min_delta,
        )
    if args.html:
        size = write_history_html(report, args.html)
        print(f"wrote {args.html} ({size} bytes)", file=sys.stderr)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 1 if report.failed else 0


def _cmd_runs_gc(args: argparse.Namespace) -> int:
    if args.keep_last is None and args.before is None:
        print("runs gc: nothing to do (give --keep-last N and/or "
              "--before TS)", file=sys.stderr)
        return 2
    with RunRegistry.open(args.registry) as registry:
        removed = registry.gc(keep_last=args.keep_last, before=args.before)
        remaining = registry.count()
    print(f"runs gc: removed {removed} row(s), {remaining} remain")
    return 0


def _cmd_bench_baseline(args: argparse.Namespace) -> int:
    entries = load_bench_dir(args.bench_dir)
    if not entries:
        print(f"no BENCH_*.json files in {args.bench_dir}", file=sys.stderr)
        return 2
    save_baseline(entries, args.output)
    print(f"wrote {args.output} ({len(entries)} experiments)")
    return 0


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from repro.obs.baseline import write_bench_json

    out_dir = args.out or os.environ.get("REPRO_BENCH_JSON") or "bench-out"
    try:
        with use_backend(args.backend), use_jobs(args.jobs):
            outcomes = run_suite(
                args.suite,
                scale=args.scale,
                warmup=args.warmup,
                repeats=args.repeats,
                backend=args.backend,
                jobs=args.jobs,
                experiments=args.experiment or None,
                progress=lambda line: print(line, file=sys.stderr),
            )
    except KeyError as exc:
        print(f"bench run: {exc.args[0]}", file=sys.stderr)
        return 2
    results = [o.result for o in outcomes]
    for outcome in outcomes:
        write_bench_json(outcome.bench_payload(), out_dir)
    recorded = []
    if not args.no_record:
        with RunRegistry.open(args.registry) as registry:
            for result in results:
                bench_id = registry.record_bench(result)
                recorded.append(bench_id)
    if args.history is not None:
        total = append_bench_history(
            results, args.history, keep_last=args.history_keep_last
        )
        print(
            f"bench run: history {args.history} now {total} row(s)",
            file=sys.stderr,
        )
    budgets = load_budgets(args.budgets)
    violations = check_budgets(results, budgets)
    if args.json:
        print(json.dumps(
            {
                "suite": args.suite,
                "out_dir": out_dir,
                "results": [r.to_dict() for r in results],
                "budget_violations": [v.to_dict() for v in violations],
            },
            indent=2,
        ))
    else:
        for line in render_budget_violations(violations):
            print(line)
    failed = [r.experiment_id for r in results if not r.passed]
    note = f", {len(recorded)} registry row(s)" if recorded else ""
    print(
        f"bench run: {len(results)} benchmark(s) -> {out_dir}{note}"
        + (f", {len(violations)} budget violation(s) [advisory]"
           if violations else ""),
        file=sys.stderr,
    )
    if failed:
        print(f"bench run: FAILED verdicts: {failed}", file=sys.stderr)
        return 1
    return 0


def _cmd_bench_trend(args: argparse.Namespace) -> int:
    history_points: list = []
    registry_points: list = []
    if args.source in ("both", "history"):
        try:
            rows = load_bench_history(args.history)
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"bench trend: {exc}", file=sys.stderr)
            return 2
        history_points = points_from_history(rows)
    if args.source in ("both", "registry"):
        registry_path = args.registry or os.environ.get(
            "REPRO_REGISTRY"
        ) or default_registry_path()
        # Read-only intent: never create an empty DB just to trend it.
        if os.path.exists(os.path.expanduser(registry_path)):
            with RunRegistry.open(args.registry) as registry:
                registry_points = points_from_registry(registry)
    points = merge_points(history_points, registry_points)
    if args.experiment:
        points = [p for p in points if p.experiment_id in args.experiment]
    if args.backend_filter:
        points = [p for p in points if p.backend == args.backend_filter]
    report = bench_trend(
        points,
        window=args.window,
        threshold=args.threshold,
        min_delta=args.min_delta,
        z_threshold=args.z_threshold,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print("\n".join(report.render()))
    return report.exit_code


def build_report(scale: str = "quick") -> str:
    """The EXPERIMENTS.md content: paper-vs-measured for every claim."""
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Reproduction record for *On the Hardness of Massively Parallel*",
        "*Computation* (Chung, Ho, Sun; SPAA 2020).  The paper is pure",
        "theory, so its \"tables and figures\" are parameter tables, one",
        "illustration, and the theorem suite; each entry below regenerates",
        "one of them and records whether the measured *shape* (who wins,",
        "what exponent, where the crossover falls) matches the claim.",
        "Absolute constants are not expected to match: the substrate is a",
        "bit-level simulator at Monte-Carlo-observable parameters (see",
        "DESIGN.md section 4 for the scaled-parameter policy).",
        "",
        f"Generated with `python -m repro report --scale {scale}`.",
        "",
    ]
    all_passed = True
    for experiment_id in experiment_ids():
        result = run_experiment(experiment_id, scale=scale)
        all_passed = all_passed and result.passed
        verdict = "MATCH" if result.passed else "MISMATCH"
        lines.append(f"## {experiment_id} — {result.title}")
        lines.append("")
        lines.append(f"**Paper claim.** {result.paper_claim}")
        lines.append("")
        for table in result.tables:
            lines.append("```text")
            lines.append(table.render())
            lines.append("```")
            lines.append("")
        lines.append(f"**Measured.** {result.summary}")
        lines.append("")
        lines.append(f"**Shape verdict: {verdict}.**")
        lines.append("")
    lines.append("---")
    lines.append(
        f"Overall: {'every' if all_passed else 'NOT every'} experiment "
        "reproduced its claim's shape."
    )
    lines.append("")
    return "\n".join(lines)


def _stream_trace_or_exit(path: str):
    """Validate ``path`` as a non-empty JSONL trace; None means exit 2.

    Returns a zero-arg callable yielding a fresh streaming iteration
    (:func:`repro.obs.iter_trace_records`), so consumers -- the trace
    diff, the cost oracle, the forensics index -- never hold a whole
    trace in memory.  The validation itself only reads the first
    record; a format error *later* in the file still surfaces as a
    :class:`TraceFormatError` from the consumer (callers wrap their
    consumption in :func:`_trace_error`).
    """
    try:
        first = next(iter_trace_records(path), None)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return None
    except TraceFormatError as exc:
        print(f"not a trace: {exc}", file=sys.stderr)
        return None
    if first is None:
        print(f"no trace records in {path}", file=sys.stderr)
        return None
    return lambda: iter_trace_records(path)


def _trace_error(exc: TraceFormatError) -> int:
    print(f"not a trace: {exc}", file=sys.stderr)
    return 2


def _auto_index(trace_path: str) -> None:
    """Index a just-written ``--trace-out`` file (best-effort).

    ``REPRO_AUTOINDEX=0`` opts out; a failure to index never fails the
    run that produced the trace.
    """
    if os.environ.get("REPRO_AUTOINDEX", "").strip().lower() in (
        "0", "false", "off", "no"
    ):
        return
    try:
        index = build_index(trace_path)
    except Exception as exc:  # noqa: BLE001 - advisory by design
        print(f"index: skipped ({exc})", file=sys.stderr)
        return
    print(
        f"index: {index.records} records -> {index.path}", file=sys.stderr
    )
    index.close()


def _cmd_index(args: argparse.Namespace) -> int:
    if _stream_trace_or_exit(args.trace) is None:
        return 2
    try:
        index = build_index(args.trace, args.output)
    except TraceFormatError as exc:
        return _trace_error(exc)
    print(f"indexed {index.records} records -> {index.path}")
    index.close()
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    if _stream_trace_or_exit(args.trace) is None:
        return 2
    try:
        query = parse_query(args.query)
    except QueryError as exc:
        print(f"query: {exc}", file=sys.stderr)
        return 2
    try:
        index = ensure_index(args.trace)
    except TraceFormatError as exc:
        return _trace_error(exc)
    try:
        result = run_query(index, query)
    finally:
        index.close()
    if args.json:
        print(json.dumps({
            "columns": result.columns,
            "rows": [list(row) for row in result.rows],
            "truncated": result.truncated,
        }, indent=2))
    else:
        print(render_result(result))
    return 0


def _cmd_why(args: argparse.Namespace) -> int:
    if _stream_trace_or_exit(args.trace) is None:
        return 2
    try:
        anomalies = triage_file(args.trace)
    except TraceFormatError as exc:
        return _trace_error(exc)
    if args.json:
        print(json.dumps([a.to_dict() for a in anomalies], indent=2))
    else:
        print(render_triage(anomalies))
    return 1 if anomalies else 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.trace is not None:
        try:
            records = read_jsonl(args.trace)
        except OSError as exc:
            print(f"cannot read trace: {exc}", file=sys.stderr)
            return 2
        except TraceFormatError as exc:
            return _trace_error(exc)
        if not records:
            print(f"no trace records in {args.trace}", file=sys.stderr)
            return 2
        if args.format == "chrome-json":
            out = args.output or "trace.chrome.json"
            count = write_chrome_trace(records, out)
            print(f"wrote {out} ({count} events; open in ui.perfetto.dev)")
        else:
            out = args.output or "report.html"
            size = write_html_report(records, out)
            print(f"wrote {out} ({size} bytes, self-contained)")
        return 0
    if args.format != "html":
        print("--format applies only to trace reports "
              "(repro report <trace.jsonl>)", file=sys.stderr)
        return 2
    report = build_report(scale=args.scale)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report)
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    if args.compare is not None:
        path_a, path_b = args.compare
        for path in (path_a, path_b):
            if not os.path.exists(path):
                print(f"profile --compare: no such trace: {path}",
                      file=sys.stderr)
                return 2
        try:
            diff = diff_trace_files(path_a, path_b)
        except TraceFormatError as exc:
            return _trace_error(exc)
        if args.json:
            print(json.dumps(diff.to_dict(), indent=2))
        else:
            print(diff.render(top=args.top))
        return 0
    if args.experiment is None:
        print("profile: an experiment id (or --compare A B) is required",
              file=sys.stderr)
        return 2
    with use_backend(args.backend):
        session = profile_experiment(
            args.experiment,
            scale=args.scale,
            cprofile=args.cprofile,
            cprofile_span=args.cprofile_span,
            memory=args.memory,
        )
    if args.json:
        payload = {
            "experiment_id": args.experiment,
            "scale": args.scale,
            "backend": session.backend,
            "passed": session.result.passed,
            "total_s": session.profiler.total_s,
            "hotspots": [h.to_dict() for h in session.profiler.hotspots()],
            "rounds": [r.to_dict() for r in session.profiler.rounds()],
        }
        print(json.dumps(payload, indent=2))
    else:
        print(session.profiler.render(top=args.top))
        if session.cprofile is not None:
            print()
            print(session.cprofile.stats_table(top=args.top or 20))
        if session.memory is not None:
            print()
            print(session.memory.render())
    status = "ok" if session.result.passed else "FAIL"
    print(f"profile: {args.experiment} {status}, "
          f"{len(session.records)} trace records, "
          f"backend={session.backend}", file=sys.stderr)
    return 0 if session.result.passed else 1


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    baseline = _stream_trace_or_exit(args.baseline)
    if baseline is None:
        return 2
    current = _stream_trace_or_exit(args.current)
    if current is None:
        return 2
    try:
        diff = diff_traces(
            baseline(), current(), latency_tolerance=args.latency_tolerance
        )
        explained = (
            explain_trace_files(
                args.baseline, args.current, context=args.context
            )
            if args.explain else None
        )
    except TraceFormatError as exc:
        return _trace_error(exc)
    if args.json:
        payload = diff.to_dict()
        if args.explain:
            divergence, _ = explained or (None, None)
            payload["first_divergence"] = (
                divergence.to_dict() if divergence is not None else None
            )
        print(json.dumps(payload, indent=2))
    else:
        print(diff.render())
        if args.explain:
            print()
            if explained is None:
                print("explain: no diverging record (streams are "
                      "identical up to excluded/volatile fields)")
            else:
                print(render_divergence(*explained))
    # --explain can catch pure reorderings the counter/kind diff cannot,
    # so a found divergence fails the gate even when the diff is clean.
    if diff.has_differences or explained is not None:
        return 1
    if args.fail_on_latency and diff.latency_regressions:
        return 1
    return 0


def _cost_unavailable(exc: CostModelUnavailable) -> int:
    print(f"cost: {exc}", file=sys.stderr)
    return 2


def _cmd_cost_show(args: argparse.Namespace) -> int:
    try:
        if args.models:
            models = [cost_model_for(model_id) for model_id in args.models]
        else:
            models = all_models()
    except CostModelUnavailable as exc:
        return _cost_unavailable(exc)
    except KeyError as exc:
        print(f"cost show: {exc.args[0]}", file=sys.stderr)
        return 2
    print(render_formulas(models, latex=args.latex))
    return 0


def _parse_cost_bindings(pairs: Sequence[str]) -> dict:
    """``NAME=VALUE`` pairs -> bindings (int / float / none / bool)."""
    bindings: dict = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"binding {pair!r} is not NAME=VALUE")
        low = raw.lower()
        if low in ("none", "null"):
            bindings[key] = None
        elif low in ("true", "false"):
            bindings[key] = low == "true"
        else:
            try:
                bindings[key] = int(raw)
            except ValueError:
                bindings[key] = float(raw)
    return bindings


def _cmd_cost_eval(args: argparse.Namespace) -> int:
    try:
        model = cost_model_for(args.model)
        bindings = _parse_cost_bindings(args.bindings)
        print(eval_table(model, bindings))
    except CostModelUnavailable as exc:
        return _cost_unavailable(exc)
    except KeyError as exc:
        print(f"cost eval: {exc.args[0]}", file=sys.stderr)
        return 2
    except (CostEvalError, ValueError) as exc:
        print(f"cost eval: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_cost_check(args: argparse.Namespace) -> int:
    try:
        oracles: dict[str, CostOracle] = {}
        if args.trace is not None:
            source = _stream_trace_or_exit(args.trace)
            if source is None:
                return 2
            try:
                oracles[args.trace] = check_trace_records(source())
            except TraceFormatError as exc:
                return _trace_error(exc)
        else:
            targets = args.experiments or [
                eid for eid in experiment_ids()
                if experiment_info(eid)["cost_models"]
            ]
            unknown = sorted(set(targets) - set(DESCRIPTIONS))
            if unknown:
                print(f"cost check: unknown experiments {unknown}",
                      file=sys.stderr)
                return 2
            for eid in targets:
                tracer = Tracer(keep_records=False)
                oracle = CostOracle(tracer=tracer)
                tracer.subscribe(oracle)
                with use_tracer(tracer), use_jobs(args.jobs), \
                        use_backend(args.backend):
                    run_experiment(eid, scale=args.scale)
                oracles[eid] = oracle
    except CostModelUnavailable as exc:
        return _cost_unavailable(exc)
    summaries = {name: oracle.summary() for name, oracle in oracles.items()}
    failed = [n for n, s in summaries.items() if s["verdict"] == "fail"]
    evaluated = sum(s["passed"] + s["failed"] for s in summaries.values())
    if args.json:
        print(json.dumps({
            "strict": args.strict,
            "targets": summaries,
            "evaluated_checks": evaluated,
            "failed": failed,
            "passed": not failed and not (args.strict and evaluated == 0),
        }, indent=2))
    else:
        for name, oracle in oracles.items():
            print(render_ledger(
                [c.to_attrs() for c in oracle.checks],
                title=f"{name} -- predicted vs measured",
            ))
            print()
        marks = ", ".join(
            f"{name}={s['verdict']}" for name, s in summaries.items()
        )
        print(f"cost check: {evaluated} checks evaluated ({marks})")
    if failed:
        if not args.json:
            print(f"cost check: FAIL ({failed})", file=sys.stderr)
        return 1
    if args.strict and evaluated == 0:
        print("cost check --strict: no checks ran (nothing announced a "
              "cost model)", file=sys.stderr)
        return 1
    return 0


def _add_trace_out(parser: argparse.ArgumentParser, *, on_sub: bool) -> None:
    # Defined on the root parser (global flag) *and* on subcommands; the
    # subcommand copy uses SUPPRESS so an unset occurrence does not
    # clobber a value given before the subcommand.
    parser.add_argument(
        "--trace-out",
        dest="trace_out",
        metavar="PATH",
        default=argparse.SUPPRESS if on_sub else None,
        help="stream a JSONL trace of the run to PATH",
    )


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for Monte-Carlo trial loops (default: "
        "REPRO_JOBS env var, else 1 = serial; results are bit-identical "
        "at any N -- see docs/PERFORMANCE.md)",
    )


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help="execution backend for the MPC round loop and the word-RAM "
        "interpreter (default: REPRO_BACKEND env var, else python). "
        "'fast' is observably identical -- same outputs, stats, faults, "
        "and deterministic trace stream -- see docs/PERFORMANCE.md",
    )


def _add_registry_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--registry",
        default=None,
        metavar="PATH",
        help="run-registry SQLite file (default: REPRO_REGISTRY env "
        "var, else ~/.repro/runs.db)",
    )


def _add_record_flags(parser: argparse.ArgumentParser) -> None:
    _add_registry_flag(parser)
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="do not append this run to the run registry",
    )


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--telemetry",
        dest="telemetry",
        action="store_true",
        default=None,
        help="attach the runtime telemetry subsystem: resource sampler, "
        "per-trial worker heartbeats + stall detection, tracer "
        "self-overhead accounting (default: the REPRO_TELEMETRY env var, "
        "else off; deterministic outputs are unaffected)",
    )
    group.add_argument(
        "--no-telemetry",
        dest="telemetry",
        action="store_false",
        help="force telemetry off, overriding REPRO_TELEMETRY",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the run's metrics registry as Prometheus text "
        "exposition to PATH",
    )
    parser.add_argument(
        "--stall-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-trial wall-clock budget before a heartbeat counts as a "
        "worker stall (default: REPRO_STALL_DEADLINE env var, else 30; "
        "0 flags every trial -- the CI negative control; with "
        "--strict-bounds a stall exits 2)",
    )


def _add_monitor_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--strict-bounds",
        action="store_true",
        help="hard-fail (exit 2) the moment a run violates a model "
        "invariant (memory <= s, communication <= s*m, query budgets, "
        "round prediction band)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="render live per-round progress to stderr",
    )


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for 'On the Hardness of "
        "Massively Parallel Computation' (SPAA 2020)",
    )
    _add_trace_out(parser, on_sub=False)
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser(
        "list", help="list experiments (description + parallelization)"
    )
    list_p.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    list_p.set_defaults(fn=_cmd_list)

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", choices=sorted(DESCRIPTIONS))
    run_p.add_argument("--scale", choices=("quick", "full"), default="quick")
    run_p.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    _add_trace_out(run_p, on_sub=True)
    _add_monitor_flags(run_p)
    _add_telemetry_flags(run_p)
    _add_jobs_flag(run_p)
    _add_backend_flag(run_p)
    _add_record_flags(run_p)
    run_p.set_defaults(fn=_cmd_run)

    all_p = sub.add_parser("run-all", help="run every experiment")
    all_p.add_argument("--scale", choices=("quick", "full"), default="quick")
    all_p.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable summary (per-experiment "
        "pass/fail, duration, headline counters) for CI",
    )
    _add_trace_out(all_p, on_sub=True)
    _add_monitor_flags(all_p)
    _add_telemetry_flags(all_p)
    _add_jobs_flag(all_p)
    _add_backend_flag(all_p)
    _add_record_flags(all_p)
    all_p.set_defaults(fn=_cmd_run_all)

    runs_p = sub.add_parser(
        "runs",
        help="query the persistent run registry "
        "(list / show / compare / trend / gc)",
    )
    runs_sub = runs_p.add_subparsers(dest="runs_command", required=True)

    rlist_p = runs_sub.add_parser("list", help="recorded runs, newest first")
    rlist_p.add_argument(
        "-e", "--experiment", default=None, metavar="ID",
        help="restrict to one experiment",
    )
    rlist_p.add_argument(
        "-n", "--limit", type=int, default=30, metavar="N",
        help="show at most N rows (default 30)",
    )
    rlist_p.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    _add_registry_flag(rlist_p)
    rlist_p.set_defaults(fn=_cmd_runs_list)

    rshow_p = runs_sub.add_parser(
        "show", help="one recorded run, in full (JSON)"
    )
    rshow_p.add_argument("run_id", type=int, help="registry run id")
    _add_registry_flag(rshow_p)
    rshow_p.set_defaults(fn=_cmd_runs_show)

    rcmp_p = runs_sub.add_parser(
        "compare",
        help="diff two runs' deterministic columns (exit 1 on drift)",
    )
    rcmp_p.add_argument("a", type=int, help="baseline run id")
    rcmp_p.add_argument("b", type=int, help="current run id")
    rcmp_p.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    _add_registry_flag(rcmp_p)
    rcmp_p.set_defaults(fn=_cmd_runs_compare)

    rtrend_p = runs_sub.add_parser(
        "trend",
        help="per-experiment history with the rolling regression gate "
        "(exit 1 on regression or flaky verdicts)",
    )
    rtrend_p.add_argument(
        "-e", "--experiment", default=None, metavar="ID",
        help="restrict to one experiment",
    )
    rtrend_p.add_argument(
        "--metric", default="wall_s", metavar="NAME",
        help="wall_s (default), a bench counter (mpc.rounds), or a "
        "deterministic flat-metric key",
    )
    rtrend_p.add_argument(
        "--window", type=int, default=5, metavar="N",
        help="pre-latest runs averaged into the baseline (default 5)",
    )
    rtrend_p.add_argument(
        "--threshold", type=float, default=0.5, metavar="FRAC",
        help="relative increase that fails the gate (default 0.5 = 50%%)",
    )
    rtrend_p.add_argument(
        "--min-delta", type=float, default=0.1, metavar="ABS",
        help="absolute increase below which the gate never fires "
        "(default 0.1; noise immunity for sub-second runs)",
    )
    rtrend_p.add_argument(
        "--html", default=None, metavar="PATH",
        help="also write a self-contained HTML trend report",
    )
    rtrend_p.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    _add_registry_flag(rtrend_p)
    rtrend_p.set_defaults(fn=_cmd_runs_trend)

    rgc_p = runs_sub.add_parser(
        "gc", help="prune old rows from the registry"
    )
    rgc_p.add_argument(
        "--keep-last", type=int, default=None, metavar="N",
        help="keep the N most recent runs per experiment",
    )
    rgc_p.add_argument(
        "--before", default=None, metavar="ISO_TS",
        help="also drop rows older than this ISO-8601 UTC timestamp",
    )
    _add_registry_flag(rgc_p)
    rgc_p.set_defaults(fn=_cmd_runs_gc)

    rep_p = sub.add_parser(
        "report",
        help="emit the EXPERIMENTS.md record, or render a JSONL trace "
        "as HTML / Chrome-trace JSON",
    )
    rep_p.add_argument(
        "trace",
        nargs="?",
        default=None,
        metavar="TRACE_JSONL",
        help="a JSONL trace file; when given, render it instead of "
        "regenerating EXPERIMENTS.md",
    )
    rep_p.add_argument("--scale", choices=("quick", "full"), default="quick")
    rep_p.add_argument("--output", "-o", default=None)
    rep_p.add_argument(
        "--format",
        choices=("html", "chrome-json"),
        default="html",
        help="trace-report format: self-contained HTML (default) or "
        "Chrome trace-event JSON for ui.perfetto.dev",
    )
    _add_trace_out(rep_p, on_sub=True)
    rep_p.set_defaults(fn=_cmd_report)

    prof_p = sub.add_parser(
        "profile",
        help="run one experiment under the hotspot profiler, or "
        "differentially compare two traces (--compare A B)",
    )
    prof_p.add_argument(
        "experiment", nargs="?", default=None,
        choices=sorted(DESCRIPTIONS),
        help="experiment to profile (omit with --compare)",
    )
    prof_p.add_argument(
        "--compare", nargs=2, default=None, metavar=("A.jsonl", "B.jsonl"),
        help="differential mode: align two JSONL traces' hotspot tables "
        "and attribute the wall-clock delta to named spans",
    )
    prof_p.add_argument("--scale", choices=("quick", "full"), default="quick")
    prof_p.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="limit the hotspot (and cProfile) tables to N rows",
    )
    prof_p.add_argument(
        "--cprofile", action="store_true",
        help="also run cProfile over the whole experiment",
    )
    prof_p.add_argument(
        "--cprofile-span", default=None, metavar="SPAN",
        help="scope cProfile to one span kind (e.g. mpc.round, "
        "oracle.query); implies --cprofile",
    )
    prof_p.add_argument(
        "--memory", action="store_true",
        help="sample per-round tracemalloc peak memory",
    )
    prof_p.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    _add_backend_flag(prof_p)
    prof_p.set_defaults(fn=_cmd_profile)

    diff_p = sub.add_parser(
        "trace-diff",
        help="structurally compare two JSONL traces (exit 1 on drift)",
    )
    diff_p.add_argument("baseline", help="baseline trace (JSONL)")
    diff_p.add_argument("current", help="current trace (JSONL)")
    diff_p.add_argument(
        "--latency-tolerance",
        type=float,
        default=0.5,
        metavar="FRAC",
        help="relative per-round latency slack before a regression is "
        "reported (default 0.5 = 50%%)",
    )
    diff_p.add_argument(
        "--fail-on-latency",
        action="store_true",
        help="exit nonzero on per-round latency regressions too "
        "(default: advisory)",
    )
    diff_p.add_argument(
        "--explain",
        action="store_true",
        help="on drift, bisect both streams to the first diverging "
        "record and print it with its causal window (enclosing spans, "
        "same-machine predecessors, messages in flight); a found "
        "divergence exits 1 even when the counter diff is clean",
    )
    diff_p.add_argument(
        "--context",
        type=int,
        default=5,
        metavar="K",
        help="records of stream context around the divergence "
        "(default 5)",
    )
    diff_p.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    diff_p.set_defaults(fn=_cmd_trace_diff)

    idx_p = sub.add_parser(
        "index",
        help="build the columnar SQLite index for a JSONL trace "
        "(queries run against the index, never the JSONL)",
    )
    idx_p.add_argument("trace", metavar="TRACE_JSONL", help="trace to index")
    idx_p.add_argument(
        "--output", "-o", default=None, metavar="PATH",
        help="index file to write (default: <trace>.idx next to the trace)",
    )
    idx_p.set_defaults(fn=_cmd_index)

    qry_p = sub.add_parser(
        "query",
        help="filter/aggregate an indexed trace, e.g. "
        "'name=oracle.query machine=3 round>=5 | count by round'",
    )
    qry_p.add_argument("trace", metavar="TRACE_JSONL", help="trace to query")
    qry_p.add_argument(
        "query",
        metavar="QUERY",
        help="predicates, optionally piped to count/sum/mean/min/max "
        "[by FIELDS], show FIELDS [limit N], or timeline (see "
        "docs/OBSERVABILITY.md, 'Trace forensics')",
    )
    qry_p.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    qry_p.set_defaults(fn=_cmd_query)

    why_p = sub.add_parser(
        "why",
        help="triage a trace's anomalies: link every monitor.violation "
        "and cost.mismatch to its span chain and nearest counter deltas "
        "(exit 1 when any exist)",
    )
    why_p.add_argument("trace", metavar="TRACE_JSONL", help="trace to triage")
    why_p.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    why_p.set_defaults(fn=_cmd_why)

    trc_p = sub.add_parser(
        "trace", help="run one experiment under the recording tracer"
    )
    trc_p.add_argument("experiment", choices=sorted(DESCRIPTIONS))
    trc_p.add_argument("--scale", choices=("quick", "full"), default="quick")
    trc_p.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    _add_trace_out(trc_p, on_sub=True)
    _add_monitor_flags(trc_p)
    _add_telemetry_flags(trc_p)
    _add_jobs_flag(trc_p)
    _add_backend_flag(trc_p)
    trc_p.set_defaults(fn=_cmd_trace)

    top_p = sub.add_parser(
        "top",
        help="run one experiment under the live per-worker telemetry "
        "dashboard (forces --telemetry)",
    )
    top_p.add_argument("experiment", choices=sorted(DESCRIPTIONS))
    top_p.add_argument("--scale", choices=("quick", "full"), default="quick")
    top_p.add_argument(
        "--stall-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-trial wall-clock budget before a heartbeat counts as "
        "a worker stall (default: REPRO_STALL_DEADLINE env var, else 30)",
    )
    _add_jobs_flag(top_p)
    _add_backend_flag(top_p)
    top_p.set_defaults(fn=_cmd_top)

    cost_p = sub.add_parser(
        "cost",
        help="symbolic cost-model oracle (show / eval / check)",
    )
    cost_sub = cost_p.add_subparsers(dest="cost_command", required=True)

    cshow_p = cost_sub.add_parser(
        "show", help="print the symbolic cost formulas with paper refs"
    )
    cshow_p.add_argument(
        "models", nargs="*", metavar="MODEL",
        help="model ids to show (default: all); see repro cost show",
    )
    cshow_p.add_argument(
        "--latex", action="store_true", help="render formulas as LaTeX"
    )
    cshow_p.set_defaults(fn=_cmd_cost_show)

    ceval_p = cost_sub.add_parser(
        "eval", help="evaluate one model's formulas at concrete bindings"
    )
    ceval_p.add_argument("model", metavar="MODEL", help="model id")
    ceval_p.add_argument(
        "bindings", nargs="+", metavar="NAME=VALUE",
        help="symbol bindings, e.g. T=64 m=4 b=2 v=8 u=16 q=none",
    )
    ceval_p.set_defaults(fn=_cmd_cost_eval)

    ccheck_p = cost_sub.add_parser(
        "check",
        help="run experiments (or replay a trace) under the cost oracle; "
        "exit 1 on any predicted-vs-measured mismatch",
    )
    ccheck_p.add_argument(
        "experiments", nargs="*", metavar="EXPERIMENT",
        help="experiments to check (default: every experiment with cost "
        "coverage -- see repro list)",
    )
    ccheck_p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="replay a recorded JSONL trace instead of running experiments",
    )
    ccheck_p.add_argument(
        "--scale", choices=("quick", "full"), default="quick"
    )
    ccheck_p.add_argument(
        "--strict", action="store_true",
        help="additionally fail when no checks ran at all",
    )
    ccheck_p.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    _add_jobs_flag(ccheck_p)
    _add_backend_flag(ccheck_p)
    ccheck_p.set_defaults(fn=_cmd_cost_check)

    cmp_p = sub.add_parser(
        "bench-compare",
        help="diff a REPRO_BENCH_JSON directory against a committed baseline",
    )
    cmp_p.add_argument("baseline", help="baseline JSON (benchmarks/baseline.json)")
    cmp_p.add_argument("bench_dir", help="directory of BENCH_*.json files")
    cmp_p.add_argument(
        "--time-tolerance",
        type=float,
        default=0.5,
        metavar="FRAC",
        help="relative wall-clock slack before a time regression is "
        "reported (default 0.5 = 50%%)",
    )
    cmp_p.add_argument(
        "--fail-on-time",
        action="store_true",
        help="exit nonzero on wall-clock regressions too (default: advisory)",
    )
    cmp_p.add_argument(
        "--require-all",
        action="store_true",
        help="exit nonzero when a baselined experiment is missing from "
        "the bench directory",
    )
    cmp_p.set_defaults(fn=_cmd_bench_compare)

    base_p = sub.add_parser(
        "bench-baseline",
        help="write a baseline JSON from a REPRO_BENCH_JSON directory",
    )
    base_p.add_argument("bench_dir", help="directory of BENCH_*.json files")
    base_p.add_argument(
        "--output", "-o", default="benchmarks/baseline.json",
        help="where to write the baseline (default benchmarks/baseline.json)",
    )
    base_p.set_defaults(fn=_cmd_bench_baseline)

    bench_p = sub.add_parser(
        "bench",
        help="the performance observatory: curated wall-clock suite "
        "(run) and the statistical regression gate (trend)",
    )
    bench_sub = bench_p.add_subparsers(dest="bench_command", required=True)

    brun_p = bench_sub.add_parser(
        "run",
        help="run a curated benchmark suite with warmup + best-of-k "
        "timing; writes BENCH_*.json and registry bench_results rows",
    )
    brun_p.add_argument(
        "--suite", choices=("quick", "full"), default="quick",
        help="quick = the sub-second tier (default); full = every "
        "registered experiment",
    )
    brun_p.add_argument(
        "-e", "--experiment", action="append", default=None, metavar="ID",
        help="restrict the suite to these experiment ids (repeatable)",
    )
    brun_p.add_argument(
        "--scale", choices=("quick", "full"), default="quick",
        help="experiment scale each bench runs at (default quick)",
    )
    brun_p.add_argument(
        "--warmup", type=int, default=1, metavar="K",
        help="discarded warmup runs per experiment (default 1)",
    )
    brun_p.add_argument(
        "--repeats", type=int, default=3, metavar="K",
        help="timed repeats per experiment; wall_s is the best "
        "(default 3)",
    )
    brun_p.add_argument(
        "--out", default=None, metavar="DIR",
        help="directory for BENCH_*.json payloads (default: the "
        "REPRO_BENCH_JSON env var, else bench-out)",
    )
    brun_p.add_argument(
        "--history", nargs="?", const=DEFAULT_HISTORY, default=None,
        metavar="PATH",
        help="also append rows to the committed bench history ledger "
        f"(default path {DEFAULT_HISTORY})",
    )
    brun_p.add_argument(
        "--history-keep-last", type=int, default=60, metavar="N",
        help="prune each (experiment, backend) history series to its "
        "N newest rows when appending (default 60)",
    )
    brun_p.add_argument(
        "--budgets", default=None, metavar="PATH",
        help="budgets file for the advisory wall-time/RSS check "
        "(default benchmarks/budgets.json when present)",
    )
    brun_p.add_argument(
        "--no-record", action="store_true",
        help="do not append bench_results rows to the run registry",
    )
    brun_p.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    _add_jobs_flag(brun_p)
    _add_backend_flag(brun_p)
    _add_registry_flag(brun_p)
    brun_p.set_defaults(fn=_cmd_bench_run)

    btrend_p = bench_sub.add_parser(
        "trend",
        help="statistical wall-clock regression gate over bench history "
        "(exit 1 on a confirmed regression)",
    )
    btrend_p.add_argument(
        "-e", "--experiment", action="append", default=None, metavar="ID",
        help="restrict to these experiment ids (repeatable)",
    )
    btrend_p.add_argument(
        "--backend", dest="backend_filter", default=None,
        choices=sorted(BACKENDS),
        help="restrict to one backend's series",
    )
    btrend_p.add_argument(
        "--source", choices=("both", "history", "registry"),
        default="both",
        help="where history comes from: the committed ledger, the run "
        "registry's bench_results table, or both merged (default both)",
    )
    btrend_p.add_argument(
        "--history", default=DEFAULT_HISTORY, metavar="PATH",
        help=f"bench history ledger (default {DEFAULT_HISTORY})",
    )
    btrend_p.add_argument(
        "--window", type=int, default=8, metavar="N",
        help="pre-latest points in the rolling-median baseline "
        "(default 8)",
    )
    btrend_p.add_argument(
        "--threshold", type=float, default=0.5, metavar="FRAC",
        help="relative slowdown vs the rolling median that can fire "
        "the gate (default 0.5 = 50%%)",
    )
    btrend_p.add_argument(
        "--min-delta", type=float, default=0.005, metavar="SECONDS",
        help="absolute noise floor: increases below this never fire "
        "(default 0.005s)",
    )
    btrend_p.add_argument(
        "--z-threshold", type=float, default=4.0, metavar="Z",
        help="robust (MAD-based) z-score the latest point must also "
        "exceed when the window has measurable spread (default 4)",
    )
    btrend_p.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    _add_registry_flag(btrend_p)
    btrend_p.set_defaults(fn=_cmd_bench_trend)

    args = parser.parse_args(argv)
    try:
        trace_out = getattr(args, "trace_out", None)
        if trace_out and args.command != "trace":
            # Global --trace-out: run the whole command under a streaming
            # tracer (the trace subcommand manages its own).
            with JsonlExporter(trace_out) as sink:
                with use_tracer(Tracer(sink=sink)):
                    code = args.fn(args)
                print(
                    f"trace: {sink.written} records -> {trace_out}",
                    file=sys.stderr,
                )
            _auto_index(trace_out)
            return code
        return args.fn(args)
    except BrokenPipeError:
        # Downstream closed the pipe (repro query ... | head); exit
        # quietly instead of dumping a traceback, reopening stdout on
        # /dev/null so interpreter teardown does not re-raise EPIPE.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
