"""Command-line interface.

::

    python -m repro list                     # experiment inventory
    python -m repro run E-LINE [--scale full]
    python -m repro run-all [--scale quick]
    python -m repro report [--scale quick] [--output EXPERIMENTS.md]
    python -m repro trace E-LINE [--trace-out t.jsonl]

``report`` regenerates the paper-vs-measured record: every experiment's
claim, regenerated tables, measured summary, and shape verdict, as the
markdown committed to ``EXPERIMENTS.md``.

``trace`` runs one experiment under a recording tracer and prints the
span/event summary plus aggregated metrics (per-round latency, message
and query histograms, oracle cache behavior); ``--trace-out PATH``
additionally streams the raw JSONL trace to disk.  ``--trace-out`` is
also accepted by ``run``/``run-all``/``report`` (see
docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Sequence

from repro.experiments import experiment_ids, run_experiment
from repro.obs import JsonlExporter, TraceMetrics, Tracer, summarize, use_tracer

__all__ = ["main", "build_report"]

# One-line descriptions (mirrors DESIGN.md's experiment index).
DESCRIPTIONS = {
    "T1": "Tables 1-3: parameter derivations are satisfiable",
    "F1": "Figure 1: Line chain structure",
    "E-RAM": "Theorem 3.1 upper bound: O(T*n) time, O(S) space",
    "E-LINE": "Lemma 3.2: Line rounds are linear in T",
    "E-SIMLINE": "Theorem A.1: SimLine rounds are Theta(T*u/s)",
    "E-GUESS": "Lemma 3.3 / A.7: skip-ahead succeeds w.p. 2^-u",
    "E-DECAY": "Exponential decay of per-round progress",
    "E-ENC-A": "Claim A.4: SimLine encoding round-trips within bound",
    "E-ENC-L": "Claim 3.7 / Defs 3.4-3.5: Line encoder and B-sets",
    "E-LIMIT": "Claim 3.8 / A.5: the counting limit on injective codes",
    "E-BOUND": "Claim 3.9 / A.8: assembled probability bounds",
    "E-MEM": "Total memory m*s >> S does not help",
    "E-BEST": "Theorem 1.1: nearly best-possible hardness gap",
    "E-BASE": "Section 1/1.2: RVW shuffles and Miltersen PRAM baselines",
    "E-HASH": "Theorem 1.1: concrete-hash instantiation f^h",
    "E-ABL-PLACE": "Ablation: input placement does not help",
    "E-BUDGET": "Definition 2.5: success probability vs round budget",
    "E-MHF": "Section 1.2: ROMix memory hardness is not round hardness",
    "E-SCALE": "The linear round law at paper-scale T",
    "E-PROGRESS": "Lemma A.2: per-round progress capped by h, measured",
    "E-THROUGHPUT": "K concurrent instances: parallelism buys throughput, not latency",
}


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(i) for i in experiment_ids())
    for experiment_id in experiment_ids():
        desc = DESCRIPTIONS.get(experiment_id, "")
        print(f"{experiment_id:<{width}}  {desc}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_experiment(args.experiment, scale=args.scale)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.render())
    return 0 if result.passed else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    trace_out = getattr(args, "trace_out", None)
    sink = JsonlExporter(trace_out) if trace_out else None
    tracer = Tracer(sink=sink)
    try:
        with use_tracer(tracer):
            result = run_experiment(args.experiment, scale=args.scale)
    finally:
        if sink is not None:
            sink.close()
    metrics = TraceMetrics.from_records(tracer.records)
    result.metrics["trace"] = metrics.to_dict()
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.render())
        print()
        print(summarize(tracer.records))
        print()
        print(json.dumps(metrics.to_dict(), indent=2))
    if sink is not None:
        print(f"trace: {sink.written} records -> {trace_out}", file=sys.stderr)
    return 0 if result.passed else 1


def _cmd_run_all(args: argparse.Namespace) -> int:
    failures = []
    for experiment_id in experiment_ids():
        start = time.time()
        result = run_experiment(experiment_id, scale=args.scale)
        status = "ok" if result.passed else "FAIL"
        print(f"{experiment_id:<12} {status:<5} ({time.time() - start:.1f}s)  "
              f"{result.title}")
        if not result.passed:
            failures.append(experiment_id)
    if failures:
        print(f"\nshape-check failures: {failures}", file=sys.stderr)
        return 1
    print(f"\nall {len(experiment_ids())} experiments matched the paper's shapes")
    return 0


def build_report(scale: str = "quick") -> str:
    """The EXPERIMENTS.md content: paper-vs-measured for every claim."""
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Reproduction record for *On the Hardness of Massively Parallel*",
        "*Computation* (Chung, Ho, Sun; SPAA 2020).  The paper is pure",
        "theory, so its \"tables and figures\" are parameter tables, one",
        "illustration, and the theorem suite; each entry below regenerates",
        "one of them and records whether the measured *shape* (who wins,",
        "what exponent, where the crossover falls) matches the claim.",
        "Absolute constants are not expected to match: the substrate is a",
        "bit-level simulator at Monte-Carlo-observable parameters (see",
        "DESIGN.md section 4 for the scaled-parameter policy).",
        "",
        f"Generated with `python -m repro report --scale {scale}`.",
        "",
    ]
    all_passed = True
    for experiment_id in experiment_ids():
        result = run_experiment(experiment_id, scale=scale)
        all_passed = all_passed and result.passed
        verdict = "MATCH" if result.passed else "MISMATCH"
        lines.append(f"## {experiment_id} — {result.title}")
        lines.append("")
        lines.append(f"**Paper claim.** {result.paper_claim}")
        lines.append("")
        for table in result.tables:
            lines.append("```text")
            lines.append(table.render())
            lines.append("```")
            lines.append("")
        lines.append(f"**Measured.** {result.summary}")
        lines.append("")
        lines.append(f"**Shape verdict: {verdict}.**")
        lines.append("")
    lines.append("---")
    lines.append(
        f"Overall: {'every' if all_passed else 'NOT every'} experiment "
        "reproduced its claim's shape."
    )
    lines.append("")
    return "\n".join(lines)


def _cmd_report(args: argparse.Namespace) -> int:
    report = build_report(scale=args.scale)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report)
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


def _add_trace_out(parser: argparse.ArgumentParser, *, on_sub: bool) -> None:
    # Defined on the root parser (global flag) *and* on subcommands; the
    # subcommand copy uses SUPPRESS so an unset occurrence does not
    # clobber a value given before the subcommand.
    parser.add_argument(
        "--trace-out",
        dest="trace_out",
        metavar="PATH",
        default=argparse.SUPPRESS if on_sub else None,
        help="stream a JSONL trace of the run to PATH",
    )


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for 'On the Hardness of "
        "Massively Parallel Computation' (SPAA 2020)",
    )
    _add_trace_out(parser, on_sub=False)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(fn=_cmd_list)

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", choices=sorted(DESCRIPTIONS))
    run_p.add_argument("--scale", choices=("quick", "full"), default="quick")
    run_p.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    _add_trace_out(run_p, on_sub=True)
    run_p.set_defaults(fn=_cmd_run)

    all_p = sub.add_parser("run-all", help="run every experiment")
    all_p.add_argument("--scale", choices=("quick", "full"), default="quick")
    _add_trace_out(all_p, on_sub=True)
    all_p.set_defaults(fn=_cmd_run_all)

    rep_p = sub.add_parser("report", help="emit the EXPERIMENTS.md record")
    rep_p.add_argument("--scale", choices=("quick", "full"), default="quick")
    rep_p.add_argument("--output", default=None)
    _add_trace_out(rep_p, on_sub=True)
    rep_p.set_defaults(fn=_cmd_report)

    trc_p = sub.add_parser(
        "trace", help="run one experiment under the recording tracer"
    )
    trc_p.add_argument("experiment", choices=sorted(DESCRIPTIONS))
    trc_p.add_argument("--scale", choices=("quick", "full"), default="quick")
    trc_p.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    _add_trace_out(trc_p, on_sub=True)
    trc_p.set_defaults(fn=_cmd_trace)

    args = parser.parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    if trace_out and args.command != "trace":
        # Global --trace-out: run the whole command under a streaming
        # tracer (the trace subcommand manages its own).
        with JsonlExporter(trace_out) as sink:
            with use_tracer(Tracer(sink=sink)):
                code = args.fn(args)
            print(
                f"trace: {sink.written} records -> {trace_out}", file=sys.stderr
            )
        return code
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
