"""The word-RAM interpreter with time and space accounting.

The interpreter is the measurement instrument for experiment E-RAM: it
executes a :class:`~repro.ram.isa.Program` and reports

* ``instructions`` -- instructions retired,
* ``time`` -- unit cost per instruction plus ``oracle_cost`` per
  ``ORACLE`` (the paper charges ``O(n)`` per query),
* ``oracle_queries`` -- queries issued,
* ``peak_memory_words`` -- high-water mark of addresses touched, the
  space the computation actually used.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

from repro.obs import get_tracer
from repro.ram.isa import NUM_REGISTERS, Instruction, Op, Program

__all__ = [
    "RamError",
    "RamOracleAdapter",
    "ExecutionStats",
    "RunResult",
    "RamMachine",
    "TRACE_BATCH_INSTRUCTIONS",
]

#: Instruction-count granularity of ``ram.batch`` trace events: per
#: instruction would dwarf the run itself, so progress is marked every
#: batch instead.
TRACE_BATCH_INSTRUCTIONS = 65_536


class RamError(Exception):
    """Runtime fault: bad address, missing oracle, or step-limit overrun."""


class RamOracleAdapter(ABC):
    """The oracle gate's register file.

    The ``ORACLE`` instruction moves ``in_words`` memory words into the
    gate and ``out_words`` words back.  Concrete adapters (in
    :mod:`repro.ram.programs`) define the packing between those words and
    the oracle's ``n``-bit strings, and expose ``time_cost`` -- the
    per-query charge, normally the oracle's ``n``.
    """

    @property
    @abstractmethod
    def in_words(self) -> int:
        """Words consumed per query."""

    @property
    @abstractmethod
    def out_words(self) -> int:
        """Words produced per answer."""

    @property
    @abstractmethod
    def time_cost(self) -> int:
        """Time charged per query (the paper's ``O(n)``)."""

    @abstractmethod
    def call(self, words: Sequence[int]) -> list[int]:
        """Evaluate the oracle on packed input words."""


@dataclass
class ExecutionStats:
    """Accounting for one run."""

    instructions: int = 0
    time: int = 0
    oracle_queries: int = 0
    peak_memory_words: int = 0


@dataclass
class RunResult:
    """Final machine state plus accounting."""

    stats: ExecutionStats
    registers: list[int]
    memory: list[int]
    halted: bool = True

    def read_words(self, address: int, count: int) -> list[int]:
        """Convenience accessor for output regions."""
        return list(self.memory[address : address + count])


@dataclass
class RamMachine:
    """A word-RAM with ``memory_words`` words of ``word_bits`` bits each."""

    memory_words: int
    word_bits: int = 64
    oracle_adapter: RamOracleAdapter | None = None
    max_steps: int = 50_000_000
    _mask: int = field(init=False)

    def __post_init__(self) -> None:
        if self.memory_words <= 0:
            raise ValueError(f"memory_words must be positive: {self.memory_words}")
        if self.word_bits <= 0:
            raise ValueError(f"word_bits must be positive: {self.word_bits}")
        self._mask = (1 << self.word_bits) - 1

    # ------------------------------------------------------------------
    def run(
        self, program: Program, initial_memory: Sequence[int] | None = None
    ) -> RunResult:
        """Execute ``program`` to HALT; raise on faults or step overrun.

        With a tracer active, the run emits a ``ram.run`` span carrying
        the final :class:`ExecutionStats`, plus a ``ram.batch`` event
        every :data:`TRACE_BATCH_INSTRUCTIONS` retired instructions.

        Under the ``fast`` backend (``--backend fast`` /
        ``REPRO_BACKEND=fast``) execution moves to the compiled core in
        :mod:`repro.engine.fastram`; results, stats, faults, and the
        trace stream are observably identical to this interpreter.
        """
        from repro.engine.backend import default_backend

        if default_backend() == "fast":
            from repro.engine.fastram import run_fast

            return run_fast(self, program, initial_memory)
        tracer = get_tracer()
        traced = tracer.enabled
        run_start = tracer.now() if traced else 0.0
        mem = [0] * self.memory_words
        if initial_memory is not None:
            if len(initial_memory) > self.memory_words:
                raise RamError(
                    f"initial memory of {len(initial_memory)} words exceeds "
                    f"machine memory of {self.memory_words}"
                )
            for i, v in enumerate(initial_memory):
                mem[i] = v & self._mask
        regs = [0] * NUM_REGISTERS
        stats = ExecutionStats(peak_memory_words=len(initial_memory or ()))
        pc = 0
        code = program.instructions
        mask = self._mask

        def touch(addr: int) -> None:
            if not 0 <= addr < self.memory_words:
                raise RamError(f"memory access at {addr} out of range")
            if addr + 1 > stats.peak_memory_words:
                stats.peak_memory_words = addr + 1

        while True:
            if pc >= len(code):
                raise RamError(f"pc {pc} ran past program end without HALT")
            if stats.instructions >= self.max_steps:
                raise RamError(f"exceeded max_steps={self.max_steps}")
            ins: Instruction = code[pc]
            op = ins.op
            a = ins.args
            stats.instructions += 1
            stats.time += 1
            pc += 1
            if traced and stats.instructions % TRACE_BATCH_INSTRUCTIONS == 0:
                tracer.event(
                    "ram.batch",
                    instructions=stats.instructions,
                    time=stats.time,
                    oracle_queries=stats.oracle_queries,
                )

            if op is Op.HALT:
                if traced:
                    tracer.record_span(
                        "ram.run",
                        run_start,
                        instructions=stats.instructions,
                        time=stats.time,
                        oracle_queries=stats.oracle_queries,
                        peak_memory_words=stats.peak_memory_words,
                    )
                return RunResult(stats=stats, registers=regs, memory=mem)
            elif op is Op.LOADI:
                regs[a[0]] = a[1] & mask
            elif op is Op.MOV:
                regs[a[0]] = regs[a[1]]
            elif op is Op.LOAD:
                addr = regs[a[1]]
                touch(addr)
                regs[a[0]] = mem[addr]
            elif op is Op.STORE:
                addr = regs[a[0]]
                touch(addr)
                mem[addr] = regs[a[1]]
            elif op is Op.ADD:
                regs[a[0]] = (regs[a[1]] + regs[a[2]]) & mask
            elif op is Op.ADDI:
                regs[a[0]] = (regs[a[1]] + a[2]) & mask
            elif op is Op.SUB:
                regs[a[0]] = (regs[a[1]] - regs[a[2]]) & mask
            elif op is Op.MUL:
                regs[a[0]] = (regs[a[1]] * regs[a[2]]) & mask
            elif op is Op.AND:
                regs[a[0]] = regs[a[1]] & regs[a[2]]
            elif op is Op.OR:
                regs[a[0]] = regs[a[1]] | regs[a[2]]
            elif op is Op.XOR:
                regs[a[0]] = regs[a[1]] ^ regs[a[2]]
            elif op is Op.SHL:
                regs[a[0]] = (regs[a[1]] << a[2]) & mask
            elif op is Op.SHR:
                regs[a[0]] = regs[a[1]] >> a[2]
            elif op is Op.JMP:
                pc = a[0]
            elif op is Op.JZ:
                if regs[a[0]] == 0:
                    pc = a[1]
            elif op is Op.JNZ:
                if regs[a[0]] != 0:
                    pc = a[1]
            elif op is Op.JLT:
                if regs[a[0]] < regs[a[1]]:
                    pc = a[2]
            elif op is Op.JGE:
                if regs[a[0]] >= regs[a[1]]:
                    pc = a[2]
            elif op is Op.ORACLE:
                adapter = self.oracle_adapter
                if adapter is None:
                    raise RamError("ORACLE executed on a machine without an oracle")
                src = regs[a[1]]
                dst = regs[a[0]]
                touch(src)
                touch(src + adapter.in_words - 1)
                words_in = mem[src : src + adapter.in_words]
                words_out = adapter.call(words_in)
                if len(words_out) != adapter.out_words:
                    raise RamError(
                        f"oracle adapter returned {len(words_out)} words, "
                        f"declared {adapter.out_words}"
                    )
                touch(dst)
                touch(dst + adapter.out_words - 1)
                for i, wv in enumerate(words_out):
                    mem[dst + i] = wv & mask
                stats.oracle_queries += 1
                stats.time += adapter.time_cost - 1  # instruction already paid 1
            else:  # pragma: no cover - exhaustive over Op
                raise RamError(f"unknown opcode {op}")
