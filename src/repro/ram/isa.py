"""Word-RAM instruction set.

A small register machine: 8 general-purpose registers ``R0..R7``, a flat
word-addressed memory, unit cost per instruction, and one special
``ORACLE`` instruction whose cost equals the oracle's ``n`` (the paper
charges ``O(n)`` time per query).  The ISA is deliberately minimal --
enough to express the chain evaluators naturally while keeping the
interpreter auditable.

Operand conventions (register indices unless noted):

====== ============================ =========================================
op     operands                     semantics
====== ============================ =========================================
HALT                                stop
LOADI  rd, imm                      R[rd] := imm
MOV    rd, rs                       R[rd] := R[rs]
LOAD   rd, ra                       R[rd] := M[R[ra]]
STORE  ra, rs                       M[R[ra]] := R[rs]
ADD    rd, ra, rb                   R[rd] := R[ra] + R[rb]   (mod 2^W)
ADDI   rd, ra, imm                  R[rd] := R[ra] + imm     (mod 2^W)
SUB    rd, ra, rb                   R[rd] := R[ra] - R[rb]   (mod 2^W)
MUL    rd, ra, rb                   R[rd] := R[ra] * R[rb]   (mod 2^W)
AND    rd, ra, rb                   bitwise and
OR     rd, ra, rb                   bitwise or
XOR    rd, ra, rb                   bitwise xor
SHL    rd, ra, imm                  R[rd] := R[ra] << imm    (mod 2^W)
SHR    rd, ra, imm                  R[rd] := R[ra] >> imm
JMP    target                       pc := target
JZ     r, target                    if R[r] == 0: pc := target
JNZ    r, target                    if R[r] != 0: pc := target
JLT    ra, rb, target               if R[ra] < R[rb]: pc := target
JGE    ra, rb, target               if R[ra] >= R[rb]: pc := target
ORACLE rdst, rsrc                   oracle gate: reads ``in_words`` words at
                                    M[R[rsrc]..], writes ``out_words`` words
                                    at M[R[rdst]..]; costs ``n`` time
====== ============================ =========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Sequence

__all__ = ["Op", "Instruction", "Program", "NUM_REGISTERS"]

NUM_REGISTERS = 8


class Op(Enum):
    """Opcodes of the word-RAM."""

    HALT = auto()
    LOADI = auto()
    MOV = auto()
    LOAD = auto()
    STORE = auto()
    ADD = auto()
    ADDI = auto()
    SUB = auto()
    MUL = auto()
    AND = auto()
    OR = auto()
    XOR = auto()
    SHL = auto()
    SHR = auto()
    JMP = auto()
    JZ = auto()
    JNZ = auto()
    JLT = auto()
    JGE = auto()
    ORACLE = auto()


# Operand kinds per opcode: 'r' = register, 'i' = immediate, 't' = target pc.
_SIGNATURES: dict[Op, str] = {
    Op.HALT: "",
    Op.LOADI: "ri",
    Op.MOV: "rr",
    Op.LOAD: "rr",
    Op.STORE: "rr",
    Op.ADD: "rrr",
    Op.ADDI: "rri",
    Op.SUB: "rrr",
    Op.MUL: "rrr",
    Op.AND: "rrr",
    Op.OR: "rrr",
    Op.XOR: "rrr",
    Op.SHL: "rri",
    Op.SHR: "rri",
    Op.JMP: "t",
    Op.JZ: "rt",
    Op.JNZ: "rt",
    Op.JLT: "rrt",
    Op.JGE: "rrt",
    Op.ORACLE: "rr",
}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction: opcode plus integer operands."""

    op: Op
    args: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        sig = _SIGNATURES[self.op]
        if len(self.args) != len(sig):
            raise ValueError(
                f"{self.op.name} takes {len(sig)} operands, got {len(self.args)}"
            )
        for kind, arg in zip(sig, self.args):
            if kind == "r" and not 0 <= arg < NUM_REGISTERS:
                raise ValueError(f"{self.op.name}: register {arg} out of range")
            if kind == "i" and arg < 0:
                raise ValueError(f"{self.op.name}: negative immediate {arg}")
            if kind == "t" and arg < 0:
                raise ValueError(f"{self.op.name}: negative jump target {arg}")

    def __str__(self) -> str:
        return f"{self.op.name} {', '.join(map(str, self.args))}".strip()


@dataclass(frozen=True)
class Program:
    """An assembled program: a fixed instruction sequence."""

    instructions: tuple[Instruction, ...]

    def __post_init__(self) -> None:
        limit = len(self.instructions)
        for idx, ins in enumerate(self.instructions):
            sig = _SIGNATURES[ins.op]
            for kind, arg in zip(sig, ins.args):
                if kind == "t" and arg >= limit:
                    raise ValueError(
                        f"instruction {idx} ({ins}) jumps past program end"
                    )

    def __len__(self) -> int:
        return len(self.instructions)

    def listing(self) -> str:
        """A human-readable disassembly."""
        return "\n".join(
            f"{idx:4d}: {ins}" for idx, ins in enumerate(self.instructions)
        )

    @classmethod
    def from_list(cls, instructions: Sequence[Instruction]) -> "Program":
        """Build from a plain instruction list."""
        return cls(tuple(instructions))
