"""A small label-resolving assembler for the word-RAM.

Programs are written by calling emit methods; forward references to
labels are allowed and resolved at :meth:`Assembler.assemble` time:

    asm = Assembler()
    asm.loadi(0, 10)
    asm.label("loop")
    asm.addi(0, 0, -1)            # not allowed: immediates are unsigned
    asm.jnz(0, "loop")
    asm.halt()
    program = asm.assemble()
"""

from __future__ import annotations

from repro.ram.isa import Instruction, Op, Program

__all__ = ["Assembler"]


class Assembler:
    """Accumulates instructions and resolves labels to program counters."""

    def __init__(self) -> None:
        self._items: list[tuple[Op, tuple[object, ...]]] = []
        self._labels: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Labels
    # ------------------------------------------------------------------
    def label(self, name: str) -> None:
        """Define ``name`` at the current position."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._items)

    # ------------------------------------------------------------------
    # Emitters (one per opcode)
    # ------------------------------------------------------------------
    def _emit(self, op: Op, *args: object) -> None:
        self._items.append((op, args))

    def halt(self) -> None:
        """HALT."""
        self._emit(Op.HALT)

    def loadi(self, rd: int, imm: int) -> None:
        """R[rd] := imm."""
        self._emit(Op.LOADI, rd, imm)

    def mov(self, rd: int, rs: int) -> None:
        """R[rd] := R[rs]."""
        self._emit(Op.MOV, rd, rs)

    def load(self, rd: int, ra: int) -> None:
        """R[rd] := M[R[ra]]."""
        self._emit(Op.LOAD, rd, ra)

    def store(self, ra: int, rs: int) -> None:
        """M[R[ra]] := R[rs]."""
        self._emit(Op.STORE, ra, rs)

    def add(self, rd: int, ra: int, rb: int) -> None:
        """R[rd] := R[ra] + R[rb]."""
        self._emit(Op.ADD, rd, ra, rb)

    def addi(self, rd: int, ra: int, imm: int) -> None:
        """R[rd] := R[ra] + imm (imm >= 0)."""
        self._emit(Op.ADDI, rd, ra, imm)

    def sub(self, rd: int, ra: int, rb: int) -> None:
        """R[rd] := R[ra] - R[rb] (mod 2^W)."""
        self._emit(Op.SUB, rd, ra, rb)

    def mul(self, rd: int, ra: int, rb: int) -> None:
        """R[rd] := R[ra] * R[rb] (mod 2^W)."""
        self._emit(Op.MUL, rd, ra, rb)

    def and_(self, rd: int, ra: int, rb: int) -> None:
        """Bitwise and."""
        self._emit(Op.AND, rd, ra, rb)

    def or_(self, rd: int, ra: int, rb: int) -> None:
        """Bitwise or."""
        self._emit(Op.OR, rd, ra, rb)

    def xor(self, rd: int, ra: int, rb: int) -> None:
        """Bitwise xor."""
        self._emit(Op.XOR, rd, ra, rb)

    def shl(self, rd: int, ra: int, imm: int) -> None:
        """R[rd] := R[ra] << imm."""
        self._emit(Op.SHL, rd, ra, imm)

    def shr(self, rd: int, ra: int, imm: int) -> None:
        """R[rd] := R[ra] >> imm."""
        self._emit(Op.SHR, rd, ra, imm)

    def jmp(self, target: str) -> None:
        """Unconditional jump to label."""
        self._emit(Op.JMP, target)

    def jz(self, r: int, target: str) -> None:
        """Jump if R[r] == 0."""
        self._emit(Op.JZ, r, target)

    def jnz(self, r: int, target: str) -> None:
        """Jump if R[r] != 0."""
        self._emit(Op.JNZ, r, target)

    def jlt(self, ra: int, rb: int, target: str) -> None:
        """Jump if R[ra] < R[rb]."""
        self._emit(Op.JLT, ra, rb, target)

    def jge(self, ra: int, rb: int, target: str) -> None:
        """Jump if R[ra] >= R[rb]."""
        self._emit(Op.JGE, ra, rb, target)

    def oracle(self, rdst: int, rsrc: int) -> None:
        """Oracle gate: in-words at M[R[rsrc]..], out-words to M[R[rdst]..]."""
        self._emit(Op.ORACLE, rdst, rsrc)

    # ------------------------------------------------------------------
    def assemble(self) -> Program:
        """Resolve labels and produce an immutable :class:`Program`."""
        instructions = []
        for op, args in self._items:
            resolved = []
            for arg in args:
                if isinstance(arg, str):
                    if arg not in self._labels:
                        raise ValueError(f"undefined label {arg!r}")
                    resolved.append(self._labels[arg])
                else:
                    resolved.append(int(arg))
            instructions.append(Instruction(op, tuple(resolved)))
        return Program(tuple(instructions))
