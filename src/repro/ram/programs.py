"""``Line`` and ``SimLine`` as word-RAM programs.

These programs realize the Theorem 3.1 / A.1 upper bounds on the real
interpreter.  The memory layout puts the input pieces first, so the peak
memory is ``v + O(1)`` words of ``~u`` bits -- ``O(S)`` bits -- and the
main loop performs ``O(1)`` instructions plus one oracle gate (cost
``n``) per chain node, for ``O(w·n) = O(T·n)`` total time.

Layout (word addresses)::

    0 .. v-1          input pieces x_0 .. x_{v-1}
    QIN  = v          oracle-gate input words
    QOUT = QIN + in   oracle-gate output words: parsed next-state fields
                      first, then the raw n-bit answer in word chunks

Register conventions: R0 = node counter ``i``, R1 = pointer / piece
index, R2 = running value ``r``, R3/R5/R6 = scratch, R4 = ``w``,
R7 = ``v`` (SimLine only).
"""

from __future__ import annotations

from typing import Sequence

from repro.bits import Bits
from repro.functions.line import line_query
from repro.functions.params import LineParams, SimLineParams
from repro.functions.simline import simline_query
from repro.obs import get_tracer
from repro.oracle.base import Oracle
from repro.ram.assembler import Assembler
from repro.ram.isa import Program
from repro.ram.machine import RamMachine, RamOracleAdapter, RunResult

__all__ = [
    "LineRamAdapter",
    "SimLineRamAdapter",
    "build_line_program",
    "build_simline_program",
    "run_line_on_ram",
    "run_simline_on_ram",
    "default_word_bits",
]


def default_word_bits(params: LineParams | SimLineParams) -> int:
    """The natural word size: wide enough for a piece and a node index."""
    if isinstance(params, LineParams):
        return max(params.u, params.index_width, 1)
    return max(params.u, (params.w + 1).bit_length(), 1)


def _answer_words(answer: Bits, word_bits: int) -> list[int]:
    """Chunk an n-bit answer into word-sized pieces (last one padded)."""
    n = len(answer)
    count = -(-n // word_bits)
    padded = answer.pad_right(count * word_bits)
    return [padded[i * word_bits : (i + 1) * word_bits].value for i in range(count)]


def _answer_from_words(words: Sequence[int], n: int, word_bits: int) -> Bits:
    """Inverse of :func:`_answer_words`."""
    acc = Bits.concat([Bits(wv, word_bits) for wv in words])
    return acc[:n]


class LineRamAdapter(RamOracleAdapter):
    """Oracle gate for ``Line``: in ``(i, x, r)``, out ``(l', r', answer...)``.

    The gate does the bit packing the paper leaves implicit ("query the
    oracle on ``(i, x_{l_i}, r_i, 0^*)``"): three semantic input words
    become one ``n``-bit query; the ``n``-bit answer comes back as two
    parsed next-state words (pointer and ``r``) followed by the raw
    answer in word chunks, so the final output is available in memory.
    """

    def __init__(self, params: LineParams, oracle: Oracle, word_bits: int) -> None:
        if oracle.n_in != params.n or oracle.n_out != params.n:
            raise ValueError("oracle dimensions do not match params")
        if word_bits < params.u or word_bits < params.index_width:
            raise ValueError(
                f"word_bits={word_bits} too narrow for u={params.u} / "
                f"index_width={params.index_width}"
            )
        self._params = params
        self._oracle = oracle
        self._word_bits = word_bits
        self._answer_word_count = -(-params.n // word_bits)

    @property
    def in_words(self) -> int:
        return 3

    @property
    def out_words(self) -> int:
        return 2 + self._answer_word_count

    @property
    def time_cost(self) -> int:
        return self._params.n

    @property
    def answer_word_count(self) -> int:
        """Words holding the raw ``n``-bit answer."""
        return self._answer_word_count

    def call(self, words: Sequence[int]) -> list[int]:
        p = self._params
        i, x, r = words
        query = line_query(
            p,
            i & ((1 << p.index_width) - 1),
            Bits(x & ((1 << p.u) - 1), p.u),
            Bits(r & ((1 << p.u) - 1), p.u),
        )
        answer = self._oracle.query(query)
        fields = p.answer_codec.unpack(answer)
        return [
            p.ell_of_answer(fields["ell"]),
            fields["r"],
            *_answer_words(answer, self._word_bits),
        ]

    def extract_answer(self, result: RunResult, qout: int) -> Bits:
        """Read the final ``n``-bit answer left at the gate output region."""
        words = result.read_words(qout + 2, self._answer_word_count)
        return _answer_from_words(words, self._params.n, self._word_bits)


class SimLineRamAdapter(RamOracleAdapter):
    """Oracle gate for ``SimLine``: in ``(x, r)``, out ``(r', answer...)``."""

    def __init__(
        self, params: SimLineParams, oracle: Oracle, word_bits: int
    ) -> None:
        if oracle.n_in != params.n or oracle.n_out != params.n:
            raise ValueError("oracle dimensions do not match params")
        if word_bits < params.u:
            raise ValueError(f"word_bits={word_bits} too narrow for u={params.u}")
        self._params = params
        self._oracle = oracle
        self._word_bits = word_bits
        self._answer_word_count = -(-params.n // word_bits)

    @property
    def in_words(self) -> int:
        return 2

    @property
    def out_words(self) -> int:
        return 1 + self._answer_word_count

    @property
    def time_cost(self) -> int:
        return self._params.n

    @property
    def answer_word_count(self) -> int:
        """Words holding the raw ``n``-bit answer."""
        return self._answer_word_count

    def call(self, words: Sequence[int]) -> list[int]:
        p = self._params
        x, r = words
        query = simline_query(
            p,
            Bits(x & ((1 << p.u) - 1), p.u),
            Bits(r & ((1 << p.u) - 1), p.u),
        )
        answer = self._oracle.query(query)
        fields = p.answer_codec.unpack(answer)
        return [fields["r"], *_answer_words(answer, self._word_bits)]

    def extract_answer(self, result: RunResult, qout: int) -> Bits:
        """Read the final ``n``-bit answer left at the gate output region."""
        words = result.read_words(qout + 1, self._answer_word_count)
        return _answer_from_words(words, self._params.n, self._word_bits)


def build_line_program(params: LineParams) -> Program:
    """The ``Line`` evaluation loop as RAM code."""
    qin = params.v
    qout = qin + 3
    asm = Assembler()
    asm.loadi(0, 0)          # R0 = i
    asm.loadi(1, 0)          # R1 = ell  (paper's l_1, 0-based)
    asm.loadi(2, 0)          # R2 = r = 0^u
    asm.loadi(4, params.w)   # R4 = w
    asm.label("loop")
    asm.jge(0, 4, "done")
    asm.load(3, 1)           # R3 = x[ell]  (pieces start at address 0)
    asm.loadi(5, qin)
    asm.store(5, 0)          # M[QIN]   = i
    asm.addi(5, 5, 1)
    asm.store(5, 3)          # M[QIN+1] = x
    asm.addi(5, 5, 1)
    asm.store(5, 2)          # M[QIN+2] = r
    asm.loadi(5, qin)
    asm.loadi(6, qout)
    asm.oracle(6, 5)
    asm.load(1, 6)           # R1 = ell'
    asm.addi(6, 6, 1)
    asm.load(2, 6)           # R2 = r'
    asm.addi(0, 0, 1)
    asm.jmp("loop")
    asm.label("done")
    asm.halt()
    return asm.assemble()


def build_simline_program(params: SimLineParams) -> Program:
    """The ``SimLine`` evaluation loop as RAM code (round-robin index)."""
    qin = params.v
    qout = qin + 2
    asm = Assembler()
    asm.loadi(0, 0)          # R0 = i
    asm.loadi(1, 0)          # R1 = piece index (i mod v)
    asm.loadi(2, 0)          # R2 = r = 0^u
    asm.loadi(4, params.w)   # R4 = w
    asm.loadi(7, params.v)   # R7 = v
    asm.label("loop")
    asm.jge(0, 4, "done")
    asm.load(3, 1)           # R3 = x[piece]
    asm.loadi(5, qin)
    asm.store(5, 3)          # M[QIN]   = x
    asm.addi(5, 5, 1)
    asm.store(5, 2)          # M[QIN+1] = r
    asm.loadi(5, qin)
    asm.loadi(6, qout)
    asm.oracle(6, 5)
    asm.load(2, 6)           # R2 = r'
    asm.addi(0, 0, 1)
    asm.addi(1, 1, 1)
    asm.jlt(1, 7, "loop")    # piece < v: continue
    asm.loadi(1, 0)          # wrap the round robin
    asm.jmp("loop")
    asm.label("done")
    asm.halt()
    return asm.assemble()


def run_line_on_ram(
    params: LineParams,
    x: Sequence[Bits],
    oracle: Oracle,
    *,
    word_bits: int | None = None,
) -> tuple[Bits, RunResult]:
    """Evaluate ``Line`` on the word-RAM; return (output, run result).

    Under a tracer, a ``cost.model`` announcement precedes the run so
    the cost oracle can assert the interpreter's instruction-exact
    counters against the ``ram.line`` formulas.
    """
    wbits = word_bits if word_bits is not None else default_word_bits(params)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            "cost.model",
            model="ram.line",
            trigger="ram.run",
            params={
                "n": params.n, "u": params.u, "v": params.v,
                "T": params.w, "wb": wbits,
            },
        )
    adapter = LineRamAdapter(params, oracle, wbits)
    qout = params.v + 3
    machine = RamMachine(
        memory_words=qout + adapter.out_words,
        word_bits=wbits,
        oracle_adapter=adapter,
    )
    result = machine.run(build_line_program(params), [piece.value for piece in x])
    return adapter.extract_answer(result, qout), result


def run_simline_on_ram(
    params: SimLineParams,
    x: Sequence[Bits],
    oracle: Oracle,
    *,
    word_bits: int | None = None,
) -> tuple[Bits, RunResult]:
    """Evaluate ``SimLine`` on the word-RAM; return (output, run result).

    Announces ``ram.simline`` to the cost oracle, as
    :func:`run_line_on_ram` does for ``ram.line``.
    """
    wbits = word_bits if word_bits is not None else default_word_bits(params)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            "cost.model",
            model="ram.simline",
            trigger="ram.run",
            params={
                "n": params.n, "u": params.u, "v": params.v,
                "T": params.w, "wb": wbits,
            },
        )
    adapter = SimLineRamAdapter(params, oracle, wbits)
    qout = params.v + 2
    machine = RamMachine(
        memory_words=qout + adapter.out_words,
        word_bits=wbits,
        oracle_adapter=adapter,
    )
    result = machine.run(
        build_simline_program(params), [piece.value for piece in x]
    )
    return adapter.extract_answer(result, qout), result
