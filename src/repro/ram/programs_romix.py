"""ROMix as a word-RAM program -- the MHF on the sequential substrate.

Completes the Section 1.2 triangle: :mod:`repro.mhf.romix` defines the
function, :mod:`repro.mhf.mpc_romix` computes it in one MPC round, and
this module computes it on the word-RAM with honest space accounting --
peak memory ``N + O(1)`` words (the V table *must* be resident) against
``2N`` oracle calls, the memory-hardness profile in RAM terms.

Restricted to power-of-two ``N`` so the ``Integerify mod N`` step is a
single AND (the ISA has no division -- deliberately minimal).
"""

from __future__ import annotations

from typing import Sequence

from repro.bits import Bits
from repro.oracle.base import Oracle
from repro.ram.assembler import Assembler
from repro.ram.isa import Program
from repro.ram.machine import RamMachine, RamOracleAdapter, RunResult

__all__ = ["RomixRamAdapter", "build_romix_program", "run_romix_on_ram"]


class RomixRamAdapter(RamOracleAdapter):
    """Oracle gate for ROMix: one state word in, one state word out."""

    def __init__(self, oracle: Oracle, word_bits: int) -> None:
        if oracle.n_in != oracle.n_out:
            raise ValueError("ROMix needs an n -> n oracle")
        if word_bits != oracle.n_in:
            raise ValueError(
                f"word_bits={word_bits} must equal the oracle width {oracle.n_in}"
            )
        self._oracle = oracle
        self._bits = word_bits

    @property
    def in_words(self) -> int:
        return 1

    @property
    def out_words(self) -> int:
        return 1

    @property
    def time_cost(self) -> int:
        return self._bits

    def call(self, words: Sequence[int]) -> list[int]:
        answer = self._oracle.query(Bits(words[0], self._bits))
        return [answer.value]


def build_romix_program(cost: int) -> Program:
    """The two ROMix phases as RAM code (memory: V at 0.., gate at N..)."""
    if cost <= 0 or cost & (cost - 1):
        raise ValueError(f"cost N must be a positive power of two, got {cost}")
    qin = cost
    qout = cost + 1
    x_addr = cost + 2
    out_addr = cost + 3

    asm = Assembler()
    asm.loadi(0, 0)                # R0 = i
    asm.loadi(4, cost)             # R4 = N
    asm.loadi(7, cost - 1)         # R7 = N-1 (Integerify mask)
    asm.loadi(5, x_addr)
    asm.load(1, 5)                 # R1 = X

    asm.label("phase1")            # V[i] = state; state = H(state)
    asm.jge(0, 4, "phase2_init")
    asm.mov(5, 0)
    asm.store(5, 1)                # V[i] = state
    asm.loadi(5, qin)
    asm.store(5, 1)
    asm.loadi(6, qout)
    asm.oracle(6, 5)
    asm.load(1, 6)                 # state = H(state)
    asm.addi(0, 0, 1)
    asm.jmp("phase1")

    asm.label("phase2_init")
    asm.loadi(0, 0)
    asm.label("phase2")            # state = H(state xor V[state & (N-1)])
    asm.jge(0, 4, "done")
    asm.and_(3, 1, 7)              # j = Integerify(state)
    asm.load(3, 3)                 # R3 = V[j]
    asm.xor(3, 1, 3)               # state xor V[j]
    asm.loadi(5, qin)
    asm.store(5, 3)
    asm.loadi(6, qout)
    asm.oracle(6, 5)
    asm.load(1, 6)
    asm.addi(0, 0, 1)
    asm.jmp("phase2")

    asm.label("done")
    asm.loadi(5, out_addr)
    asm.store(5, 1)
    asm.halt()
    return asm.assemble()


def run_romix_on_ram(
    oracle: Oracle, x: Bits, cost: int
) -> tuple[Bits, RunResult]:
    """Evaluate ROMix on the word-RAM; returns (output, run result)."""
    adapter = RomixRamAdapter(oracle, len(x))
    machine = RamMachine(
        memory_words=cost + 4,
        word_bits=len(x),
        oracle_adapter=adapter,
    )
    initial = [0] * (cost + 2) + [x.value]
    result = machine.run(build_romix_program(cost), initial)
    return Bits(result.memory[cost + 3], len(x)), result
