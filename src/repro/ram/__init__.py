"""Sequential word-RAM substrate.

Theorem 3.1's upper bound -- ``Line`` is computable in ``O(T·n)`` time and
``O(S)`` space by a RAM algorithm with oracle access -- is validated on a
real interpreter, not by inspection.  The package provides:

* :mod:`~repro.ram.isa` -- the instruction set (register machine with
  load/store, arithmetic, branches, and an ``ORACLE`` gate whose time
  cost is ``n``, matching "making a query to RO takes ``O(n)`` time");
* :mod:`~repro.ram.machine` -- the interpreter with instruction, time,
  and peak-memory accounting;
* :mod:`~repro.ram.assembler` -- a label-resolving program builder;
* :mod:`~repro.ram.programs` -- ``Line`` and ``SimLine`` written as RAM
  programs, plus runners that compare against the reference evaluators.
"""

from repro.ram.assembler import Assembler
from repro.ram.isa import Instruction, Op, Program
from repro.ram.machine import (
    ExecutionStats,
    RamError,
    RamMachine,
    RamOracleAdapter,
    RunResult,
)
from repro.ram.programs import (
    LineRamAdapter,
    SimLineRamAdapter,
    build_line_program,
    build_simline_program,
    run_line_on_ram,
    run_simline_on_ram,
)

__all__ = [
    "Assembler",
    "ExecutionStats",
    "Instruction",
    "LineRamAdapter",
    "Op",
    "Program",
    "RamError",
    "RamMachine",
    "RamOracleAdapter",
    "RunResult",
    "SimLineRamAdapter",
    "build_line_program",
    "build_simline_program",
    "run_line_on_ram",
    "run_simline_on_ram",
]
