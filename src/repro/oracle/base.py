"""Oracle interface and errors.

An oracle is a fixed function ``{0,1}^n_in -> {0,1}^n_out``.  All
implementations are *functional*: the answer to a query depends only on
the query (and the oracle's identity), never on query order -- the
property that lets the RAM evaluator, every MPC machine, and the
compression argument's re-runs agree on one oracle.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.bits import Bits

__all__ = ["Oracle", "OracleError", "DomainError", "QueryBudgetExceeded"]


class OracleError(Exception):
    """Base class for oracle-related failures."""


class DomainError(OracleError):
    """A query or answer had the wrong bit length."""


class QueryBudgetExceeded(OracleError):
    """A machine exceeded its per-round query budget ``q``."""


class Oracle(ABC):
    """A function ``{0,1}^n_in -> {0,1}^n_out`` accessed by queries."""

    def __init__(self, n_in: int, n_out: int) -> None:
        if n_in < 0 or n_out <= 0:
            raise ValueError(f"invalid oracle dimensions ({n_in}, {n_out})")
        self._n_in = n_in
        self._n_out = n_out

    @property
    def n_in(self) -> int:
        """Query length in bits."""
        return self._n_in

    @property
    def n_out(self) -> int:
        """Answer length in bits."""
        return self._n_out

    def query(self, x: Bits) -> Bits:
        """Evaluate the oracle on ``x`` (validates both lengths)."""
        if len(x) != self._n_in:
            raise DomainError(
                f"query has {len(x)} bits, oracle domain is {self._n_in} bits"
            )
        answer = self._evaluate(x)
        if len(answer) != self._n_out:
            raise DomainError(
                f"oracle produced {len(answer)} bits, expected {self._n_out}"
            )
        return answer

    def query_batch(self, xs: Sequence[Bits]) -> list[Bits]:
        """Evaluate the oracle on many queries at once.

        Semantically identical to ``[self.query(x) for x in xs]`` --
        oracles are functional, so batching changes nothing observable.
        Implementations with a vectorized ``_evaluate_batch`` (table
        gather, batched PRF) answer the whole batch without per-query
        Python dispatch, which is what the fast MPC/RAM backends lean
        on.
        """
        n_in = self._n_in
        for x in xs:
            if len(x) != n_in:
                raise DomainError(
                    f"query has {len(x)} bits, oracle domain is {n_in} bits"
                )
        answers = self._evaluate_batch(xs)
        n_out = self._n_out
        for answer in answers:
            if len(answer) != n_out:
                raise DomainError(
                    f"oracle produced {len(answer)} bits, expected {n_out}"
                )
        return answers

    def _evaluate_batch(self, xs: Sequence[Bits]) -> list[Bits]:
        """Batch evaluation hook; the default is the sequential loop."""
        return [self._evaluate(x) for x in xs]

    @abstractmethod
    def _evaluate(self, x: Bits) -> Bits:
        """Compute the answer for an in-domain query."""
