"""Oracles with a finite set of rewired entries (Definition 3.4).

The Section 3 proof runs a machine against the family of oracles
``RO^(k)_{a_1..a_p}`` obtained from ``RO`` by redirecting ``p``
consecutive chain entries through a chosen index sequence.  A
:class:`PatchedOracle` is the generic object: a base oracle plus an
override map consulted first.  The ``Line``-specific construction of the
override map lives in :mod:`repro.compression.bsets`, next to the proof
machinery that uses it.
"""

from __future__ import annotations

from typing import Mapping

from repro.bits import Bits
from repro.oracle.base import Oracle

__all__ = ["PatchedOracle"]


class PatchedOracle(Oracle):
    """A base oracle with finitely many entries replaced."""

    def __init__(self, base: Oracle, overrides: Mapping[Bits, Bits]) -> None:
        super().__init__(base.n_in, base.n_out)
        for query, answer in overrides.items():
            if len(query) != base.n_in:
                raise ValueError(
                    f"override query has {len(query)} bits, oracle takes {base.n_in}"
                )
            if len(answer) != base.n_out:
                raise ValueError(
                    f"override answer has {len(answer)} bits, oracle gives {base.n_out}"
                )
        self._base = base
        self._overrides = dict(overrides)

    @property
    def base(self) -> Oracle:
        """The unpatched oracle."""
        return self._base

    @property
    def overrides(self) -> dict[Bits, Bits]:
        """A copy of the rewired entries."""
        return dict(self._overrides)

    def _evaluate(self, x: Bits) -> Bits:
        hit = self._overrides.get(x)
        if hit is not None:
            return hit
        return self._base.query(x)

    def num_patches(self) -> int:
        """Number of rewired entries."""
        return len(self._overrides)
