"""Explicit truth-table oracle over small domains.

A :class:`TableOracle` holds all ``2^n_in`` answers.  Sampling the table
uniformly *is* drawing ``RO`` from the paper's probability space, so
Monte-Carlo estimates computed over fresh tables are unbiased estimates of
the paper's probabilities at the same (scaled-down) parameters.  The class
also supports what the Section 3 proof does on paper: counting the number
of possible oracles (``2^{n_out * 2^n_in}``, the ``2^{n 2^n}`` term in
Claim 3.7's message count) and serializing the full table -- the "add the
entire RO to our encoding" step of the encoders.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.bits import BitReader, BitWriter, Bits
from repro.oracle.base import Oracle

#: Batch sizes below this answer faster through plain list indexing
#: than through building a numpy index array.
_NUMPY_BATCH_MIN = 32

__all__ = ["TableOracle"]


class TableOracle(Oracle):
    """An oracle backed by an explicit table of ``2^n_in`` answers."""

    def __init__(self, n_in: int, n_out: int, table: Sequence[int]) -> None:
        super().__init__(n_in, n_out)
        if n_in > 30:
            raise ValueError(
                f"table oracle over 2^{n_in} entries is impractical; "
                "use LazyRandomOracle for large domains"
            )
        expected = 1 << n_in
        if len(table) != expected:
            raise ValueError(
                f"table has {len(table)} entries, domain needs {expected}"
            )
        limit = 1 << n_out
        tbl = [int(v) for v in table]
        for v in tbl:
            if not 0 <= v < limit:
                raise ValueError(f"table entry {v} out of range for {n_out} bits")
        self._table = tbl
        # Lazily built numpy copy for the batch gather path (answers
        # wider than 62 bits do not fit uint64 and stay on lists).
        self._np_table: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def sample(
        cls, n_in: int, n_out: int, rng: np.random.Generator
    ) -> "TableOracle":
        """Draw a uniformly random oracle (one sample of the paper's RO)."""
        size = 1 << n_in
        if n_out <= 62:
            values = rng.integers(0, 1 << n_out, size=size, dtype=np.uint64)
            return cls(n_in, n_out, values.tolist())
        # Wide outputs: assemble from 32-bit limbs.
        limbs = (n_out + 31) // 32
        table = []
        for _ in range(size):
            acc = 0
            for _ in range(limbs):
                acc = (acc << 32) | int(rng.integers(0, 1 << 32, dtype=np.uint64))
            table.append(acc & ((1 << n_out) - 1))
        return cls(n_in, n_out, table)

    def _evaluate(self, x: Bits) -> Bits:
        return Bits(self._table[x.value], self._n_out)

    def _evaluate_batch(self, xs: Sequence[Bits]) -> list[Bits]:
        n_out = self._n_out
        if n_out <= 62 and len(xs) >= _NUMPY_BATCH_MIN:
            if self._np_table is None:
                self._np_table = np.asarray(self._table, dtype=np.uint64)
            idx = np.fromiter(
                (x.value for x in xs), dtype=np.int64, count=len(xs)
            )
            values = self._np_table[idx].tolist()
        else:
            table = self._table
            values = [table[x.value] for x in xs]
        make = Bits._make  # entries validated against n_out at init
        return [make(v, n_out) for v in values]

    # ------------------------------------------------------------------
    # Proof-facing operations
    # ------------------------------------------------------------------
    @property
    def table(self) -> tuple[int, ...]:
        """The full answer table (index = query value)."""
        return tuple(self._table)

    def entries(self) -> Iterator[tuple[Bits, Bits]]:
        """Iterate over all ``(query, answer)`` pairs."""
        for i, v in enumerate(self._table):
            yield Bits(i, self._n_in), Bits(v, self._n_out)

    def with_overrides(self, overrides: dict[Bits, Bits]) -> "TableOracle":
        """A new table oracle with the given entries rewired."""
        table = list(self._table)
        for query, answer in overrides.items():
            if len(query) != self._n_in or len(answer) != self._n_out:
                raise ValueError("override dimensions do not match oracle")
            table[query.value] = answer.value
        return TableOracle(self._n_in, self._n_out, table)

    def serialize(self) -> Bits:
        """The table as one bit string of length ``n_out * 2^n_in``.

        This is the "add the entire RO to our encoding" step of the
        Claim 3.7 / A.4 encoders.
        """
        w = BitWriter()
        for v in self._table:
            w.write(v, self._n_out)
        return w.getvalue()

    @classmethod
    def deserialize(cls, bits: Bits, n_in: int, n_out: int) -> "TableOracle":
        """Inverse of :meth:`serialize`."""
        r = BitReader(bits)
        table = [r.read(n_out) for _ in range(1 << n_in)]
        if not r.at_end():
            raise ValueError("trailing bits after oracle table")
        return cls(n_in, n_out, table)

    @staticmethod
    def log2_number_of_oracles(n_in: int, n_out: int) -> int:
        """``log2`` of the number of functions -- the paper's ``n·2^n``."""
        return n_out * (1 << n_in)

    def __getstate__(self) -> dict:
        """Pickle without the numpy mirror (recomputable, doubles payload)."""
        state = self.__dict__.copy()
        state["_np_table"] = None
        return state

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableOracle):
            return NotImplemented
        return (
            self._n_in == other._n_in
            and self._n_out == other._n_out
            and self._table == other._table
        )

    def __hash__(self) -> int:
        return hash((self._n_in, self._n_out, tuple(self._table)))
