"""Query transcripts and per-round query budgets.

Theorem 3.1 bounds each machine to ``q`` oracle queries per round; the
proof of Lemma 3.3 reasons about the *position* of each query in the
global transcript (``t in [(k+1)mq]``).  :class:`CountingOracle` wraps
any oracle with exactly that bookkeeping: an ordered transcript of
:class:`QueryRecord` entries, plus an optional budget that raises
:class:`~repro.oracle.base.QueryBudgetExceeded` when a round exceeds
``q`` queries.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from repro.bits import Bits
from repro.obs import get_tracer
from repro.oracle.base import Oracle, QueryBudgetExceeded

__all__ = ["CountingOracle", "QueryRecord", "query_key"]


def query_key(x: Bits) -> str:
    """A short stable identifier for a query string.

    The ``oracle.query`` trace event carries this instead of the raw
    bits: it is deterministic across runs (so two traces of the same
    seeded experiment agree) and fixed-width no matter how long the
    query is, which is what the locality analysis
    (:func:`repro.obs.analysis.query_locality`) needs to tell repeat
    queries apart per machine.
    """
    length = len(x)
    payload = x.to_int().to_bytes((length + 7) // 8 or 1, "big")
    digest = hashlib.blake2b(payload, digest_size=8)
    digest.update(length.to_bytes(4, "big"))
    return digest.hexdigest()


@dataclass(frozen=True)
class QueryRecord:
    """One transcript entry: which query, when, by whom, and its answer."""

    position: int
    round: int
    machine: int
    query: Bits
    answer: Bits


class CountingOracle(Oracle):
    """An oracle wrapper that records and budgets queries.

    The wrapper carries a ``(round, machine)`` context set by the caller
    (the MPC simulator sets it before each machine's local computation);
    queries are stamped with the current context.  With ``per_round_limit``
    set, the ``q``-queries-per-round-per-machine constraint of Theorem 3.1
    is enforced mechanically.
    """

    def __init__(self, base: Oracle, *, per_round_limit: int | None = None) -> None:
        super().__init__(base.n_in, base.n_out)
        if per_round_limit is not None and per_round_limit <= 0:
            raise ValueError(f"per_round_limit must be positive, got {per_round_limit}")
        self._base = base
        self._limit = per_round_limit
        self._transcript: list[QueryRecord] = []
        self._seen: set[Bits] = set()
        self._round = 0
        self._machine = 0
        self._in_context = 0

    @property
    def base(self) -> Oracle:
        """The wrapped oracle."""
        return self._base

    @property
    def transcript(self) -> tuple[QueryRecord, ...]:
        """All queries so far, in order."""
        return tuple(self._transcript)

    @property
    def total_queries(self) -> int:
        """Number of queries recorded."""
        return len(self._transcript)

    @property
    def unique_queries(self) -> int:
        """Number of *distinct* queries; ``total - unique`` is how many
        a memoizing cache would have answered without touching the base
        oracle (the tracer's cache-behavior metric)."""
        return len(self._seen)

    def set_context(self, *, round: int, machine: int) -> None:
        """Stamp subsequent queries as (round, machine); resets the budget."""
        self._round = round
        self._machine = machine
        self._in_context = 0

    def queries_in_context(self) -> int:
        """Queries made since the last :meth:`set_context`."""
        return self._in_context

    def _evaluate(self, x: Bits) -> Bits:
        if self._limit is not None and self._in_context >= self._limit:
            raise QueryBudgetExceeded(
                f"machine {self._machine} exceeded q={self._limit} queries "
                f"in round {self._round}"
            )
        tracer = get_tracer()
        if tracer.enabled and tracer.has_span_hooks:
            with tracer.hook_scope("oracle.query"):
                answer = self._base.query(x)
        else:
            answer = self._base.query(x)
        position = len(self._transcript)
        repeat = x in self._seen
        self._seen.add(x)
        self._transcript.append(
            QueryRecord(
                position=position,
                round=self._round,
                machine=self._machine,
                query=x,
                answer=answer,
            )
        )
        self._in_context += 1
        if tracer.enabled:
            tracer.event(
                "oracle.query",
                position=position,
                round=self._round,
                machine=self._machine,
                repeat=repeat,
                key=query_key(x),
            )
        return answer

    def _evaluate_batch(self, xs: Sequence[Bits]) -> list[Bits]:
        """Batched metering, observably identical to the sequential loop.

        Answers come from the base oracle's vectorized ``query_batch``;
        transcript entries, ``oracle.query`` events, and the budget all
        advance per query in order.  When the batch would overrun the
        per-round budget, the allowed prefix is evaluated and recorded
        first and *then* :class:`QueryBudgetExceeded` is raised --
        exactly the state a query-at-a-time caller would observe.  Span
        hooks need one window per query, so a hooked tracer falls back
        to the sequential path.
        """
        tracer = get_tracer()
        if tracer.enabled and tracer.has_span_hooks:
            return [self._evaluate(x) for x in xs]
        over = False
        if self._limit is not None:
            allowed = self._limit - self._in_context
            if len(xs) > allowed:
                over = True
                xs = xs[:allowed]
        answers = self._base.query_batch(list(xs)) if xs else []
        transcript = self._transcript
        seen = self._seen
        traced = tracer.enabled
        for x, answer in zip(xs, answers):
            position = len(transcript)
            repeat = x in seen
            seen.add(x)
            transcript.append(
                QueryRecord(
                    position=position,
                    round=self._round,
                    machine=self._machine,
                    query=x,
                    answer=answer,
                )
            )
            self._in_context += 1
            if traced:
                tracer.event(
                    "oracle.query",
                    position=position,
                    round=self._round,
                    machine=self._machine,
                    repeat=repeat,
                    key=query_key(x),
                )
        if over:
            raise QueryBudgetExceeded(
                f"machine {self._machine} exceeded q={self._limit} queries "
                f"in round {self._round}"
            )
        return answers

    def queries_by_round(self) -> dict[int, int]:
        """Histogram of query counts per round."""
        hist: dict[int, int] = {}
        for rec in self._transcript:
            hist[rec.round] = hist.get(rec.round, 0) + 1
        return hist

    def queried_set(self) -> set[Bits]:
        """The set of distinct queries made (the proof's ``Q`` sets)."""
        return set(self._seen)
