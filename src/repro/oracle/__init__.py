"""Random-oracle substrate.

The paper's model gives every party oracle access to a uniformly random
function ``RO : {0,1}^n -> {0,1}^n`` (Definition 2.2).  This package
implements that substrate three ways, matching the three ways the paper
*uses* the oracle:

* :class:`~repro.oracle.lazy.LazyRandomOracle` -- the standard lazy-
  sampling view, realized with a seeded PRF so that independently running
  parties (RAM program, MPC machines) see one consistent function even on
  huge domains;
* :class:`~repro.oracle.table.TableOracle` -- an explicit uniformly
  sampled truth table over a small domain.  This *is* a sample from the
  paper's probability space, so Monte-Carlo estimates over it are exact;
  it also supports the oracle *enumeration* the Section 3 proof performs;
* :class:`~repro.oracle.patched.PatchedOracle` -- an oracle with a finite
  set of rewired entries, the object Definition 3.4 calls
  ``RO^(k)_{a_1..a_p}``.

:mod:`~repro.oracle.counting` adds transcripts and per-round query
budgets (the parameter ``q`` of Theorem 3.1).
"""

from repro.oracle.base import DomainError, Oracle, OracleError, QueryBudgetExceeded
from repro.oracle.counting import CountingOracle, QueryRecord
from repro.oracle.lazy import LazyRandomOracle
from repro.oracle.patched import PatchedOracle
from repro.oracle.table import TableOracle

__all__ = [
    "CountingOracle",
    "DomainError",
    "LazyRandomOracle",
    "Oracle",
    "OracleError",
    "PatchedOracle",
    "QueryBudgetExceeded",
    "QueryRecord",
    "TableOracle",
]
