"""Lazily sampled random oracle over large domains.

On domains like ``{0,1}^256`` a truth table is out of reach; the standard
equivalent view is lazy sampling: each fresh query gets an independent
uniform answer.  To keep the sampled function consistent across parties
that query in different orders (the RAM evaluator vs. the MPC machines vs.
the compression argument's replays), the "fresh uniform answer" is derived
deterministically from ``(seed, query)`` by a PRF built from one of the
from-scratch hashes.  DESIGN.md records this as the lazy-sampling
substitution: structurally this is an arbitrary fixed function that the
algorithms can only learn by querying, which is exactly the property the
paper's arguments consume.
"""

from __future__ import annotations

from typing import Literal, Sequence

from repro.bits import Bits
from repro.hashes.sha256 import sha256
from repro.hashes.toy_md import toy_hash, toy_hash_batch
from repro.oracle.base import Oracle

__all__ = ["LazyRandomOracle"]


class LazyRandomOracle(Oracle):
    """A PRF-driven lazily sampled oracle ``{0,1}^n_in -> {0,1}^n_out``.

    Parameters
    ----------
    n_in, n_out:
        Query and answer lengths in bits.
    seed:
        Selects the oracle from the family; two oracles with the same
        dimensions and seed are the same function.
    prf:
        ``"toy"`` (default) uses the fast toy Merkle-Damgard hash;
        ``"sha256"`` uses from-scratch SHA-256 -- slower, used when the
        experiment is explicitly about the hash instantiation.
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        *,
        seed: int = 0,
        prf: Literal["toy", "sha256"] = "toy",
    ) -> None:
        super().__init__(n_in, n_out)
        if prf not in ("toy", "sha256"):
            raise ValueError(f"unknown prf {prf!r}")
        self._seed = seed
        self._prf = prf
        self._seed_bytes = seed.to_bytes(16, "little", signed=True)
        self._cache: dict[int, int] = {}
        self._out_bytes = (n_out + 7) // 8

    @property
    def seed(self) -> int:
        """The family-selection seed."""
        return self._seed

    def _raw(self, material: bytes) -> bytes:
        if self._prf == "toy":
            return toy_hash(material, digest_size=self._out_bytes)
        # Counter-mode expansion of SHA-256 for n_out > 256.
        out = bytearray()
        counter = 0
        while len(out) < self._out_bytes:
            out += sha256(material + counter.to_bytes(4, "little"))
            counter += 1
        return bytes(out[: self._out_bytes])

    def _evaluate(self, x: Bits) -> Bits:
        key = x.value
        cached = self._cache.get(key)
        if cached is None:
            material = self._seed_bytes + key.to_bytes((self._n_in + 7) // 8 or 1, "little")
            digest = self._raw(material)
            cached = int.from_bytes(digest, "big") >> (8 * self._out_bytes - self._n_out)
            self._cache[key] = cached
        return Bits(cached, self._n_out)

    def _evaluate_batch(self, xs: Sequence[Bits]) -> list[Bits]:
        cache = self._cache
        misses: list[int] = []
        seen_miss: set[int] = set()
        for x in xs:
            key = x.value
            if key not in cache and key not in seen_miss:
                seen_miss.add(key)
                misses.append(key)
        if misses:
            in_bytes = (self._n_in + 7) // 8 or 1
            seed_bytes = self._seed_bytes
            shift = 8 * self._out_bytes - self._n_out
            materials = [
                seed_bytes + key.to_bytes(in_bytes, "little") for key in misses
            ]
            if self._prf == "toy":
                digests = toy_hash_batch(
                    materials, digest_size=self._out_bytes
                )
            else:
                digests = [self._raw(m) for m in materials]
            for key, digest in zip(misses, digests):
                cache[key] = int.from_bytes(digest, "big") >> shift
        n_out = self._n_out
        make = Bits._make  # cached values are < 2**n_out by construction
        return [make(cache[x.value], n_out) for x in xs]

    def cache_size(self) -> int:
        """Number of distinct queries answered so far (lazy table size)."""
        return len(self._cache)

    def clear_cache(self) -> None:
        """Drop the memo table (the function itself is unchanged).

        Every answer is recomputed from ``(seed, query)`` on demand, so
        clearing only trades time for memory -- useful before shipping
        an oracle somewhere, or after a large enumeration.
        """
        self._cache.clear()

    def __getstate__(self) -> dict:
        """Pickle without the memo table.

        The cache is pure recomputable state, and for a well-queried
        oracle it dwarfs the few identity fields -- dropping it is what
        makes handing oracles to :mod:`repro.parallel` workers cheap.
        The restored oracle computes the identical function (same
        ``(seed, prf)``), it just re-derives answers on first query.
        """
        state = self.__dict__.copy()
        state["_cache"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._cache = {}
