"""Compression-scheme failures.

The paper's encoders only need to work on the event ``not E^(k)`` (no
skip-ahead) and within declared capacities; outside that set they may
fail, and the probability bounds absorb the failure set.  The executable
encoders *detect* those situations and raise instead of producing a
wrong encoding.
"""

__all__ = ["CompressionInfeasible"]


class CompressionInfeasible(Exception):
    """The execution left the regime the encoding scheme covers."""
