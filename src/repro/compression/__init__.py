"""The compression argument, executable.

The paper's lower bound works by exhibiting an encoding scheme: if a
machine with ``s`` bits of memory could reveal many input pieces through
its round-``k`` queries, then ``(RO, X)`` would compress below the
information-theoretic limit (Claim 3.8).  This package implements the
scheme itself -- real bit strings, real round trips -- not just its
statement:

* :mod:`~repro.compression.round_algorithm` -- the ``(A1, A2)`` split of
  Claims 3.7 / A.4 (everything before round ``k``, then machine ``i``'s
  round-``k`` computation), with an adapter that extracts the split from
  any simulated MPC protocol;
* :mod:`~repro.compression.vsets` -- skip-ahead detection and the
  Lemma 3.3 probability arithmetic (the ``E^(k)`` event);
* :mod:`~repro.compression.bsets` -- Definition 3.4's patched oracles
  ``RO^(k)_{a_1..a_p}`` and Definition 3.5's revealed-piece sets
  ``B_i^(k)`` computed by exhaustive oracle enumeration;
* :mod:`~repro.compression.simline_encoder` -- Claim A.4's Enc/Dec for
  ``SimLine``, verified to round-trip and to respect its length bound;
* :mod:`~repro.compression.line_encoder` -- the Claim 3.7 scheme for
  ``Line`` (see the module docstring for the one documented deviation:
  patched entries are addressed by query *position*, which closes a gap
  the paper's prose glosses over while preserving the bound's shape);
* :mod:`~repro.compression.limits` -- the Claim 3.8 counting limit and
  the resulting probability bounds.
"""

from repro.compression.bsets import build_patch, compute_bset, patched_line_oracle
from repro.compression.limits import (
    message_space_log2_line,
    message_space_log2_simline,
    success_fraction_bound,
    success_fraction_bound_log2,
)
from repro.compression.line_encoder import LineCompressor, LineEncoding
from repro.compression.round_algorithm import (
    MPCRoundAlgorithm,
    Phase1Result,
    RoundAlgorithm,
)
from repro.compression.simline_encoder import SimLineCompressor, SimLineEncoding
from repro.compression.vsets import (
    enumerate_v_set,
    find_skip_ahead,
    skip_probability_bound_log2,
)
from repro.compression.windows import (
    ProgressReport,
    measure_progress,
    remaining_entries,
    window_entries,
)

__all__ = [
    "LineCompressor",
    "LineEncoding",
    "MPCRoundAlgorithm",
    "Phase1Result",
    "ProgressReport",
    "RoundAlgorithm",
    "measure_progress",
    "remaining_entries",
    "window_entries",
    "SimLineCompressor",
    "SimLineEncoding",
    "build_patch",
    "compute_bset",
    "enumerate_v_set",
    "find_skip_ahead",
    "message_space_log2_line",
    "message_space_log2_simline",
    "patched_line_oracle",
    "skip_probability_bound_log2",
    "success_fraction_bound",
    "success_fraction_bound_log2",
]
