"""Patched oracles (Definition 3.4) and revealed-piece sets (Definition 3.5).

``RO^(k)_{a_1..a_p}`` is the oracle obtained from ``RO`` by rewiring the
pointer fields of ``p`` consecutive chain answers so that the chain
visits the chosen pieces ``x_{a_1}, ..., x_{a_p}``; the running values
``r`` and payloads ``z`` keep their true oracle values.  Running machine
``i``'s round-``k`` computation against every such oracle and collecting
which pieces its queries reveal yields ``B_i^(k)`` -- the set the
compression argument proves must be small.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Sequence

from repro.bits import Bits
from repro.functions.line import LineNode, line_query
from repro.functions.params import LineParams
from repro.oracle.base import Oracle
from repro.oracle.patched import PatchedOracle

__all__ = ["build_patch", "patched_line_oracle", "compute_bset"]


def build_patch(
    params: LineParams,
    oracle: Oracle,
    x: Sequence[Bits],
    base_node: LineNode,
    a_seq: Sequence[int],
) -> tuple[list[Bits], dict[Bits, Bits]]:
    """Definition 3.4's construction, 0-based.

    ``base_node`` is the chain node at index ``j_k`` (the last correctly
    queried node); ``a_seq = (a_1, ..., a_p)`` the enumerated pointer
    values.  Returns ``(queries, overrides)`` where ``queries[t]`` is the
    patch-path query ``q_t = (j_k + t, x_{a_t}, r'_{j_k+t})`` (with
    ``q_0`` the true node-``j_k`` query) and ``overrides`` rewires the
    answers of ``q_0 .. q_{p-1}`` to deliver pointers ``a_1 .. a_p``.
    """
    p = len(a_seq)
    if base_node.i + p > params.w:
        raise ValueError(
            f"patch of depth {p} at node {base_node.i} runs past w={params.w}"
        )
    for a in a_seq:
        if not 0 <= a < params.v:
            raise ValueError(f"pointer {a} out of range for v={params.v}")
    queries = [base_node.query]
    overrides: dict[Bits, Bits] = {}
    prev_query = base_node.query
    for t, a_t in enumerate(a_seq, start=1):
        real = oracle.query(prev_query)
        fields = params.answer_codec.unpack_bits(real)
        overrides[prev_query] = params.answer_codec.pack(
            ell=a_t, r=fields["r"], z=fields["z"]
        )
        q_t = line_query(params, base_node.i + t, x[a_t], fields["r"])
        queries.append(q_t)
        prev_query = q_t
    return queries, overrides


def patched_line_oracle(
    params: LineParams,
    oracle: Oracle,
    x: Sequence[Bits],
    base_node: LineNode,
    a_seq: Sequence[int],
) -> PatchedOracle:
    """The oracle ``RO^(k)_{a_1..a_p}`` itself."""
    _, overrides = build_patch(params, oracle, x, base_node, a_seq)
    return PatchedOracle(oracle, overrides)


def compute_bset(
    params: LineParams,
    phase2: Callable[[Oracle, Bits], list[Bits]],
    oracle: Oracle,
    memory: Bits,
    x: Sequence[Bits],
    base_node: LineNode,
    p: int,
) -> set[int]:
    """Definition 3.5: enumerate all ``v^p`` patched oracles.

    ``a`` enters ``B_i^(k)`` when some pointer sequence with ``a_b = a``
    makes the machine query the patch-path entry ``q_b`` (which embeds
    ``x_a``).  The enumeration is exactly the proof's; keep ``v^p``
    small.
    """
    if p <= 0:
        raise ValueError(f"look-ahead depth must be positive, got {p}")
    revealed: set[int] = set()
    for a_seq in product(range(params.v), repeat=p):
        queries, overrides = build_patch(params, oracle, x, base_node, a_seq)
        patched = PatchedOracle(oracle, overrides)
        made = set(phase2(patched, memory))
        for b in range(1, p + 1):
            if queries[b] in made:
                revealed.add(a_seq[b - 1])
    return revealed
