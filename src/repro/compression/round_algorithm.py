"""The ``(A1, A2)`` split of the encoding schemes.

Claim 3.7 (and A.4) factor an MPC execution into:

* ``A1`` -- "all the computation done by ``A`` before the beginning of
  round ``k``"; its output is the ``s``-bit memory state handed to
  machine ``i`` at the start of round ``k``;
* ``A2`` -- "the computation done by machine ``i`` in round ``k``"; its
  output is the ordered list of oracle queries it makes.

Both must be deterministic functions of (oracle, input) and
(oracle, memory) respectively -- Remark 2.3's derandomization.  The
:class:`MPCRoundAlgorithm` adapter derives the split from any protocol
runnable under :class:`~repro.mpc.simulator.MPCSimulator`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.bits import Bits
from repro.mpc.machine import Machine, RoundContext, RoundOutput
from repro.mpc.model import MPCParams
from repro.engine import make_simulator
from repro.mpc.tape import SharedTape
from repro.oracle.base import Oracle
from repro.oracle.counting import CountingOracle

__all__ = ["Phase1Result", "RoundAlgorithm", "MPCRoundAlgorithm"]


@dataclass(frozen=True)
class Phase1Result:
    """Output of ``A1``: the captured memory plus every prior query."""

    memory: Bits
    prior_queries: tuple[Bits, ...]


class RoundAlgorithm(ABC):
    """The two-phase view of one machine-round of an MPC computation."""

    @abstractmethod
    def phase1(self, oracle: Oracle, x: Sequence[Bits]) -> Phase1Result:
        """Everything before round ``k``: returns machine ``i``'s memory."""

    @abstractmethod
    def phase2(self, oracle: Oracle, memory: Bits) -> list[Bits]:
        """Machine ``i``'s round ``k``: returns its ordered queries.

        Must be deterministic in ``(oracle, memory)`` and must obtain
        every answer by querying ``oracle`` (so that running it against
        a patched oracle changes its behaviour accordingly).
        """


class MPCRoundAlgorithm(RoundAlgorithm):
    """Extract the ``(A1, A2)`` split from a simulated protocol.

    Parameters
    ----------
    setup_builder:
        ``x -> (mpc_params, machines, initial_memories)``.  Must be
        deterministic and place only *data* in the memories; the machine
        objects themselves carry static protocol configuration only.
    machine_index, round_k:
        Which machine-round is being compressed.
    """

    def __init__(
        self,
        setup_builder: Callable[
            [Sequence[Bits]], tuple[MPCParams, Sequence[Machine], Sequence[Bits]]
        ],
        *,
        machine_index: int,
        round_k: int,
        dummy_input: Sequence[Bits],
    ) -> None:
        if machine_index < 0 or round_k < 0:
            raise ValueError(
                f"invalid machine/round ({machine_index}, {round_k})"
            )
        self._builder = setup_builder
        self._machine = machine_index
        self._round = round_k
        # Machine objects carry only static protocol configuration, so
        # any input materializes the same algorithms; the dummy lets
        # phase2 run standalone (the decoder has no X to build from).
        params, machines, _ = setup_builder(dummy_input)
        if not 0 <= machine_index < params.m:
            raise ValueError(
                f"machine {machine_index} out of range for m={params.m}"
            )
        self._static_machine: Machine = machines[machine_index]

    def phase1(self, oracle: Oracle, x: Sequence[Bits]) -> Phase1Result:
        params, machines, initial = self._builder(x)
        captured: dict[str, Bits] = {"memory": Bits(0, 0)}

        def observer(round_k: int, machine: int, incoming) -> None:
            if round_k == self._round and machine == self._machine:
                captured["memory"] = Bits.concat([p for _, p in incoming])

        # Stop right after the inbox of round_k is observable.
        run_params = replace(params, max_rounds=self._round + 1)
        sim = make_simulator(
            run_params,
            machines,
            oracle=oracle,
            inbox_observer=observer,
        )
        result = sim.run(list(initial))
        prior = tuple(
            rec.query
            for rec in (result.oracle.transcript if result.oracle else ())
            if rec.round < self._round
        )
        return Phase1Result(memory=captured["memory"], prior_queries=prior)

    def phase2(self, oracle: Oracle, memory: Bits) -> list[Bits]:
        counting = CountingOracle(oracle)
        ctx = RoundContext(
            round=self._round,
            machine_id=self._machine,
            num_machines=1,  # message routing is irrelevant here
            incoming=((-1, memory),) if len(memory) else (),
            oracle=counting,
            tape=SharedTape(),
        )
        result = self._static_machine.run_round(ctx)
        if not isinstance(result, RoundOutput):
            raise TypeError("machine did not return a RoundOutput")
        return [rec.query for rec in counting.transcript]
