"""Skip-ahead detection and the Lemma 3.3 probability arithmetic.

Lemma 3.3 bounds the probability of the event ``E^(k)``: some machine
queries a successor entry (an element of the look-ahead sets ``V^(j)``)
*before* having queried its predecessor.  The bound is

    ``Pr[E^(k)] <= w · v^{p} · (k+1) · m · q · 2^{-u}``

with ``p = log^2 w`` (here an explicit parameter).  This module provides

* :func:`find_skip_ahead` -- the detector: given a chain trace and an
  ordered query sequence, which nodes were queried out of order;
* :func:`skip_probability_bound_log2` -- the bound, computed in log2 so
  the astronomically small paper-scale values don't underflow.
"""

from __future__ import annotations

import math
from itertools import product
from typing import Sequence

from repro.bits import Bits
from repro.functions.line import LineTrace
from repro.functions.simline import SimLineTrace

__all__ = [
    "enumerate_v_set",
    "find_skip_ahead",
    "skip_probability_bound_log2",
    "v_set_log2_size",
]


def find_skip_ahead(
    trace: LineTrace | SimLineTrace, queries: Sequence[Bits]
) -> list[int]:
    """Nodes whose correct query appears before their predecessor's.

    Returns 0-based node indices ``i >= 1`` such that node ``i``'s query
    occurs in ``queries`` strictly before the first occurrence of node
    ``i-1``'s query (or without node ``i-1`` appearing at all).  An
    empty result is the executable face of "``E^(k)`` did not happen"
    restricted to the realized chain.
    """
    first_pos: dict[Bits, int] = {}
    for pos, q in enumerate(queries):
        if q not in first_pos:
            first_pos[q] = pos
    skips: list[int] = []
    for i in range(1, len(trace.nodes)):
        here = first_pos.get(trace.nodes[i].query)
        if here is None:
            continue
        prev = first_pos.get(trace.nodes[i - 1].query)
        if prev is None or prev > here:
            skips.append(i)
    return skips


def enumerate_v_set(
    trace: LineTrace, oracle, x: Sequence[Bits], j: int, p: int
) -> set[Bits]:
    """The look-ahead set ``V^(j)`` of Lemma 3.3, built literally.

    Starting from correct entry ``j`` (0-based), add the true successor
    entry, then for every pointer sequence ``a_1..a_p`` walk the patched
    chain of Definition 3.4 and add each entry
    ``(j+b+1, x_{a_b}, r'_b)``.  These are all the entries an algorithm
    could "skip to" within ``p`` steps of entry ``j``; Lemma 3.3 says
    hitting any of them without its predecessor costs ``2^-u`` per guess.

    Exponential in ``p`` (``|V^(j)| < v^p`` distinct pointer paths) --
    small parameters only.
    """
    from repro.compression.bsets import build_patch

    params = trace.params
    if not 0 <= j < params.w:
        raise ValueError(f"entry index {j} out of range for w={params.w}")
    if p <= 0 or j + p > params.w:
        raise ValueError(
            f"look-ahead p={p} at entry {j} runs past the chain (w={params.w})"
        )
    out: set[Bits] = set()
    if j + 1 < params.w:
        out.add(trace.nodes[j + 1].query)  # the true successor entry
    base = trace.nodes[j]
    for a_seq in product(range(params.v), repeat=p):
        queries, _ = build_patch(params, oracle, x, base, a_seq)
        out.update(queries[1:])  # q_1 .. q_p: the reachable entries
    return out


def v_set_log2_size(v: int, p: int) -> float:
    """``log2`` of the look-ahead set size bound ``v^p`` (``|V^(j)| < v^p``)."""
    if v <= 0 or p < 0:
        raise ValueError(f"invalid (v={v}, p={p})")
    return p * math.log2(v) if v > 1 else 0.0


def skip_probability_bound_log2(
    *, w: int, v: int, p: int, k: int, m: int, q: int, u: int
) -> float:
    """``log2`` of Lemma 3.3's bound ``w v^p (k+1) m q 2^{-u}``.

    A return value of ``-40`` means probability ``2^-40``; values ``>= 0``
    mean the bound is vacuous at these parameters (which is the expected
    outcome at Monte-Carlo scale -- the paper needs ``u`` large).
    """
    if min(w, v, m, q) <= 0 or p < 0 or k < 0 or u <= 0:
        raise ValueError("all parameters must be positive (k, p nonnegative)")
    return (
        math.log2(w)
        + v_set_log2_size(v, p)
        + math.log2(k + 1)
        + math.log2(m)
        + math.log2(q)
        - u
    )
