"""The information-theoretic limit and the probability bounds it yields.

The counting step is Claim 3.8 (implemented in
:mod:`repro.bits.entropy`); this module adds the glue the lemmas use:
if every ``(RO, X)`` in a set ``F`` encodes into at most ``L`` bits,
then ``|F| <= 2^{L+1}``, so the *fraction* of the full message space
that ``F`` can cover is at most ``2^{L + 1 - log2 |space|}`` -- the
``epsilon`` of Lemma 3.6 / Lemma A.3.
"""

from __future__ import annotations

import math

__all__ = [
    "message_space_log2_line",
    "message_space_log2_simline",
    "success_fraction_bound",
    "success_fraction_bound_log2",
]


def message_space_log2_line(n: int, u: int, v: int) -> int:
    """``log2`` of the number of ``(RO, X)`` pairs: ``n·2^n + u·v``."""
    if n <= 0 or u <= 0 or v <= 0:
        raise ValueError(f"parameters must be positive: n={n} u={u} v={v}")
    return n * (1 << n) + u * v


def message_space_log2_simline(n: int, u: int, v: int) -> int:
    """Identical count for ``SimLine`` (same oracle and input shapes)."""
    return message_space_log2_line(n, u, v)


def success_fraction_bound_log2(
    max_encoding_bits: int, space_log2: float
) -> float:
    """``log2`` of the largest fraction an ``L``-bit code can cover.

    Claim 3.8 rearranged: ``epsilon <= 2^{L + 1 - log2|space|}``.
    """
    if max_encoding_bits < 0:
        raise ValueError(f"negative encoding length {max_encoding_bits}")
    return max_encoding_bits + 1 - space_log2


def success_fraction_bound(max_encoding_bits: int, space_log2: float) -> float:
    """The fraction bound as a float, clamped to ``[0, 1]``."""
    log2_eps = success_fraction_bound_log2(max_encoding_bits, space_log2)
    if log2_eps >= 0:
        return 1.0
    if log2_eps < -1022:
        return 0.0
    return math.exp2(log2_eps)
