"""Claim A.4's encoding scheme for ``SimLine``, executable.

``Enc(RO, X)`` emits, in order:

1. the entire oracle table (``n·2^n`` bits -- step 1 of the claim);
2. machine ``i``'s round-``k`` memory ``M`` (step 2), stored with an
   explicit length prefix (the paper assumes ``|M| = s`` exactly; real
   protocol states can be shorter, and zero-padding would corrupt the
   machine's stream parser -- a documented ``log2(s+1)``-bit deviation);
3. the recovery records ``P`` (step 4): for each input piece that
   appears inside one of ``A2``'s queries, the query's position
   (``log q`` bits) and the piece index (``log v`` bits), preceded by an
   explicit count (``log(v+1)`` bits -- second documented deviation, the
   paper leaves ``|P|`` implicit);
4. the leftover pieces ``X'`` verbatim (step 5).

``Dec`` rebuilds the oracle, replays ``A2(M)`` against it -- determinism
makes the replayed query sequence identical -- and reads the recovered
pieces out of the replayed queries.  Every byte of the claim's
accounting ``|Enc| <= s + alpha(log q + log v) + (v - alpha)u + n·2^n``
is checked (plus the two framing fields) by :meth:`SimLineCompressor.length_bound`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.bits import BitReader, BitWriter, Bits, bits_needed
from repro.compression.errors import CompressionInfeasible
from repro.compression.round_algorithm import RoundAlgorithm
from repro.functions.params import SimLineParams
from repro.functions.simline import trace_simline
from repro.oracle.table import TableOracle

__all__ = ["SimLineCompressor", "SimLineEncoding"]


@dataclass(frozen=True)
class SimLineEncoding:
    """One encoder output plus its audit trail."""

    payload: Bits
    recovered_pieces: tuple[int, ...]
    breakdown: dict[str, int]

    @property
    def alpha(self) -> int:
        """Number of pieces recovered from queries (the claim's alpha)."""
        return len(self.recovered_pieces)


class SimLineCompressor:
    """The (Enc, Dec) pair of Claim A.4 for a fixed two-phase algorithm."""

    def __init__(
        self,
        params: SimLineParams,
        algorithm: RoundAlgorithm,
        *,
        s_bits: int,
        q: int,
        chain_window: tuple[int, int] | None = None,
    ) -> None:
        """``chain_window = (start, stop)`` restricts the recoverable set
        ``C`` to the chain entries of nodes ``start <= i < stop`` -- the
        paper's ``C subseteq C_j`` slices (Lemma A.3 is stated for an
        arbitrary subset of one window).  ``None`` uses every entry."""
        if s_bits <= 0 or q <= 0:
            raise ValueError(f"invalid capacities (s={s_bits}, q={q})")
        if chain_window is not None:
            start, stop = chain_window
            if not 0 <= start < stop <= params.w:
                raise ValueError(
                    f"chain window {chain_window} out of range for w={params.w}"
                )
        self._params = params
        self._algorithm = algorithm
        self._s_bits = s_bits
        self._q = q
        self._window = chain_window
        self._pos_bits = max(bits_needed(q), 1)
        self._idx_bits = max(bits_needed(params.v), 1)
        self._count_bits = max(bits_needed(params.v + 1), 1)
        self._mem_len_bits = max(bits_needed(s_bits + 1), 1)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def oracle_bits(self) -> int:
        """Size of the serialized oracle: ``n·2^n``."""
        return self._params.n * (1 << self._params.n)

    def length_bound(self, alpha: int) -> int:
        """Our scheme's exact worst-case length at ``alpha`` recoveries."""
        p = self._params
        return (
            self.oracle_bits()
            + self._mem_len_bits
            + self._s_bits
            + self._count_bits
            + alpha * (self._pos_bits + self._idx_bits)
            + (p.v - alpha) * p.u
        )

    def paper_length_bound(self, alpha: int) -> float:
        """Claim A.4's bound ``s + alpha(log q + log v) + (v-alpha)u + 2^n·n``.

        Evaluated with real logs; our exact bound exceeds it only by the
        two framing fields (memory length and record count).
        """
        import math

        p = self._params
        return (
            self._s_bits
            + alpha * (math.log2(max(self._q, 2)) + math.log2(max(p.v, 2)))
            + (p.v - alpha) * p.u
            + self.oracle_bits()
        )

    def savings_per_piece(self) -> int:
        """Bits saved per recovered piece: ``u - log q - log v``.

        Compression only beats storing the piece verbatim when this is
        positive -- the paper's standing assumption ``u >= log q + log v``.
        """
        return self._params.u - self._pos_bits - self._idx_bits

    # ------------------------------------------------------------------
    # Enc
    # ------------------------------------------------------------------
    def encode(self, oracle: TableOracle, x: Sequence[Bits]) -> SimLineEncoding:
        """Compress ``(RO, X)`` through the algorithm's round-``k`` queries."""
        params = self._params
        if oracle.n_in != params.n or oracle.n_out != params.n:
            raise ValueError("oracle dimensions do not match params")

        writer = BitWriter()
        oracle_blob = oracle.serialize()
        writer.write_bits(oracle_blob)

        phase1 = self._algorithm.phase1(oracle, x)
        memory = phase1.memory
        if len(memory) > self._s_bits:
            raise CompressionInfeasible(
                f"memory of {len(memory)} bits exceeds declared s={self._s_bits}"
            )
        writer.write(len(memory), self._mem_len_bits)
        writer.write_bits(memory)

        queries = self._algorithm.phase2(oracle, memory)
        if len(queries) > self._q:
            raise CompressionInfeasible(
                f"{len(queries)} queries exceed declared q={self._q}"
            )

        # Which pieces do the queries reveal?  A query reveals piece p
        # when it equals a correct chain entry (within the configured
        # window, if any) that uses x_p.
        trace = trace_simline(params, x, oracle)
        start, stop = self._window if self._window else (0, params.w)
        pieces_by_query: dict[Bits, list[int]] = {}
        for node in trace.nodes[start:stop]:
            pieces_by_query.setdefault(node.query, []).append(node.piece)

        first_pos: dict[Bits, int] = {}
        for pos, query in enumerate(queries):
            if query not in first_pos:
                first_pos[query] = pos

        records: list[tuple[int, int]] = []
        recovered: set[int] = set()
        for query, pos in sorted(first_pos.items(), key=lambda kv: kv[1]):
            for piece in pieces_by_query.get(query, ()):
                if piece not in recovered:
                    recovered.add(piece)
                    records.append((pos, piece))

        writer.write(len(records), self._count_bits)
        for pos, piece in records:
            writer.write(pos, self._pos_bits)
            writer.write(piece, self._idx_bits)

        leftover = [p for p in range(params.v) if p not in recovered]
        for p in leftover:
            writer.write_bits(x[p])

        payload = writer.getvalue()
        breakdown = {
            "oracle": len(oracle_blob),
            "memory": self._mem_len_bits + len(memory),
            "records": self._count_bits + len(records) * (self._pos_bits + self._idx_bits),
            "leftover": len(leftover) * params.u,
        }
        return SimLineEncoding(
            payload=payload,
            recovered_pieces=tuple(piece for _, piece in records),
            breakdown=breakdown,
        )

    # ------------------------------------------------------------------
    # Dec
    # ------------------------------------------------------------------
    def decode(self, payload: Bits) -> tuple[TableOracle, list[Bits]]:
        """Reconstruct ``(RO, X)`` exactly."""
        params = self._params
        reader = BitReader(payload)
        oracle = TableOracle.deserialize(
            reader.read_bits(self.oracle_bits()), params.n, params.n
        )
        mem_len = reader.read(self._mem_len_bits)
        memory = reader.read_bits(mem_len)

        queries = self._algorithm.phase2(oracle, memory)

        count = reader.read(self._count_bits)
        x: dict[int, Bits] = {}
        for _ in range(count):
            pos = reader.read(self._pos_bits)
            piece = reader.read(self._idx_bits)
            if pos >= len(queries):
                raise ValueError(f"record points at query {pos}, only {len(queries)} made")
            fields = params.query_codec.unpack_bits(queries[pos])
            x[piece] = fields["x"]
        for piece in range(params.v):
            if piece not in x:
                x[piece] = reader.read_bits(params.u)
        if not reader.at_end():
            raise ValueError("trailing bits after decoding")
        return oracle, [x[p] for p in range(params.v)]
