"""The ``C_j`` windows and the per-round progress cap (Lemma A.2/A.3).

Appendix A slices the ``SimLine`` chain into windows of ``h`` entries,

    ``C_j = {(x_{i mod v}, r_i) : jh+1 <= i <= min(jh+v, w)}``,

and proves each machine-round's queries hit fewer than ``h`` correct
entries w.h.p. (Lemma A.3), so a ``k``-round computation cannot reach
past ``C^(k)`` (Claim A.8).  The functions here extract those windows
from a real trace and measure a real execution's per-round progress, so
the inductive mechanism -- not just its conclusion -- is observable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits import Bits
from repro.functions.simline import SimLineTrace
from repro.oracle.counting import QueryRecord

__all__ = [
    "window_entries",
    "remaining_entries",
    "ProgressReport",
    "measure_progress",
]


def window_entries(trace: SimLineTrace, h: int, j: int) -> list[Bits]:
    """The window ``C_j``: up to ``min(v, ...)`` consecutive entries
    starting after position ``j·h`` (0-based), deduplicated by query."""
    if h <= 0 or j < 0:
        raise ValueError(f"invalid window parameters (h={h}, j={j})")
    v = trace.params.v
    start = j * h
    stop = min(start + v, trace.params.w)
    seen: set[Bits] = set()
    out: list[Bits] = []
    for node in trace.nodes[start:stop]:
        if node.query not in seen:
            seen.add(node.query)
            out.append(node.query)
    return out


def remaining_entries(trace: SimLineTrace, k: int, h: int) -> set[Bits]:
    """``C^(k)``: all correct entries past position ``k·h``."""
    if h <= 0 or k < 0:
        raise ValueError(f"invalid parameters (h={h}, k={k})")
    return {node.query for node in trace.nodes[k * h :]}


@dataclass(frozen=True)
class ProgressReport:
    """Per-round chain progress of one execution."""

    h_cap: float
    per_round_new_entries: tuple[int, ...]

    @property
    def max_progress(self) -> int:
        """The largest number of new correct entries any round learned."""
        return max(self.per_round_new_entries, default=0)

    @property
    def respects_cap(self) -> bool:
        """Whether every round stayed at or below the Lemma A.2 cap."""
        return self.max_progress <= self.h_cap


def measure_progress(
    trace: SimLineTrace,
    transcript: tuple[QueryRecord, ...],
    *,
    h_cap: float,
) -> ProgressReport:
    """Count, per round, the *new* correct chain entries queried.

    This is the measured counterpart of Claim A.8's induction variable:
    the frontier of correct entries learned can move at most ``h`` per
    round, hence ``>= w/h`` rounds overall.
    """
    correct = {node.query for node in trace.nodes}
    seen: set[Bits] = set()
    per_round: dict[int, int] = {}
    for rec in transcript:
        if rec.query in correct and rec.query not in seen:
            seen.add(rec.query)
            per_round[rec.round] = per_round.get(rec.round, 0) + 1
    rounds = range(max(per_round, default=-1) + 1)
    return ProgressReport(
        h_cap=h_cap,
        per_round_new_entries=tuple(per_round.get(r, 0) for r in rounds),
    )
