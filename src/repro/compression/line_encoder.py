"""Claim 3.7's encoding scheme for ``Line``, executable.

The scheme extends the ``SimLine`` encoder with the paper's key twist:
the encoder enumerates all ``v^p`` pointer sequences ``a_1..a_p``
(``p`` standing in for ``log^2 w``), reruns machine ``i``'s round
against each patched oracle ``RO^(k)_{a_1..a_p}`` (Definition 3.4), and
harvests every input piece the machine's queries reveal along any patch
path -- exactly the set ``B_i^(k)`` of Definition 3.5.

One deviation from the paper's prose, documented here because it is
load-bearing: the paper's decoder must *recognize* patch-path queries to
answer them consistently, but recognizing ``q_t = (j_k+t, x_{a_t}, r'_t)``
requires knowing ``x_{a_{t-1}}`` -- possibly one of the very pieces
being recovered.  We close the circularity by addressing patched
entries by their *position* in the machine's query sequence (recorded by
the encoder, who knows everything): the decoder replays ``A2(M)`` and,
at the recorded positions, swaps the pointer field of the true oracle
answer for the enumerated value.  By induction the replayed sequence
equals the encoder's run, so recovery is exact.  The cost is
``(p+1)·log(q+1)`` position slots per recorded block instead of the
paper's per-piece ``log q``; since each recorded block recovers at least
one new piece, the per-piece overhead stays ``O(p(log v + log q))`` and
Lemma 3.6's shape -- ``h = s / (u - O(p(log v + log q))) + 1`` --
survives with a different constant.  Repeated identical queries are
handled by answer caching (first occurrence fixes the patched answer).

The encoder refuses (raises :class:`CompressionInfeasible`) when the
execution leaves the regime the claim covers: skip-ahead (the ``E^(k)``
event), capacity overruns, or a replay-verification mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Sequence

from repro.bits import BitReader, BitWriter, Bits, bits_needed
from repro.compression.bsets import build_patch
from repro.compression.errors import CompressionInfeasible
from repro.compression.round_algorithm import RoundAlgorithm
from repro.functions.line import LineNode, trace_line
from repro.functions.params import LineParams
from repro.oracle.base import Oracle
from repro.oracle.patched import PatchedOracle
from repro.oracle.table import TableOracle

__all__ = ["LineCompressor", "LineEncoding", "PositionPatchedOracle"]


class PositionPatchedOracle(Oracle):
    """Patch answers by query *position* instead of query string.

    ``pointer_patches[pos] = a`` means: the answer to the ``pos``-th
    query (0-based) of this oracle's lifetime has its pointer field
    replaced by ``a``.  Once a position is patched, the query string seen
    there is cached so later repeats of the same string receive the same
    patched answer -- matching the function semantics of the true
    :class:`~repro.oracle.patched.PatchedOracle`.
    """

    def __init__(
        self,
        params: LineParams,
        base: Oracle,
        pointer_patches: dict[int, int],
    ) -> None:
        super().__init__(base.n_in, base.n_out)
        self._params = params
        self._base = base
        self._patches = dict(pointer_patches)
        self._counter = 0
        self._cache: dict[Bits, Bits] = {}

    def _evaluate(self, x: Bits) -> Bits:
        pos = self._counter
        self._counter += 1
        cached = self._cache.get(x)
        if cached is not None:
            return cached
        answer = self._base.query(x)
        pointer = self._patches.get(pos)
        if pointer is not None:
            fields = self._params.answer_codec.unpack_bits(answer)
            answer = self._params.answer_codec.pack(
                ell=pointer, r=fields["r"], z=fields["z"]
            )
            self._cache[x] = answer
        return answer


@dataclass(frozen=True)
class BlockRecord:
    """One recorded pointer sequence: header values and position slots."""

    a_vals: tuple[int, ...]  # a_0 .. a_p  (a_0 = the base node's pointer)
    slots: tuple[int | None, ...]  # first position of q_0 .. q_p, if made


@dataclass(frozen=True)
class LineEncoding:
    """One encoder output plus its audit trail."""

    payload: Bits
    recovered_pieces: tuple[int, ...]
    blocks: tuple[BlockRecord, ...]
    base_node_index: int
    breakdown: dict[str, int]

    @property
    def alpha(self) -> int:
        """Number of pieces recovered through patched replays."""
        return len(self.recovered_pieces)


class LineCompressor:
    """The (Enc, Dec) pair of Claim 3.7 for a fixed two-phase algorithm."""

    def __init__(
        self,
        params: LineParams,
        algorithm: RoundAlgorithm,
        *,
        s_bits: int,
        q: int,
        p: int,
    ) -> None:
        if s_bits <= 0 or q <= 0 or p <= 0:
            raise ValueError(f"invalid capacities (s={s_bits}, q={q}, p={p})")
        self._params = params
        self._algorithm = algorithm
        self._s_bits = s_bits
        self._q = q
        self._p = p
        self._idx_bits = max(bits_needed(params.v), 1)
        self._slot_bits = max(bits_needed(q + 1), 1)  # 0 = absent
        self._block_count_bits = max(bits_needed(params.v + 1), 1)
        self._mem_len_bits = max(bits_needed(s_bits + 1), 1)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def oracle_bits(self) -> int:
        """Size of the serialized oracle: ``n·2^n``."""
        return self._params.n * (1 << self._params.n)

    def block_bits(self) -> int:
        """Exact size of one recorded block."""
        return (self._p + 1) * (self._idx_bits + self._slot_bits)

    def length_bound(self, alpha: int, num_blocks: int) -> int:
        """Our scheme's exact worst-case length.

        ``alpha`` pieces recovered over ``num_blocks`` recorded blocks
        (``num_blocks <= alpha`` since every block recovers something).
        """
        p = self._params
        return (
            self.oracle_bits()
            + self._mem_len_bits
            + self._s_bits
            + self._block_count_bits
            + num_blocks * self.block_bits()
            + (p.v - alpha) * p.u
        )

    def savings_per_piece_worst_case(self) -> int:
        """Bits saved per piece in the worst (one piece per block) case:
        ``u - (p+1)(log v + log(q+1))`` -- positive iff compression wins."""
        return self._params.u - self.block_bits()

    # ------------------------------------------------------------------
    # Enc
    # ------------------------------------------------------------------
    def encode(self, oracle: TableOracle, x: Sequence[Bits]) -> LineEncoding:
        """Compress ``(RO, X)`` by enumerating patched replays."""
        params = self._params
        if oracle.n_in != params.n or oracle.n_out != params.n:
            raise ValueError("oracle dimensions do not match params")

        phase1 = self._algorithm.phase1(oracle, x)
        memory = phase1.memory
        if len(memory) > self._s_bits:
            raise CompressionInfeasible(
                f"memory of {len(memory)} bits exceeds declared s={self._s_bits}"
            )

        trace = trace_line(params, x, oracle)
        base_node = self._find_base_node(trace.nodes, phase1.prior_queries)
        if base_node.i + self._p > params.w:
            raise CompressionInfeasible(
                f"patch window [{base_node.i}, {base_node.i + self._p}) "
                f"exceeds the chain (w={params.w})"
            )

        recovered: dict[int, Bits] = {}
        blocks: list[BlockRecord] = []
        for a_seq in product(range(params.v), repeat=self._p):
            block = self._process_block(
                oracle, x, memory, base_node, a_seq, recovered
            )
            if block is not None:
                blocks.append(block)
                if len(blocks) > params.v:
                    raise CompressionInfeasible(
                        "more recorded blocks than pieces; accounting bug"
                    )

        writer = BitWriter()
        oracle_blob = oracle.serialize()
        writer.write_bits(oracle_blob)
        writer.write(len(memory), self._mem_len_bits)
        writer.write_bits(memory)
        writer.write(len(blocks), self._block_count_bits)
        for block in blocks:
            for a in block.a_vals:
                writer.write(a, self._idx_bits)
            for slot in block.slots:
                writer.write(0 if slot is None else slot + 1, self._slot_bits)
        leftover = [p for p in range(params.v) if p not in recovered]
        for piece in leftover:
            writer.write_bits(x[piece])

        payload = writer.getvalue()
        breakdown = {
            "oracle": len(oracle_blob),
            "memory": self._mem_len_bits + len(memory),
            "blocks": self._block_count_bits + len(blocks) * self.block_bits(),
            "leftover": len(leftover) * params.u,
        }
        return LineEncoding(
            payload=payload,
            recovered_pieces=tuple(sorted(recovered)),
            blocks=tuple(blocks),
            base_node_index=base_node.i,
            breakdown=breakdown,
        )

    def _find_base_node(
        self, nodes: Sequence[LineNode], prior_queries: Sequence[Bits]
    ) -> LineNode:
        """The paper's ``j_k``: the last correctly queried chain node.

        Falls back to node 0 when nothing has been queried yet (round 0
        state); also verifies the prior queries contain no skip-ahead,
        the executable face of conditioning on ``not E^(k)``.
        """
        prior = set(prior_queries)
        j_k = 0
        previous_seen = True
        for node in nodes:
            seen = node.query in prior
            if seen and not previous_seen:
                raise CompressionInfeasible(
                    f"skip-ahead: node {node.i} queried before node {node.i - 1} "
                    "(the E^(k) event)"
                )
            if seen:
                j_k = node.i
            previous_seen = seen
        return nodes[j_k]

    def _process_block(
        self,
        oracle: TableOracle,
        x: Sequence[Bits],
        memory: Bits,
        base_node: LineNode,
        a_seq: tuple[int, ...],
        recovered: dict[int, Bits],
    ) -> BlockRecord | None:
        """Run one patched replay; record it if it reveals new pieces."""
        params = self._params
        path_queries, overrides = build_patch(params, oracle, x, base_node, a_seq)
        patched = PatchedOracle(oracle, overrides)
        made = self._algorithm.phase2(patched, memory)
        if len(made) > self._q:
            raise CompressionInfeasible(
                f"{len(made)} queries exceed declared q={self._q}"
            )
        first_pos: dict[Bits, int] = {}
        for pos, query in enumerate(made):
            if query not in first_pos:
                first_pos[query] = pos

        a_vals = (base_node.ell, *a_seq)
        slots = tuple(first_pos.get(q) for q in path_queries)
        revealed = {
            a_vals[t]: params.query_codec.unpack_bits(path_queries[t])["x"]
            for t in range(self._p + 1)
            if slots[t] is not None
        }
        new_pieces = {a: val for a, val in revealed.items() if a not in recovered}
        if not new_pieces:
            return None

        # Defensive replay check: position-addressed patching must
        # reproduce the string-addressed patched run exactly.
        pointer_patches = {
            slots[t]: a_seq[t]
            for t in range(self._p)
            if slots[t] is not None
        }
        replay_oracle = PositionPatchedOracle(params, oracle, pointer_patches)
        replayed = self._algorithm.phase2(replay_oracle, memory)
        if replayed != made:
            raise CompressionInfeasible(
                "position-addressed replay diverged from the patched run"
            )

        recovered.update(new_pieces)
        return BlockRecord(a_vals=a_vals, slots=slots)

    # ------------------------------------------------------------------
    # Dec
    # ------------------------------------------------------------------
    def decode(self, payload: Bits) -> tuple[TableOracle, list[Bits]]:
        """Reconstruct ``(RO, X)`` exactly."""
        params = self._params
        reader = BitReader(payload)
        oracle = TableOracle.deserialize(
            reader.read_bits(self.oracle_bits()), params.n, params.n
        )
        mem_len = reader.read(self._mem_len_bits)
        memory = reader.read_bits(mem_len)

        num_blocks = reader.read(self._block_count_bits)
        x: dict[int, Bits] = {}
        for _ in range(num_blocks):
            a_vals = tuple(
                reader.read(self._idx_bits) for _ in range(self._p + 1)
            )
            raw_slots = tuple(
                reader.read(self._slot_bits) for _ in range(self._p + 1)
            )
            slots = tuple(None if s == 0 else s - 1 for s in raw_slots)
            pointer_patches = {
                slots[t]: a_vals[t + 1]
                for t in range(self._p)
                if slots[t] is not None
            }
            replay_oracle = PositionPatchedOracle(params, oracle, pointer_patches)
            made = self._algorithm.phase2(replay_oracle, memory)
            for t in range(self._p + 1):
                slot = slots[t]
                if slot is None:
                    continue
                if slot >= len(made):
                    raise ValueError(
                        f"slot points at query {slot}, only {len(made)} made"
                    )
                fields = params.query_codec.unpack_bits(made[slot])
                x.setdefault(a_vals[t], fields["x"])
        for piece in range(params.v):
            if piece not in x:
                x[piece] = reader.read_bits(params.u)
        if not reader.at_end():
            raise ValueError("trailing bits after decoding")
        return oracle, [x[p] for p in range(params.v)]
