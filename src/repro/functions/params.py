"""Parameterizations of ``Line`` and ``SimLine`` (Tables 2 and 3).

The paper fixes, for target RAM space ``S`` and time ``T``:

* ``u = n/3`` -- bits per input piece ``x_i`` (large enough that guessing
  an unseen piece succeeds with probability ``2^-u``);
* ``v = S/u`` -- number of pieces, so the input is ``uv = S`` bits;
* ``w = T`` -- chain length, one oracle call per node.

Queries and answers are both ``n``-bit strings:

* ``Line`` query ``(i, x_{l_i}, r_i, 0^*)`` and answer
  ``(l_{i+1}, r_{i+1}, z_{i+1})`` where ``l`` takes ``ceil(log v)`` bits,
  ``r`` takes ``u`` bits, and ``z`` is the redundant remainder;
* ``SimLine`` query ``(x_{i mod v}, r_i, 0^*)`` and answer
  ``(r_{i+1}, z_{i+1})``.

Conventions (documented deviations from the paper's 1-indexed prose):
indices are 0-based, so the first node uses ``l_1 = 0`` (the paper's
``l_1 = 1``) and ``SimLine`` node ``i`` (0-based) uses piece
``x_{i mod v}``.  ``v`` must be a power of two so that the ``l`` field of
a uniform answer is itself uniform over ``[v]`` -- at other ``v`` the
paper's "``l_i`` uniform" statement would need rejection sampling; the
constructor enforces the power of two and the docstring of
:meth:`LineParams.validate` records why.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.bits import Field, RecordCodec, bits_needed

__all__ = ["LineParams", "SimLineParams"]


def _check_common(n: int, u: int, v: int, w: int) -> None:
    if n <= 0 or u <= 0 or v <= 0 or w <= 0:
        raise ValueError(f"parameters must be positive: n={n} u={u} v={v} w={w}")
    if v & (v - 1):
        raise ValueError(
            f"v={v} must be a power of two so that the pointer field of a "
            "uniform oracle answer is uniform over [v]"
        )


@dataclass(frozen=True)
class LineParams:
    """Parameters of ``Line^RO_{n,w,u,v}`` (Table 3).

    Attributes
    ----------
    n: oracle input/output length in bits.
    u: bits per input piece ``x_i``.
    v: number of input pieces (power of two).
    w: number of chain nodes (oracle iterations), the paper's ``T``.
    """

    n: int
    u: int
    v: int
    w: int

    def __post_init__(self) -> None:
        _check_common(self.n, self.u, self.v, self.w)
        if self.index_width + self.u + self.u > self.n:
            raise ValueError(
                f"query fields need {self.index_width + 2 * self.u} bits "
                f"but n={self.n}; increase n or shrink u/w"
            )
        if self.ell_width + self.u > self.n:
            raise ValueError(
                f"answer fields need {self.ell_width + self.u} bits but n={self.n}"
            )

    # ------------------------------------------------------------------
    # Derived widths
    # ------------------------------------------------------------------
    @property
    def index_width(self) -> int:
        """Bits for the node counter ``i`` (ranges over ``[w]``)."""
        return bits_needed(self.w + 1)

    @property
    def ell_width(self) -> int:
        """Bits for the pointer ``l`` -- the paper's ``ceil(log v)``."""
        return bits_needed(self.v)

    @property
    def z_width(self) -> int:
        """Bits of redundant answer payload ``z``."""
        return self.n - self.ell_width - self.u

    @property
    def pad_width(self) -> int:
        """Bits of ``0^*`` padding in the query."""
        return self.n - self.index_width - 2 * self.u

    @property
    def input_bits(self) -> int:
        """Total input length ``uv`` (= the RAM space target ``S``)."""
        return self.u * self.v

    @property
    def space_S(self) -> int:
        """The RAM space parameter ``S = uv``."""
        return self.u * self.v

    @property
    def time_T(self) -> int:
        """The RAM time parameter ``T = w``."""
        return self.w

    # ------------------------------------------------------------------
    # Layouts
    # ------------------------------------------------------------------
    @cached_property
    def query_codec(self) -> RecordCodec:
        """The ``(i, x, r, 0^*)`` query layout."""
        return RecordCodec(
            [
                Field("index", self.index_width),
                Field("x", self.u),
                Field("r", self.u),
                Field("pad", self.pad_width),
            ]
        )

    @cached_property
    def answer_codec(self) -> RecordCodec:
        """The ``(l, r, z)`` answer layout."""
        return RecordCodec(
            [
                Field("ell", self.ell_width),
                Field("r", self.u),
                Field("z", self.z_width),
            ]
        )

    def ell_of_answer(self, answer_value_ell: int) -> int:
        """Map a raw ``l`` field to a piece index in ``[0, v)``.

        With ``v`` a power of two the field is already in range; the
        masking keeps the map total for robustness.
        """
        return answer_value_ell & (self.v - 1)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_paper(cls, *, n: int, S: int, T: int) -> "LineParams":
        """Table 3's derivation: ``u = n/3``, ``v = S/u``, ``w = T``.

        ``S`` must be divisible into a power-of-two number of pieces; the
        constructor rounds ``v`` *down* to a power of two and keeps
        ``u = n // 3`` fixed, so the realized space is within a factor 2
        of the requested ``S`` (the theorem only needs ``O(S)``).
        """
        u = n // 3
        if u == 0:
            raise ValueError(f"n={n} too small for u = n/3")
        v_raw = S // u
        if v_raw < 1:
            raise ValueError(f"S={S} smaller than one piece of u={u} bits")
        v = 1 << (v_raw.bit_length() - 1)
        return cls(n=n, u=u, v=v, w=T)

    def describe(self) -> str:
        """One-line summary used by the experiment tables."""
        return (
            f"Line(n={self.n}, u={self.u}, v={self.v}, w={self.w}, "
            f"S={self.space_S}, T={self.time_T})"
        )


@dataclass(frozen=True)
class SimLineParams:
    """Parameters of ``SimLine^RO_{n,w,u,v}`` (Appendix A)."""

    n: int
    u: int
    v: int
    w: int

    def __post_init__(self) -> None:
        _check_common(self.n, self.u, self.v, self.w)
        if 2 * self.u > self.n:
            raise ValueError(
                f"query fields need {2 * self.u} bits but n={self.n}"
            )

    @property
    def z_width(self) -> int:
        """Bits of redundant answer payload ``z``."""
        return self.n - self.u

    @property
    def pad_width(self) -> int:
        """Bits of ``0^*`` padding in the query."""
        return self.n - 2 * self.u

    @property
    def input_bits(self) -> int:
        """Total input length ``uv``."""
        return self.u * self.v

    @property
    def space_S(self) -> int:
        """The RAM space parameter ``S = uv``."""
        return self.u * self.v

    @property
    def time_T(self) -> int:
        """The RAM time parameter ``T = w``."""
        return self.w

    @cached_property
    def query_codec(self) -> RecordCodec:
        """The ``(x, r, 0^*)`` query layout."""
        return RecordCodec(
            [
                Field("x", self.u),
                Field("r", self.u),
                Field("pad", self.pad_width),
            ]
        )

    @cached_property
    def answer_codec(self) -> RecordCodec:
        """The ``(r, z)`` answer layout."""
        return RecordCodec([Field("r", self.u), Field("z", self.z_width)])

    def piece_index(self, i: int) -> int:
        """The piece used by 0-based node ``i``: ``i mod v``."""
        return i % self.v

    @classmethod
    def from_paper(cls, *, n: int, S: int, T: int) -> "SimLineParams":
        """Appendix A's derivation: ``u = n/3``, ``v = S/u``, ``w = T``."""
        u = n // 3
        if u == 0:
            raise ValueError(f"n={n} too small for u = n/3")
        v_raw = S // u
        if v_raw < 1:
            raise ValueError(f"S={S} smaller than one piece of u={u} bits")
        v = 1 << (v_raw.bit_length() - 1)
        return cls(n=n, u=u, v=v, w=T)

    def describe(self) -> str:
        """One-line summary used by the experiment tables."""
        return (
            f"SimLine(n={self.n}, u={self.u}, v={self.v}, w={self.w}, "
            f"S={self.space_S}, T={self.time_T})"
        )
