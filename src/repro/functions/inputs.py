"""Input sampling and placement.

Average-case correctness (Definition 2.5) draws the input ``X`` uniformly
from ``{0,1}^{uv}``; Definition 2.1 lets the input be "arbitrarily split
and distributed among all the machines".  This module provides the
uniform sampler and the placement strategies the placement-ablation
experiment compares (contiguous blocks, round robin, uniformly random,
and an adversarially helpful placement that co-locates the first pieces
the chain will touch).
"""

from __future__ import annotations

from typing import Literal, Protocol, Sequence

import numpy as np

from repro.bits import Bits

__all__ = ["sample_input", "partition_input", "Placement"]

Placement = Literal["contiguous", "round_robin", "random"]


class _HasUV(Protocol):
    u: int
    v: int


def sample_input(params: _HasUV, rng: np.random.Generator) -> list[Bits]:
    """Draw ``X = x_0 .. x_{v-1}`` uniformly, each piece ``u`` bits."""
    pieces: list[Bits] = []
    for _ in range(params.v):
        if params.u <= 62:
            value = int(rng.integers(0, 1 << params.u, dtype=np.uint64))
        else:
            value = 0
            remaining = params.u
            while remaining > 0:
                take = min(32, remaining)
                value = (value << take) | int(
                    rng.integers(0, 1 << take, dtype=np.uint64)
                )
                remaining -= take
        pieces.append(Bits(value, params.u))
    return pieces


def partition_input(
    num_pieces: int,
    num_machines: int,
    *,
    strategy: Placement = "contiguous",
    rng: np.random.Generator | None = None,
) -> list[list[int]]:
    """Assign piece indices to machines.

    Returns ``assignment[machine] = [piece indices]``.  Every piece is
    assigned to exactly one machine (the model also allows replication as
    long as memory permits; the protocols handle replication themselves
    when they choose to).
    """
    if num_machines <= 0:
        raise ValueError(f"need at least one machine, got {num_machines}")
    if num_pieces < 0:
        raise ValueError(f"negative piece count: {num_pieces}")
    assignment: list[list[int]] = [[] for _ in range(num_machines)]
    if strategy == "contiguous":
        # Balanced contiguous blocks: machine k gets pieces
        # [k*ceil .. ) with the remainder spread over the first machines.
        base = num_pieces // num_machines
        extra = num_pieces % num_machines
        idx = 0
        for machine in range(num_machines):
            count = base + (1 if machine < extra else 0)
            assignment[machine] = list(range(idx, idx + count))
            idx += count
    elif strategy == "round_robin":
        for piece in range(num_pieces):
            assignment[piece % num_machines].append(piece)
    elif strategy == "random":
        if rng is None:
            raise ValueError("random placement needs an rng")
        owners = rng.integers(0, num_machines, size=num_pieces)
        for piece, owner in enumerate(owners):
            assignment[int(owner)].append(piece)
    else:
        raise ValueError(f"unknown placement strategy {strategy!r}")
    return assignment


def owner_of(assignment: Sequence[Sequence[int]], piece: int) -> int:
    """The machine holding ``piece`` under ``assignment``."""
    for machine, pieces in enumerate(assignment):
        if piece in pieces:
            return machine
    raise KeyError(f"piece {piece} not assigned to any machine")
