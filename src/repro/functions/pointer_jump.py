"""Pointer jumping -- the Section 1.2 PRAM-vs-MPC contrast.

Miltersen [54] proved a strong PRAM lower bound in the random oracle
model via a pointer-jumping problem; the paper notes that the *same*
problem is easy in MPC because a single machine may make arbitrarily many
adaptive oracle queries within one round.  This module defines the
problem; :mod:`repro.protocols.pointer_jump` solves it in one MPC round
and :mod:`repro.baselines.pram` shows the PRAM needs ``k`` steps.

Instance: a function ``succ : [N] -> [N]`` (given explicitly or derived
from an oracle), a start node, and a jump count ``k``; the answer is the
node reached after ``k`` successor applications.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bits import Bits
from repro.oracle.base import Oracle

__all__ = ["PointerJumpInstance"]


@dataclass(frozen=True)
class PointerJumpInstance:
    """A pointer-jumping instance over ``[N]``."""

    successors: tuple[int, ...]
    start: int
    jumps: int

    def __post_init__(self) -> None:
        n = len(self.successors)
        if n == 0:
            raise ValueError("empty successor table")
        if any(not 0 <= s < n for s in self.successors):
            raise ValueError("successor out of range")
        if not 0 <= self.start < n:
            raise ValueError(f"start {self.start} out of range")
        if self.jumps < 0:
            raise ValueError(f"negative jump count {self.jumps}")

    @property
    def size(self) -> int:
        """Number of nodes ``N``."""
        return len(self.successors)

    @classmethod
    def random(
        cls, size: int, jumps: int, rng: np.random.Generator
    ) -> "PointerJumpInstance":
        """A uniformly random instance starting at node 0."""
        succ = tuple(int(s) for s in rng.integers(0, size, size=size))
        return cls(successors=succ, start=0, jumps=jumps)

    @classmethod
    def from_oracle(
        cls, oracle: Oracle, size: int, start: int, jumps: int
    ) -> "PointerJumpInstance":
        """Derive the successor table from an oracle (Miltersen's setting).

        Node ``i``'s successor is ``RO(i) mod size`` -- with ``size`` a
        power of two and a uniform oracle, the table is uniform.
        """
        n_in = oracle.n_in
        answers = oracle.query_batch([Bits(i, n_in) for i in range(size)])
        succ = tuple(a.value % size for a in answers)
        return cls(successors=succ, start=start, jumps=jumps)

    def evaluate(self) -> int:
        """The node reached after ``jumps`` successor applications."""
        node = self.start
        for _ in range(self.jumps):
            node = self.successors[node]
        return node

    def path(self) -> tuple[int, ...]:
        """Every node visited, including the start (length ``jumps+1``)."""
        node = self.start
        out = [node]
        for _ in range(self.jumps):
            node = self.successors[node]
            out.append(node)
        return tuple(out)
