"""The paper's oracle functions.

* :mod:`~repro.functions.params` -- the parameterizations of Tables 2
  and 3 (``n, u, v, w`` with ``u = n/3``, ``v = S/u``, ``w = T``) and the
  bit-exact query/answer layouts;
* :mod:`~repro.functions.line` -- ``Line^RO`` (Section 3), the hard
  function of Theorem 3.1, whose chain pointer ``l_i`` is chosen by the
  oracle itself;
* :mod:`~repro.functions.simline` -- ``SimLine^RO`` (Appendix A), the
  warm-up function whose pointer is the deterministic round robin
  ``i mod v``;
* :mod:`~repro.functions.pointer_jump` -- the pointer-jumping problem
  from the Section 1.2 discussion of Miltersen's PRAM lower bound;
* :mod:`~repro.functions.inputs` -- input sampling and the "arbitrarily
  split and distributed" placement of Definition 2.1.
"""

from repro.functions.inputs import partition_input, sample_input
from repro.functions.line import LineNode, LineTrace, evaluate_line, trace_line
from repro.functions.params import LineParams, SimLineParams
from repro.functions.pointer_jump import PointerJumpInstance
from repro.functions.simline import (
    SimLineNode,
    SimLineTrace,
    evaluate_simline,
    trace_simline,
)

__all__ = [
    "LineNode",
    "LineParams",
    "LineTrace",
    "PointerJumpInstance",
    "SimLineNode",
    "SimLineParams",
    "SimLineTrace",
    "evaluate_line",
    "evaluate_simline",
    "partition_input",
    "sample_input",
    "trace_line",
    "trace_simline",
]
