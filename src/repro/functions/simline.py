"""``SimLine^RO`` -- the Appendix A warm-up function.

Same chain as ``Line`` but the piece used at node ``i`` is the
*deterministic* round robin ``x_{i mod v}``:

    ``(r_{i+1}, z_{i+1}) := RO(x_{i mod v}, r_i, 0^*)``

Because the access pattern is predictable, a machine holding ``s/u``
*consecutive* pieces can advance ``s/u`` nodes per round -- which is why
the warm-up only yields the ``Omega(T·u/s)`` bound of Theorem A.1 rather
than ``Line``'s ``~T``.  The ablation experiment pairs the two evaluators
to show that pointer randomness is precisely what closes the gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.bits import Bits
from repro.functions.params import SimLineParams
from repro.oracle.base import Oracle

__all__ = [
    "SimLineNode",
    "SimLineTrace",
    "evaluate_simline",
    "trace_simline",
    "simline_query",
]


@dataclass(frozen=True)
class SimLineNode:
    """One chain node: the state *entering* oracle call ``i``."""

    i: int
    piece: int
    r: Bits
    query: Bits
    answer: Bits


@dataclass(frozen=True)
class SimLineTrace:
    """The full evaluation: all ``w`` nodes plus the final output."""

    params: SimLineParams
    nodes: tuple[SimLineNode, ...]
    output: Bits

    @property
    def correct_queries(self) -> tuple[Bits, ...]:
        """The ``(x_{i mod v}, r_i)`` entries in chain order (the ``C`` sets)."""
        return tuple(node.query for node in self.nodes)


def simline_query(params: SimLineParams, x_piece: Bits, r: Bits) -> Bits:
    """Pack the query ``(x_{i mod v}, r_i, 0^*)``."""
    if len(x_piece) != params.u:
        raise ValueError(f"x piece has {len(x_piece)} bits, expected u={params.u}")
    if len(r) != params.u:
        raise ValueError(f"r has {len(r)} bits, expected u={params.u}")
    return params.query_codec.pack(x=x_piece, r=r)


def _check_input(params: SimLineParams, x: Sequence[Bits]) -> None:
    if len(x) != params.v:
        raise ValueError(f"input has {len(x)} pieces, expected v={params.v}")
    for idx, piece in enumerate(x):
        if len(piece) != params.u:
            raise ValueError(
                f"piece {idx} has {len(piece)} bits, expected u={params.u}"
            )


def trace_simline(
    params: SimLineParams, x: Sequence[Bits], oracle: Oracle
) -> SimLineTrace:
    """Evaluate ``SimLine^RO`` keeping every intermediate node."""
    _check_input(params, x)
    if oracle.n_in != params.n or oracle.n_out != params.n:
        raise ValueError(
            f"oracle is {oracle.n_in}->{oracle.n_out} bits, params need "
            f"{params.n}->{params.n}"
        )
    r = Bits.zeros(params.u)
    nodes: list[SimLineNode] = []
    answer = Bits.zeros(params.n)
    for i in range(params.w):
        piece = params.piece_index(i)
        query = simline_query(params, x[piece], r)
        answer = oracle.query(query)
        nodes.append(SimLineNode(i=i, piece=piece, r=r, query=query, answer=answer))
        r = params.answer_codec.unpack_bits(answer)["r"]
    return SimLineTrace(params=params, nodes=tuple(nodes), output=answer)


def evaluate_simline(
    params: SimLineParams, x: Sequence[Bits], oracle: Oracle
) -> Bits:
    """Evaluate ``SimLine^RO(x)``: the answer to the last query."""
    _check_input(params, x)
    r = Bits.zeros(params.u)
    answer = Bits.zeros(params.n)
    codec = params.answer_codec
    for i in range(params.w):
        answer = oracle.query(simline_query(params, x[params.piece_index(i)], r))
        r = codec.unpack_bits(answer)["r"]
    return answer
