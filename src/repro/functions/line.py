"""``Line^RO`` -- the hard function of Theorem 3.1.

The function is a chain of ``w`` oracle calls.  Node ``i`` (0-based)
holds a pointer ``l_i`` into the input and a running value ``r_i``;
the oracle answer at node ``i`` yields the next node:

    ``(l_{i+1}, r_{i+1}, z_{i+1}) := RO(i, x_{l_i}, r_i, 0^*)``

starting from ``l_0 = 0`` and ``r_0 = 0^u``.  The output is the full
``n``-bit answer to the last query.  Because the *oracle itself* picks
which input piece the next node needs, no machine that stores only a
fraction of the pieces can advance far in one round -- that is the whole
hardness story, and the property experiments E-LINE and E-DECAY measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.bits import Bits
from repro.functions.params import LineParams
from repro.oracle.base import Oracle

__all__ = ["LineNode", "LineTrace", "evaluate_line", "trace_line", "line_query"]


@dataclass(frozen=True)
class LineNode:
    """One chain node: the state *entering* oracle call ``i``.

    ``query``/``answer`` are the actual oracle strings, kept so the proof
    machinery (V-sets, encoders) can match transcript entries exactly.
    """

    i: int
    ell: int
    r: Bits
    query: Bits
    answer: Bits


@dataclass(frozen=True)
class LineTrace:
    """The full evaluation: all ``w`` nodes plus the final output."""

    params: LineParams
    nodes: tuple[LineNode, ...]
    output: Bits

    @property
    def correct_queries(self) -> tuple[Bits, ...]:
        """The ``(i, x_{l_i}, r_i)`` entries, in chain order.

        These are the elements of the proof's ``C`` sets: the queries an
        algorithm *must* make, in order, to learn the chain.
        """
        return tuple(node.query for node in self.nodes)

    def pieces_used(self) -> tuple[int, ...]:
        """The pointer sequence ``l_0, l_1, ..., l_{w-1}``."""
        return tuple(node.ell for node in self.nodes)


def line_query(params: LineParams, i: int, x_piece: Bits, r: Bits) -> Bits:
    """Pack the query ``(i, x_{l_i}, r_i, 0^*)`` for node ``i``."""
    if len(x_piece) != params.u:
        raise ValueError(f"x piece has {len(x_piece)} bits, expected u={params.u}")
    if len(r) != params.u:
        raise ValueError(f"r has {len(r)} bits, expected u={params.u}")
    return params.query_codec.pack(index=i, x=x_piece, r=r)


def _check_input(params: LineParams, x: Sequence[Bits]) -> None:
    if len(x) != params.v:
        raise ValueError(f"input has {len(x)} pieces, expected v={params.v}")
    for idx, piece in enumerate(x):
        if len(piece) != params.u:
            raise ValueError(
                f"piece {idx} has {len(piece)} bits, expected u={params.u}"
            )


def trace_line(params: LineParams, x: Sequence[Bits], oracle: Oracle) -> LineTrace:
    """Evaluate ``Line^RO`` and keep every intermediate node.

    This is the reference evaluator: ``O(w)`` oracle calls and ``O(uv)``
    space, exactly the RAM upper bound of Theorem 3.1 (the word-RAM
    program in :mod:`repro.ram.programs` re-derives the same trace with
    instruction-level accounting).
    """
    _check_input(params, x)
    if oracle.n_in != params.n or oracle.n_out != params.n:
        raise ValueError(
            f"oracle is {oracle.n_in}->{oracle.n_out} bits, params need "
            f"{params.n}->{params.n}"
        )
    ell = 0  # paper's l_1 = 1, 0-based here
    r = Bits.zeros(params.u)
    nodes: list[LineNode] = []
    answer = Bits.zeros(params.n)
    for i in range(params.w):
        query = line_query(params, i, x[ell], r)
        answer = oracle.query(query)
        fields = params.answer_codec.unpack_bits(answer)
        nodes.append(LineNode(i=i, ell=ell, r=r, query=query, answer=answer))
        ell = params.ell_of_answer(fields["ell"].value)
        r = fields["r"]
    return LineTrace(params=params, nodes=tuple(nodes), output=answer)


def evaluate_line(params: LineParams, x: Sequence[Bits], oracle: Oracle) -> Bits:
    """Evaluate ``Line^RO(x)``: the answer to the last correct query."""
    _check_input(params, x)
    ell = 0
    r = Bits.zeros(params.u)
    answer = Bits.zeros(params.n)
    codec = params.answer_codec
    for i in range(params.w):
        answer = oracle.query(line_query(params, i, x[ell], r))
        fields = codec.unpack_bits(answer)
        ell = params.ell_of_answer(fields["ell"].value)
        r = fields["r"]
    return answer
