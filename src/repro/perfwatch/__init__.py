"""Performance observatory: measured, remembered, gated wall-clock.

The correctness loop is closed -- counters are fingerprinted
(:mod:`repro.obs.baseline`), predicted (:mod:`repro.costmodel`), and
forensically explained (:mod:`repro.obs.forensics`).  This package
closes the same loop around **speed**:

* :mod:`repro.perfwatch.suite` -- the curated benchmark suite behind
  ``repro bench run``: warmup + best-of-k timing per experiment, an
  environment fingerprint (git SHA, python, CPU, backend, jobs) on
  every row, standardized ``BENCH_*.json`` payloads, and rows in the
  registry's ``bench_results`` table (schema v3);
* :mod:`repro.perfwatch.changepoint` -- statistical regression
  detection over bench history (``repro bench trend``): a rolling-
  median baseline with a MAD-based robust z-score *and* the shared
  relative-threshold + absolute-noise-floor gate, plus the committed
  ``benchmarks/bench_history.json`` ledger;
* :mod:`repro.perfwatch.diffprof` -- differential span profiling
  (``repro profile --compare A.jsonl B.jsonl``): aligns two traces'
  hotspot tables and attributes the wall-clock delta to named spans;
* :mod:`repro.perfwatch.budgets` -- declarative per-experiment
  wall-time / RSS budgets (``benchmarks/budgets.json``), checked as
  **advisory** monitor-style violations.

Wall-clock and budget data never enter any deterministic fingerprint:
perfwatch observes the runs the same way telemetry does -- from
outside the determinism contract.
"""

from repro.perfwatch.budgets import (
    Budget,
    BudgetViolation,
    check_budgets,
    default_budgets_path,
    load_budgets,
    render_budget_violations,
)
from repro.perfwatch.changepoint import (
    DEFAULT_HISTORY,
    BenchPoint,
    BenchTrendReport,
    BenchTrendSeries,
    append_bench_history,
    bench_trend,
    detect_changepoint,
    load_bench_history,
    merge_points,
    points_from_history,
    points_from_registry,
)
from repro.perfwatch.diffprof import (
    DiffProfile,
    SpanDelta,
    diff_profilers,
    diff_trace_files,
)
from repro.perfwatch.suite import (
    SUITES,
    BenchOutcome,
    environment_fingerprint,
    run_bench,
    run_suite,
    suite_experiments,
)

__all__ = [
    "DEFAULT_HISTORY",
    "SUITES",
    "BenchOutcome",
    "BenchPoint",
    "BenchTrendReport",
    "BenchTrendSeries",
    "Budget",
    "BudgetViolation",
    "DiffProfile",
    "SpanDelta",
    "append_bench_history",
    "bench_trend",
    "check_budgets",
    "default_budgets_path",
    "detect_changepoint",
    "diff_profilers",
    "diff_trace_files",
    "environment_fingerprint",
    "load_bench_history",
    "load_budgets",
    "merge_points",
    "points_from_history",
    "points_from_registry",
    "render_budget_violations",
    "run_bench",
    "run_suite",
    "suite_experiments",
]
