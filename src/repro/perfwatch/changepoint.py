"""Statistical wall-clock regression detection: ``repro bench trend``.

``repro runs trend`` already gates *counters* with a rolling-mean
window; wall-clock needs a sturdier version of the same idea, because
timing history is contaminated in ways counters never are -- one
swapped-out run, one thermal throttle, one noisy neighbor.  The
detector here keeps the shared relative-threshold + absolute-floor
semantics (:func:`repro.obs.trendstats.rolling_gate`) but hardens both
halves:

* the baseline is the rolling **median** of the previous ``window``
  points, so a single historical outlier cannot poison it;
* on top of the relative gate, the latest point must also be a
  **robust z-score** outlier -- ``(x - median) / (1.4826 * MAD)``
  beyond ``z_threshold`` -- so a wide-but-noisy history does not fire
  on ordinary jitter.  A zero MAD (constant history) disables the
  z-term and the relative + absolute gate decides alone.

A confirmed regression is classified as a ``"spike"`` (only the latest
point is elevated -- often an environment hiccup worth re-running) or
a ``"drift"`` (the trailing points are elevated too -- a real,
sustained slowdown).

History comes from two sources, merged chronologically: the committed
``benchmarks/bench_history.json`` ledger (rows appended by
``repro bench run --history``) and the run registry's ``bench_results``
table.  Series are keyed by ``(experiment_id, backend)`` -- mixing
backends in one series would "detect" the python/fast speed gap.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.obs.trendstats import ascii_sparkline, robust_z, rolling_gate

__all__ = [
    "DEFAULT_HISTORY",
    "BenchPoint",
    "BenchTrendReport",
    "BenchTrendSeries",
    "append_bench_history",
    "bench_trend",
    "detect_changepoint",
    "load_bench_history",
    "merge_points",
    "points_from_history",
    "points_from_registry",
]

#: The committed ledger ``repro bench run --history`` appends to.
DEFAULT_HISTORY = os.path.join("benchmarks", "bench_history.json")

_HISTORY_VERSION = 1


@dataclass(frozen=True)
class BenchPoint:
    """One wall-clock observation in a bench history series."""

    experiment_id: str
    wall_s: float
    backend: str = "python"
    suite: str = "quick"
    scale: str = "quick"
    ts_utc: str = ""
    git_sha: str | None = None
    #: Where the point came from: ``"history"`` or ``"registry"``.
    source: str = "history"

    def key(self) -> tuple[str, str]:
        """The series key: backends are never trended together."""
        return (self.experiment_id, self.backend)


def load_bench_history(path: str = DEFAULT_HISTORY) -> list[dict]:
    """Raw ledger rows from a ``bench_history.json`` file.

    Accepts both the versioned envelope (``{"version": 1, "rows":
    [...]}``) and a bare list of rows.  A missing file is an empty
    history, not an error -- the first ``--history`` run creates it.
    """
    if not os.path.exists(path):
        return []
    with open(path) as fh:
        payload = json.load(fh)
    if isinstance(payload, list):
        rows = payload
    elif isinstance(payload, dict):
        rows = payload.get("rows", [])
    else:
        raise ValueError(
            f"bench history {path!r}: expected a list or object, "
            f"got {type(payload).__name__}"
        )
    if not isinstance(rows, list):
        raise ValueError(f"bench history {path!r}: 'rows' is not a list")
    return [row for row in rows if isinstance(row, dict)]


def points_from_history(
    rows: Iterable[dict], *, source: str = "history"
) -> list[BenchPoint]:
    """Ledger rows -> points; rows without a numeric ``wall_s`` are
    dropped (they cannot be trended)."""
    points: list[BenchPoint] = []
    for row in rows:
        wall = row.get("wall_s")
        if isinstance(wall, bool) or not isinstance(wall, (int, float)):
            continue
        if math.isnan(wall) or math.isinf(wall):
            continue
        points.append(
            BenchPoint(
                experiment_id=str(row.get("experiment_id", "?")),
                wall_s=float(wall),
                backend=str(row.get("backend", "python")),
                suite=str(row.get("suite", "quick")),
                scale=str(row.get("scale", "quick")),
                ts_utc=str(row.get("ts_utc", "")),
                git_sha=row.get("git_sha"),
                source=source,
            )
        )
    return points


def points_from_registry(
    registry, *, suite: str | None = None, backend: str | None = None
) -> list[BenchPoint]:
    """Chronological points from a :class:`~repro.obs.registry.RunRegistry`
    (its ``bench_results`` table, schema v3)."""
    results = registry.bench_results(
        suite=suite, backend=backend, newest_first=False
    )
    return points_from_history(
        (r.to_dict() for r in results), source="registry"
    )


def merge_points(
    *sources: Sequence[BenchPoint],
) -> list[BenchPoint]:
    """Concatenate point sources, dropping duplicate measurements.

    One ``bench run --history`` lands the same measurement in both the
    registry and the ledger; merging the two sources naively would
    double-count it (and a doubled latest point would halve every
    gap the gate is supposed to see).  Identity is
    ``(experiment_id, backend, ts_utc, wall_s)`` -- the first source
    listing a measurement keeps it.
    """
    seen: set[tuple] = set()
    merged: list[BenchPoint] = []
    for source in sources:
        for point in source:
            key = (point.experiment_id, point.backend, point.ts_utc,
                   point.wall_s)
            if key in seen:
                continue
            seen.add(key)
            merged.append(point)
    return merged


def append_bench_history(
    results: Iterable,
    path: str = DEFAULT_HISTORY,
    *,
    keep_last: int | None = None,
) -> int:
    """Append bench rows to the committed ledger; returns the new total.

    ``results`` are :class:`~repro.obs.registry.BenchResult` rows; the
    ledger stores only the trend-relevant subset (no counters, no full
    fingerprint -- those live in the registry).  ``keep_last`` prunes
    each ``(experiment_id, backend)`` series to its N most recent rows
    so the committed file stays reviewably small.  Written with
    indentation and a trailing newline for clean git diffs.
    """
    rows = load_bench_history(path)
    for result in results:
        rows.append(
            {
                "experiment_id": result.experiment_id,
                "backend": result.backend,
                "suite": result.suite,
                "scale": result.scale,
                "wall_s": result.wall_s,
                "mean_s": result.mean_s,
                "jobs": result.jobs,
                "ts_utc": result.ts_utc,
                "git_sha": result.git_sha,
            }
        )
    if keep_last is not None and keep_last > 0:
        kept: list[dict] = []
        seen: dict[tuple, int] = {}
        for row in reversed(rows):
            key = (row.get("experiment_id"), row.get("backend"))
            if seen.get(key, 0) < keep_last:
                seen[key] = seen.get(key, 0) + 1
                kept.append(row)
        rows = list(reversed(kept))
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(
            {"version": _HISTORY_VERSION, "rows": rows}, fh, indent=2
        )
        fh.write("\n")
    return len(rows)


@dataclass
class BenchTrendSeries:
    """One ``(experiment_id, backend)`` wall-clock series plus verdict."""

    experiment_id: str
    backend: str
    values: list[float]
    window: int
    threshold: float
    min_delta: float
    z_threshold: float
    latest: float | None = None
    baseline: float | None = None  # rolling median of the window
    ratio: float | None = None
    z: float | None = None  # robust z-score; None when MAD == 0
    regressed: bool = False
    kind: str | None = None  # "spike" | "drift" once regressed

    def to_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "backend": self.backend,
            "n": len(self.values),
            "latest": self.latest,
            "baseline": self.baseline,
            "ratio": self.ratio,
            "z": self.z,
            "regressed": self.regressed,
            "kind": self.kind,
            "window": self.window,
            "threshold": self.threshold,
            "min_delta": self.min_delta,
            "z_threshold": self.z_threshold,
        }


def detect_changepoint(
    series: BenchTrendSeries,
) -> BenchTrendSeries:
    """Fill one series' verdict fields in place (and return it).

    The gate needs at least 3 points (2 baseline + the latest); below
    that, no verdict.  The verdict requires **all** active terms:

    1. relative -- ``latest > median * (1 + threshold)``;
    2. absolute -- ``latest - median > min_delta`` (the noise floor
       that keeps sub-millisecond jitter from ever firing);
    3. robust z -- ``robust_z(latest, window) > z_threshold``, skipped
       when the window has zero MAD (no measurable spread).
    """
    values = series.values
    if len(values) < 3:
        return series
    gate = rolling_gate(
        values,
        window=series.window,
        threshold=series.threshold,
        min_delta=series.min_delta,
        robust=True,
    )
    series.latest = gate.latest
    series.baseline = gate.baseline
    series.ratio = gate.ratio
    window_values = values[max(0, len(values) - 1 - series.window):-1]
    series.z = robust_z(values[-1], window_values)
    regressed = gate.regressed
    if regressed and series.z is not None:
        regressed = series.z > series.z_threshold
    series.regressed = regressed
    if regressed:
        series.kind = _classify(series)
    return series


def _classify(series: BenchTrendSeries) -> str:
    """``"drift"`` when the elevation is sustained, else ``"spike"``.

    Counts trailing consecutive points above the relative bar; two or
    more mean the slowdown predates the latest run.
    """
    baseline = series.baseline
    if baseline is None or baseline <= 0:
        return "spike"
    bar = baseline * (1.0 + series.threshold)
    elevated = 0
    for value in reversed(series.values):
        if value > bar:
            elevated += 1
        else:
            break
    return "drift" if elevated >= 2 else "spike"


@dataclass
class BenchTrendReport:
    """Everything ``repro bench trend`` computed, renderable + gateable."""

    series: list[BenchTrendSeries] = field(default_factory=list)
    window: int = 8
    threshold: float = 0.5
    min_delta: float = 0.005
    z_threshold: float = 4.0

    @property
    def regressions(self) -> list[BenchTrendSeries]:
        return [s for s in self.series if s.regressed]

    @property
    def exit_code(self) -> int:
        """0 clean, 1 when any series regressed (the CI gate)."""
        return 1 if self.regressions else 0

    def to_dict(self) -> dict:
        return {
            "window": self.window,
            "threshold": self.threshold,
            "min_delta": self.min_delta,
            "z_threshold": self.z_threshold,
            "regressed": bool(self.regressions),
            "series": [s.to_dict() for s in self.series],
        }

    def render(self) -> list[str]:
        lines = [
            f"bench trend: window={self.window}, "
            f"threshold={self.threshold:.0%}, "
            f"min-delta={self.min_delta * 1e3:g}ms, "
            f"z-threshold={self.z_threshold:g}",
            "",
        ]
        if not self.series:
            lines.append("no bench history (run `repro bench run` first)")
            return lines
        for s in self.series:
            spark = ascii_sparkline(s.values[-16:])
            label = f"{s.experiment_id}/{s.backend}"
            if s.latest is None:
                lines.append(
                    f"  {label:<22} {spark:<16} "
                    f"n={len(s.values)} (need >= 3 points)"
                )
                continue
            z_txt = f"z={s.z:+.1f}" if s.z is not None else "z=n/a"
            status = "ok"
            if s.regressed:
                status = f"REGRESSED ({s.kind})"
            lines.append(
                f"  {label:<22} {spark:<16} "
                f"latest {s.latest * 1e3:8.2f}ms vs median "
                f"{s.baseline * 1e3:8.2f}ms "
                f"({s.ratio:5.2f}x, {z_txt})  {status}"
            )
        for s in self.regressions:
            lines.append("")
            lines.append(
                f"regression: {s.experiment_id} ({s.backend}) is "
                f"{s.ratio:.2f}x its rolling median "
                f"({s.latest:.4f}s vs {s.baseline:.4f}s) -- "
                + (
                    "sustained across the trailing runs (drift)"
                    if s.kind == "drift"
                    else "isolated to the latest run (spike); consider "
                    "re-running before trusting it"
                )
            )
        return lines


def bench_trend(
    points: Sequence[BenchPoint],
    *,
    window: int = 8,
    threshold: float = 0.5,
    min_delta: float = 0.005,
    z_threshold: float = 4.0,
) -> BenchTrendReport:
    """Group points into per-``(experiment, backend)`` series and gate
    each.  Points must arrive in chronological order per series (both
    sources emit them that way)."""
    if window < 2:
        raise ValueError(f"window must be >= 2, got {window}")
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    if min_delta < 0:
        raise ValueError(f"min_delta must be >= 0, got {min_delta}")
    grouped: dict[tuple[str, str], list[float]] = {}
    for point in points:
        grouped.setdefault(point.key(), []).append(point.wall_s)
    report = BenchTrendReport(
        window=window,
        threshold=threshold,
        min_delta=min_delta,
        z_threshold=z_threshold,
    )
    for (experiment_id, backend) in sorted(grouped):
        series = BenchTrendSeries(
            experiment_id=experiment_id,
            backend=backend,
            values=grouped[(experiment_id, backend)],
            window=window,
            threshold=threshold,
            min_delta=min_delta,
            z_threshold=z_threshold,
        )
        report.series.append(detect_changepoint(series))
    return report
