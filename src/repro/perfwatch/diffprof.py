"""Differential span profiling: ``repro profile --compare A B``.

One hotspot table says where a run's time went; two aligned tables say
where a *speedup or slowdown* went.  Given two traces of the same
experiment (e.g. E-LINE under the python backend vs the fast backend),
this module folds each through :class:`~repro.obs.profile.SpanProfiler`
and aligns the hotspot rows by span name.

The accounting identity that makes the attribution exact: self-times
partition a profiler's total (every traced second belongs to exactly
one span's self-time), so the per-span **self-time deltas sum to the
total wall-clock delta**.  A span present in only one trace (a backend
that skips a phase entirely) contributes its full self-time on the
side it exists.  Whatever floating-point residue is left over is
reported as ``unattributed`` rather than silently absorbed.

Traces are deterministic counters plus wall-clock spans; the diff
reads only the spans, so it works on any two trace files -- different
backends, different commits, different machines -- as long as they ran
the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.exporters import iter_trace_records
from repro.obs.profile import SpanProfiler

__all__ = [
    "DiffProfile",
    "SpanDelta",
    "diff_profilers",
    "diff_trace_files",
]


@dataclass(frozen=True)
class SpanDelta:
    """One span name's timing in both traces, and the difference."""

    name: str
    count_a: int = 0
    count_b: int = 0
    self_a: float = 0.0
    self_b: float = 0.0
    cum_a: float = 0.0
    cum_b: float = 0.0

    @property
    def delta_self(self) -> float:
        """Seconds B spent beyond A in this span's own code (signed)."""
        return self.self_b - self.self_a

    @property
    def ratio(self) -> float | None:
        """``self_b / self_a``; None when A has no self-time here."""
        if self.self_a <= 0.0:
            return None
        return self.self_b / self.self_a

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "count_a": self.count_a,
            "count_b": self.count_b,
            "self_a": round(self.self_a, 6),
            "self_b": round(self.self_b, 6),
            "delta_self": round(self.delta_self, 6),
            "cum_a": round(self.cum_a, 6),
            "cum_b": round(self.cum_b, 6),
            "ratio": self.ratio,
        }


@dataclass
class DiffProfile:
    """Two aligned hotspot tables and the attributed wall-clock delta."""

    label_a: str = "A"
    label_b: str = "B"
    total_a: float = 0.0
    total_b: float = 0.0
    deltas: list[SpanDelta] = field(default_factory=list)

    @property
    def total_delta(self) -> float:
        """Signed total wall-clock difference (B minus A)."""
        return self.total_b - self.total_a

    @property
    def attributed(self) -> float:
        """The part of ``total_delta`` the span deltas explain."""
        return sum(d.delta_self for d in self.deltas)

    @property
    def unattributed(self) -> float:
        """Float residue: total delta minus the span-attributed sum."""
        return self.total_delta - self.attributed

    def to_dict(self) -> dict:
        return {
            "label_a": self.label_a,
            "label_b": self.label_b,
            "total_a": round(self.total_a, 6),
            "total_b": round(self.total_b, 6),
            "total_delta": round(self.total_delta, 6),
            "attributed": round(self.attributed, 6),
            "unattributed": round(self.unattributed, 6),
            "spans": [d.to_dict() for d in self.deltas],
        }

    def render(self, *, top: int | None = None) -> str:
        """The ``repro profile --compare`` table."""
        shown = self.deltas if top is None else self.deltas[:top]
        sign = "+" if self.total_delta >= 0 else "-"
        lines = [
            f"differential profile: {self.label_a} -> {self.label_b}",
            f"  total {self.total_a:.4f}s -> {self.total_b:.4f}s  "
            f"(delta {sign}{abs(self.total_delta):.4f}s"
            + (
                f", {self.total_b / self.total_a:.2f}x"
                if self.total_a > 0
                else ""
            )
            + ")",
        ]
        if not shown:
            lines.append("  (no spans in either trace)")
            return "\n".join(lines)
        width = max(len(d.name) for d in shown)
        lines.append(
            f"  {'span':<{width}}  {'self A s':>9}  {'self B s':>9}  "
            f"{'delta s':>9}  {'share':>6}  {'ratio':>7}  "
            f"{'count A':>7}  {'count B':>7}"
        )
        denom = abs(self.total_delta) or 1.0
        for d in shown:
            share = d.delta_self / denom
            ratio = f"{d.ratio:6.2f}x" if d.ratio is not None else "    new"
            lines.append(
                f"  {d.name:<{width}}  {d.self_a:>9.4f}  {d.self_b:>9.4f}  "
                f"{d.delta_self:>+9.4f}  {share:>+5.0%}  {ratio}  "
                f"{d.count_a:>7}  {d.count_b:>7}"
            )
        if abs(self.unattributed) > 1e-6:
            lines.append(
                f"  {'(unattributed)':<{width}}  {'':>9}  {'':>9}  "
                f"{self.unattributed:>+9.4f}"
            )
        return "\n".join(lines)


def diff_profilers(
    a: SpanProfiler,
    b: SpanProfiler,
    *,
    label_a: str = "A",
    label_b: str = "B",
) -> DiffProfile:
    """Align two profilers' hotspot tables by span name.

    Rows are sorted by absolute self-time delta, so the spans that
    explain the most wall-clock difference lead the table regardless
    of direction.
    """
    map_a = a.hotspot_map()
    map_b = b.hotspot_map()
    deltas: list[SpanDelta] = []
    for name in sorted(set(map_a) | set(map_b)):
        ha = map_a.get(name)
        hb = map_b.get(name)
        deltas.append(
            SpanDelta(
                name=name,
                count_a=ha.count if ha else 0,
                count_b=hb.count if hb else 0,
                self_a=ha.self_s if ha else 0.0,
                self_b=hb.self_s if hb else 0.0,
                cum_a=ha.cum_s if ha else 0.0,
                cum_b=hb.cum_s if hb else 0.0,
            )
        )
    deltas.sort(key=lambda d: (-abs(d.delta_self), d.name))
    return DiffProfile(
        label_a=label_a,
        label_b=label_b,
        total_a=a.total_s,
        total_b=b.total_s,
        deltas=deltas,
    )


def diff_trace_files(
    path_a: str, path_b: str, *, label_a: str | None = None,
    label_b: str | None = None,
) -> DiffProfile:
    """Fold two JSONL trace files and diff them (streaming -- records
    are profiled as read, never held wholesale)."""
    profiler_a = SpanProfiler.of(iter_trace_records(path_a))
    profiler_b = SpanProfiler.of(iter_trace_records(path_b))
    return diff_profilers(
        profiler_a,
        profiler_b,
        label_a=label_a if label_a is not None else path_a,
        label_b=label_b if label_b is not None else path_b,
    )
