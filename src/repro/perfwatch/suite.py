"""The curated benchmark suite behind ``repro bench run``.

The ``benchmarks/`` tree holds one ad-hoc pytest harness per
experiment; this module is the unified runner the CLI and CI drive
instead: a curated tier of experiments, each measured with **warmup +
best-of-k** repeats, stamped with an **environment fingerprint**, and
emitted three ways --

* a standardized ``BENCH_<id>.json`` payload per experiment (the same
  shape :func:`repro.obs.baseline.load_bench_dir` ingests, so the
  existing ``bench-compare`` counter gate reads suite output
  unchanged), finally populating the ``REPRO_BENCH_JSON`` trajectory;
* one row per experiment in the run registry's ``bench_results`` table
  (schema v3), the durable history ``repro bench trend`` gates on;
* optionally one appended row per experiment in the committed
  ``benchmarks/bench_history.json`` ledger
  (:func:`repro.perfwatch.changepoint.append_bench_history`).

Timing methodology: the warmup runs are discarded (they pay import,
allocation-pool, and branch-predictor costs); each timed repeat runs
**untraced** under a ``perf_counter`` pair so tracer overhead never
contaminates the number; ``wall_s`` is the **minimum** of the repeats
(the classical best-of-k noise-rejection estimator -- an OS scheduler
can only ever make a run slower, never faster).  One final *traced*
run -- excluded from timing -- captures the deterministic counter
fingerprint so every bench row cross-references the model behavior it
measured.  Experiments are deterministic, so the traced run's counters
are exactly the timed runs' counters.
"""

from __future__ import annotations

import os
import platform
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Callable, Sequence

from repro.engine.backend import resolve_backend
from repro.obs.baseline import counters_of
from repro.obs.metrics import TraceMetrics
from repro.obs.registry import BenchResult, git_sha
from repro.obs.tracer import NULL_TRACER, Tracer, use_tracer
from repro.parallel import resolve_jobs

__all__ = [
    "SUITES",
    "BenchOutcome",
    "environment_fingerprint",
    "run_bench",
    "run_suite",
    "suite_experiments",
]

#: The quick tier: every experiment whose quick-scale run finishes in
#: about a second, spanning every substrate (parameter tables, MPC
#: protocols, the word-RAM interpreter, encoders, Monte-Carlo trials).
_QUICK = (
    "T1",
    "E-BOUND",
    "E-RAM",
    "E-ENC-A",
    "E-SIMLINE",
    "E-DECAY",
    "E-LINE",
)

SUITES: dict[str, tuple[str, ...] | None] = {
    "quick": _QUICK,
    # ``None`` = the full registered experiment inventory at run time.
    "full": None,
}


def suite_experiments(suite: str) -> list[str]:
    """The experiment ids one suite tier runs, in run order."""
    if suite not in SUITES:
        raise KeyError(
            f"unknown suite {suite!r}; choose from {sorted(SUITES)}"
        )
    names = SUITES[suite]
    if names is None:
        from repro.experiments import experiment_ids

        return experiment_ids()
    return list(names)


def _cpu_model() -> str | None:
    """The CPU model string from ``/proc/cpuinfo`` (None off-Linux)."""
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    return line.partition(":")[2].strip()
    except OSError:
        pass
    return platform.processor() or None


def _rss_peak_kb() -> float | None:
    """Process RSS high-water mark in kB (``VmHWM``; None off-Linux).

    Monotone for the life of the process, so in a suite run it reads
    as "peak over this bench *and everything before it*" -- honest for
    advisory budget checks, useless for per-bench attribution.
    """
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM"):
                    return float(line.split()[1])
    except (OSError, IndexError, ValueError):
        pass
    return None


def environment_fingerprint(
    *, backend: str | None = None, jobs: int | None = None
) -> dict:
    """The context stamp every bench row carries.

    Wall-clock numbers are only comparable within one environment; the
    fingerprint makes "which environment" explicit: git SHA, python
    version/implementation, platform, CPU model and logical core
    count, plus the resolved execution backend and parallelism degree.
    """
    return {
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_model": _cpu_model(),
        "cpu_count": os.cpu_count(),
        "backend": resolve_backend(backend),
        "jobs": resolve_jobs(jobs),
    }


@dataclass
class BenchOutcome:
    """Everything one ``run_bench`` measurement produced."""

    result: BenchResult
    #: Every timed repeat, in run order (``result.wall_s`` is the min).
    repeats_s: list[float] = field(default_factory=list)
    #: Wall-clock of the untimed traced verification run (advisory).
    traced_s: float | None = None

    def bench_payload(self) -> dict:
        """The standardized ``BENCH_<id>.json`` content.

        A superset of the shape :func:`~repro.obs.baseline.load_bench_dir`
        reads (``experiment_id`` / ``counters`` / ``duration_s`` /
        ``passed``), extended with the suite timing block and the
        environment fingerprint.
        """
        r = self.result
        return {
            "experiment_id": r.experiment_id,
            "scale": r.scale,
            "passed": r.passed,
            "duration_s": r.wall_s,
            "counters": dict(r.counters),
            "suite": r.suite,
            "timing": {
                "warmup": r.warmup,
                "repeats": r.repeats,
                "best_s": r.wall_s,
                "mean_s": r.mean_s,
                "repeats_s": [round(v, 6) for v in self.repeats_s],
                "traced_s": self.traced_s,
            },
            "fingerprint": dict(r.fingerprint),
            "rss_peak_kb": r.rss_peak_kb,
        }


def run_bench(
    experiment_id: str,
    *,
    scale: str = "quick",
    suite: str = "quick",
    warmup: int = 1,
    repeats: int = 3,
    backend: str | None = None,
    jobs: int | None = None,
    fingerprint: dict | None = None,
) -> BenchOutcome:
    """Measure one experiment: warmup, best-of-k, counters, fingerprint.

    The caller is expected to have installed the backend/jobs scopes
    (``use_backend`` / ``use_jobs``); ``backend`` and ``jobs`` here
    only label the fingerprint.  ``fingerprint`` short-circuits the
    environment probe when the caller already built one for the whole
    suite.
    """
    from repro.experiments import run_experiment

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    # Warmup and timed repeats run under the null tracer even when an
    # ambient tracer is installed (e.g. the CLI's global --trace-out):
    # tracer overhead must never contaminate the timing, and bench
    # internals must never leak records into a determinism-checked
    # trace stream.
    repeats_s: list[float] = []
    passed = True
    with use_tracer(NULL_TRACER):
        for _ in range(warmup):
            run_experiment(experiment_id, scale=scale)
        for _ in range(repeats):
            start = time.perf_counter()
            result = run_experiment(experiment_id, scale=scale)
            repeats_s.append(time.perf_counter() - start)
            passed = passed and result.passed
    # The counter fingerprint needs a traced run; timing is done, so
    # tracer overhead here costs nothing but wall time.
    captured: list = []
    tracer = Tracer(keep_records=False)
    tracer.subscribe(captured.append)
    start = time.perf_counter()
    with use_tracer(tracer):
        traced_result = run_experiment(experiment_id, scale=scale)
    traced_s = time.perf_counter() - start
    passed = passed and traced_result.passed
    counters = counters_of(TraceMetrics.from_records(captured))
    stamp = dict(
        fingerprint
        if fingerprint is not None
        else environment_fingerprint(backend=backend, jobs=jobs)
    )
    # Stamp identity here, at measurement time, so the registry row and
    # the history-ledger row of one measurement are recognizably the
    # same point (bench trend dedups on it when merging sources).
    result_row = BenchResult(
        experiment_id=experiment_id,
        suite=suite,
        scale=scale,
        backend=resolve_backend(backend),
        jobs=resolve_jobs(jobs),
        warmup=warmup,
        repeats=repeats,
        wall_s=min(repeats_s),
        mean_s=sum(repeats_s) / len(repeats_s),
        rss_peak_kb=_rss_peak_kb(),
        passed=passed,
        fingerprint=stamp,
        counters=counters,
        ts_utc=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        git_sha=stamp.get("git_sha"),
    )
    return BenchOutcome(
        result=result_row, repeats_s=repeats_s, traced_s=traced_s
    )


def run_suite(
    suite: str = "quick",
    *,
    scale: str = "quick",
    warmup: int = 1,
    repeats: int = 3,
    backend: str | None = None,
    jobs: int | None = None,
    experiments: Sequence[str] | None = None,
    progress: Callable[[str], None] | None = None,
) -> list[BenchOutcome]:
    """Run one suite tier end to end; returns per-experiment outcomes.

    ``experiments`` restricts the tier to a subset (ids must belong to
    the tier); ``progress`` receives one human line per finished bench
    (the CLI points it at stderr).
    """
    names = suite_experiments(suite)
    if experiments:
        unknown = sorted(set(experiments) - set(names))
        if unknown:
            raise KeyError(
                f"experiments {unknown} are not in the {suite!r} suite "
                f"(its tier: {names})"
            )
        names = [n for n in names if n in set(experiments)]
    stamp = environment_fingerprint(backend=backend, jobs=jobs)
    outcomes: list[BenchOutcome] = []
    for experiment_id in names:
        outcome = run_bench(
            experiment_id,
            scale=scale,
            suite=suite,
            warmup=warmup,
            repeats=repeats,
            backend=backend,
            jobs=jobs,
            fingerprint=stamp,
        )
        outcomes.append(outcome)
        if progress is not None:
            r = outcome.result
            spread = (
                max(outcome.repeats_s) / min(outcome.repeats_s)
                if outcome.repeats_s and min(outcome.repeats_s) > 0
                else 1.0
            )
            progress(
                f"bench {experiment_id:<14} best {r.wall_s * 1e3:9.2f}ms  "
                f"mean {r.mean_s * 1e3:9.2f}ms  spread {spread:4.2f}x  "
                f"{'ok' if r.passed else 'FAIL'}"
            )
    return outcomes
