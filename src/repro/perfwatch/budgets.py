"""Declarative per-experiment performance budgets (advisory).

``benchmarks/budgets.json`` states, next to the benchmarks themselves,
how slow and how big each experiment is *allowed* to get::

    {
      "version": 1,
      "budgets": {
        "E-LINE":        {"wall_s": 5.0},
        "E-LINE/fast":   {"wall_s": 2.0},
        "*":             {"wall_s": 30.0, "rss_peak_kb": 2097152}
      }
    }

Lookup is most-specific-wins: ``"<experiment>/<backend>"`` beats
``"<experiment>"`` beats the ``"*"`` catch-all; an experiment matching
no key has no budget.  Budget checks are **advisory** in exactly the
sense of :mod:`repro.obs.monitor` violations: they annotate a bench
run's report and can gate CI, but wall-clock and RSS never enter any
deterministic fingerprint -- a budget breach changes what a human
reads, never what a trace hashes to.

RSS caveat: ``rss_peak_kb`` is the process high-water mark (VmHWM),
which is monotone across a suite run; an RSS breach therefore means
"by the time this bench finished, the process had peaked above the
budget", which is the honest whole-suite reading.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Iterable, Mapping

__all__ = [
    "Budget",
    "BudgetViolation",
    "check_budgets",
    "default_budgets_path",
    "load_budgets",
    "render_budget_violations",
]

_BUDGETS_VERSION = 1


def default_budgets_path() -> str:
    """``benchmarks/budgets.json`` relative to the working tree."""
    return os.path.join("benchmarks", "budgets.json")


@dataclass(frozen=True)
class Budget:
    """Limits for one budget key; ``None`` means unconstrained."""

    key: str
    wall_s: float | None = None
    rss_peak_kb: float | None = None

    def to_dict(self) -> dict:
        out: dict = {}
        if self.wall_s is not None:
            out["wall_s"] = self.wall_s
        if self.rss_peak_kb is not None:
            out["rss_peak_kb"] = self.rss_peak_kb
        return out


@dataclass(frozen=True)
class BudgetViolation:
    """One breached limit, monitor-violation style: what was observed,
    what the budget allowed, and which rule matched."""

    experiment_id: str
    backend: str
    metric: str  # "wall_s" | "rss_peak_kb"
    observed: float
    limit: float
    budget_key: str  # the rule that matched ("E-LINE/fast", "*", ...)

    @property
    def ratio(self) -> float:
        return self.observed / self.limit if self.limit > 0 else float("inf")

    def to_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "backend": self.backend,
            "metric": self.metric,
            "observed": self.observed,
            "limit": self.limit,
            "budget_key": self.budget_key,
            "ratio": self.ratio,
        }


def _coerce_limit(raw, *, key: str, metric: str) -> float | None:
    if raw is None:
        return None
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise ValueError(
            f"budget {key!r}: {metric} must be a number, got {raw!r}"
        )
    if raw <= 0:
        raise ValueError(
            f"budget {key!r}: {metric} must be positive, got {raw!r}"
        )
    return float(raw)


def load_budgets(path: str | None = None) -> dict[str, Budget]:
    """Parse a budgets file into ``{key: Budget}``.

    A missing file means "no budgets declared" (empty dict), so bench
    runs work in checkouts that have not adopted budgets.  Malformed
    entries raise -- a budget that silently fails to parse would gate
    nothing while appearing to.
    """
    path = path or default_budgets_path()
    if not os.path.exists(path):
        return {}
    with open(path) as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict):
        raise ValueError(f"budgets {path!r}: expected an object")
    entries = payload.get("budgets", {})
    if not isinstance(entries, Mapping):
        raise ValueError(f"budgets {path!r}: 'budgets' is not an object")
    budgets: dict[str, Budget] = {}
    for key, spec in entries.items():
        if not isinstance(spec, Mapping):
            raise ValueError(
                f"budgets {path!r}: entry {key!r} is not an object"
            )
        unknown = set(spec) - {"wall_s", "rss_peak_kb"}
        if unknown:
            raise ValueError(
                f"budgets {path!r}: entry {key!r} has unknown "
                f"fields {sorted(unknown)}"
            )
        budgets[key] = Budget(
            key=key,
            wall_s=_coerce_limit(spec.get("wall_s"), key=key,
                                 metric="wall_s"),
            rss_peak_kb=_coerce_limit(spec.get("rss_peak_kb"), key=key,
                                      metric="rss_peak_kb"),
        )
    return budgets


def _budget_for(
    budgets: Mapping[str, Budget], experiment_id: str, backend: str
) -> Budget | None:
    """Most-specific-wins lookup: exp/backend, then exp, then ``*``."""
    for key in (f"{experiment_id}/{backend}", experiment_id, "*"):
        budget = budgets.get(key)
        if budget is not None:
            return budget
    return None


def check_budgets(
    results: Iterable, budgets: Mapping[str, Budget]
) -> list[BudgetViolation]:
    """Check bench rows (:class:`~repro.obs.registry.BenchResult`)
    against the declared budgets; returns every breach."""
    violations: list[BudgetViolation] = []
    for result in results:
        budget = _budget_for(budgets, result.experiment_id, result.backend)
        if budget is None:
            continue
        for metric, observed, limit in (
            ("wall_s", result.wall_s, budget.wall_s),
            ("rss_peak_kb", result.rss_peak_kb, budget.rss_peak_kb),
        ):
            if limit is None or observed is None:
                continue
            if observed > limit:
                violations.append(
                    BudgetViolation(
                        experiment_id=result.experiment_id,
                        backend=result.backend,
                        metric=metric,
                        observed=float(observed),
                        limit=limit,
                        budget_key=budget.key,
                    )
                )
    return violations


def render_budget_violations(
    violations: Iterable[BudgetViolation],
) -> list[str]:
    """Human lines for a bench report's advisory budget section."""
    lines: list[str] = []
    for v in violations:
        if v.metric == "wall_s":
            detail = f"{v.observed:.3f}s > {v.limit:.3f}s"
        else:
            detail = f"{v.observed:.0f}kB > {v.limit:.0f}kB"
        lines.append(
            f"budget: {v.experiment_id} ({v.backend}) {v.metric} "
            f"{detail} ({v.ratio:.2f}x, rule {v.budget_key!r}) [advisory]"
        )
    return lines
