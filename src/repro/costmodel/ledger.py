"""Rendering for the cost models: formula listings, eval tables, ledgers.

Three audiences:

* ``repro cost show``  -- :func:`render_formulas` (plain or LaTeX);
* ``repro cost eval``  -- :func:`eval_table`, a numeric table of every
  formula at concrete bindings;
* ``repro cost check`` / the HTML report -- :func:`ledger_from_records`
  parses ``cost.predicted`` events back out of a trace and
  :func:`render_ledger` prints the predicted-vs-measured table with
  drift called out.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.costmodel.backend import require_sympy
from repro.costmodel.formulas import CostModel

__all__ = [
    "render_formulas",
    "eval_table",
    "ledger_from_records",
    "render_ledger",
]


def _expr_str(expr, *, latex: bool) -> str:
    sp = require_sympy()
    return sp.latex(expr) if latex else sp.sstr(expr)


def _formula_lines(formula, *, latex: bool) -> list[str]:
    if formula.kind == "band":
        body = (
            f"{_expr_str(formula.lo, latex=latex)}  <=  {formula.counter}"
            f"  <=  {_expr_str(formula.hi, latex=latex)}"
        )
    elif formula.kind == "bound":
        body = (
            f"{formula.counter}  <=  {_expr_str(formula.expr, latex=latex)}"
            f"  +  {_expr_str(formula.slack, latex=latex)}"
        )
    else:
        body = f"{formula.counter}  =  {_expr_str(formula.expr, latex=latex)}"
    lines = [f"  {body}"]
    detail = f"[{formula.kind}] {formula.ref}"
    if formula.note:
        detail += f" -- {formula.note}"
    lines.append(f"      {detail}")
    return lines


def render_formulas(models: list[CostModel], *, latex: bool = False) -> str:
    """The ``repro cost show`` listing: every formula with its reference."""
    lines: list[str] = []
    for model in models:
        lines.append(f"{model.model_id} -- {model.title}")
        lines.append(f"  trigger: {model.trigger}    ref: {model.ref}")
        if model.guard_note:
            lines.append(f"  applies when: {model.guard_note}")
        for formula in model.formulas:
            lines.extend(_formula_lines(formula, latex=latex))
        lines.append("")
    return "\n".join(lines).rstrip()


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def eval_table(model: CostModel, bindings: dict) -> str:
    """Numeric evaluation of every formula at concrete bindings."""
    rows = []
    for entry in model.predict(bindings):
        if entry.kind == "band":
            value = f"[{_fmt(entry.lo)}, {_fmt(entry.hi)}]"
        elif entry.kind == "bound":
            value = f"<= {_fmt(entry.predicted)} (+{_fmt(entry.slack)})"
        else:
            value = _fmt(entry.predicted)
        rows.append((
            entry.counter,
            entry.kind,
            value if entry.status != "skipped" else f"n/a ({entry.note})",
            entry.ref,
        ))
    binding_str = ", ".join(
        f"{k}={v}" for k, v in sorted(bindings.items())
    )
    return format_table(
        ("counter", "kind", "predicted", "paper ref"),
        rows,
        title=f"{model.model_id} @ {binding_str}",
    )


def ledger_from_records(records) -> list[dict]:
    """Extract the ``cost.predicted`` ledgers from trace records.

    Accepts live :class:`~repro.obs.TraceRecord` objects or their JSONL
    dict form; returns the event attrs (model, status, params, entries).
    """
    ledgers = []
    for record in records:
        if isinstance(record, dict):
            kind, name = record.get("kind"), record.get("name")
            attrs = record.get("attrs", {}) or {}
        else:
            kind, name, attrs = record.kind, record.name, record.attrs or {}
        if kind == "event" and name == "cost.predicted":
            ledgers.append(attrs)
    return ledgers


def render_ledger(ledgers: list[dict], *, title: str = "") -> str:
    """The predicted-vs-measured table, one row per checked counter."""
    if not ledgers:
        return "no cost.predicted events (no announced models ran)"
    rows = []
    for ledger in ledgers:
        model = ledger.get("model", "?")
        status = ledger.get("status", "?")
        entries = ledger.get("entries") or []
        if not entries:
            rows.append((model, "-", "-", "-", "-", status))
            continue
        for entry in entries:
            kind = entry.get("kind", "exact")
            if kind == "band":
                predicted = f"[{_fmt(entry.get('lo'))}, {_fmt(entry.get('hi'))}]"
            elif kind == "bound":
                predicted = f"<= {_fmt(entry.get('predicted'))}"
                if entry.get("slack") is not None:
                    predicted += f" (+{_fmt(entry.get('slack'))})"
            else:
                predicted = _fmt(entry.get("predicted"))
            measured = entry.get("measured")
            drift = ""
            if entry.get("status") == "mismatch":
                p = entry.get("predicted")
                if isinstance(measured, (int, float)) and isinstance(
                    p, (int, float)
                ):
                    drift = f"{measured - p:+g}"
                else:
                    drift = "DRIFT"
            rows.append((
                model,
                entry.get("counter", "?"),
                predicted,
                _fmt(measured),
                drift,
                entry.get("status", "?"),
            ))
    return format_table(
        ("model", "counter", "predicted", "measured", "drift", "status"),
        rows,
        title=title or "Predicted vs measured",
    )
