"""Formula and model containers for the symbolic cost ledgers.

A :class:`CounterFormula` predicts one measured counter.  Three kinds:

* ``exact`` -- the counter must equal ``expr`` at the run's bindings
  (the default; the protocols here are deterministic once the round
  count is known, so most counters admit exact predictions);
* ``band``  -- the counter must land in ``[lo, hi]`` (round counts of
  the randomized chain protocol: exact conditioned on the run, bounded
  a priori);
* ``bound`` -- the counter must be ``<= expr + slack``, where ``slack``
  is a declared, justified tolerance (Monte-Carlo success counts).

A :class:`CostModel` bundles the formulas for one protocol together
with its trigger (which trace span carries the measured counters), its
paper reference, and an applicability guard over the bindings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.costmodel.backend import require_sympy

__all__ = ["CostEvalError", "CostEntry", "CounterFormula", "CostModel"]

#: Evaluation kinds a formula may declare.
KINDS = ("exact", "band", "bound")


class CostEvalError(ValueError):
    """A formula could not be evaluated at the given bindings."""


def evaluate_expr(expr, bindings: Mapping[str, object]):
    """Evaluate a sympy expression at integer/float bindings, exactly.

    Integer bindings substitute as exact ``sympy.Integer``s so the
    ceiling/floor/Max arithmetic in the formulas stays exact; the result
    comes back as a python ``int`` when it is one, else ``float``.
    """
    sp = require_sympy()
    subs = {}
    for symbol in expr.free_symbols:
        if symbol.name not in bindings:
            raise CostEvalError(
                f"no binding for symbol {symbol.name!r} "
                f"(have: {sorted(bindings)})"
            )
        value = bindings[symbol.name]
        if value is None:
            raise CostEvalError(f"binding {symbol.name!r} is None")
        subs[symbol] = (
            sp.Integer(value) if isinstance(value, (int,)) else sp.Float(value)
        )
    result = expr.subs(subs)
    if result.free_symbols:
        raise CostEvalError(f"unbound symbols remain in {result}")
    if result.is_Integer:
        return int(result)
    return float(result)


@dataclass(frozen=True)
class CostEntry:
    """One checked (or evaluated) counter: the ledger row."""

    counter: str
    kind: str
    status: str  # "match" | "mismatch" | "predicted" | "skipped"
    measured: object = None
    predicted: object = None
    lo: object = None
    hi: object = None
    slack: object = None
    ref: str = ""
    note: str = ""

    @property
    def drift(self) -> object:
        """Measured minus predicted, when both are numeric."""
        if isinstance(self.measured, (int, float)) and isinstance(
            self.predicted, (int, float)
        ):
            return self.measured - self.predicted
        return None

    def to_attrs(self) -> dict:
        """JSON-safe attribute dict for trace events and reports."""
        out = {"counter": self.counter, "kind": self.kind, "status": self.status}
        for key in ("measured", "predicted", "lo", "hi", "slack"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.ref:
            out["ref"] = self.ref
        if self.note:
            out["note"] = self.note
        return out


@dataclass(frozen=True)
class CounterFormula:
    """A symbolic prediction for one measured counter."""

    counter: str
    kind: str = "exact"
    expr: object = None  # exact value, or the upper bound for "bound"
    lo: object = None  # band edges
    hi: object = None
    slack: object = None  # tolerance added to a "bound" expr
    ref: str = ""
    note: str = ""
    applies: Callable[[Mapping[str, object]], bool] | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown formula kind {self.kind!r}")
        if self.kind in ("exact", "bound") and self.expr is None:
            raise ValueError(f"{self.counter}: kind {self.kind} needs expr")
        if self.kind == "band" and (self.lo is None or self.hi is None):
            raise ValueError(f"{self.counter}: band needs lo and hi")

    def applicable(self, bindings: Mapping[str, object]) -> bool:
        """Whether this formula fires at the given bindings."""
        return self.applies is None or bool(self.applies(bindings))

    def predict(self, bindings: Mapping[str, object]) -> CostEntry:
        """Evaluate without a measurement (``repro cost eval``)."""
        if not self.applicable(bindings):
            return CostEntry(
                self.counter, self.kind, "skipped", ref=self.ref,
                note=self.note or "inapplicable at these bindings",
            )
        if self.kind == "band":
            return CostEntry(
                self.counter, self.kind, "predicted",
                lo=evaluate_expr(self.lo, bindings),
                hi=evaluate_expr(self.hi, bindings),
                ref=self.ref, note=self.note,
            )
        entry = CostEntry(
            self.counter, self.kind, "predicted",
            predicted=evaluate_expr(self.expr, bindings),
            slack=(
                evaluate_expr(self.slack, bindings)
                if self.slack is not None else None
            ),
            ref=self.ref, note=self.note,
        )
        return entry

    def check(
        self, bindings: Mapping[str, object], measured: object
    ) -> CostEntry:
        """Compare a measured counter against the prediction."""
        base = self.predict(bindings)
        if base.status == "skipped":
            return base
        if not isinstance(measured, (int, float)):
            return CostEntry(
                self.counter, self.kind, "skipped", ref=self.ref,
                note=f"counter not measured ({measured!r})",
            )
        if self.kind == "exact":
            ok = measured == base.predicted
        elif self.kind == "band":
            ok = base.lo <= measured <= base.hi
        else:  # bound
            ok = measured <= base.predicted + (base.slack or 0)
        return CostEntry(
            self.counter, self.kind, "match" if ok else "mismatch",
            measured=measured, predicted=base.predicted,
            lo=base.lo, hi=base.hi, slack=base.slack,
            ref=self.ref, note=self.note,
        )


@dataclass(frozen=True)
class CostModel:
    """One protocol's complete symbolic ledger."""

    model_id: str
    title: str
    trigger: str  # "mpc.run" | "ram.run" | "inline" | "static"
    ref: str
    formulas: tuple[CounterFormula, ...]
    guard: Callable[[Mapping[str, object]], bool] | None = None
    guard_note: str = ""
    notes: tuple[str, ...] = field(default_factory=tuple)

    def applicable(self, bindings: Mapping[str, object]) -> bool:
        """Whether the model as a whole applies at these bindings."""
        return self.guard is None or bool(self.guard(bindings))

    def formula(self, counter: str) -> CounterFormula:
        """The formula predicting ``counter`` (KeyError if absent)."""
        for f in self.formulas:
            if f.counter == counter:
                return f
        raise KeyError(f"{self.model_id} has no formula for {counter!r}")

    def predict(self, bindings: Mapping[str, object]) -> list[CostEntry]:
        """Evaluate every formula (no measurements)."""
        return [f.predict(bindings) for f in self.formulas]

    def check(
        self,
        bindings: Mapping[str, object],
        measured: Mapping[str, object],
    ) -> list[CostEntry]:
        """Check measured counters; unmeasured counters are skipped."""
        entries = []
        for f in self.formulas:
            entries.append(f.check(bindings, measured.get(f.counter)))
        return entries
