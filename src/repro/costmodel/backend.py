"""The lazy sympy gate.

``sympy`` is a declared dependency, but every non-cost code path must
keep working without it (minimal environments, partial installs).  All
symbolic work therefore goes through :func:`require_sympy`, which
imports on first use and raises :class:`CostModelUnavailable` with an
actionable message when the import fails.
"""

from __future__ import annotations

__all__ = ["CostModelUnavailable", "available", "require_sympy"]

_SYMPY = None
_FAILED: str | None = None


class CostModelUnavailable(RuntimeError):
    """Raised when a cost-model feature is used without sympy installed."""


def require_sympy():
    """Return the ``sympy`` module, importing it on first use."""
    global _SYMPY, _FAILED
    if _SYMPY is not None:
        return _SYMPY
    if _FAILED is not None:
        raise CostModelUnavailable(_FAILED)
    try:
        import sympy  # noqa: PLC0415 - the whole point is laziness
    except ImportError as exc:
        _FAILED = (
            "the symbolic cost models need sympy (>= 1.12), which is not "
            f"importable here ({exc}); install it with `pip install sympy` "
            "-- every non-cost command works without it"
        )
        raise CostModelUnavailable(_FAILED) from None
    _SYMPY = sympy
    return sympy


def available() -> bool:
    """Whether sympy can be imported (cheap after the first call)."""
    try:
        require_sympy()
    except CostModelUnavailable:
        return False
    return True
