"""Sympy-free binding builders for ``cost.model`` announcements.

The protocols announce *which* model applies to the run they are about
to start -- a plain trace event carrying the model id and the concrete
parameter bindings -- and :class:`repro.costmodel.oracle.CostOracle`
pairs each announcement with the next matching run span.  Keeping the
builders free of sympy means the protocols can always announce; only
*checking* needs the symbolic backend.

Bindings are JSON-safe scalars so announcements survive the JSONL
trace round trip (offline ``repro cost check --trace``).
"""

from __future__ import annotations

__all__ = [
    "chain_cost_bindings",
    "pipeline_cost_bindings",
    "fullmem_cost_bindings",
    "pointer_jump_cost_bindings",
]


def _per_machine_counts(piece_owners, m: int) -> list[int]:
    counts = [0] * m
    for owners in piece_owners:
        for k in owners:
            counts[k] += 1
    return counts


def chain_cost_bindings(setup) -> dict:
    """Bindings for the ``chain`` model from a ``ChainSetup``.

    ``uniform`` records whether every machine stores the same number of
    pieces -- the chain formulas assume one store size, so the model
    guards on it.
    """
    counts = _per_machine_counts(setup.piece_owners, setup.mpc_params.m)
    fn = setup.fn_params
    return {
        "n": fn.n,
        "u": fn.u,
        "v": fn.v,
        "T": fn.w,
        "m": setup.mpc_params.m,
        "s": setup.mpc_params.s_bits,
        "q": setup.mpc_params.q,
        "b": max(counts) if counts else 0,
        "uniform": bool(counts) and min(counts) == max(counts) > 0,
    }


def pipeline_cost_bindings(setup) -> dict:
    """Bindings for ``simline_pipeline`` from a ``PipelineSetup``.

    ``qcap`` is the effective per-round advance limit: the query budget
    capped at the window size (an unlimited budget still stalls at the
    window edge).
    """
    bindings = chain_cost_bindings(setup)
    b = bindings["b"]
    q = bindings["q"]
    bindings["qcap"] = b if q is None else min(q, b)
    return bindings


def fullmem_cost_bindings(setup) -> tuple[str, dict]:
    """``(model_id, bindings)`` for a ``FullMemorySetup``.

    The variant is detected *behaviorally*: if machine 0 starts with
    every piece (all other initial memories empty) the run computes in
    round 0 -- the colocated cost shape -- whatever flag built it.
    """
    nonempty = [
        k for k, memory in enumerate(setup.initial_memories) if len(memory)
    ]
    fn = setup.fn_params
    bindings = {
        "n": fn.n,
        "u": fn.u,
        "v": fn.v,
        "T": fn.w,
        "m": setup.mpc_params.m,
        "s": setup.mpc_params.s_bits,
    }
    model_id = (
        "fullmem.colocated" if nonempty == [0] else "fullmem.spread"
    )
    return model_id, bindings


def pointer_jump_cost_bindings(setup) -> dict:
    """Bindings for ``pointer_jump`` from a ``PointerJumpSetup``."""
    return {"k": setup.instance.jumps, "m": setup.mpc_params.m}
