"""The cost oracle: a tracer subscriber asserting predicted counters.

:class:`CostOracle` rides the same fan-out as
:class:`repro.obs.InvariantMonitor`: protocols emit a ``cost.model``
announcement (model id + bindings) just before starting a run, the
simulator/interpreter closes its ``mpc.run`` / ``ram.run`` span with
the measured counters, and the oracle pairs the two, evaluates the
model's formulas, and emits

* ``cost.predicted`` -- one structured ledger event per checked run
  (every counter with its prediction, measurement, and status);
* ``cost.mismatch``  -- one event per drifted counter, alongside the
  existing ``monitor.violation`` stream.

``inline`` models (Monte-Carlo estimators) carry their measurement in
the announcement itself and are checked on receipt.  Announcements pair
with the *next* matching span close; trial fan-out replays worker
records chunk-by-chunk in order, so per-run streams stay linear and the
pairing is exact under ``--jobs N`` too.

Strict mode raises :class:`CostMismatchError` at the first drifted
counter, turning any traced run into a hard regression gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.costmodel.backend import require_sympy
from repro.costmodel.formulas import CostEntry
from repro.costmodel.models import cost_model_for

__all__ = [
    "CostCheck",
    "CostMismatchError",
    "CostOracle",
    "check_trace_records",
]

#: Span names whose close carries measured counters, with the counter
#: attribute names each one exposes.
_TRIGGER_COUNTERS = {
    "mpc.run": (
        "rounds",
        "total_messages",
        "total_message_bits",
        "total_oracle_queries",
    ),
    "ram.run": ("instructions", "time", "oracle_queries", "peak_memory_words"),
}


class CostMismatchError(RuntimeError):
    """Strict mode: a measured counter drifted from its prediction."""

    def __init__(self, model_id: str, entry: CostEntry) -> None:
        self.model_id = model_id
        self.entry = entry
        expected = (
            f"[{entry.lo}, {entry.hi}]" if entry.kind == "band"
            else (
                f"<= {entry.predicted} + {entry.slack}"
                if entry.kind == "bound" else str(entry.predicted)
            )
        )
        super().__init__(
            f"cost mismatch [{model_id}.{entry.counter}]: measured "
            f"{entry.measured}, predicted {expected} ({entry.ref})"
        )


@dataclass
class CostCheck:
    """One paired (announcement, measurement) evaluation."""

    model_id: str
    status: str  # "pass" | "fail" | "skipped" | "inapplicable"
    bindings: dict
    entries: list[CostEntry] = field(default_factory=list)
    note: str = ""

    @property
    def mismatches(self) -> list[CostEntry]:
        """The drifted entries (empty unless status is ``fail``)."""
        return [e for e in self.entries if e.status == "mismatch"]

    def to_attrs(self) -> dict:
        """JSON-safe view for the ``cost.predicted`` event."""
        out = {
            "model": self.model_id,
            "status": self.status,
            "params": dict(self.bindings),
            "entries": [e.to_attrs() for e in self.entries],
        }
        if self.note:
            out["note"] = self.note
        return out


def _record_fields(record) -> tuple[str, str, dict]:
    """Normalize a :class:`TraceRecord` or its JSONL dict form."""
    if isinstance(record, dict):
        return (
            record.get("kind", ""),
            record.get("name", ""),
            record.get("attrs", {}) or {},
        )
    return record.kind, record.name, record.attrs or {}


class CostOracle:
    """Evaluate symbolic cost models against measured trace counters.

    Parameters
    ----------
    strict:
        Raise :class:`CostMismatchError` on the first drifted counter.
    tracer:
        Where to emit ``cost.predicted`` / ``cost.mismatch`` events
        (normally the tracer this oracle subscribes to); ``None`` only
        records.

    Constructing the oracle requires sympy (fail fast, not mid-run).
    """

    def __init__(self, *, strict: bool = False, tracer=None) -> None:
        require_sympy()
        self._strict = strict
        self._tracer = tracer
        self._pending: dict[str, tuple[str, dict]] = {}
        self.checks: list[CostCheck] = []

    # ------------------------------------------------------------------
    @property
    def mismatches(self) -> list[tuple[str, CostEntry]]:
        """Every drifted counter seen, as ``(model_id, entry)`` pairs."""
        out = []
        for check in self.checks:
            out.extend((check.model_id, e) for e in check.mismatches)
        return out

    @property
    def verdict(self) -> str:
        """``pass`` / ``fail`` / ``none`` (nothing was checkable)."""
        evaluated = [c for c in self.checks if c.status in ("pass", "fail")]
        if any(c.status == "fail" for c in evaluated):
            return "fail"
        return "pass" if evaluated else "none"

    def summary(self) -> dict:
        """Deterministic scalar summary (registry / ``runs compare``).

        ``predicted`` holds per-counter totals of the exact predictions
        across all checks -- the flat keys
        ``cost.predicted.<counter>`` become the predicted-value columns
        ``repro runs compare`` and ``runs trend`` diff between runs.
        """
        by_status: dict[str, int] = {}
        predicted: dict[str, int] = {}
        for check in self.checks:
            by_status[check.status] = by_status.get(check.status, 0) + 1
            for entry in check.entries:
                if entry.kind == "exact" and isinstance(entry.predicted, int):
                    predicted[entry.counter] = (
                        predicted.get(entry.counter, 0) + entry.predicted
                    )
        return {
            "verdict": self.verdict,
            "checks": len(self.checks),
            "passed": by_status.get("pass", 0),
            "failed": by_status.get("fail", 0),
            "skipped": by_status.get("skipped", 0)
            + by_status.get("inapplicable", 0),
            "mismatched_counters": len(self.mismatches),
            "models": sorted({c.model_id for c in self.checks}),
            "predicted": dict(sorted(predicted.items())),
        }

    def render(self) -> str:
        """Human-readable one-line-per-check summary."""
        lines = [f"cost oracle: verdict={self.verdict} "
                 f"({len(self.checks)} checks)"]
        for check in self.checks:
            marks = ", ".join(
                f"{e.counter}={e.measured}"
                + ("" if e.status == "match" else f" (predicted {e.predicted})")
                for e in check.entries
                if e.status in ("match", "mismatch")
            )
            lines.append(f"  [{check.status}] {check.model_id}: {marks or check.note}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def __call__(self, record) -> None:
        kind, name, attrs = _record_fields(record)
        if kind == "event" and name == "cost.model":
            self._on_announcement(attrs)
        elif kind == "span" and name in _TRIGGER_COUNTERS:
            pending = self._pending.pop(name, None)
            if pending is None:
                return
            model_id, bindings = pending
            measured = {
                key: attrs[key]
                for key in _TRIGGER_COUNTERS[name]
                if key in attrs
            }
            if not measured:
                return  # not a close record with counters
            bindings = dict(bindings)
            if "rounds" in measured:
                bindings.setdefault("R", measured["rounds"])
            self._evaluate(
                model_id, bindings, measured, halted=attrs.get("halted")
            )

    def _on_announcement(self, attrs: dict) -> None:
        model_id = attrs.get("model")
        if not model_id:
            return
        bindings = dict(attrs.get("params") or {})
        trigger = attrs.get("trigger")
        if trigger == "inline":
            self._evaluate(
                model_id, bindings, dict(attrs.get("measured") or {}),
                halted=None,
            )
        elif trigger in _TRIGGER_COUNTERS:
            # Latest announcement wins: a crashed run never pairs.
            self._pending[trigger] = (model_id, bindings)

    def _evaluate(
        self, model_id: str, bindings: dict, measured: dict, *, halted
    ) -> None:
        try:
            model = cost_model_for(model_id)
        except KeyError:
            self._finish(CostCheck(
                model_id, "skipped", bindings, note="unknown model id"
            ))
            return
        if not model.applicable(bindings):
            self._finish(CostCheck(
                model_id, "inapplicable", bindings,
                note=model.guard_note or "model guard rejected bindings",
            ))
            return
        if halted is False:
            self._finish(CostCheck(
                model_id, "skipped", bindings,
                note="run hit max_rounds without halting",
            ))
            return
        entries = model.check(bindings, measured)
        evaluated = [e for e in entries if e.status in ("match", "mismatch")]
        if not evaluated:
            self._finish(CostCheck(
                model_id, "skipped", bindings, entries=entries,
                note="no measured counters matched the model",
            ))
            return
        status = "fail" if any(
            e.status == "mismatch" for e in evaluated
        ) else "pass"
        self._finish(CostCheck(model_id, status, bindings, entries=entries))

    def _finish(self, check: CostCheck) -> None:
        self.checks.append(check)
        if self._tracer is not None:
            self._tracer.event("cost.predicted", **check.to_attrs())
            for entry in check.mismatches:
                attrs = entry.to_attrs()
                attrs["model"] = check.model_id
                drift = entry.drift
                if drift is not None:
                    attrs["drift"] = drift
                self._tracer.event("cost.mismatch", **attrs)
        if self._strict and check.mismatches:
            raise CostMismatchError(check.model_id, check.mismatches[0])


def check_trace_records(records, *, strict: bool = False) -> CostOracle:
    """Replay captured records (or JSONL dicts) through a fresh oracle.

    The offline twin of live subscription: ``repro cost check --trace``
    and the drift-injection tests feed saved traces through this.
    """
    oracle = CostOracle(strict=strict)
    for record in records:
        oracle(record)
    return oracle
