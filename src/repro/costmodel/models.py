"""The cost-model registry: every protocol's symbolic ledger.

Each model is derived from the protocol's code, not fit to traces -- the
docstrings state the derivation so a mismatch always means *the code
changed*, never "the constant drifted".  Message sizes come from
:mod:`repro.protocols.wire` via :mod:`repro.costmodel.symbols`, so the
formulas are bit-exact mirrors of the wire format.

Trigger conventions (see :class:`repro.costmodel.oracle.CostOracle`):

* ``mpc.run`` models predict the simulator's run-close counters
  (``rounds``, ``total_messages``, ``total_message_bits``,
  ``total_oracle_queries``);
* ``ram.run`` models predict the word-RAM interpreter's
  (``instructions``, ``time``, ``oracle_queries``,
  ``peak_memory_words``);
* ``inline`` models carry their measurement in the announcement itself
  (Monte-Carlo success counts);
* ``static`` models have no runtime trigger -- they exist for
  ``repro cost show/eval`` and the property tests that pin them to
  their numeric twins in :mod:`repro.bounds` and
  :mod:`repro.compression`.
"""

from __future__ import annotations

from functools import lru_cache

from repro.costmodel.backend import require_sympy
from repro.costmodel.formulas import CostModel, CounterFormula
from repro.costmodel.symbols import (
    count_bits,
    frontier_bits,
    log2p,
    node_index_bits,
    piece_index_bits,
    store_bits,
    syms,
)

__all__ = [
    "all_models",
    "cost_model_for",
    "model_ids",
    "runner_model_map",
    "paper_table2_constraints",
    "paper_table3_constraints",
]

#: Protocol runner / estimator function names -> model ids, used by
#: ``repro list`` to mark experiments with cost coverage and by
#: ``repro cost check`` to pick its default experiment set.
_RUNNER_MODELS = {
    "run_chain": ("chain",),
    "run_pipeline": ("simline_pipeline",),
    "run_fullmem": ("fullmem.colocated", "fullmem.spread"),
    "run_pointer_jump": ("pointer_jump",),
    "run_line_on_ram": ("ram.line",),
    "run_simline_on_ram": ("ram.simline",),
    "estimate_line_skip_probability": ("guessing.line",),
    "estimate_simline_skip_probability": ("guessing.simline",),
}


def runner_model_map() -> dict[str, tuple[str, ...]]:
    """``{runner function name: model ids}`` (sympy-free; copy)."""
    return dict(_RUNNER_MODELS)


def _chain_model() -> CostModel:
    """Chain protocol (Section 3.1 / Lemma 3.2): exact given rounds.

    The round count ``R`` is a random variable (the pointer is the
    oracle's random ``l_i``); *conditioned on* ``R``, the traffic is
    deterministic: every working round each of the ``m`` machines
    re-sends its ``b``-piece store to itself and the frontier holder
    forwards the token (``m + 1`` messages, ``m·SB + F`` bits); the
    finishing round replaces the finisher's store with the ``m``-wide
    DONE broadcast (``2m - 1`` messages, ``(m-1)·SB + 2m`` bits).  With
    ``W = R - 1`` working rounds that is exactly the sums below.  The
    round count itself is banded ``[2, T + 1]``: every working round
    advances at least one node (the handoff target owns the needed
    piece), so at most ``T`` working rounds plus the halt handshake; the
    floor is one finishing round plus the handshake.  No tighter lower
    edge exists -- a lucky pointer sequence can stay inside one window
    for many consecutive nodes, so per-round progress is unbounded.
    """
    s_ = syms()
    SB = store_bits(s_.v, s_.u, s_.b)
    F = frontier_bits(s_.v, s_.u, s_.T)
    sp = require_sympy()
    return CostModel(
        model_id="chain",
        title="Line chain-following protocol",
        trigger="mpc.run",
        ref="Section 3.1 protocol; Lemma 3.2 (round band)",
        guard=lambda bnd: bnd.get("q") is None and bnd.get("uniform", True),
        guard_note="unlimited per-round queries, uniform storage windows",
        formulas=(
            CounterFormula(
                "rounds", kind="band",
                lo=sp.Integer(2), hi=s_.T + 1,
                ref="protocol worst case: one advance per working round",
                note="random pointer: exact only conditioned on the run",
            ),
            CounterFormula(
                "total_messages",
                expr=(s_.R - 2) * (s_.m + 1) + 2 * s_.m - 1,
                ref="Section 3.1 protocol accounting",
            ),
            CounterFormula(
                "total_message_bits",
                expr=(s_.R - 2) * (s_.m * SB + F)
                + 2 * s_.m + (s_.m - 1) * SB,
                ref="wire.store_bits_required / frontier_bits_required",
            ),
            CounterFormula(
                "total_oracle_queries", expr=s_.T,
                ref="Definition 3.1: one query advances one chain node",
            ),
        ),
    )


def _pipeline_model() -> CostModel:
    """SimLine pipeline (Theorem A.1 upper bound): fully deterministic.

    With aligned windows (``v = m·b``, ``m >= 2``) the frontier sweeps
    the machines in order; a window of ``b`` nodes takes
    ``ceil(b/q_cap)`` rounds (``q_cap`` = per-round query budget capped
    at ``b``), the final partial window ``r = T - b·(ceil(T/b)-1)``
    takes ``ceil(r/q_cap)``.  Budget stalls hand the frontier to *self*
    (merged with the store into one message), window exits hand it to
    the next machine (one extra message) -- hence the ``H = ceil(T/b) -
    1`` hop term.  Bits per working round are identical either way.
    """
    s_ = syms()
    sp = require_sympy()
    SB = store_bits(s_.v, s_.u, s_.b)
    F = frontier_bits(s_.v, s_.u, s_.T)
    full = sp.ceiling(s_.T / s_.b) - 1  # completed windows = hops
    rem = s_.T - s_.b * full  # nodes in the final window
    W = full * sp.ceiling(s_.b / s_.qcap) + sp.ceiling(rem / s_.qcap)
    return CostModel(
        model_id="simline_pipeline",
        title="SimLine round-robin pipeline",
        trigger="mpc.run",
        ref="Theorem A.1 upper bound; Lemma A.2 (tightness)",
        guard=lambda bnd: (
            bnd.get("m", 0) >= 2 and bnd.get("v") == bnd.get("m", 0) * bnd.get("b", 0)
        ),
        guard_note="aligned windows (v = m*b) on at least two machines",
        formulas=(
            CounterFormula(
                "rounds", expr=W + 1,
                ref="Theorem A.1: ~T/b = T*u/s working rounds",
            ),
            CounterFormula(
                "total_messages",
                expr=(W - 1) * s_.m + full + 2 * s_.m - 1,
                ref="pipeline accounting: one hop per completed window",
            ),
            CounterFormula(
                "total_message_bits",
                expr=(W - 1) * (s_.m * SB + F) + 2 * s_.m + (s_.m - 1) * SB,
                ref="wire.store_bits_required / frontier_bits_required",
            ),
            CounterFormula(
                "total_oracle_queries", expr=s_.T,
                ref="Definition A.1: one query per chain node",
            ),
        ),
    )


def _fullmem_models() -> tuple[CostModel, CostModel]:
    """Full-memory protocols (Section 1, the ``s = S`` endpoint)."""
    s_ = syms()
    sp = require_sympy()
    colocated = CostModel(
        model_id="fullmem.colocated",
        title="Full-memory protocol, input colocated on machine 0",
        trigger="mpc.run",
        ref="Section 1: one round when s = S",
        formulas=(
            CounterFormula(
                "rounds", expr=sp.Integer(2),
                ref="1 compute round + halt handshake",
            ),
            CounterFormula(
                "total_messages", expr=s_.m, ref="DONE broadcast only"
            ),
            CounterFormula(
                "total_message_bits", expr=2 * s_.m,
                ref="wire.encode_done: 2 bits per DONE",
            ),
            CounterFormula(
                "total_oracle_queries", expr=s_.T,
                ref="w in-round adaptive queries",
            ),
        ),
    )
    per = sp.ceiling(s_.v / s_.m)  # share size
    mne = sp.ceiling(s_.v / per)  # machines holding a nonempty share
    spread = CostModel(
        model_id="fullmem.spread",
        title="Full-memory protocol, input spread across machines",
        trigger="mpc.run",
        ref="Section 1: two rounds when s = S, input distributed",
        guard=lambda bnd: bnd.get("m", 0) >= 2,
        guard_note="at least two machines (else it is the colocated case)",
        formulas=(
            CounterFormula(
                "rounds", expr=sp.Integer(3),
                ref="gather + compute + halt handshake",
            ),
            CounterFormula(
                "total_messages", expr=mne + s_.m,
                ref="one share message per nonempty machine, then DONE",
            ),
            CounterFormula(
                "total_message_bits",
                expr=mne * (2 + count_bits(s_.v))
                + s_.v * (piece_index_bits(s_.v) + s_.u)
                + 2 * s_.m,
                ref="wire.store_bits_required summed over shares",
            ),
            CounterFormula(
                "total_oracle_queries", expr=s_.T,
                ref="w in-round adaptive queries",
            ),
        ),
    )
    return colocated, spread


def _pointer_jump_model() -> CostModel:
    """One-round pointer jumping (Section 1.2): the MPC contrast case."""
    s_ = syms()
    sp = require_sympy()
    return CostModel(
        model_id="pointer_jump",
        title="One-round MPC pointer jumping",
        trigger="mpc.run",
        ref="Section 1.2: k adaptive queries in a single round",
        formulas=(
            CounterFormula("rounds", expr=sp.Integer(1), ref="Section 1.2"),
            CounterFormula(
                "total_messages", expr=sp.Integer(0),
                ref="single machine, output-and-halt",
            ),
            CounterFormula(
                "total_message_bits", expr=sp.Integer(0),
                ref="single machine, output-and-halt",
            ),
            CounterFormula(
                "total_oracle_queries", expr=s_.k,
                ref="one query per jump",
            ),
        ),
    )


def _ram_models() -> tuple[CostModel, CostModel]:
    """The Theorem 3.1 / A.1 upper-bound programs, instruction-exact.

    Counts read off :func:`repro.ram.programs.build_line_program` /
    ``build_simline_program``: Line runs a 4-instruction prologue, 16
    instructions per chain node, and a 2-instruction exit; SimLine a
    5-instruction prologue, 13 per node, 2 extra per round-robin wrap
    (``floor(T/v)`` wraps), and the same exit.  Every ORACLE adds
    ``n - 1`` to ``time`` beyond its instruction slot
    (:class:`repro.ram.machine.RamMachine`).  Peak memory is the gate
    output region's end: ``QOUT + out_words`` with the answer chunked
    into ``ceil(n / w_b)`` words.
    """
    s_ = syms()
    sp = require_sympy()
    answer_words = sp.ceiling(s_.n / s_.wb)
    line_instr = 16 * s_.T + 6
    simline_instr = 13 * s_.T + 2 * sp.floor(s_.T / s_.v) + 7
    needs_a_node = lambda bnd: bnd.get("T", 0) >= 1  # noqa: E731
    line = CostModel(
        model_id="ram.line",
        title="Line on the word-RAM",
        trigger="ram.run",
        ref="Theorem 3.1 upper bound: O(T*n) time, O(S) space",
        formulas=(
            CounterFormula(
                "instructions", expr=line_instr,
                ref="programs.build_line_program: 4 + 16*T + 2",
            ),
            CounterFormula(
                "time", expr=line_instr + s_.T * (s_.n - 1),
                ref="Theorem 3.1: n time units per oracle gate",
            ),
            CounterFormula(
                "oracle_queries", expr=s_.T, ref="one gate per chain node"
            ),
            CounterFormula(
                "peak_memory_words", expr=s_.v + 5 + answer_words,
                ref="layout: v pieces + 3-word gate in + 2-word gate out "
                "+ answer chunks",
                applies=needs_a_node,
            ),
        ),
    )
    simline = CostModel(
        model_id="ram.simline",
        title="SimLine on the word-RAM",
        trigger="ram.run",
        ref="Theorem A.1 upper bound",
        formulas=(
            CounterFormula(
                "instructions", expr=simline_instr,
                ref="programs.build_simline_program: 5 + 13*T "
                "+ 2*floor(T/v) + 2",
            ),
            CounterFormula(
                "time", expr=simline_instr + s_.T * (s_.n - 1),
                ref="Theorem A.1: n time units per oracle gate",
            ),
            CounterFormula(
                "oracle_queries", expr=s_.T, ref="one gate per chain node"
            ),
            CounterFormula(
                "peak_memory_words", expr=s_.v + 3 + answer_words,
                ref="layout: v pieces + 2-word gate in + 1-word gate out "
                "+ answer chunks",
                applies=needs_a_node,
            ),
        ),
    )
    return line, simline


def _guessing_models() -> tuple[CostModel, CostModel]:
    """Skip-ahead adversaries (Lemma 3.3 / A.7): statistical bounds.

    Each trial succeeds with probability at most ``2^-u``, so the
    success count is stochastically dominated by
    ``Binomial(trials, 2^-u)``.  The slack is a 6-sigma Poisson-style
    tail allowance ``6*sqrt(mu) + 3`` (false-alarm probability below
    ``1e-8`` even at ``mu < 1``): a declared, justified tolerance, not a
    fudge factor -- runs are seeded, so CI sees one fixed draw anyway.
    """
    s_ = syms()
    sp = require_sympy()
    mu = s_.trials * 2 ** (-s_.u)
    formulas = (
        CounterFormula(
            "successes", kind="bound",
            expr=mu, slack=6 * sp.sqrt(mu) + 3,
            ref="Lemma 3.3 / A.7: per-guess success <= 2^-u",
            note="6-sigma tail allowance over Binomial(trials, 2^-u)",
        ),
    )
    line = CostModel(
        model_id="guessing.line",
        title="Line skip-ahead Monte Carlo",
        trigger="inline",
        ref="Lemma 3.3",
        formulas=formulas,
    )
    simline = CostModel(
        model_id="guessing.simline",
        title="SimLine skip-ahead Monte Carlo",
        trigger="inline",
        ref="Lemma A.7",
        formulas=formulas,
    )
    return line, simline


def _encoding_models() -> tuple[CostModel, CostModel]:
    """The Claim 3.7 / A.4 encoding lengths, symbolically.

    Exact mirrors of :meth:`repro.compression.line_encoder.
    LineCompressor.length_bound` (Line: ``alpha`` pieces over ``B``
    blocks of look-ahead ``p``) and :meth:`repro.compression.
    simline_encoder.SimLineCompressor.length_bound` (SimLine: one
    ``(pos, idx)`` record per recovered piece).  ``savings_per_piece``
    is the quantity the standing assumption ``u > log q + log v`` keeps
    positive -- the whole compression argument in one number.
    """
    s_ = syms()
    idx = piece_index_bits(s_.v)
    sp = require_sympy()
    slot = sp.Max(
        sp.Piecewise((sp.ceiling(sp.log(s_.q + 1, 2)), s_.q + 1 > 1), (0, True)),
        1,
    )
    pos = sp.Max(
        sp.Piecewise((sp.ceiling(sp.log(s_.q, 2)), s_.q > 1), (0, True)), 1
    )
    mem_len = sp.Max(
        sp.Piecewise((sp.ceiling(sp.log(s_.s + 1, 2)), s_.s + 1 > 1), (0, True)),
        1,
    )
    oracle_bits = s_.n * 2**s_.n
    block = (s_.p + 1) * (idx + slot)
    line = CostModel(
        model_id="encoding.claim37",
        title="Line encoding scheme (Enc, Dec)",
        trigger="static",
        ref="Claim 3.7; Definitions 3.4-3.5",
        formulas=(
            CounterFormula(
                "block_bits", expr=block,
                ref="Claim 3.7: (p+1)(log v + log(q+1)) per block",
            ),
            CounterFormula(
                "length_bound",
                expr=oracle_bits + mem_len + s_.s + count_bits(s_.v)
                + s_.B * block + (s_.v - s_.alpha) * s_.u,
                ref="Claim 3.7 worst-case encoding length",
            ),
            CounterFormula(
                "savings_per_piece", expr=s_.u - block,
                ref="Lemma 3.6 standing assumption keeps this positive",
            ),
        ),
    )
    simline = CostModel(
        model_id="encoding.claimA4",
        title="SimLine encoding scheme (Enc, Dec)",
        trigger="static",
        ref="Claim A.4",
        formulas=(
            CounterFormula(
                "length_bound",
                expr=oracle_bits + mem_len + s_.s + count_bits(s_.v)
                + s_.alpha * (pos + idx) + (s_.v - s_.alpha) * s_.u,
                ref="Claim A.4 worst-case encoding length",
            ),
            CounterFormula(
                "savings_per_piece", expr=s_.u - pos - idx,
                ref="Claim A.4: u - log q - log v saved per recovery",
            ),
        ),
    )
    return line, simline


def _bounds_models() -> tuple[CostModel, CostModel]:
    """Section 3 bound formulas, symbolic twins of ``repro.bounds``."""
    s_ = syms()
    sp = require_sympy()
    denom = s_.u - ((s_.p + 2) * log2p(s_.v) + log2p(s_.q))
    lemma36 = CostModel(
        model_id="bounds.lemma36",
        title="Lemma 3.6 revealed-set threshold",
        trigger="static",
        ref="Lemma 3.6",
        formulas=(
            CounterFormula(
                "required_u", expr=(s_.p + 2) * log2p(s_.v) + log2p(s_.q),
                ref="Lemma 3.6 standing assumption",
            ),
            CounterFormula(
                "h", expr=s_.s / denom + 1,
                ref="Lemma 3.6: h = s / (u - (p+2)log v - log q) + 1",
            ),
            CounterFormula(
                "probability_log2", expr=-denom,
                ref="Lemma 3.6 failure probability exponent",
            ),
        ),
    )
    lookahead = sp.Max(1, sp.ceiling(sp.log(s_.T, 2)) ** 2)
    lemma32 = CostModel(
        model_id="bounds.lemma32",
        title="Lemma 3.2 round lower bound",
        trigger="static",
        ref="Lemma 3.2",
        formulas=(
            CounterFormula(
                "lookahead", expr=lookahead,
                ref="paper's window p = ceil(log2 w)^2",
                applies=lambda bnd: bnd.get("T", 0) >= 1,
            ),
            CounterFormula(
                "rounds_lower_bound",
                expr=sp.Piecewise((s_.T / s_.p, s_.T > 1), (1, True)),
                ref="Lemma 3.2: R >= w / log^2 w",
            ),
        ),
    )
    return lemma36, lemma32


@lru_cache(maxsize=1)
def _registry() -> dict[str, CostModel]:
    fullmem_c, fullmem_s = _fullmem_models()
    ram_line, ram_simline = _ram_models()
    guess_line, guess_simline = _guessing_models()
    enc_line, enc_simline = _encoding_models()
    lemma36, lemma32 = _bounds_models()
    models = (
        _chain_model(),
        _pipeline_model(),
        fullmem_c,
        fullmem_s,
        _pointer_jump_model(),
        ram_line,
        ram_simline,
        guess_line,
        guess_simline,
        enc_line,
        enc_simline,
        lemma36,
        lemma32,
    )
    return {model.model_id: model for model in models}


def model_ids() -> list[str]:
    """Every registered model id, sorted."""
    return sorted(_registry())


def all_models() -> list[CostModel]:
    """Every registered model, in id order."""
    reg = _registry()
    return [reg[model_id] for model_id in sorted(reg)]


def cost_model_for(model_id: str) -> CostModel:
    """Look one model up (KeyError with the known ids on a miss)."""
    reg = _registry()
    if model_id not in reg:
        raise KeyError(
            f"unknown cost model {model_id!r}; known: {sorted(reg)}"
        )
    return reg[model_id]


def paper_table2_constraints() -> dict[str, object]:
    """Table 2's parameter windows as sympy Booleans over ``n, S, T, q``.

    Symbolic twins of :func:`repro.bounds.paper_tables.table2` (with the
    default ``c_exp = 4``); the property tests evaluate both on the same
    configurations and require identical verdicts.
    """
    s_ = syms()
    sp = require_sympy()
    cap = 4 * s_.n ** sp.Rational(1, 4)
    return {
        "S_window": sp.And(s_.S >= s_.n, sp.log(s_.S, 2) < cap),
        "T_window": sp.And(s_.T >= s_.S, sp.log(s_.T, 2) < cap),
        "q_window": sp.Lt(log2p(s_.q), s_.n / 4),
    }


def paper_table3_constraints() -> dict[str, object]:
    """Table 3's derivations as sympy Booleans.

    Over ``u, v, S, T, ell, z, n, q`` -- twins of
    :func:`repro.bounds.paper_tables.table3`'s check column.
    """
    s_ = syms()
    sp = require_sympy()
    return {
        "space": sp.Eq(s_.u * s_.v, s_.S),
        "time": sp.Eq(s_.T, s_.T),
        "ell_covers_v": sp.Ge(2**s_.ell, s_.v),
        "answer_partition": sp.Eq(s_.ell + s_.u + s_.z, s_.n),
        "savings_positive": sp.Gt(s_.u, log2p(s_.q) + log2p(s_.v)),
    }
