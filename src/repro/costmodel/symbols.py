"""Shared symbols and bit-width helpers for the cost formulas.

Everything here mirrors a concrete accounting function bit for bit:

* :func:`bits_needed`    -- ``repro.bits.bits_needed`` (0 for one value);
* :func:`log2p`          -- the paper's ``log x`` convention (0 for
  ``x <= 1``), as used throughout :mod:`repro.bounds`;
* :func:`store_bits` / :func:`frontier_bits` -- the exact wire sizes of
  :mod:`repro.protocols.wire` (``store_bits_required`` /
  ``frontier_bits_required``).

The symbol set is the paper's Table 1-3 vocabulary: ``n`` (oracle
width), ``m`` (machines), ``s`` (local memory bits), ``q`` (per-round
queries), ``T`` (chain length, the paper's ``T = w``), ``u``/``v``
(piece width / count), plus the protocol-level ``b`` (pieces per
machine), ``R`` (measured rounds), ``wb`` (RAM word bits), ``k``
(pointer jumps), ``p`` (look-ahead window), ``alpha``/``B`` (encoding
recoveries / blocks).

Access the namespace via :func:`syms` -- import-time sympy use is
forbidden (see :mod:`repro.costmodel.backend`).
"""

from __future__ import annotations

from functools import lru_cache
from types import SimpleNamespace

from repro.costmodel.backend import require_sympy

__all__ = [
    "syms",
    "bits_needed",
    "log2p",
    "piece_index_bits",
    "count_bits",
    "node_index_bits",
    "store_bits",
    "frontier_bits",
]


@lru_cache(maxsize=1)
def syms() -> SimpleNamespace:
    """The shared symbol namespace (one instance, so exprs compare equal)."""
    sp = require_sympy()
    pos = dict(integer=True, positive=True)
    nonneg = dict(integer=True, nonnegative=True)
    return SimpleNamespace(
        n=sp.Symbol("n", **pos),
        m=sp.Symbol("m", **pos),
        s=sp.Symbol("s", **pos),
        q=sp.Symbol("q", **pos),
        T=sp.Symbol("T", **pos),
        u=sp.Symbol("u", **pos),
        v=sp.Symbol("v", **pos),
        b=sp.Symbol("b", **pos),
        R=sp.Symbol("R", **pos),
        wb=sp.Symbol("wb", **pos),
        k=sp.Symbol("k", **nonneg),
        p=sp.Symbol("p", **pos),
        qcap=sp.Symbol("qcap", **pos),
        alpha=sp.Symbol("alpha", **nonneg),
        B=sp.Symbol("B", **nonneg),
        trials=sp.Symbol("trials", **pos),
        S=sp.Symbol("S", **pos),
        ell=sp.Symbol("ell", **pos),
        z=sp.Symbol("z", **nonneg),
    )


def bits_needed(x):
    """``repro.bits.bits_needed``: ``ceil(log2 x)`` for ``x > 1``, else 0."""
    sp = require_sympy()
    return sp.Piecewise((sp.ceiling(sp.log(x, 2)), x > 1), (0, True))


def log2p(x):
    """The bounds modules' ``log2(x) if x > 1 else 0`` convention."""
    sp = require_sympy()
    return sp.Piecewise((sp.log(x, 2), x > 1), (0, True))


def piece_index_bits(v):
    """``wire._piece_index_bits``: ``max(bits_needed(v), 1)``."""
    sp = require_sympy()
    return sp.Max(bits_needed(v), 1)


def count_bits(v):
    """``wire._count_bits``: ``max(bits_needed(v + 1), 1)``."""
    sp = require_sympy()
    return sp.Max(bits_needed(v + 1), 1)


def node_index_bits(w):
    """``wire._node_index_bits``: ``bits_needed(w + 1)``."""
    return bits_needed(w + 1)


def store_bits(v, u, num_pieces):
    """``wire.store_bits_required``: one STORE message of ``num_pieces``."""
    return 2 + count_bits(v) + num_pieces * (piece_index_bits(v) + u)


def frontier_bits(v, u, w):
    """``wire.frontier_bits_required``: one FRONTIER message."""
    return 2 + node_index_bits(w) + piece_index_bits(v) + u
