"""Symbolic cost models: exact predicted-vs-measured counter ledgers.

The paper's protocols have *closed-form* costs: the chain protocol's
message traffic, the pipeline's round count, the RAM programs'
instruction totals are all exact functions of ``(n, m, s, q, T)`` (plus
the derived ``u, v, b``).  The tracer already measures every one of
those counters; this package writes the formulas down **symbolically**
(sympy), annotates each with its paper reference, and checks measured
runs against the predictions -- exactly, or within a declared and
justified slack term.

Layers:

* :mod:`repro.costmodel.backend`  -- the lazy sympy gate (the rest of
  the CLI works without sympy; cost commands fail with a clear message);
* :mod:`repro.costmodel.symbols`  -- shared symbols and the bit-width
  helpers (``bits_needed``, STORE/FRONTIER sizes) as sympy expressions;
* :mod:`repro.costmodel.formulas` -- :class:`CounterFormula` /
  :class:`CostModel`: one counter prediction, one protocol's ledger;
* :mod:`repro.costmodel.models`   -- the registry: chain, pipeline,
  fullmem, pointer-jump, guessing, RAM programs, encoding schemes,
  bound formulas;
* :mod:`repro.costmodel.announce` -- sympy-free helpers protocols use
  to emit ``cost.model`` announcement events;
* :mod:`repro.costmodel.oracle`   -- :class:`CostOracle`, the tracer
  subscriber pairing announcements with ``mpc.run`` / ``ram.run`` spans
  and emitting ``cost.predicted`` / ``cost.mismatch`` events;
* :mod:`repro.costmodel.ledger`   -- rendering: formula listings
  (pretty / LaTeX), numeric evaluation tables, predicted-vs-measured
  ledgers for the CLI and the HTML report.

See docs/OBSERVABILITY.md ("Cost-model oracle") and docs/PAPER_MAP.md
(formula cross-reference).
"""

from __future__ import annotations

from repro.costmodel.announce import (
    chain_cost_bindings,
    fullmem_cost_bindings,
    pipeline_cost_bindings,
    pointer_jump_cost_bindings,
)
from repro.costmodel.backend import (
    CostModelUnavailable,
    available,
    require_sympy,
)
from repro.costmodel.formulas import (
    CostEntry,
    CostEvalError,
    CostModel,
    CounterFormula,
)
from repro.costmodel.ledger import (
    eval_table,
    ledger_from_records,
    render_formulas,
    render_ledger,
)
from repro.costmodel.models import (
    all_models,
    cost_model_for,
    model_ids,
    paper_table2_constraints,
    paper_table3_constraints,
    runner_model_map,
)
from repro.costmodel.oracle import (
    CostCheck,
    CostMismatchError,
    CostOracle,
    check_trace_records,
)

__all__ = [
    "CostModelUnavailable",
    "available",
    "require_sympy",
    "CostEntry",
    "CostEvalError",
    "CostModel",
    "CounterFormula",
    "all_models",
    "cost_model_for",
    "model_ids",
    "runner_model_map",
    "paper_table2_constraints",
    "paper_table3_constraints",
    "CostCheck",
    "CostMismatchError",
    "CostOracle",
    "check_trace_records",
    "chain_cost_bindings",
    "pipeline_cost_bindings",
    "fullmem_cost_bindings",
    "pointer_jump_cost_bindings",
    "eval_table",
    "ledger_from_records",
    "render_formulas",
    "render_ledger",
]
