"""The trace query language: predicates, projections, aggregations.

``repro query`` runs a one-line filter/aggregate expression against a
:class:`~repro.obs.forensics.TraceIndex`, so questions like "how many
oracle queries did machine 3 make after round 5" are one SQL round-trip
over the index instead of a JSONL scan::

    repro query trace.jsonl 'name=oracle.query machine=3 round>=5 | count by round'

Grammar (shlex-tokenized, whitespace-separated)::

    query      := predicate* [ '|' tail ]
    predicate  := FIELD OP VALUE          (no spaces around OP)
    OP         := '=' '!=' '>=' '<=' '>' '<' '~'
    tail       := 'count'                  [ 'by' FIELDS ]
                | ('sum'|'mean'|'min'|'max') FIELD [ 'by' FIELDS ]
                | 'show' FIELDS            [ 'limit' N ]
                | 'timeline'
    FIELDS     := FIELD [ ',' FIELD ]*

``=`` with a ``*`` in the value is a glob (``name=mpc.*``); ``~`` is a
substring match.  Fields resolve to real columns when they are record
basics (``kind``, ``name``, ``ts``, ``dur``, ``seq``) or promoted attrs
(:data:`~repro.obs.forensics.PROMOTED_ATTRS`); any other dotted name is
looked up inside the record's ``attrs`` JSON via ``json_extract``, so
every attribute ever traced is queryable, just without an index.

``timeline`` reconstructs per-machine activity: one line per
``mpc.machine_step`` / ``oracle.query`` / ``monitor.violation`` record
(after the query's predicates), grouped by machine in stream order.
"""

from __future__ import annotations

import json
import re
import shlex
from dataclasses import dataclass, field
from typing import Sequence

from repro.obs.forensics import PROMOTED_ATTRS, TraceIndex

__all__ = [
    "QueryError",
    "Predicate",
    "Query",
    "QueryResult",
    "parse_query",
    "run_query",
    "render_result",
]


class QueryError(ValueError):
    """A query string that does not parse or reference valid fields."""


#: Record basics stored as real columns (everything else is an attr).
_BASE_COLUMNS = ("seq", "kind", "name", "ts", "dur")

_COLUMN_FIELDS = frozenset(_BASE_COLUMNS) | frozenset(PROMOTED_ATTRS)

#: Attr names must look like dotted identifiers; anything else is
#: rejected before it can reach SQL (values always go through bound
#: parameters, field names are validated then inlined).
_FIELD_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z0-9_]+)*$")

_OPS = ("!=", ">=", "<=", "=", ">", "<", "~")

_PREDICATE_RE = re.compile(
    r"^(?P<field>[^=!<>~]+)(?P<op>!=|>=|<=|=|>|<|~)(?P<value>.*)$"
)

_AGG_FNS = {"count": "COUNT", "sum": "SUM", "mean": "AVG",
            "min": "MIN", "max": "MAX"}

#: Record names the ``timeline`` tail shows (machine-attributed
#: activity plus the anomalies riding it).
TIMELINE_NAMES = ("mpc.machine_step", "oracle.query", "monitor.violation")

_DEFAULT_LIMIT = 20


def _field_expr(name: str) -> str:
    """The SQL expression for a query field (validated, then inlined)."""
    if not _FIELD_RE.match(name):
        raise QueryError(f"invalid field name: {name!r}")
    if name in _COLUMN_FIELDS:
        return name
    # Dotted attr names address nested objects: sent_to.3 -> $.sent_to.3
    return f"json_extract(attrs, '$.{name}')"


def _coerce(value: str) -> object:
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    return value


@dataclass(frozen=True)
class Predicate:
    """One ``field OP value`` filter."""

    field: str
    op: str
    value: object

    def sql(self) -> tuple[str, list]:
        expr = _field_expr(self.field)
        if self.op == "~":
            return f"{expr} LIKE ?", [f"%{self.value}%"]
        if self.op in ("=", "!=") and isinstance(self.value, str) \
                and "*" in self.value:
            like = self.value.replace("%", r"\%").replace("*", "%")
            negate = "NOT " if self.op == "!=" else ""
            return f"{expr} {negate}LIKE ? ESCAPE '\\'", [like]
        return f"{expr} {self.op} ?", [self.value]


@dataclass
class Query:
    """A parsed query: predicates plus at most one tail clause."""

    predicates: list[Predicate] = field(default_factory=list)
    mode: str = "show"           # "show" | "aggregate" | "timeline"
    agg_fn: str | None = None    # count/sum/mean/min/max
    agg_field: str | None = None
    group_by: list[str] = field(default_factory=list)
    projections: list[str] = field(default_factory=list)
    limit: int | None = None


def _split_fields(token: str) -> list[str]:
    return [f for f in token.split(",") if f]


def parse_query(text: str) -> Query:
    """Parse one query line (see module docstring for the grammar)."""
    head, sep, tail = text.partition("|")
    query = Query()
    for token in shlex.split(head):
        m = _PREDICATE_RE.match(token)
        if not m:
            raise QueryError(
                f"bad predicate {token!r} (expected field OP value, "
                f"OP one of {' '.join(_OPS)})"
            )
        fname = m.group("field").strip()
        if not _FIELD_RE.match(fname):
            raise QueryError(f"invalid field name: {fname!r}")
        query.predicates.append(Predicate(
            field=fname,
            op=m.group("op"),
            value=_coerce(m.group("value").strip()),
        ))
    if not sep:
        return query
    tokens = shlex.split(tail)
    if not tokens:
        raise QueryError("empty clause after '|'")
    op, rest = tokens[0], tokens[1:]
    if op == "timeline":
        if rest:
            raise QueryError("timeline takes no arguments")
        query.mode = "timeline"
        return query
    if op == "show":
        if not rest:
            raise QueryError("show needs a field list: show name,machine")
        query.projections = _split_fields(rest[0])
        rest = rest[1:]
        if rest:
            if len(rest) != 2 or rest[0] != "limit":
                raise QueryError(f"unexpected tokens after show: {rest!r}")
            try:
                query.limit = int(rest[1])
            except ValueError:
                raise QueryError(f"bad limit: {rest[1]!r}") from None
        for f in query.projections:
            _field_expr(f)
        return query
    if op not in _AGG_FNS:
        raise QueryError(
            f"unknown clause {op!r} (expected count/sum/mean/min/max/"
            "show/timeline)"
        )
    query.mode = "aggregate"
    query.agg_fn = op
    if op != "count":
        if not rest:
            raise QueryError(f"{op} needs a field: {op} message_bits")
        query.agg_field = rest[0]
        _field_expr(query.agg_field)
        rest = rest[1:]
    if rest:
        if rest[0] != "by" or len(rest) != 2:
            raise QueryError(f"unexpected tokens after {op}: {rest!r}")
        query.group_by = _split_fields(rest[1])
        for f in query.group_by:
            _field_expr(f)
    return query


@dataclass
class QueryResult:
    """Rows out of one query, with their column headers."""

    columns: list[str]
    rows: list[tuple]
    mode: str = "show"
    truncated: bool = False


def _where(predicates: Sequence[Predicate]) -> tuple[str, list]:
    if not predicates:
        return "", []
    clauses, params = [], []
    for pred in predicates:
        clause, ps = pred.sql()
        clauses.append(clause)
        params.extend(ps)
    return " WHERE " + " AND ".join(clauses), params


def run_query(index: TraceIndex, query: Query) -> QueryResult:
    """Execute a parsed query against an open index."""
    where, params = _where(query.predicates)
    if query.mode == "aggregate":
        assert query.agg_fn is not None
        fn = _AGG_FNS[query.agg_fn]
        agg_expr = (
            "COUNT(*)" if query.agg_field is None
            else f"{fn}({_field_expr(query.agg_field)})"
        )
        agg_label = (
            query.agg_fn if query.agg_field is None
            else f"{query.agg_fn}({query.agg_field})"
        )
        group_exprs = [_field_expr(f) for f in query.group_by]
        select = ", ".join([*group_exprs, agg_expr])
        sql = f"SELECT {select} FROM records{where}"
        if group_exprs:
            by = ", ".join(group_exprs)
            sql += f" GROUP BY {by} ORDER BY {by}"
        rows = index.conn.execute(sql, params).fetchall()
        return QueryResult(
            columns=[*query.group_by, agg_label],
            rows=rows,
            mode="aggregate",
        )
    if query.mode == "timeline":
        names = ", ".join("?" * len(TIMELINE_NAMES))
        extra = f"name IN ({names})"
        clause = f"{where} AND {extra}" if where else f" WHERE {extra}"
        sql = (
            "SELECT machine, seq, name, round, attrs FROM records"
            f"{clause} ORDER BY machine, seq"
        )
        rows = index.conn.execute(sql, [*params, *TIMELINE_NAMES]).fetchall()
        return QueryResult(
            columns=["machine", "seq", "name", "round", "attrs"],
            rows=rows,
            mode="timeline",
        )
    columns = query.projections or ["seq", "kind", "name", "machine", "round"]
    limit = query.limit if query.limit is not None else _DEFAULT_LIMIT
    select = ", ".join(_field_expr(f) for f in columns)
    sql = f"SELECT {select} FROM records{where} ORDER BY seq LIMIT ?"
    rows = index.conn.execute(sql, [*params, limit + 1]).fetchall()
    truncated = len(rows) > limit
    return QueryResult(
        columns=list(columns),
        rows=rows[:limit],
        mode="show",
        truncated=truncated,
    )


def _render_timeline(result: QueryResult) -> str:
    lines: list[str] = []
    current: object = object()
    for machine, seq, name, round_k, attrs_json in result.rows:
        if machine != current:
            current = machine
            label = "?" if machine is None else machine
            lines.append(f"machine {label}:")
        attrs = json.loads(attrs_json)
        if name == "mpc.machine_step":
            sent_to = attrs.get("sent_to") or {}
            dests = ",".join(
                f"m{dst}:{bits}b" for dst, bits in sorted(sent_to.items())
            )
            detail = (
                f"recv {attrs.get('incoming_bits', 0)}b  "
                f"sent {attrs.get('sent_messages', 0)} msg/"
                f"{attrs.get('sent_bits', 0)}b"
                + (f" -> {dests}" if dests else "")
                + f"  q={attrs.get('oracle_queries', 0)}"
            )
        elif name == "oracle.query":
            detail = f"oracle.query key={attrs.get('key', '?')}" + (
                " (repeat)" if attrs.get("repeat") else ""
            )
        else:
            detail = f"{name}: {attrs.get('message', attrs.get('check', ''))}"
        lines.append(f"  r{round_k if round_k is not None else '?'} #{seq}  {detail}")
    if not lines:
        return "timeline: no matching machine activity"
    return "\n".join(lines)


def render_result(result: QueryResult) -> str:
    """Align rows into the text table ``repro query`` prints."""
    if result.mode == "timeline":
        return _render_timeline(result)
    if not result.rows:
        return "no matching records"

    def cell(value: object) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value)

    table = [result.columns] + [
        [cell(v) for v in row] for row in result.rows
    ]
    widths = [
        max(len(row[i]) for row in table) for i in range(len(result.columns))
    ]
    lines = [
        "  ".join(str(v).ljust(w) for v, w in zip(row, widths)).rstrip()
        for row in table
    ]
    lines.insert(1, "  ".join("-" * w for w in widths))
    if result.truncated:
        lines.append("... (truncated; add '| show ... limit N' for more)")
    return "\n".join(lines)
