"""Structured tracing: spans, events, and the ambient-tracer context.

The observability layer records *what the model paid for and when*: a
trace is an ordered stream of :class:`TraceRecord` entries -- spans
(named intervals with a wall-clock duration: an experiment, one MPC
round, one RAM execution) and events (point-in-time marks: one oracle
query, one machine step, one batch of RAM instructions).  Every record
carries free-form ``attrs`` holding the model-level counters the paper
reasons about (rounds, message bits, oracle queries ``q``, ...), so a
trace is simultaneously a profile and a transcript of Definition
2.1-2.4 quantities.

Instrumented code never imports a concrete tracer: it calls
:func:`get_tracer` and checks ``.enabled``.  The default is the
process-wide :data:`NULL_TRACER`, whose every method is a no-op so
untraced runs pay one attribute check per instrumentation site.  A real
:class:`Tracer` is installed for a scope with :func:`use_tracer`::

    from repro.obs import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        run_experiment("E-LINE")
    print(len(tracer.records))

The record stream fans out to any number of subscribers
(:meth:`Tracer.subscribe`): exporters (:mod:`repro.obs.exporters`) turn
it into JSONL files or a human-readable summary, invariant monitors
(:mod:`repro.obs.monitor`) check it against the paper's resource
budgets *while the run executes*, progress renderers
(:mod:`repro.obs.progress`) show per-round liveness, and
:mod:`repro.obs.metrics` aggregates it into per-round latency and
histogram metrics after the fact.

Subscribers only ever see *completed* spans (a span record is emitted
when the interval closes).  Profiling tools that must act at span
*boundaries* -- e.g. a :class:`~repro.obs.profile.ScopedCProfile` that
turns ``cProfile`` on only inside ``mpc.round`` -- register a **span
hook** (:meth:`Tracer.add_span_hook`): an object with
``span_start(name, attrs)`` / ``span_end(name)`` methods called at the
open and close of every span (and of hook-only scopes such as the
oracle's per-query window, see :meth:`Tracer.hook_scope`).  Hooks are
a profiling side-channel: they never receive records and cost nothing
when none are registered.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

__all__ = [
    "TraceRecord",
    "SpanHook",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "phase",
]


class SpanHook:
    """Base class for span-boundary hooks (see module docstring).

    Subclasses override either method; the defaults are no-ops so a
    hook interested only in starts (or only ends) stays minimal.
    """

    def span_start(self, name: str, attrs: dict) -> None:
        """Called when a span named ``name`` opens."""

    def span_end(self, name: str) -> None:
        """Called when a span named ``name`` closes (also on error exit)."""


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    ``kind`` is ``"span"`` or ``"event"``; ``ts`` is seconds since the
    tracer was created (for spans, the *start* time); ``dur`` is the
    span's duration in seconds and ``None`` for events.  ``attrs`` holds
    the model-level counters -- see docs/OBSERVABILITY.md for the schema
    of each record name.
    """

    kind: str
    name: str
    ts: float
    dur: float | None
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serializable view (the JSONL exporter's row)."""
        out: dict = {"kind": self.kind, "name": self.name, "ts": round(self.ts, 9)}
        if self.dur is not None:
            out["dur"] = round(self.dur, 9)
        if self.attrs:
            out["attrs"] = self.attrs
        return out


@dataclass
class OpenSpan:
    """A span opened with :meth:`Tracer.begin_span`, awaiting its end.

    ``attrs`` may be mutated before :meth:`Tracer.end_span` to add
    end-of-span attributes (the begin/end twin of mutating the dict
    yielded by :meth:`Tracer.span`).
    """

    name: str
    start: float
    attrs: dict = field(default_factory=dict)


class NullTracer:
    """The zero-overhead default: records nothing, ``enabled`` is False.

    Hot paths guard their instrumentation with ``if tracer.enabled:``,
    so under the null tracer the only cost is that boolean check.
    """

    enabled: bool = False
    has_span_hooks: bool = False

    @property
    def records(self) -> tuple[TraceRecord, ...]:
        return ()

    def event(self, name: str, **attrs) -> None:
        """Discard."""

    def record_span(self, name: str, start: float, **attrs) -> None:
        """Discard."""

    def now(self) -> float:
        """A clock is still provided so callers need no branching."""
        return time.perf_counter()

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[dict]:
        """No-op scope; the yielded dict is accepted and dropped."""
        yield {}

    def begin_span(self, name: str, **attrs) -> "OpenSpan":
        """No-op twin of :meth:`Tracer.begin_span`."""
        return OpenSpan(name, 0.0, attrs)

    def end_span(self, open_span: "OpenSpan", **attrs) -> None:
        """Discard."""

    @contextmanager
    def hook_scope(self, name: str) -> Iterator[None]:
        """No-op hook window."""
        yield

    def replay(self, record: "TraceRecord", **extra_attrs) -> None:
        """Discard."""


class Tracer:
    """A recording tracer with fan-out to any number of subscribers.

    Records accumulate in memory (``.records``, unless constructed with
    ``keep_records=False``) and are simultaneously pushed to every
    subscriber callable the moment they are emitted.  Subscribers are
    how exporters (stream a trace to disk), invariant monitors
    (:mod:`repro.obs.monitor`), and live progress renderers
    (:mod:`repro.obs.progress`) coexist on one stream::

        tracer = Tracer(sink=JsonlExporter("t.jsonl"))   # subscriber 1
        tracer.subscribe(InvariantMonitor(tracer=tracer))  # subscriber 2
        tracer.subscribe(LiveProgress())                   # subscriber 3

    ``sink`` is kept as a convenience alias for the first subscriber.
    Subscribers are notified in subscription order; a subscriber may
    itself emit records (e.g. a monitor emitting ``monitor.violation``),
    which re-enter the fan-out immediately.
    """

    enabled: bool = True

    def __init__(
        self,
        sink: Callable[[TraceRecord], None] | None = None,
        *,
        subscribers: Iterable[Callable[[TraceRecord], None]] = (),
        keep_records: bool = True,
    ) -> None:
        self._t0 = time.perf_counter()
        self._records: list[TraceRecord] = []
        self._keep_records = keep_records
        self._subscribers: list[Callable[[TraceRecord], None]] = []
        self._span_hooks: list[SpanHook] = []
        # Optional self-overhead meter (repro.telemetry.OverheadMeter):
        # times every _emit fan-out when attached; one attribute check
        # otherwise.
        self._meter = None
        if sink is not None:
            self._subscribers.append(sink)
        self._subscribers.extend(subscribers)

    @property
    def records(self) -> tuple[TraceRecord, ...]:
        """Everything recorded so far, in emission order."""
        return tuple(self._records)

    @property
    def subscribers(self) -> tuple[Callable[[TraceRecord], None], ...]:
        """The current fan-out targets, in notification order."""
        return tuple(self._subscribers)

    def subscribe(
        self, subscriber: Callable[[TraceRecord], None]
    ) -> Callable[[TraceRecord], None]:
        """Add a fan-out target; returns it (handy for inline lambdas)."""
        self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Callable[[TraceRecord], None]) -> None:
        """Remove a previously subscribed target (ValueError if absent)."""
        self._subscribers.remove(subscriber)

    @property
    def has_span_hooks(self) -> bool:
        """True when at least one span hook is registered.

        Hot paths that open hook-only scopes guard on this, so the
        common no-hooks case costs one attribute check.
        """
        return bool(self._span_hooks)

    def add_span_hook(self, hook: SpanHook) -> SpanHook:
        """Register a span-boundary hook; returns it."""
        self._span_hooks.append(hook)
        return hook

    def remove_span_hook(self, hook: SpanHook) -> None:
        """Remove a previously added hook (ValueError if absent)."""
        self._span_hooks.remove(hook)

    def _hooks_start(self, name: str, attrs: dict) -> None:
        for hook in tuple(self._span_hooks):
            hook.span_start(name, attrs)

    def _hooks_end(self, name: str) -> None:
        for hook in tuple(self._span_hooks):
            hook.span_end(name)

    def now(self) -> float:
        """Seconds since this tracer was created (the trace clock)."""
        return time.perf_counter() - self._t0

    def set_meter(self, meter) -> None:
        """Attach (or, with ``None``, detach) an overhead meter.

        The meter is an object with ``begin() -> token`` / ``end(token)``
        methods (see :class:`repro.telemetry.OverheadMeter`) timing the
        full fan-out of every record -- the observability tax the
        ``telemetry.overhead_frac`` report subtracts from backend
        comparisons.  Nested emissions (a subscriber emitting) are the
        meter's problem: it only times the outermost window.
        """
        self._meter = meter

    def _emit(self, record: TraceRecord) -> None:
        meter = self._meter
        if meter is None:
            if self._keep_records:
                self._records.append(record)
            # Snapshot: a subscriber may subscribe/unsubscribe
            # mid-notification.
            for subscriber in tuple(self._subscribers):
                subscriber(record)
            return
        token = meter.begin()
        try:
            if self._keep_records:
                self._records.append(record)
            for subscriber in tuple(self._subscribers):
                subscriber(record)
        finally:
            meter.end(token)

    def event(self, name: str, **attrs) -> None:
        """Record a point-in-time event."""
        self._emit(TraceRecord("event", name, self.now(), None, attrs))

    def record_span(self, name: str, start: float, **attrs) -> None:
        """Record a span that started at trace-clock time ``start``.

        The manual-timing twin of :meth:`span` for hot paths that guard
        on ``enabled`` and take their own timestamps via :meth:`now`.
        """
        self._emit(TraceRecord("span", name, start, self.now() - start, attrs))

    def begin_span(self, name: str, **attrs) -> OpenSpan:
        """Open a span now: notifies span hooks, emits nothing yet.

        The explicit twin of :meth:`span` for hot paths that cannot use
        a ``with`` block (the simulator's round loop).  Pair with
        :meth:`end_span`; mutate the returned ``OpenSpan.attrs`` to add
        end-of-span attributes.
        """
        if self._span_hooks:
            self._hooks_start(name, attrs)
        return OpenSpan(name, self.now(), attrs)

    def end_span(self, open_span: OpenSpan, **attrs) -> None:
        """Close a span from :meth:`begin_span` and emit its record."""
        if self._span_hooks:
            self._hooks_end(open_span.name)
        self._emit(TraceRecord(
            "span",
            open_span.name,
            open_span.start,
            self.now() - open_span.start,
            {**open_span.attrs, **attrs},
        ))

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[dict]:
        """Scope a span; mutate the yielded dict to add end-time attrs::

            with tracer.span("experiment", id="E-LINE") as out:
                ...
                out["passed"] = True
        """
        open_span = self.begin_span(name, **attrs)
        try:
            yield open_span.attrs
        finally:
            self.end_span(open_span)

    def replay(self, record: TraceRecord, **extra_attrs) -> None:
        """Re-emit a record captured on *another* tracer onto this stream.

        The worker-to-parent bridge of :mod:`repro.parallel`: a trial
        that ran under a private tracer (possibly in a worker process)
        ships its records back, and the parent replays them here so
        subscribers -- metrics, invariant monitors, exporters -- see one
        coherent stream.  The record's ``dur`` is preserved (it is a
        real measured interval); its ``ts`` is remapped to this tracer's
        clock *now*, keeping the parent stream monotonic.
        ``extra_attrs`` (e.g. ``worker=2, trial=17``) are merged over
        the record's own attributes.
        """
        self._emit(TraceRecord(
            record.kind,
            record.name,
            self.now(),
            record.dur,
            {**record.attrs, **extra_attrs} if extra_attrs else record.attrs,
        ))

    @contextmanager
    def hook_scope(self, name: str) -> Iterator[None]:
        """Notify span hooks of a named window without emitting a record.

        Used where a *record* per occurrence would be redundant or too
        hot (the oracle already emits an ``oracle.query`` event) but a
        scoped profiler still needs the boundaries.  Guard call sites
        with :attr:`has_span_hooks`.
        """
        self._hooks_start(name, {})
        try:
            yield
        finally:
            self._hooks_end(name)


#: Process-wide no-op tracer; the ambient default.
NULL_TRACER = NullTracer()

_active: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The ambient tracer instrumented code reports to."""
    return _active


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install ``tracer`` as ambient; returns the one it replaced."""
    global _active
    previous = _active
    _active = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer | NullTracer) -> Iterator[Tracer | NullTracer]:
    """Install ``tracer`` for a ``with`` scope, restoring on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@contextmanager
def phase(name: str, **attrs) -> Iterator[dict]:
    """A named phase span on the ambient tracer (no-op when untraced).

    Experiments wrap their sweeps in phases so a trace shows where the
    wall-clock went::

        with phase("sweep", f="1/4"):
            for w in ws: ...
    """
    with get_tracer().span("phase", phase=name, **attrs) as extra:
        yield extra
