"""Trace exporters: JSONL files and human-readable summaries.

A trace leaves the process in one of three shapes:

* **JSONL** -- one :class:`~repro.obs.tracer.TraceRecord` per line via
  :class:`JsonlExporter` (streaming, usable as a ``Tracer`` sink) or
  :func:`write_jsonl` (one shot).  :func:`read_jsonl` round-trips the
  file back into records for offline analysis.
* **summary** -- :func:`summarize` renders the per-name span/event
  totals as the compact table ``repro trace`` prints.
* **metrics** -- :class:`repro.obs.metrics.TraceMetrics` aggregates the
  model-level counters; see that module.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Sequence

from repro.obs.tracer import TraceRecord

__all__ = ["JsonlExporter", "write_jsonl", "read_jsonl", "summarize"]


class JsonlExporter:
    """Streams records to a JSONL file; usable as a ``Tracer`` sink.

    ::

        with JsonlExporter("trace.jsonl") as sink:
            with use_tracer(Tracer(sink=sink)):
                ...
    """

    def __init__(self, path: str) -> None:
        self._path = path
        self._fh: IO[str] | None = open(path, "w")
        self.written = 0

    @property
    def path(self) -> str:
        return self._path

    def __call__(self, record: TraceRecord) -> None:
        if self._fh is None:
            raise ValueError(f"exporter for {self._path} is closed")
        self._fh.write(json.dumps(record.to_dict(), sort_keys=True))
        self._fh.write("\n")
        self.written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_jsonl(records: Iterable[TraceRecord], path: str) -> int:
    """Write ``records`` to ``path``; returns the number written."""
    with JsonlExporter(path) as sink:
        for record in records:
            sink(record)
        return sink.written


def read_jsonl(path: str) -> list[TraceRecord]:
    """Load a JSONL trace back into :class:`TraceRecord` objects."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            records.append(
                TraceRecord(
                    kind=row["kind"],
                    name=row["name"],
                    ts=row["ts"],
                    dur=row.get("dur"),
                    attrs=row.get("attrs", {}),
                )
            )
    return records


def summarize(records: Sequence[TraceRecord]) -> str:
    """The human-readable rollup: count and total duration per name.

    One line per distinct record name, spans first (with total/mean
    duration), then events (count only), ordered by total time spent.
    """
    spans: dict[str, tuple[int, float]] = {}
    events: dict[str, int] = {}
    for rec in records:
        if rec.kind == "span":
            count, total = spans.get(rec.name, (0, 0.0))
            spans[rec.name] = (count + 1, total + (rec.dur or 0.0))
        else:
            events[rec.name] = events.get(rec.name, 0) + 1

    lines = [f"trace summary: {len(records)} records"]
    if spans:
        width = max(len(n) for n in spans)
        lines.append("  spans:")
        for name, (count, total) in sorted(
            spans.items(), key=lambda kv: -kv[1][1]
        ):
            mean = total / count
            lines.append(
                f"    {name:<{width}}  x{count:<6} total {total:9.4f}s  "
                f"mean {mean * 1e3:9.3f}ms"
            )
    if events:
        width = max(len(n) for n in events)
        lines.append("  events:")
        for name, count in sorted(events.items(), key=lambda kv: -kv[1]):
            lines.append(f"    {name:<{width}}  x{count}")
    return "\n".join(lines)
