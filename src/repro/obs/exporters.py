"""Trace exporters: JSONL files and human-readable summaries.

A trace leaves the process in one of three shapes:

* **JSONL** -- one :class:`~repro.obs.tracer.TraceRecord` per line via
  :class:`JsonlExporter` (streaming, usable as a ``Tracer`` sink) or
  :func:`write_jsonl` (one shot).  :func:`read_jsonl` round-trips the
  file back into records for offline analysis.
* **summary** -- :func:`summarize` renders the per-name span/event
  totals as the compact table ``repro trace`` prints.
* **metrics** -- :class:`repro.obs.metrics.TraceMetrics` aggregates the
  model-level counters; see that module.
"""

from __future__ import annotations

import json
import warnings
from typing import IO, Iterable, Iterator, Sequence

from repro.obs.tracer import TraceRecord

__all__ = [
    "JsonlExporter",
    "TraceFormatError",
    "coerce_jsonable",
    "write_jsonl",
    "read_jsonl",
    "iter_trace_records",
    "summarize",
]


class TraceFormatError(ValueError):
    """A JSONL file is not a trace (bad JSON mid-file, or rows that are
    not ``{kind, name, ...}`` record objects).

    Raised by :func:`iter_trace_records` so CLI consumers can exit with
    a clear message instead of a traceback.  A *final* unparseable line
    is not an error -- it is the signature of a run killed mid-write,
    and is tolerated with one warning.
    """


def _json_default(value: object) -> object:
    # numpy scalars (np.int64 bits counts, np.float64 probabilities)
    # leak into attrs from vectorized experiments; unwrap them rather
    # than killing the export mid-run.
    item = getattr(value, "item", None)
    if callable(item):
        try:
            unwrapped = item()
        except (TypeError, ValueError):
            unwrapped = value
        if isinstance(unwrapped, (bool, int, float, str)):
            return unwrapped
    return repr(value)


def coerce_jsonable(value):
    """Recursively force ``value`` into JSON-serializable shape.

    Mapping keys become strings, sequences become lists, scalar
    primitives pass through, and anything else (a stray ``Bits``, a
    numpy scalar, an exception object) is repr- or ``.item()``-coerced.
    Used by the JSONL exporter's fallback path and the Chrome-trace
    exporter, so one weird attr value degrades to a string instead of
    aborting an export.
    """
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): coerce_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [coerce_jsonable(v) for v in value]
    return _json_default(value)


def _dump_record(row: dict) -> str:
    try:
        return json.dumps(row, sort_keys=True, default=_json_default)
    except (TypeError, ValueError):
        # Mixed-type dict keys (sort_keys chokes) or similar: sanitize
        # the whole row and try once more.
        return json.dumps(coerce_jsonable(row), sort_keys=True)


class JsonlExporter:
    """Streams records to a JSONL file; usable as a ``Tracer`` sink.

    Crash-safe: every record is written as one complete newline-ended
    line and the stream is flushed every ``flush_every`` records, so a
    run that dies mid-experiment (exception, or even SIGKILL between
    flushes) still leaves a parseable JSONL prefix on disk.  Robust to
    attr payloads: values ``json`` cannot serialize (numpy scalars,
    ``Bits``, exceptions) are ``.item()``/repr-coerced instead of
    aborting the export (see :func:`coerce_jsonable`).  The
    context-manager form flushes and closes on both clean and
    exceptional exit::

        with JsonlExporter("trace.jsonl") as sink:
            with use_tracer(Tracer(sink=sink)):
                ...
    """

    def __init__(self, path: str, *, flush_every: int = 1) -> None:
        if flush_every <= 0:
            raise ValueError(f"flush_every must be positive, got {flush_every}")
        self._path = path
        self._fh: IO[str] | None = open(path, "w")
        self._flush_every = flush_every
        self.written = 0

    @property
    def path(self) -> str:
        return self._path

    @property
    def closed(self) -> bool:
        return self._fh is None

    def __call__(self, record: TraceRecord) -> None:
        if self._fh is None:
            raise ValueError(f"exporter for {self._path} is closed")
        # Every line ends with \n *after* a successful dump, so the file
        # always ends with a newline and a record whose serialization
        # fails (already softened by repr-coercion) cannot leave a
        # partial line behind.
        self._fh.write(_dump_record(record.to_dict()) + "\n")
        self.written += 1
        if self.written % self._flush_every == 0:
            self._fh.flush()

    def flush(self) -> None:
        """Push buffered lines to disk (no-op once closed)."""
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        """Flush and close; idempotent."""
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc) -> None:
        # Close on exceptions too: the file must stay parseable when
        # the traced workload fails (see tests/obs/test_exporters.py).
        self.close()


def write_jsonl(records: Iterable[TraceRecord], path: str) -> int:
    """Write ``records`` to ``path``; returns the number written."""
    with JsonlExporter(path) as sink:
        for record in records:
            sink(record)
        return sink.written


def _record_of_row(row: object, path: str, line_no: int) -> TraceRecord:
    if (
        not isinstance(row, dict)
        or not isinstance(row.get("kind"), str)
        or not isinstance(row.get("name"), str)
    ):
        raise TraceFormatError(
            f"{path}:{line_no}: not a trace record (expected an object "
            "with 'kind' and 'name' keys)"
        )
    return TraceRecord(
        kind=row["kind"],
        name=row["name"],
        ts=row.get("ts", 0.0),
        dur=row.get("dur"),
        attrs=row.get("attrs", {}),
    )


def iter_trace_records(path: str) -> Iterator[TraceRecord]:
    """Stream a JSONL trace as :class:`TraceRecord` objects, lazily.

    The one loading path every offline consumer shares (``repro
    report``, ``trace-diff``, ``cost check --trace``, the forensics
    index): records are yielded one line at a time, so a
    multi-hundred-MB trace never has to fit in memory unless the
    caller materializes it.

    Crash tolerance: a run killed between the exporter's write and its
    flush can leave a *truncated final line*.  That line is skipped
    with a single :class:`RuntimeWarning` instead of aborting -- every
    complete record before it is still usable.  Bad JSON anywhere
    *else*, or rows that are not record objects, raise
    :class:`TraceFormatError` (the file is not a trace).
    """
    with open(path) as fh:
        pending: tuple[int, str] | None = None
        line_no = 0
        for raw in fh:
            line_no += 1
            line = raw.strip()
            if not line:
                continue
            if pending is not None:
                # The unparseable line was not final after all.
                raise TraceFormatError(
                    f"{path}:{pending[0]}: invalid JSON mid-trace: "
                    f"{pending[1]}"
                )
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                pending = (line_no, str(exc))
                continue
            yield _record_of_row(row, path, line_no)
        if pending is not None:
            warnings.warn(
                f"{path}:{pending[0]}: skipping truncated final line "
                "(run died mid-write?)",
                RuntimeWarning,
                stacklevel=2,
            )


def read_jsonl(path: str) -> list[TraceRecord]:
    """Load a JSONL trace back into :class:`TraceRecord` objects.

    Materializing twin of :func:`iter_trace_records` (same tolerance
    for a truncated final line); prefer the iterator for single-pass
    consumers over large traces.
    """
    return list(iter_trace_records(path))


def summarize(records: Sequence[TraceRecord]) -> str:
    """The human-readable rollup: count and total duration per name.

    One line per distinct record name, spans first (with total/mean
    duration), then events (count only), ordered by total time spent.
    """
    spans: dict[str, tuple[int, float]] = {}
    events: dict[str, int] = {}
    for rec in records:
        if rec.kind == "span":
            count, total = spans.get(rec.name, (0, 0.0))
            spans[rec.name] = (count + 1, total + (rec.dur or 0.0))
        else:
            events[rec.name] = events.get(rec.name, 0) + 1

    lines = [f"trace summary: {len(records)} records"]
    if spans:
        width = max(len(n) for n in spans)
        lines.append("  spans:")
        for name, (count, total) in sorted(
            spans.items(), key=lambda kv: -kv[1][1]
        ):
            mean = total / count
            lines.append(
                f"    {name:<{width}}  x{count:<6} total {total:9.4f}s  "
                f"mean {mean * 1e3:9.3f}ms"
            )
    if events:
        width = max(len(n) for n in events)
        lines.append("  events:")
        for name, count in sorted(events.items(), key=lambda kv: -kv[1]):
            lines.append(f"    {name:<{width}}  x{count}")
    return "\n".join(lines)
