"""Bench baselines and the counter-regression gate.

``REPRO_BENCH_JSON=<dir>`` makes the benchmark harness drop one
``BENCH_<experiment>.json`` per run (wall-clock plus the aggregated
:class:`~repro.obs.metrics.TraceMetrics`).  This module turns those
files into a regression gate:

* every payload carries a **counter fingerprint** -- the model-level
  counters (rounds, messages, message bits, oracle queries, RAM
  instructions) that are *deterministic* for a fixed tree, because every
  experiment seeds its RNGs.  Counter drift therefore means the model's
  behavior changed, and is an exact, machine-checkable signal;
* wall-clock (``duration_s``) varies run to run, so it compares with a
  relative tolerance and is advisory by default;
* ``benchmarks/baseline.json`` commits the fingerprint of the current
  tree; ``repro bench-compare <baseline> <dir>`` diffs a fresh bench
  directory against it and renders the regression table CI fails on.

::

    REPRO_BENCH_JSON=out pytest benchmarks/bench_line_rounds.py
    python -m repro bench-compare benchmarks/baseline.json out
"""

from __future__ import annotations

import glob
import json
import os
import warnings
from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "COUNTER_PATHS",
    "counters_of",
    "bench_payload",
    "write_bench_json",
    "BenchEntry",
    "load_bench_dir",
    "load_baseline",
    "save_baseline",
    "Drift",
    "BenchComparison",
    "compare_benchmarks",
]

#: Counter name -> path into ``TraceMetrics.to_dict()``.  Everything
#: here is a deterministic model-level count; wall-clock lives outside.
COUNTER_PATHS: dict[str, tuple[str, ...]] = {
    "mpc.runs": ("mpc", "runs"),
    "mpc.rounds": ("mpc", "rounds"),
    "mpc.messages": ("mpc", "round_messages", "sum"),
    "mpc.message_bits": ("mpc", "round_message_bits", "sum"),
    "mpc.oracle_queries": ("mpc", "round_oracle_queries", "sum"),
    "oracle.queries": ("oracle", "queries"),
    "oracle.repeat_queries": ("oracle", "repeat_queries"),
    "ram.runs": ("ram", "runs"),
    "ram.instructions": ("ram", "instructions"),
    "ram.time": ("ram", "time"),
    "ram.oracle_queries": ("ram", "oracle_queries"),
    "ram.peak_memory_words": ("ram", "peak_memory_words"),
}

BASELINE_VERSION = 1


def counters_of(metrics) -> dict[str, int]:
    """The deterministic counter fingerprint of one trace's metrics.

    Accepts a :class:`~repro.obs.metrics.TraceMetrics` instance or its
    ``to_dict()`` mapping (callers should prefer passing the instance;
    hand-flattening first is deprecated).
    """
    if not isinstance(metrics, Mapping):
        metrics = metrics.to_dict()
    out: dict[str, int] = {}
    for name, path in COUNTER_PATHS.items():
        node: object = metrics
        for key in path:
            if not isinstance(node, Mapping) or key not in node:
                node = 0
                break
            node = node[key]
        out[name] = int(node)  # type: ignore[call-overload]
    return out


def bench_payload(result, metrics, *, scale: str) -> dict:
    """The ``BENCH_*.json`` content for one experiment run.

    ``result`` is an :class:`~repro.experiments.base.ExperimentResult`,
    ``metrics`` a :class:`~repro.obs.metrics.TraceMetrics`.
    """
    metrics_dict = metrics.to_dict()
    return {
        "experiment_id": result.experiment_id,
        "scale": scale,
        "passed": result.passed,
        "summary": result.summary,
        "duration_s": result.metrics.get("duration_s"),
        "counters": counters_of(metrics_dict),
        "metrics": metrics_dict,
    }


def write_bench_json(payload: dict, out_dir: str) -> str:
    """Write one payload as ``<out_dir>/BENCH_<id>.json``; returns the path."""
    os.makedirs(out_dir, exist_ok=True)
    safe_id = payload["experiment_id"].replace("/", "_")
    path = os.path.join(out_dir, f"BENCH_{safe_id}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return path


@dataclass(frozen=True)
class BenchEntry:
    """One experiment's benchmark fingerprint."""

    experiment_id: str
    counters: dict[str, int]
    wall_s: float | None = None
    passed: bool | None = None

    def to_dict(self) -> dict:
        out: dict = {"counters": dict(sorted(self.counters.items()))}
        if self.wall_s is not None:
            out["wall_s"] = round(self.wall_s, 6)
        if self.passed is not None:
            out["passed"] = self.passed
        return out


def _numeric_counters(counters: Mapping, source: str) -> dict[str, int]:
    """``counters`` with every non-numeric value dropped (one warning
    each) -- a hand-edited or truncated payload must not abort the
    whole comparison, only lose the unusable key."""
    out: dict[str, int] = {}
    for key, value in counters.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            warnings.warn(
                f"bench: {source}: dropping non-numeric counter "
                f"{key}={value!r}",
                RuntimeWarning,
                stacklevel=3,
            )
            continue
        out[key] = int(value)
    return out


def _entry_from_payload(payload: Mapping, source: str = "payload") -> BenchEntry:
    counters = payload.get("counters")
    if counters is None:  # pre-gate BENCH files: derive from metrics
        counters = counters_of(payload.get("metrics") or {})
    experiment_id = payload.get("experiment_id")
    if not experiment_id:
        raise KeyError("experiment_id")
    if not isinstance(counters, Mapping):
        raise TypeError(f"counters is {type(counters).__name__}, not a map")
    return BenchEntry(
        experiment_id=experiment_id,
        counters=_numeric_counters(counters, source),
        wall_s=payload.get("duration_s"),
        passed=payload.get("passed"),
    )


def load_bench_dir(bench_dir: str) -> dict[str, BenchEntry]:
    """Load every ``BENCH_*.json`` in ``bench_dir``, keyed by experiment.

    Malformed files (invalid JSON, no ``experiment_id``, a non-mapping
    counters block) are skipped with a warning rather than aborting the
    whole comparison; non-numeric counter *values* inside an otherwise
    sound file drop just that key.  Two files claiming the same
    ``experiment_id`` (e.g. hand-copied payloads) also warn, and the
    lexicographically later file wins (last-write-wins, matching the
    deterministic ``sorted(glob)`` scan order).
    """
    entries: dict[str, BenchEntry] = {}
    sources: dict[str, str] = {}
    for path in sorted(glob.glob(os.path.join(bench_dir, "BENCH_*.json"))):
        try:
            with open(path) as fh:
                entry = _entry_from_payload(json.load(fh), source=path)
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            warnings.warn(
                f"bench: skipping malformed {path}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        previous = sources.get(entry.experiment_id)
        if previous is not None:
            warnings.warn(
                f"bench: duplicate experiment {entry.experiment_id!r} in "
                f"{path} (already loaded from {previous}); keeping the "
                "later file",
                RuntimeWarning,
                stacklevel=2,
            )
        sources[entry.experiment_id] = path
        entries[entry.experiment_id] = entry
    return entries


def load_baseline(path: str) -> dict[str, BenchEntry]:
    """Load a committed ``baseline.json`` into entries keyed by experiment."""
    with open(path) as fh:
        doc = json.load(fh)
    version = doc.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {version!r} "
            f"(expected {BASELINE_VERSION})"
        )
    entries: dict[str, BenchEntry] = {}
    for experiment_id, row in (doc.get("entries") or {}).items():
        # Tolerate sparse/null rows (hand-edited baselines): a missing
        # or null counters block reads as empty, and compare_benchmarks
        # reports the per-key differences instead of crashing here.
        row = row or {}
        entries[experiment_id] = BenchEntry(
            experiment_id=experiment_id,
            counters={
                k: int(v) for k, v in (row.get("counters") or {}).items()
            },
            wall_s=row.get("wall_s"),
            passed=row.get("passed"),
        )
    return entries


def save_baseline(entries: Mapping[str, BenchEntry], path: str) -> None:
    """Write ``entries`` as a versioned ``baseline.json``."""
    doc = {
        "version": BASELINE_VERSION,
        "entries": {
            eid: entries[eid].to_dict() for eid in sorted(entries)
        },
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


@dataclass(frozen=True)
class Drift:
    """One difference between baseline and current.

    ``kind`` is ``counter`` (deterministic count changed -- fatal),
    ``status`` (pass flipped to fail -- fatal), ``time`` (wall-clock
    regression beyond tolerance -- advisory), ``missing`` (baselined
    experiment absent from the bench dir), or ``new`` (unbaselined
    experiment present).
    """

    experiment_id: str
    kind: str
    key: str = ""
    baseline: float | None = None
    current: float | None = None

    @property
    def fatal(self) -> bool:
        return self.kind in ("counter", "status")


@dataclass
class BenchComparison:
    """Outcome of one baseline-vs-directory diff."""

    compared: list[str] = field(default_factory=list)
    drifts: list[Drift] = field(default_factory=list)
    time_tolerance: float = 0.5

    @property
    def fatal_drifts(self) -> list[Drift]:
        return [d for d in self.drifts if d.fatal]

    @property
    def time_regressions(self) -> list[Drift]:
        return [d for d in self.drifts if d.kind == "time"]

    def render(self) -> str:
        """The regression table ``repro bench-compare`` prints."""
        lines = [
            f"bench-compare: {len(self.compared)} experiments compared "
            f"({', '.join(self.compared) if self.compared else 'none'})"
        ]
        if self.drifts:
            headers = ("experiment", "kind", "key", "baseline", "current")
            rows = [
                (
                    d.experiment_id,
                    d.kind.upper() if d.fatal else d.kind,
                    d.key,
                    "-" if d.baseline is None else f"{d.baseline:g}",
                    "-" if d.current is None else f"{d.current:g}",
                )
                for d in self.drifts
            ]
            widths = [
                max(len(headers[c]), *(len(r[c]) for r in rows))
                for c in range(len(headers))
            ]
            lines.append(
                "  " + "  ".join(h.ljust(w) for h, w in zip(headers, widths))
            )
            for row in rows:
                lines.append(
                    "  " + "  ".join(v.ljust(w) for v, w in zip(row, widths))
                )
        fatal = self.fatal_drifts
        if fatal:
            lines.append(f"FAIL: {len(fatal)} counter/status regressions")
        else:
            lines.append(
                f"ok: zero counter drift across "
                f"{len(self.compared)} experiments"
            )
            if self.time_regressions:
                lines.append(
                    f"note: {len(self.time_regressions)} wall-clock "
                    f"regressions beyond {self.time_tolerance:.0%} "
                    "(advisory)"
                )
        return "\n".join(lines)


def compare_benchmarks(
    baseline: Mapping[str, BenchEntry],
    current: Mapping[str, BenchEntry],
    *,
    time_tolerance: float = 0.5,
) -> BenchComparison:
    """Diff ``current`` bench entries against the ``baseline``.

    Counters compare exactly; wall-clock flags only regressions larger
    than ``time_tolerance`` (relative).  Experiments present on one side
    only become ``missing``/``new`` drifts, which are never fatal: a
    partial bench run is a normal way to use the gate.
    """
    if time_tolerance < 0:
        raise ValueError(f"time_tolerance must be >= 0, got {time_tolerance}")
    comparison = BenchComparison(time_tolerance=time_tolerance)
    for experiment_id in sorted(set(baseline) | set(current)):
        base = baseline.get(experiment_id)
        cur = current.get(experiment_id)
        if base is None:
            comparison.drifts.append(Drift(experiment_id, "new"))
            continue
        if cur is None:
            comparison.drifts.append(Drift(experiment_id, "missing"))
            continue
        comparison.compared.append(experiment_id)
        if base.passed and cur.passed is False:
            comparison.drifts.append(Drift(
                experiment_id, "status", key="passed",
                baseline=1.0, current=0.0,
            ))
        for key in sorted(set(base.counters) | set(cur.counters)):
            b = base.counters.get(key, 0)
            c = cur.counters.get(key, 0)
            if b != c:
                comparison.drifts.append(Drift(
                    experiment_id, "counter", key=key,
                    baseline=float(b), current=float(c),
                ))
        if base.wall_s and cur.wall_s:
            if cur.wall_s > base.wall_s * (1.0 + time_tolerance):
                comparison.drifts.append(Drift(
                    experiment_id, "time", key="duration_s",
                    baseline=round(base.wall_s, 4),
                    current=round(cur.wall_s, 4),
                ))
    return comparison
