"""Offline trace analytics: structure, locality, and trace diffs.

Where :mod:`repro.obs.metrics` reduces a trace to totals and
distributions, this module keeps the *structure*:

* :func:`communication_matrix` -- the machine x machine bits-sent
  matrix (per round or whole trace), read from the per-destination
  ``sent_to`` map on ``mpc.machine_step`` events;
* :func:`critical_path` -- per round, the slowest machine's local
  computation: the chain a perfectly parallel scheduler could not
  shorten (per-round latency is lower-bounded by its slowest machine);
* :func:`query_locality` -- per machine, repeat vs. unique oracle
  queries (keyed by the stable ``key`` field ``oracle.query`` events
  carry), i.e. how well a per-machine memo cache would behave;
* :func:`diff_traces` -- a structural **trace diff**: added/removed
  record kinds, deterministic-counter deltas (the same
  :func:`~repro.obs.baseline.counters_of` fingerprint the bench gate
  uses, so ``repro trace-diff`` and ``repro bench-compare`` can never
  disagree about what counts as drift), and advisory per-round latency
  regressions.

Everything here consumes plain ``TraceRecord`` sequences, so it works
identically on a live ``tracer.records`` tuple and on a JSONL file
loaded with :func:`~repro.obs.exporters.read_jsonl`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.baseline import Drift, counters_of
from repro.obs.metrics import TraceMetrics
from repro.telemetry.config import excluded_from_determinism

__all__ = [
    "CommMatrix",
    "communication_matrix",
    "CriticalStep",
    "critical_path",
    "MachineLocality",
    "LocalityReport",
    "query_locality",
    "LatencyRegression",
    "TraceDiff",
    "diff_traces",
]


# ---------------------------------------------------------------------------
# Communication matrix
# ---------------------------------------------------------------------------

@dataclass
class CommMatrix:
    """Bits sent from machine ``src`` to machine ``dst``.

    ``bits[(src, dst)]`` is the total payload routed on that edge;
    absent pairs sent nothing.  ``m`` is the machine count (from the
    run's budget announcement, falling back to the largest id seen).
    """

    m: int
    bits: dict[tuple[int, int], int] = field(default_factory=dict)

    @property
    def total_bits(self) -> int:
        return sum(self.bits.values())

    def to_rows(self) -> list[list[int]]:
        """Dense ``m x m`` list-of-rows view (rows = senders)."""
        rows = [[0] * self.m for _ in range(self.m)]
        for (src, dst), bits in self.bits.items():
            if 0 <= src < self.m and 0 <= dst < self.m:
                rows[src][dst] = bits
        return rows

    def render(self, *, max_machines: int = 16) -> str:
        """ASCII matrix, senders down, receivers across."""
        shown = min(self.m, max_machines)
        rows = self.to_rows()
        width = max(
            5, *(len(str(rows[i][j])) for i in range(shown) for j in range(shown))
        ) if shown else 5
        lines = [
            f"communication matrix ({self.m} machines, "
            f"{self.total_bits} bits total; bits sent, row -> column):"
        ]
        header = "  src\\dst " + " ".join(f"{j:>{width}}" for j in range(shown))
        lines.append(header)
        for i in range(shown):
            cells = " ".join(f"{rows[i][j]:>{width}}" for j in range(shown))
            lines.append(f"  {i:>7} {cells}")
        if shown < self.m:
            lines.append(f"  ... ({self.m - shown} more machines not shown)")
        return "\n".join(lines)


def communication_matrix(records, *, round: int | None = None) -> CommMatrix:
    """Fold ``mpc.machine_step.sent_to`` maps into one :class:`CommMatrix`.

    ``round=None`` aggregates the whole trace; an integer restricts the
    matrix to that round index (across all runs in the trace).
    """
    m = 0
    bits: dict[tuple[int, int], int] = {}
    for record in records:
        if record.name == "mpc.run_start":
            m = max(m, record.attrs.get("m", 0))
        elif record.name == "mpc.machine_step":
            a = record.attrs
            if round is not None and a.get("round") != round:
                continue
            src = a.get("machine", 0)
            m = max(m, src + 1)
            for dst_key, sent in a.get("sent_to", {}).items():
                dst = int(dst_key)
                m = max(m, dst + 1)
                bits[(src, dst)] = bits.get((src, dst), 0) + int(sent)
    return CommMatrix(m=m, bits=bits)


# ---------------------------------------------------------------------------
# Critical path
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CriticalStep:
    """The slowest machine of one round."""

    round: int
    machine: int
    dur_s: float


def critical_path(records) -> list[CriticalStep]:
    """Per round, the machine whose local computation took longest.

    Rounds are a synchronization barrier, so the sum of these steps is
    the latency floor of an idealized parallel execution; comparing it
    with the actual per-round latency shows how much of the wall-clock
    is simulator serialization rather than inherent work.
    """
    slowest: dict[int, CriticalStep] = {}
    for record in records:
        if record.name != "mpc.machine_step":
            continue
        a = record.attrs
        round_k = a.get("round", 0)
        dur = float(a.get("dur", 0.0) or 0.0)
        known = slowest.get(round_k)
        if known is None or dur > known.dur_s:
            slowest[round_k] = CriticalStep(round_k, a.get("machine", 0), dur)
    return [slowest[k] for k in sorted(slowest)]


# ---------------------------------------------------------------------------
# Oracle-query locality
# ---------------------------------------------------------------------------

@dataclass
class MachineLocality:
    """One machine's oracle-query reuse profile."""

    machine: int
    total: int = 0
    unique: int = 0

    @property
    def repeat_fraction(self) -> float:
        if not self.total:
            return 0.0
        return (self.total - self.unique) / self.total


@dataclass
class LocalityReport:
    """Repeat vs. unique oracle queries, per machine and globally."""

    per_machine: dict[int, MachineLocality] = field(default_factory=dict)
    total: int = 0
    unique: int = 0

    @property
    def repeat_fraction(self) -> float:
        if not self.total:
            return 0.0
        return (self.total - self.unique) / self.total

    def render(self) -> str:
        lines = [
            f"oracle locality: {self.total} queries, {self.unique} unique "
            f"({self.repeat_fraction:.1%} a cache would absorb)"
        ]
        for machine in sorted(self.per_machine):
            loc = self.per_machine[machine]
            lines.append(
                f"  machine {machine:<4} {loc.total:>7} queries  "
                f"{loc.unique:>7} unique  repeat {loc.repeat_fraction:.1%}"
            )
        return "\n".join(lines)


def query_locality(records) -> LocalityReport:
    """Fold ``oracle.query`` events into a :class:`LocalityReport`.

    Uniqueness is judged by the event's stable ``key``
    (:func:`repro.oracle.counting.query_key`); traces written before
    the key existed fall back to the global ``repeat`` flag (then
    per-machine unique counts treat every query a machine makes as
    unique unless globally repeated).
    """
    report = LocalityReport()
    seen_global: set[str] = set()
    seen_per_machine: dict[int, set[str]] = {}
    for record in records:
        if record.name != "oracle.query":
            continue
        a = record.attrs
        machine = a.get("machine", 0)
        loc = report.per_machine.get(machine)
        if loc is None:
            loc = report.per_machine[machine] = MachineLocality(machine)
        loc.total += 1
        report.total += 1
        key = a.get("key")
        if key is None:
            if not a.get("repeat"):
                report.unique += 1
                loc.unique += 1
            continue
        if key not in seen_global:
            seen_global.add(key)
            report.unique += 1
        mine = seen_per_machine.setdefault(machine, set())
        if key not in mine:
            mine.add(key)
            loc.unique += 1
    return report


# ---------------------------------------------------------------------------
# Trace diff
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LatencyRegression:
    """One round whose latency regressed beyond tolerance (advisory)."""

    round: int
    baseline_s: float
    current_s: float


@dataclass
class TraceDiff:
    """Structured difference between two traces of one workload.

    ``notes`` are identity-level mismatches (different experiment ids);
    ``added_kinds`` / ``removed_kinds`` are record names present in one
    trace only; ``counter_drifts`` are deterministic-counter deltas
    (fatal, same fingerprint as the bench gate); latency regressions
    are wall-clock and therefore advisory.
    """

    notes: list[str] = field(default_factory=list)
    added_kinds: list[str] = field(default_factory=list)
    removed_kinds: list[str] = field(default_factory=list)
    counter_drifts: list[Drift] = field(default_factory=list)
    latency_regressions: list[LatencyRegression] = field(default_factory=list)
    rounds_compared: int = 0
    latency_tolerance: float = 0.5

    @property
    def has_differences(self) -> bool:
        """True when the traces differ structurally (not just in time)."""
        return bool(
            self.notes
            or self.added_kinds
            or self.removed_kinds
            or self.counter_drifts
        )

    def to_dict(self) -> dict:
        return {
            "notes": list(self.notes),
            "added_kinds": list(self.added_kinds),
            "removed_kinds": list(self.removed_kinds),
            "counter_drifts": [
                {
                    "key": d.key,
                    "baseline": d.baseline,
                    "current": d.current,
                }
                for d in self.counter_drifts
            ],
            "latency_regressions": [
                {
                    "round": r.round,
                    "baseline_s": round(r.baseline_s, 6),
                    "current_s": round(r.current_s, 6),
                }
                for r in self.latency_regressions
            ],
            "rounds_compared": self.rounds_compared,
            "has_differences": self.has_differences,
        }

    def render(self) -> str:
        if not self.has_differences and not self.latency_regressions:
            return (
                f"trace-diff: structurally identical "
                f"({self.rounds_compared} rounds compared, zero counter drift)"
            )
        lines = ["trace-diff:"]
        for note in self.notes:
            lines.append(f"  ! {note}")
        for kind in self.added_kinds:
            lines.append(f"  + record kind appeared: {kind}")
        for kind in self.removed_kinds:
            lines.append(f"  - record kind disappeared: {kind}")
        for d in self.counter_drifts:
            lines.append(
                f"  COUNTER {d.key}: {d.baseline:g} -> {d.current:g}"
            )
        if self.latency_regressions:
            lines.append(
                f"  {len(self.latency_regressions)} round latency "
                f"regressions beyond {self.latency_tolerance:.0%} (advisory):"
            )
            for r in self.latency_regressions[:10]:
                lines.append(
                    f"    round {r.round}: {r.baseline_s * 1e3:.3f}ms -> "
                    f"{r.current_s * 1e3:.3f}ms"
                )
        if self.has_differences:
            lines.append(
                f"FAIL: {len(self.counter_drifts)} counter drifts, "
                f"{len(self.added_kinds) + len(self.removed_kinds)} "
                f"record-kind changes"
            )
        return "\n".join(lines)


@dataclass
class _TraceFold:
    """Everything ``diff_traces`` needs from one trace, in one pass.

    Built by :meth:`of` with a single iteration over the record stream,
    so a lazily loaded trace (:func:`~repro.obs.exporters.
    iter_trace_records`) is folded without ever materializing.
    """

    experiment_ids: list[str] = field(default_factory=list)
    kinds: set[str] = field(default_factory=set)
    latencies: dict[int, float] = field(default_factory=dict)
    metrics: TraceMetrics = field(default_factory=TraceMetrics)

    @classmethod
    def of(cls, records) -> "_TraceFold":
        fold = cls()

        def tee():
            for record in records:
                if not excluded_from_determinism(record.name):
                    fold.kinds.add(record.name)
                if record.kind == "span":
                    if record.name == "experiment":
                        experiment_id = record.attrs.get("experiment_id")
                        if experiment_id is not None:
                            fold.experiment_ids.append(experiment_id)
                    elif record.name == "mpc.round":
                        round_k = record.attrs.get("round", 0)
                        fold.latencies[round_k] = (
                            fold.latencies.get(round_k, 0.0)
                            + (record.dur or 0.0)
                        )
                yield record

        fold.metrics = TraceMetrics.from_records(tee())
        return fold


def diff_traces(
    baseline_records,
    current_records,
    *,
    latency_tolerance: float = 0.5,
    min_latency_s: float = 0.001,
) -> TraceDiff:
    """Diff two traces of the same workload (``repro trace-diff``).

    Two runs of one seeded experiment -- even at different seeds of the
    *simulation's* wall clock, on different machines -- must produce
    zero structural differences: identical record-kind sets and
    identical deterministic counters.  Counters reuse the bench gate's
    fingerprint (:func:`~repro.obs.baseline.counters_of`).  Per-round
    latency is compared with relative ``latency_tolerance`` and an
    absolute ``min_latency_s`` noise floor; regressions are advisory.

    ``telemetry.*`` record names are excluded from the kind-set
    comparison (the exclusion contract,
    :func:`repro.telemetry.excluded_from_determinism`): runtime
    telemetry (resource samples, heartbeats, stall alerts) is opt-in
    host observability, not model behavior, so a telemetry-on trace
    must still diff clean against a telemetry-off baseline.

    Each record stream is consumed in **one pass**, so lazily loaded
    traces (:func:`~repro.obs.exporters.iter_trace_records`) diff
    without a whole-file load.
    """
    if latency_tolerance < 0:
        raise ValueError(
            f"latency_tolerance must be >= 0, got {latency_tolerance}"
        )
    diff = TraceDiff(latency_tolerance=latency_tolerance)

    base = _TraceFold.of(baseline_records)
    cur = _TraceFold.of(current_records)
    base_ids, cur_ids = base.experiment_ids, cur.experiment_ids
    if base_ids != cur_ids:
        diff.notes.append(
            f"experiments differ: {base_ids or ['?']} vs {cur_ids or ['?']}"
        )

    diff.added_kinds = sorted(cur.kinds - base.kinds)
    diff.removed_kinds = sorted(base.kinds - cur.kinds)

    base_counters = counters_of(base.metrics)
    cur_counters = counters_of(cur.metrics)
    for key in sorted(set(base_counters) | set(cur_counters)):
        b = base_counters.get(key, 0)
        c = cur_counters.get(key, 0)
        if b != c:
            diff.counter_drifts.append(Drift(
                experiment_id=",".join(cur_ids) or "trace",
                kind="counter",
                key=key,
                baseline=float(b),
                current=float(c),
            ))

    base_latency = base.latencies
    cur_latency = cur.latencies
    shared = sorted(set(base_latency) & set(cur_latency))
    diff.rounds_compared = len(shared)
    for round_k in shared:
        b = base_latency[round_k]
        c = cur_latency[round_k]
        if c > b * (1.0 + latency_tolerance) and c - b >= min_latency_s:
            diff.latency_regressions.append(LatencyRegression(round_k, b, c))
    return diff
