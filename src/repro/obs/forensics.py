"""Trace forensics: the *where and why* behind a failed gate.

Every gate in the reproduction -- ``trace-diff`` drift, a monitor
:class:`~repro.obs.monitor.Violation`, a ``cost.mismatch`` -- reduces
to exact event counters, and until now each could only say *that*
something diverged.  This module answers *where and why*:

* :func:`build_index` / :class:`TraceIndex` -- a columnar SQLite index
  over a JSONL trace (``repro index``), with hot attrs (``machine``,
  ``round``, ``messages``, ...) promoted to real columns and the rest
  reachable through ``json_extract``, so a multi-hundred-MB trace is
  queryable without ever loading the JSONL into memory;
* :func:`explain_divergence` -- lockstep-bisect two record streams to
  the **first diverging record** (``repro trace-diff --explain``),
  classified as extra / missing / changed and localized to a machine
  and round;
* :func:`causal_context` -- the ±k window around a divergence: the
  enclosing span chain (experiment > mpc.run > mpc.round), the last
  records on the same machine, and the messages in flight into that
  machine from the previous round;
* :func:`triage` -- one pass linking every ``monitor.violation`` and
  ``cost.mismatch`` to its causal span chain and the nearest preceding
  per-round counter deltas (``repro why``, and the report's
  "Forensics" section).

All comparisons honor the exclusion contract
(:func:`repro.telemetry.excluded_from_determinism`): ``telemetry.*``
records are invisible to the bisection, so the explainer never names a
telemetry record as a divergence.  Wall-clock attrs (``dur`` on
``mpc.machine_step``, sampler readings) are likewise stripped from
record identity -- two runs of the same tree diverge on *model*
quantities only.
"""

from __future__ import annotations

import json
import os
import sqlite3
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.obs.exporters import iter_trace_records
from repro.obs.tracer import TraceRecord
from repro.telemetry.config import excluded_from_determinism

__all__ = [
    "ANOMALY_NAMES",
    "Anomaly",
    "CausalContext",
    "Divergence",
    "INDEX_SUFFIX",
    "PROMOTED_ATTRS",
    "SCHEMA_VERSION",
    "TraceIndex",
    "VOLATILE_ATTRS",
    "build_index",
    "canonical_identity",
    "causal_context",
    "default_index_path",
    "ensure_index",
    "explain_divergence",
    "explain_trace_files",
    "render_divergence",
    "render_triage",
    "triage",
    "triage_file",
]

#: The index lives next to its trace: ``trace.jsonl`` -> ``trace.jsonl.idx``.
INDEX_SUFFIX = ".idx"

#: Bumped whenever the ``records`` schema changes; a version mismatch
#: makes :func:`ensure_index` rebuild instead of misreading old columns.
SCHEMA_VERSION = 1

#: Attrs promoted to real (indexed or at least typed) columns because
#: nearly every forensic question filters or groups on them.  Everything
#: else stays in the ``attrs`` JSON blob, reachable via ``json_extract``.
PROMOTED_ATTRS = (
    "machine",
    "round",
    "worker",
    "trial",
    "messages",
    "message_bits",
    "oracle_queries",
)

_SCHEMA = f"""
CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE records (
    seq INTEGER PRIMARY KEY,
    kind TEXT NOT NULL,
    name TEXT NOT NULL,
    ts REAL NOT NULL,
    dur REAL,
    {", ".join(f"{c} INTEGER" for c in PROMOTED_ATTRS)},
    attrs TEXT NOT NULL
);
CREATE INDEX ix_records_name ON records (name);
CREATE INDEX ix_records_machine ON records (machine) WHERE machine IS NOT NULL;
CREATE INDEX ix_records_round ON records (round) WHERE round IS NOT NULL;
"""


def default_index_path(trace_path: str) -> str:
    """Where ``repro index`` puts the index for ``trace_path``."""
    return trace_path + INDEX_SUFFIX


def _source_stamp(trace_path: str) -> tuple[str, str]:
    st = os.stat(trace_path)
    return str(st.st_size), str(st.st_mtime_ns)


def build_index(
    trace_path: str,
    index_path: str | None = None,
    *,
    batch: int = 2000,
) -> "TraceIndex":
    """Index a JSONL trace into SQLite, streaming one record at a time.

    Rebuilds from scratch (the index is derived data; there is nothing
    to merge).  Returns the opened :class:`TraceIndex`.
    """
    index_path = index_path or default_index_path(trace_path)
    tmp = index_path + ".tmp"
    if os.path.exists(tmp):
        os.remove(tmp)
    conn = sqlite3.connect(tmp)
    try:
        conn.executescript(_SCHEMA)
        rows = []
        count = 0
        for seq, record in enumerate(iter_trace_records(trace_path)):
            a = record.attrs
            rows.append((
                seq,
                record.kind,
                record.name,
                record.ts,
                record.dur,
                *(a.get(c) for c in PROMOTED_ATTRS),
                json.dumps(a, sort_keys=True, default=repr),
            ))
            count += 1
            if len(rows) >= batch:
                conn.executemany(_INSERT, rows)
                rows.clear()
        if rows:
            conn.executemany(_INSERT, rows)
        size, mtime_ns = _source_stamp(trace_path)
        conn.executemany(
            "INSERT INTO meta (key, value) VALUES (?, ?)",
            [
                ("schema_version", str(SCHEMA_VERSION)),
                ("source", os.path.abspath(trace_path)),
                ("source_size", size),
                ("source_mtime_ns", mtime_ns),
                ("records", str(count)),
            ],
        )
        conn.commit()
    finally:
        conn.close()
    os.replace(tmp, index_path)
    return TraceIndex.open(index_path)


_INSERT = (
    "INSERT INTO records (seq, kind, name, ts, dur, "
    + ", ".join(PROMOTED_ATTRS)
    + ", attrs) VALUES ("
    + ", ".join("?" * (6 + len(PROMOTED_ATTRS)))
    + ")"
)


def ensure_index(trace_path: str, index_path: str | None = None) -> "TraceIndex":
    """Open the index for ``trace_path``, (re)building if absent or stale.

    Staleness is a source size/mtime mismatch or a schema-version bump:
    the index is a cache of the JSONL, never an independent artifact.
    """
    index_path = index_path or default_index_path(trace_path)
    if os.path.exists(index_path):
        try:
            index = TraceIndex.open(index_path)
        except (sqlite3.Error, ValueError):
            index = None
        if index is not None:
            meta = index.meta
            size, mtime_ns = _source_stamp(trace_path)
            if (
                meta.get("schema_version") == str(SCHEMA_VERSION)
                and meta.get("source_size") == size
                and meta.get("source_mtime_ns") == mtime_ns
            ):
                return index
            index.close()
    return build_index(trace_path, index_path)


class TraceIndex:
    """An opened trace index; thin wrapper owning the SQLite connection."""

    def __init__(self, path: str, conn: sqlite3.Connection) -> None:
        self.path = path
        self.conn = conn

    @classmethod
    def open(cls, path: str) -> "TraceIndex":
        conn = sqlite3.connect(path)
        try:
            names = {
                row[0] for row in conn.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            }
        except sqlite3.DatabaseError as exc:
            conn.close()
            raise ValueError(f"{path}: not a trace index: {exc}") from exc
        if not {"meta", "records"} <= names:
            conn.close()
            raise ValueError(f"{path}: not a trace index (missing tables)")
        return cls(path, conn)

    @property
    def meta(self) -> dict[str, str]:
        return dict(self.conn.execute("SELECT key, value FROM meta"))

    @property
    def records(self) -> int:
        """Number of indexed records."""
        return int(self.meta.get("records", "0"))

    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "TraceIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# --------------------------------------------------------------------------
# First-divergence explainer
# --------------------------------------------------------------------------

#: Attr keys carrying wall-clock or host readings; excluded from record
#: identity so two runs of the same tree compare equal.  ``ts`` never
#: participates (it is not an attr), and whole ``telemetry.*`` records
#: are dropped before comparison.
VOLATILE_ATTRS = frozenset({
    "dur",
    "duration_s",
    "wall_s",
    "elapsed_s",
    "cpu_s",
    "rss_kb",
    "rss_peak_kb",
    "overhead_frac",
})

#: How far past a mismatch the bisector looks to classify it as an
#: insertion or deletion rather than an in-place change.
_LOOKAHEAD = 64

RecordSource = Iterable[TraceRecord] | Callable[[], Iterable[TraceRecord]]


def _replay(source: RecordSource) -> Iterable[TraceRecord]:
    """A fresh iteration over ``source`` (callable or re-iterable)."""
    if callable(source):
        return source()
    return source


def canonical_identity(record: TraceRecord) -> tuple:
    """The comparison key of one record: model quantities only."""
    attrs = {
        k: v for k, v in record.attrs.items() if k not in VOLATILE_ATTRS
    }
    return (
        record.kind,
        record.name,
        json.dumps(attrs, sort_keys=True, default=repr),
    )


@dataclass(frozen=True)
class _Slot:
    """One comparable record with its position bookkeeping."""

    seq: int        # index in the raw stream (causal-window addressing)
    pos: int        # index in the comparison stream (excluded skipped)
    record: TraceRecord
    canon: tuple
    machine: int | None
    round: int | None


def _comparable(source: RecordSource) -> Iterator[_Slot]:
    last_machine: int | None = None
    last_round: int | None = None
    pos = 0
    for seq, record in enumerate(_replay(source)):
        a = record.attrs
        if "machine" in a:
            last_machine = a["machine"]
        if "round" in a:
            last_round = a["round"]
        if excluded_from_determinism(record.name):
            continue
        yield _Slot(
            seq=seq,
            pos=pos,
            record=record,
            canon=canonical_identity(record),
            machine=a.get("machine", last_machine),
            round=a.get("round", last_round),
        )
        pos += 1


@dataclass
class Divergence:
    """The first point where two comparison streams disagree.

    ``kind`` is ``"extra"`` (current inserted a record the baseline
    lacks), ``"missing"`` (baseline record absent from current), or
    ``"changed"`` (same position, different payload).  ``machine`` /
    ``round`` localize the divergence -- from the record's own attrs,
    falling back to the nearest preceding record that carried them.
    """

    kind: str
    position: int
    baseline: TraceRecord | None
    current: TraceRecord | None
    baseline_seq: int | None
    current_seq: int | None
    machine: int | None
    round: int | None
    changed_attrs: dict[str, tuple] = field(default_factory=dict)

    @property
    def record(self) -> TraceRecord:
        """The record to show: the inserted/changed one, else the missing one."""
        chosen = self.current if self.current is not None else self.baseline
        assert chosen is not None
        return chosen

    @property
    def seq(self) -> int:
        """Raw-stream index of :attr:`record` (in its own stream)."""
        value = (
            self.current_seq if self.current is not None else self.baseline_seq
        )
        assert value is not None
        return value

    @property
    def in_current(self) -> bool:
        """Whether :attr:`record` lives in the current stream."""
        return self.current is not None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "position": self.position,
            "machine": self.machine,
            "round": self.round,
            "name": self.record.name,
            "record": self.record.to_dict(),
            "changed_attrs": {
                k: list(v) for k, v in self.changed_attrs.items()
            },
        }


def _attr_diff(base: TraceRecord, cur: TraceRecord) -> dict[str, tuple]:
    out: dict[str, tuple] = {}
    keys = (set(base.attrs) | set(cur.attrs)) - VOLATILE_ATTRS
    for key in sorted(keys):
        b, c = base.attrs.get(key), cur.attrs.get(key)
        if b != c:
            out[key] = (b, c)
    return out


def explain_divergence(
    baseline: RecordSource, current: RecordSource
) -> Divergence | None:
    """Bisect two streams to their first diverging record, or ``None``.

    Lockstep comparison on :func:`canonical_identity`, so order matters
    (a trace is a transcript; reordering *is* divergence).  At the first
    mismatch a bounded lookahead classifies it: if the baseline record
    reappears shortly in the current stream the current side inserted
    records (``"extra"``); if the current record reappears in the
    baseline the current side dropped records (``"missing"``); else the
    record changed in place (``"changed"``, with a per-attr diff).
    ``telemetry.*`` records are invisible here -- they can never be
    named as the divergence.
    """
    base_it = _comparable(baseline)
    cur_it = _comparable(current)
    while True:
        b = next(base_it, None)
        c = next(cur_it, None)
        if b is None and c is None:
            return None
        if b is None or c is None or b.canon != c.canon:
            break
    if b is None:
        assert c is not None
        return Divergence(
            kind="extra", position=c.pos,
            baseline=None, current=c.record,
            baseline_seq=None, current_seq=c.seq,
            machine=c.machine, round=c.round,
        )
    if c is None:
        return Divergence(
            kind="missing", position=b.pos,
            baseline=b.record, current=None,
            baseline_seq=b.seq, current_seq=None,
            machine=b.machine, round=b.round,
        )
    base_ahead = [b] + [s for s, _ in zip(base_it, range(_LOOKAHEAD))]
    cur_ahead = [c] + [s for s, _ in zip(cur_it, range(_LOOKAHEAD))]
    if b.canon in {s.canon for s in cur_ahead[1:]}:
        return Divergence(
            kind="extra", position=c.pos,
            baseline=None, current=c.record,
            baseline_seq=None, current_seq=c.seq,
            machine=c.machine, round=c.round,
        )
    if c.canon in {s.canon for s in base_ahead[1:]}:
        return Divergence(
            kind="missing", position=b.pos,
            baseline=b.record, current=None,
            baseline_seq=b.seq, current_seq=None,
            machine=b.machine, round=b.round,
        )
    return Divergence(
        kind="changed", position=c.pos,
        baseline=b.record, current=c.record,
        baseline_seq=b.seq, current_seq=c.seq,
        machine=c.machine if c.machine is not None else b.machine,
        round=c.round if c.round is not None else b.round,
        changed_attrs=_attr_diff(b.record, c.record),
    )


@dataclass
class CausalContext:
    """Everything causally adjacent to one record in one stream.

    ``window`` is the ±k raw-stream neighborhood; ``parents`` the
    enclosing span chain (outermost first -- spans are emitted at
    close, so containment is computed by timestamp, not stream order);
    ``same_machine`` the last k records attributed to the same machine;
    ``in_flight`` the ``(src, bits)`` messages sent *to* that machine in
    the immediately preceding round (the mail it was processing when
    things went wrong).
    """

    window: list[tuple[int, TraceRecord]] = field(default_factory=list)
    parents: list[TraceRecord] = field(default_factory=list)
    same_machine: list[tuple[int, TraceRecord]] = field(default_factory=list)
    in_flight: list[tuple[int, int]] = field(default_factory=list)


def causal_context(
    source: RecordSource,
    *,
    seq: int,
    ts: float | None = None,
    machine: int | None = None,
    round: int | None = None,
    context: int = 5,
) -> CausalContext:
    """One streaming pass collecting the causal neighborhood of ``seq``.

    ``source`` must be the stream the record actually lives in (current
    for extra/changed divergences, baseline for missing ones).
    """
    ctx = CausalContext()
    before: deque[tuple[int, TraceRecord]] = deque(maxlen=context)
    same: deque[tuple[int, TraceRecord]] = deque(maxlen=context)
    after_left = context
    for i, record in enumerate(_replay(source)):
        a = record.attrs
        if i < seq:
            before.append((i, record))
            if machine is not None and a.get("machine") == machine:
                same.append((i, record))
        elif i == seq:
            ctx.window = [*before, (i, record)]
            if ts is None:
                ts = record.ts
        elif after_left > 0:
            ctx.window.append((i, record))
            after_left -= 1
        if (
            record.kind == "span"
            and ts is not None
            and record.dur is not None
            and record.ts <= ts <= record.ts + record.dur
            and i != seq
        ):
            ctx.parents.append(record)
        if (
            machine is not None
            and round is not None
            and record.name == "mpc.machine_step"
            and a.get("round") == round - 1
        ):
            bits = a.get("sent_to", {}).get(str(machine))
            if bits:
                ctx.in_flight.append((a.get("machine", -1), bits))
    # Outermost first: earlier start, then longer duration.
    ctx.parents.sort(key=lambda r: (r.ts, -(r.dur or 0.0)))
    ctx.same_machine = list(same)
    return ctx


def _summarize_record(record: TraceRecord, *, attr_limit: int = 6) -> str:
    shown = [
        f"{k}={record.attrs[k]}"
        for k in list(record.attrs)[:attr_limit]
        if not isinstance(record.attrs[k], dict)
    ]
    extra = len(record.attrs) - len(shown)
    if extra > 0:
        shown.append(f"+{extra} attrs")
    body = " ".join(shown)
    return f"{record.kind} {record.name}" + (f" [{body}]" if body else "")


def render_divergence(
    divergence: Divergence, ctx: CausalContext | None = None
) -> str:
    """The ``trace-diff --explain`` text block."""
    d = divergence
    where = []
    if d.machine is not None:
        where.append(f"machine {d.machine}")
    if d.round is not None:
        where.append(f"round {d.round}")
    lines = [
        f"first divergence: {d.kind} record at comparison position "
        f"{d.position}" + (f" ({', '.join(where)})" if where else "")
    ]
    if d.kind == "changed":
        assert d.baseline is not None and d.current is not None
        lines.append(f"  baseline: {_summarize_record(d.baseline)}")
        lines.append(f"  current:  {_summarize_record(d.current)}")
        for key, (b, c) in d.changed_attrs.items():
            lines.append(f"    attr {key}: {b!r} -> {c!r}")
    elif d.kind == "extra":
        lines.append(
            f"  current has an extra record: {_summarize_record(d.record)}"
        )
    else:
        lines.append(
            f"  current is missing: {_summarize_record(d.record)}"
        )
    if ctx is None:
        return "\n".join(lines)
    if ctx.parents:
        lines.append("  enclosing spans:")
        for span in ctx.parents:
            lines.append(f"    {_summarize_record(span)}")
    if ctx.in_flight:
        stream = "current" if d.in_current else "baseline"
        total = sum(bits for _, bits in ctx.in_flight)
        senders = ", ".join(
            f"m{src}:{bits}b" for src, bits in ctx.in_flight
        )
        lines.append(
            f"  in flight into machine {d.machine} ({stream}, round "
            f"{d.round}): {total} bits [{senders}]"
        )
    if ctx.same_machine:
        lines.append(f"  last records on machine {d.machine}:")
        for i, record in ctx.same_machine:
            lines.append(f"    #{i} {_summarize_record(record)}")
    if ctx.window:
        lines.append("  stream window:")
        for i, record in ctx.window:
            marker = ">>" if i == d.seq else "  "
            lines.append(f"  {marker} #{i} {_summarize_record(record)}")
    return "\n".join(lines)


def explain_trace_files(
    baseline_path: str, current_path: str, *, context: int = 5
) -> tuple[Divergence, CausalContext] | None:
    """File-level convenience: bisect two JSONL traces and gather context.

    Streams each file at most twice (once for the bisection, once for
    the causal window); never materializes a trace in memory.
    """
    divergence = explain_divergence(
        lambda: iter_trace_records(baseline_path),
        lambda: iter_trace_records(current_path),
    )
    if divergence is None:
        return None
    path = current_path if divergence.in_current else baseline_path
    ctx = causal_context(
        lambda: iter_trace_records(path),
        seq=divergence.seq,
        machine=divergence.machine,
        round=divergence.round,
        context=context,
    )
    return divergence, ctx


# --------------------------------------------------------------------------
# Anomaly triage
# --------------------------------------------------------------------------

#: Event names triage treats as anomalies, with the stream they come
#: from.  ``telemetry.stall`` deliberately absent: host health, not
#: model behavior.
ANOMALY_NAMES = ("monitor.violation", "cost.mismatch")

#: Per-round counters whose deltas triage snapshots around an anomaly.
_ROUND_COUNTERS = ("messages", "message_bits", "oracle_queries")


@dataclass
class Anomaly:
    """One violation/mismatch with its causal surroundings attached."""

    name: str
    seq: int
    ts: float
    attrs: dict
    machine: int | None
    round: int | None
    chain: list[str] = field(default_factory=list)
    counter_deltas: list[str] = field(default_factory=list)
    preceding: list[str] = field(default_factory=list)

    @property
    def headline(self) -> str:
        message = self.attrs.get("message")
        check = self.attrs.get("check")
        if message and check:
            message = f"[{check}] {message}"
        detail = (
            message
            or check
            or (
                f"{self.attrs.get('model', '?')}.{self.attrs.get('counter')}"
                f" measured {self.attrs.get('measured')} vs predicted "
                f"{self.attrs.get('predicted')}"
                if "counter" in self.attrs
                else json.dumps(self.attrs, sort_keys=True, default=repr)
            )
        )
        where = []
        if self.round is not None:
            where.append(f"round {self.round}")
        if self.machine is not None:
            where.append(f"machine {self.machine}")
        loc = f" ({', '.join(where)})" if where else ""
        return f"{self.name}{loc}: {detail}"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seq": self.seq,
            "machine": self.machine,
            "round": self.round,
            "attrs": self.attrs,
            "chain": self.chain,
            "counter_deltas": self.counter_deltas,
            "preceding": self.preceding,
        }


def triage(records: RecordSource) -> list[Anomaly]:
    """Link every anomaly event to its causal context, in one pass.

    For each ``monitor.violation`` / ``cost.mismatch``: the last few
    records on the stream (and on the anomaly's machine), the deltas of
    the per-round counters between the two most recently closed rounds,
    and -- computed once the stream is exhausted, because spans are
    emitted at close -- the chain of spans enclosing the anomaly's
    timestamp.
    """
    anomalies: list[Anomaly] = []
    spans: list[TraceRecord] = []
    recent: deque[tuple[int, TraceRecord]] = deque(maxlen=4)
    closed_rounds: deque[dict] = deque(maxlen=2)
    last_round: int | None = None
    last_machine: int | None = None
    for seq, record in enumerate(_replay(records)):
        a = record.attrs
        if "round" in a:
            last_round = a["round"]
        if "machine" in a:
            last_machine = a["machine"]
        if record.kind == "span":
            spans.append(record)
            if record.name == "mpc.round":
                closed_rounds.append({
                    "round": a.get("round"),
                    **{c: a.get(c, 0) for c in _ROUND_COUNTERS},
                })
        if record.name in ANOMALY_NAMES:
            deltas: list[str] = []
            if len(closed_rounds) == 2:
                prev, last = closed_rounds
                for counter in _ROUND_COUNTERS:
                    diff = last[counter] - prev[counter]
                    deltas.append(
                        f"{counter}: {prev[counter]} -> {last[counter]} "
                        f"({diff:+d}) over rounds "
                        f"{prev['round']} -> {last['round']}"
                    )
            elif len(closed_rounds) == 1:
                last = closed_rounds[0]
                deltas.extend(
                    f"{c}: {last[c]} (round {last['round']}, first closed)"
                    for c in _ROUND_COUNTERS
                )
            anomalies.append(Anomaly(
                name=record.name,
                seq=seq,
                ts=record.ts,
                attrs=dict(a),
                machine=a.get("machine", last_machine),
                round=a.get("round", last_round),
                counter_deltas=deltas,
                preceding=[
                    f"#{i} {_summarize_record(r)}" for i, r in recent
                ],
            ))
        if not excluded_from_determinism(record.name):
            recent.append((seq, record))
    for anomaly in anomalies:
        parents = [
            s for s in spans
            if s.dur is not None and s.ts <= anomaly.ts <= s.ts + s.dur
        ]
        parents.sort(key=lambda s: (s.ts, -(s.dur or 0.0)))
        anomaly.chain = [_summarize_record(s) for s in parents]
    return anomalies


def triage_file(path: str) -> list[Anomaly]:
    """Triage a JSONL trace file (streaming)."""
    return triage(lambda: iter_trace_records(path))


def render_triage(anomalies: Sequence[Anomaly]) -> str:
    """The ``repro why`` text report."""
    if not anomalies:
        return "no anomalies: trace carries no monitor.violation or cost.mismatch events"
    lines = [f"{len(anomalies)} anomal{'y' if len(anomalies) == 1 else 'ies'}:"]
    for n, anomaly in enumerate(anomalies, 1):
        lines.append(f"[{n}] {anomaly.headline}")
        if anomaly.chain:
            lines.append("    span chain:")
            lines.extend(f"      {s}" for s in anomaly.chain)
        if anomaly.counter_deltas:
            lines.append("    nearest counter deltas:")
            lines.extend(f"      {d}" for d in anomaly.counter_deltas)
        if anomaly.preceding:
            lines.append("    preceding records:")
            lines.extend(f"      {p}" for p in anomaly.preceding)
    return "\n".join(lines)
