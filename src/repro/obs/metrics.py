"""Aggregated metrics over a trace: the numbers a perf PR watches.

:class:`TraceMetrics` folds a record stream into per-layer aggregates:

* **experiment** -- wall-clock per experiment span;
* **mpc** -- runs, rounds, per-round latency, and per-round
  messages / message-bits / oracle-queries distributions (the paper's
  communication and ``q`` budgets as measured histograms);
* **oracle** -- total vs. distinct queries, i.e. how well a
  memoizing oracle cache would behave (repeat fraction);
* **ram** -- instructions retired, model time, queries, peak words.

Distributions are reported as ``{count, sum, min, max, mean}``; the
small integer ones (queries, messages per round) also carry an exact
``histogram`` mapping value -> number of rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.obs.tracer import TraceRecord

__all__ = ["Distribution", "TraceMetrics", "flatten_dotted"]


def flatten_dotted(node: dict, prefix: str = "") -> dict:
    """Flatten a nested mapping into sorted ``layer.metric[.stat]`` keys.

    The one flattening used everywhere a metrics tree meets a flat
    consumer (bench counters, the HTML report's headline table,
    ``ExperimentResult.flat_metrics``); hand-rolled flattening of
    ``to_dict()`` output is deprecated in favor of this.
    """
    flat: dict = {}
    for key, value in node.items():
        dotted = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(flatten_dotted(value, dotted))
        else:
            flat[dotted] = value
    return dict(sorted(flat.items()))


@dataclass(frozen=True)
class Distribution:
    """Summary statistics of one per-round quantity."""

    count: int
    total: float
    minimum: float
    maximum: float
    histogram: dict[int, int] | None = None

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @staticmethod
    def of(values: Sequence[float], *, exact_histogram: bool = False
           ) -> "Distribution":
        if not values:
            return Distribution(0, 0.0, 0.0, 0.0, {} if exact_histogram else None)
        hist: dict[int, int] | None = None
        if exact_histogram:
            hist = {}
            for v in values:
                hist[int(v)] = hist.get(int(v), 0) + 1
        return Distribution(
            count=len(values),
            total=float(sum(values)),
            minimum=float(min(values)),
            maximum=float(max(values)),
            histogram=hist,
        )

    def to_dict(self) -> dict:
        out = {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }
        if self.histogram is not None:
            out["histogram"] = {str(k): v for k, v in sorted(self.histogram.items())}
        return out


@dataclass
class TraceMetrics:
    """The aggregate view of one trace."""

    experiments: dict[str, float] = field(default_factory=dict)
    mpc_runs: int = 0
    mpc_rounds: int = 0
    round_latency: Distribution = field(
        default_factory=lambda: Distribution.of(())
    )
    round_messages: Distribution = field(
        default_factory=lambda: Distribution.of((), exact_histogram=True)
    )
    round_message_bits: Distribution = field(
        default_factory=lambda: Distribution.of(())
    )
    round_oracle_queries: Distribution = field(
        default_factory=lambda: Distribution.of((), exact_histogram=True)
    )
    oracle_queries: int = 0
    oracle_repeat_queries: int = 0
    ram_runs: int = 0
    ram_instructions: int = 0
    ram_time: int = 0
    ram_oracle_queries: int = 0
    ram_peak_memory_words: int = 0

    @property
    def oracle_repeat_fraction(self) -> float:
        """Fraction of queries a memoizing cache would have answered."""
        if not self.oracle_queries:
            return 0.0
        return self.oracle_repeat_queries / self.oracle_queries

    @classmethod
    def from_records(cls, records: Sequence[TraceRecord]) -> "TraceMetrics":
        """Fold a record stream (see docs/OBSERVABILITY.md for names)."""
        m = cls()
        latencies: list[float] = []
        messages: list[int] = []
        bits: list[int] = []
        queries: list[int] = []
        for rec in records:
            a = rec.attrs
            if rec.name == "experiment" and rec.kind == "span":
                m.experiments[a.get("experiment_id", "?")] = rec.dur or 0.0
            elif rec.name == "mpc.run" and rec.kind == "span":
                m.mpc_runs += 1
                m.mpc_rounds += a.get("rounds", 0)
            elif rec.name == "mpc.round" and rec.kind == "span":
                latencies.append(rec.dur or 0.0)
                messages.append(a.get("messages", 0))
                bits.append(a.get("message_bits", 0))
                queries.append(a.get("oracle_queries", 0))
            elif rec.name == "oracle.query":
                m.oracle_queries += 1
                if a.get("repeat"):
                    m.oracle_repeat_queries += 1
            elif rec.name == "ram.run" and rec.kind == "span":
                m.ram_runs += 1
                m.ram_instructions += a.get("instructions", 0)
                m.ram_time += a.get("time", 0)
                m.ram_oracle_queries += a.get("oracle_queries", 0)
                m.ram_peak_memory_words = max(
                    m.ram_peak_memory_words, a.get("peak_memory_words", 0)
                )
        m.round_latency = Distribution.of(latencies)
        m.round_messages = Distribution.of(messages, exact_histogram=True)
        m.round_message_bits = Distribution.of(bits)
        m.round_oracle_queries = Distribution.of(queries, exact_histogram=True)
        return m

    def to_flat_dict(self) -> dict:
        """:meth:`to_dict` flattened to one level with dotted keys.

        The single key namespace shared by the HTML report, bench JSON,
        ``repro trace`` output, and ``run-all --json``: every leaf of
        the nested dict becomes ``layer.metric[.stat]``, e.g.
        ``mpc.rounds``, ``mpc.round_latency_s.mean``,
        ``oracle.repeat_fraction``, ``experiments.E-LINE``.  Histogram
        buckets flatten as ``...histogram.<value>``.  Keys are sorted,
        so the mapping is stable across runs of the same tree.
        """
        return flatten_dotted(self.to_dict())

    def to_dict(self) -> dict:
        """JSON-serializable view (what ``BENCH_*.json`` embeds)."""
        return {
            "experiments": {k: round(v, 6) for k, v in self.experiments.items()},
            "mpc": {
                "runs": self.mpc_runs,
                "rounds": self.mpc_rounds,
                "round_latency_s": self.round_latency.to_dict(),
                "round_messages": self.round_messages.to_dict(),
                "round_message_bits": self.round_message_bits.to_dict(),
                "round_oracle_queries": self.round_oracle_queries.to_dict(),
            },
            "oracle": {
                "queries": self.oracle_queries,
                "repeat_queries": self.oracle_repeat_queries,
                "repeat_fraction": round(self.oracle_repeat_fraction, 6),
            },
            "ram": {
                "runs": self.ram_runs,
                "instructions": self.ram_instructions,
                "time": self.ram_time,
                "oracle_queries": self.ram_oracle_queries,
                "peak_memory_words": self.ram_peak_memory_words,
            },
        }
