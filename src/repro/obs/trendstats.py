"""Shared trend statistics: rolling gates, robust scales, sparklines.

Two regression gates consume the same primitives:

* ``repro runs trend`` (:mod:`repro.obs.history`) -- the original
  rolling-window gate: the latest value vs the **mean** of the previous
  ``window`` values, firing only past a relative ``threshold`` *and* an
  absolute ``min_delta`` noise floor;
* ``repro bench trend`` (:mod:`repro.perfwatch.changepoint`) -- the
  wall-clock changepoint detector, which replaces the mean with a
  rolling **median** and adds a MAD-based robust z-score so one noisy
  historical point cannot poison the baseline.

This module is the single home for the arithmetic both share, so the
"relative threshold + absolute floor" semantics can never drift apart
between the two CLIs.  :func:`ascii_sparkline` (the unicode history
glyphs every trend table renders) lives here too; ``repro.obs.history``
re-exports it unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "MAD_SCALE",
    "RollingGate",
    "ascii_sparkline",
    "mad",
    "median",
    "robust_z",
    "rolling_gate",
    "rolling_window",
]

_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"

#: The consistency constant making MAD comparable to a standard
#: deviation under a normal distribution (1 / Phi^-1(3/4)).
MAD_SCALE = 1.4826


def ascii_sparkline(values: Sequence[float]) -> str:
    """A unicode-block sparkline of ``values`` (empty string if none)."""
    finite = [v for v in values if not math.isinf(v) and not math.isnan(v)]
    if not finite:
        return "?" * len(values)
    lo, hi = min(finite), max(finite)
    span = (hi - lo) or 1.0
    out = []
    for v in values:
        if math.isinf(v) or math.isnan(v):
            out.append("?")
            continue
        idx = int((v - lo) / span * (len(_SPARK_GLYPHS) - 1))
        out.append(_SPARK_GLYPHS[idx])
    return "".join(out)


def median(values: Sequence[float]) -> float:
    """The median of a non-empty sequence (ValueError when empty)."""
    if not values:
        raise ValueError("median of an empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float], center: float | None = None) -> float:
    """Median absolute deviation around ``center`` (default: the median).

    Zero for constant sequences -- callers must treat a zero MAD as
    "no spread measurable" and fall back to relative/absolute gates
    rather than dividing by it.
    """
    if not values:
        raise ValueError("mad of an empty sequence")
    if center is None:
        center = median(values)
    return median([abs(v - center) for v in values])


def robust_z(value: float, baseline: Sequence[float]) -> float | None:
    """The MAD-based robust z-score of ``value`` against ``baseline``.

    ``(value - median) / (MAD_SCALE * mad)``; ``None`` when the
    baseline has no measurable spread (MAD == 0), in which case any
    nonzero deviation would be infinitely significant and the caller
    should gate on relative/absolute terms instead.
    """
    center = median(baseline)
    spread = mad(baseline, center)
    if spread <= 0.0:
        return None
    return (value - center) / (MAD_SCALE * spread)


def rolling_window(values: Sequence[float], window: int) -> Sequence[float]:
    """The pre-latest baseline slice: up to ``window`` values before the
    last one.  Empty when there is no history (fewer than 2 values)."""
    if len(values) < 2:
        return values[:0]
    return values[max(0, len(values) - 1 - window):-1]


@dataclass(frozen=True)
class RollingGate:
    """Outcome of one rolling-window regression check.

    ``baseline`` is the window aggregate (mean or median, per the
    caller), ``latest`` the value under test, ``ratio``
    ``latest / baseline`` (``inf`` over a zero baseline with a positive
    latest), ``regressed`` the gate verdict.
    """

    baseline: float | None = None
    latest: float | None = None
    ratio: float | None = None
    regressed: bool = False


def rolling_gate(
    values: Sequence[float],
    *,
    window: int,
    threshold: float,
    min_delta: float = 0.0,
    robust: bool = False,
) -> RollingGate:
    """The shared relative-threshold + absolute-floor regression gate.

    The latest value is compared against the aggregate of the previous
    ``window`` values -- the **mean** by default (the historical
    ``repro runs trend`` behavior), or the **median** with
    ``robust=True`` (the ``bench trend`` baseline).  The gate fires
    when the latest exceeds ``baseline * (1 + threshold)`` *and* the
    absolute increase ``latest - baseline`` exceeds ``min_delta`` --
    a 3x blowup of a 2ms run is scheduler noise, not a regression.

    A zero (or negative) baseline regresses on any above-floor latest
    value.  Fewer than 2 values: no gate (all fields ``None``).
    """
    if len(values) < 2:
        return RollingGate()
    latest = values[-1]
    baseline_values = rolling_window(values, window)
    if robust:
        baseline = median(baseline_values)
    else:
        baseline = sum(baseline_values) / len(baseline_values)
    over_floor = (latest - baseline) > min_delta
    if baseline > 0:
        return RollingGate(
            baseline=baseline,
            latest=latest,
            ratio=latest / baseline,
            regressed=latest > baseline * (1.0 + threshold) and over_floor,
        )
    return RollingGate(
        baseline=baseline,
        latest=latest,
        ratio=math.inf if latest > 0 else 1.0,
        regressed=latest > min_delta,
    )
