"""Trace reports: self-contained HTML and Chrome/Perfetto export.

Two renderers over one JSONL trace (``repro report <trace.jsonl>``):

* :func:`render_html` -- a single static HTML file with **no external
  assets** (inline CSS, inline SVG sparklines): headline metrics,
  per-round latency / message-bits / query sparklines, the
  predicted-vs-measured cost ledger (``cost.predicted`` events from
  :class:`~repro.costmodel.CostOracle`, drifted counters highlighted),
  the hotspot table (:class:`~repro.obs.profile.SpanProfiler`), the
  machine x machine communication matrix as a table heatmap,
  oracle-query locality, and any ``monitor.violation`` events.  Opens
  from disk, attaches to CI artifacts, emails intact.
* :func:`chrome_trace_events` -- the Chrome trace-event JSON view
  (``--format chrome-json``): one ``"X"`` complete event per span (and
  per ``mpc.machine_step``, on the machine's own track), one ``"i"``
  instant event per point event.  The output opens directly in
  ``ui.perfetto.dev`` or ``chrome://tracing``.
"""

from __future__ import annotations

import html
import json

from repro.obs.analysis import (
    communication_matrix,
    critical_path,
    query_locality,
)
from repro.obs.exporters import coerce_jsonable
from repro.obs.forensics import triage
from repro.obs.metrics import TraceMetrics
from repro.obs.profile import SpanProfiler

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "render_html",
    "write_html_report",
    "render_history_html",
    "write_history_html",
]


# ---------------------------------------------------------------------------
# Chrome trace-event / Perfetto export
# ---------------------------------------------------------------------------

#: tid 0 is the control track (experiment/phase/mpc.run/mpc.round
#: spans); machine ``i`` works on tid ``i + 1``.
_CONTROL_TID = 0


def _tid_of(record) -> int:
    machine = record.attrs.get("machine")
    return machine + 1 if isinstance(machine, int) else _CONTROL_TID


def chrome_trace_events(records) -> list[dict]:
    """Convert a record stream to Chrome trace-event objects.

    Every object carries ``name``/``ph``/``ts``/``pid``/``tid`` (the
    shape Perfetto's JSON importer requires); timestamps are in
    microseconds.  Span records become ``"X"`` complete events;
    ``mpc.machine_step`` events (which carry a duration and a machine
    id) become ``"X"`` events on that machine's track; other events
    become ``"i"`` instants.  Attrs ride along under ``args``.
    """
    events: list[dict] = []
    tids: set[int] = {_CONTROL_TID}
    for record in records:
        args = coerce_jsonable(record.attrs)
        tid = _tid_of(record)
        tids.add(tid)
        if record.kind == "span" and record.dur is not None:
            events.append({
                "name": record.name,
                "cat": record.name.split(".")[0],
                "ph": "X",
                "ts": round(record.ts * 1e6, 3),
                "dur": round(record.dur * 1e6, 3),
                "pid": 0,
                "tid": tid,
                "args": args,
            })
            continue
        dur = record.attrs.get("dur")
        if isinstance(dur, (int, float)) and dur > 0:
            events.append({
                "name": record.name,
                "cat": record.name.split(".")[0],
                "ph": "X",
                "ts": round((record.ts - dur) * 1e6, 3),
                "dur": round(dur * 1e6, 3),
                "pid": 0,
                "tid": tid,
                "args": args,
            })
        else:
            events.append({
                "name": record.name,
                "cat": record.name.split(".")[0],
                "ph": "i",
                "s": "t",
                "ts": round(record.ts * 1e6, 3),
                "pid": 0,
                "tid": tid,
                "args": args,
            })
    for tid in sorted(tids):
        label = "control" if tid == _CONTROL_TID else f"machine {tid - 1}"
        events.append({
            "name": "thread_name",
            "ph": "M",
            "ts": 0,
            "pid": 0,
            "tid": tid,
            "args": {"name": label},
        })
    return events


def write_chrome_trace(records, path: str) -> int:
    """Write the Chrome-trace JSON array; returns the event count."""
    events = chrome_trace_events(records)
    with open(path, "w") as fh:
        json.dump(events, fh)
        fh.write("\n")
    return len(events)


# ---------------------------------------------------------------------------
# HTML report
# ---------------------------------------------------------------------------

_CSS = """
body { font: 14px/1.45 system-ui, sans-serif; margin: 2rem auto;
       max-width: 60rem; color: #1a1a2e; padding: 0 1rem; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: .5rem 0; }
th, td { border: 1px solid #d0d4dc; padding: .2rem .55rem;
         text-align: right; font-variant-numeric: tabular-nums; }
th { background: #eef1f6; } td.l, th.l { text-align: left; }
.meta { color: #5a6072; }
.spark { display: inline-block; vertical-align: middle; margin-right: .4rem; }
.sparkrow { margin: .35rem 0; }
.violation { color: #a02020; }
.ok { color: #1d7a3a; }
tr.drift td { background: #fbe9e9; }
tr.drift td.l { color: #a02020; font-weight: 600; }
code { background: #f2f3f7; padding: 0 .25rem; }
"""


def _esc(value) -> str:
    return html.escape(str(value))


def _sparkline(values, *, width: int = 260, height: int = 36) -> str:
    """An inline SVG sparkline (polyline over normalized values)."""
    n = len(values)
    if n == 0:
        return "<span class='meta'>(no data)</span>"
    lo = min(values)
    hi = max(values)
    span = (hi - lo) or 1.0
    pad = 2.0
    if n == 1:
        xs = [width / 2.0]
    else:
        xs = [pad + i * (width - 2 * pad) / (n - 1) for i in range(n)]
    points = " ".join(
        f"{x:.1f},{pad + (height - 2 * pad) * (1 - (v - lo) / span):.1f}"
        for x, v in zip(xs, values)
    )
    return (
        f"<svg class='spark' width='{width}' height='{height}' "
        f"viewBox='0 0 {width} {height}' role='img'>"
        f"<polyline points='{points}' fill='none' "
        f"stroke='#3566b0' stroke-width='1.5'/></svg>"
    )


def _round_series(records) -> dict[str, list[float]]:
    latency: list[float] = []
    bits: list[float] = []
    queries: list[float] = []
    for record in records:
        if record.name == "mpc.round" and record.kind == "span":
            latency.append((record.dur or 0.0) * 1e3)
            bits.append(float(record.attrs.get("message_bits", 0)))
            queries.append(float(record.attrs.get("oracle_queries", 0)))
    return {
        "round latency (ms)": latency,
        "message bits": bits,
        "oracle queries": queries,
    }


def _headline_rows(records) -> list[tuple[str, object]]:
    flat = TraceMetrics.from_records(records).to_flat_dict()
    keys = [
        "mpc.runs", "mpc.rounds",
        "mpc.round_messages.sum", "mpc.round_message_bits.sum",
        "oracle.queries", "oracle.repeat_fraction",
        "ram.runs", "ram.instructions",
    ]
    rows: list[tuple[str, object]] = []
    for key in keys:
        if key in flat:
            rows.append((key, flat[key]))
    for key, seconds in sorted(
        (k, v) for k, v in flat.items() if k.startswith("experiments.")
    ):
        rows.append((f"{key} (s)", round(float(seconds), 4)))
    return rows


def _matrix_section(records) -> str:
    matrix = communication_matrix(records)
    if not matrix.bits:
        return "<p class='meta'>no machine-to-machine traffic recorded</p>"
    rows = matrix.to_rows()
    peak = max(max(r) for r in rows) or 1
    out = ["<table><tr><th class='l'>src\\dst</th>"]
    out.extend(f"<th>{j}</th>" for j in range(matrix.m))
    out.append("<th>total</th></tr>")
    for i in range(matrix.m):
        out.append(f"<tr><th class='l'>{i}</th>")
        for j in range(matrix.m):
            bits = rows[i][j]
            alpha = 0.85 * bits / peak
            style = (
                f" style='background: rgba(53,102,176,{alpha:.3f})'"
                if bits else ""
            )
            out.append(f"<td{style}>{bits or ''}</td>")
        out.append(f"<td>{sum(rows[i])}</td></tr>")
    out.append("</table>")
    out.append(
        f"<p class='meta'>{matrix.total_bits} bits total; cell shading "
        "scales with bits sent on that edge</p>"
    )
    return "".join(out)


def _hotspot_section(profiler: SpanProfiler) -> str:
    hotspots = profiler.hotspots()
    if not hotspots:
        return "<p class='meta'>no spans in trace</p>"
    out = [
        "<table><tr><th class='l'>span</th><th>count</th><th>cum s</th>"
        "<th>self s</th><th>mean ms</th><th>max ms</th></tr>"
    ]
    for h in hotspots:
        out.append(
            f"<tr><td class='l'><code>{_esc(h.name)}</code></td>"
            f"<td>{h.count}</td><td>{h.cum_s:.4f}</td><td>{h.self_s:.4f}</td>"
            f"<td>{h.mean_s * 1e3:.3f}</td><td>{h.max_s * 1e3:.3f}</td></tr>"
        )
    out.append("</table>")
    out.append(
        f"<p class='meta'>total traced {profiler.total_s:.4f}s; self = time "
        "not inside a child span</p>"
    )
    return "".join(out)


def _locality_section(records) -> str:
    report = query_locality(records)
    if not report.total:
        return "<p class='meta'>no oracle queries in trace</p>"
    out = [
        "<table><tr><th>machine</th><th>queries</th><th>unique</th>"
        "<th>repeat</th></tr>"
    ]
    for machine in sorted(report.per_machine):
        loc = report.per_machine[machine]
        out.append(
            f"<tr><td>{machine}</td><td>{loc.total}</td><td>{loc.unique}</td>"
            f"<td>{loc.repeat_fraction:.1%}</td></tr>"
        )
    out.append(
        f"<tr><th class='l'>all</th><th>{report.total}</th>"
        f"<th>{report.unique}</th><th>{report.repeat_fraction:.1%}</th></tr>"
    )
    out.append("</table>")
    return "".join(out)


def _critical_path_section(records) -> str:
    path = critical_path(records)
    if not path:
        return "<p class='meta'>no machine steps in trace</p>"
    total = sum(step.dur_s for step in path)
    worst = sorted(path, key=lambda s: -s.dur_s)[:8]
    out = [
        f"<p>critical path over {len(path)} rounds: "
        f"<strong>{total * 1e3:.3f}ms</strong> of machine compute "
        "(latency floor of a perfectly parallel execution); "
        "slowest steps:</p>",
        "<table><tr><th>round</th><th>machine</th><th>ms</th></tr>",
    ]
    for step in worst:
        out.append(
            f"<tr><td>{step.round}</td><td>{step.machine}</td>"
            f"<td>{step.dur_s * 1e3:.3f}</td></tr>"
        )
    out.append("</table>")
    return "".join(out)


def _estimates_section(records) -> str:
    """Monte-Carlo estimates with 95% CIs, from ``trial.result`` events.

    The same streaming accumulators the live
    :class:`~repro.obs.convergence.ConvergenceMonitor` uses, replayed
    over the recorded stream; ``estimate.converged`` events mark when
    each estimate stabilized.
    """
    from repro.obs.convergence import estimates_from_records

    monitor = estimates_from_records(records)
    if not monitor.names:
        return "<p class='meta'>no trial-stream estimates in trace</p>"
    converged = {
        r.attrs.get("estimate"): r.attrs.get("n")
        for r in records
        if r.name == "estimate.converged"
    }
    out = [
        "<table><tr><th class='l'>estimate</th><th>n</th><th>value</th>"
        "<th>95% CI</th><th>half-width</th><th>converged</th></tr>"
    ]
    for name, stats in monitor.estimates().items():
        half = (
            "∞" if stats.half_width == float("inf")
            else f"{stats.half_width:.4f}"
        )
        at = converged.get(name)
        out.append(
            f"<tr><td class='l'><code>{_esc(name)}</code></td>"
            f"<td>{stats.n}</td><td>{stats.value:.4f}</td>"
            f"<td>[{stats.low:.4f}, {stats.high:.4f}]</td>"
            f"<td>{half}</td>"
            f"<td>{f'@ n={at}' if at is not None else '—'}</td></tr>"
        )
    out.append("</table>")
    out.append(
        "<p class='meta'>intervals are Wilson (binary trials) or "
        "t-based (real-valued), accumulated online from the "
        "<code>trial.result</code> stream</p>"
    )
    return "".join(out)


def _cost_section(records) -> str:
    """Predicted vs measured: the cost-oracle ledgers in the trace.

    One row per checked counter from the ``cost.predicted`` events a
    subscribed :class:`~repro.costmodel.CostOracle` emitted (``repro
    trace`` / ``repro run-all`` attach one automatically when sympy is
    available).  Drifted counters get the highlighted ``drift`` row
    treatment so a regression is visible without reading numbers.
    """
    from repro.costmodel.ledger import ledger_from_records

    ledgers = ledger_from_records(records)
    if not ledgers:
        return (
            "<p class='meta'>no cost.predicted events in trace (run under "
            "<code>repro trace</code> with sympy installed to attach the "
            "cost oracle)</p>"
        )

    def fmt(value) -> str:
        if value is None:
            return "—"
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value)

    mismatched = 0
    checked = 0
    out = [
        "<table><tr><th class='l'>model</th><th class='l'>counter</th>"
        "<th>predicted</th><th>measured</th><th>drift</th>"
        "<th class='l'>status</th><th class='l'>paper ref</th></tr>"
    ]
    for ledger in ledgers:
        model = ledger.get("model", "?")
        status = ledger.get("status", "?")
        entries = ledger.get("entries") or []
        if not entries:
            note = ledger.get("note", "")
            out.append(
                f"<tr><td class='l'><code>{_esc(model)}</code></td>"
                f"<td class='l' colspan='5'>{_esc(note or '—')}</td>"
                f"<td class='l'>{_esc(status)}</td></tr>"
            )
            continue
        for entry in entries:
            kind = entry.get("kind", "exact")
            if kind == "band":
                predicted = f"[{fmt(entry.get('lo'))}, {fmt(entry.get('hi'))}]"
            elif kind == "bound":
                predicted = f"&le; {fmt(entry.get('predicted'))}"
                if entry.get("slack") is not None:
                    predicted += f" (+{fmt(entry.get('slack'))})"
            else:
                predicted = fmt(entry.get("predicted"))
            measured = entry.get("measured")
            entry_status = entry.get("status", "?")
            if entry_status in ("match", "mismatch"):
                checked += 1
            drift = ""
            cls = ""
            if entry_status == "mismatch":
                mismatched += 1
                cls = " class='drift'"
                p = entry.get("predicted")
                if isinstance(measured, (int, float)) and isinstance(
                    p, (int, float)
                ):
                    drift = f"{measured - p:+g}"
                else:
                    drift = "drift"
            out.append(
                f"<tr{cls}><td class='l'><code>{_esc(model)}</code></td>"
                f"<td class='l'>{_esc(entry.get('counter', '?'))}</td>"
                f"<td>{predicted}</td><td>{fmt(measured)}</td>"
                f"<td>{_esc(drift)}</td>"
                f"<td class='l'>{_esc(entry_status)}</td>"
                f"<td class='l'>{_esc(entry.get('ref', ''))}</td></tr>"
            )
    out.append("</table>")
    if mismatched:
        out.append(
            f"<p class='violation'>{mismatched} of {checked} checked "
            "counters drifted from their symbolic predictions</p>"
        )
    else:
        out.append(
            f"<p class='ok'>all {checked} checked counters match their "
            "symbolic predictions exactly (or within declared slack)</p>"
        )
    out.append(
        "<p class='meta'>predictions are closed-form sympy formulas per "
        "protocol (see <code>repro cost show</code>); exact kinds must "
        "match bit for bit, bands bracket randomized round counts, "
        "bounds carry declared Monte-Carlo slack</p>"
    )
    return "".join(out)


def _telemetry_section(records) -> str:
    """Runtime telemetry: RSS/CPU sparklines, worker lanes, overhead.

    Built from ``telemetry.*`` records when the trace was captured with
    ``--telemetry``; renders a hint otherwise.
    """
    samples = [r for r in records if r.name == "telemetry.sample"]
    heartbeats = [r for r in records if r.name == "telemetry.heartbeat"]
    stalls = [r for r in records if r.name == "telemetry.stall"]
    overheads = [r for r in records if r.name == "telemetry.overhead"]
    if not (samples or heartbeats or overheads):
        return (
            "<p class='meta'>no runtime telemetry in this trace "
            "(re-run with <code>--telemetry</code>)</p>"
        )
    out = []

    rss = [float(r.attrs["rss_kb"]) / 1024.0 for r in samples
           if r.attrs.get("rss_kb") is not None]
    cpu = [
        float(r.attrs.get("cpu_user_s") or 0.0)
        + float(r.attrs.get("cpu_sys_s") or 0.0)
        for r in samples
    ]
    for label, values, unit in (("RSS", rss, "MiB"), ("CPU", cpu, "s")):
        if values:
            out.append(
                f"<div class='sparkrow'>{_sparkline(values)}"
                f"<strong>{label} ({unit})</strong> "
                f"<span class='meta'>({len(values)} samples; "
                f"min {min(values):.2f} · max {max(values):.2f})</span></div>"
            )

    if heartbeats:
        lanes: dict[int, dict] = {}
        for r in heartbeats:
            worker = int(r.attrs.get("worker", 0) or 0)
            trial = int(r.attrs.get("trial", 0) or 0)
            elapsed = float(r.attrs.get("elapsed_s") or 0.0)
            lane = lanes.setdefault(
                worker, {"count": 0, "slowest": (0.0, trial)}
            )
            lane["count"] += 1
            if elapsed > lane["slowest"][0]:
                lane["slowest"] = (elapsed, trial)
        out.append(
            "<table><tr><th class='l'>worker</th><th>heartbeats</th>"
            "<th>slowest trial</th><th>slowest (ms)</th></tr>"
        )
        for worker, lane in sorted(
            lanes.items(), key=lambda kv: (-kv[1]["slowest"][0], kv[0])
        ):
            slow_s, slow_trial = lane["slowest"]
            out.append(
                f"<tr><td class='l'>{worker}</td><td>{lane['count']}</td>"
                f"<td>{slow_trial}</td><td>{slow_s * 1e3:.3f}</td></tr>"
            )
        out.append("</table>")

    if overheads:
        a = overheads[-1].attrs
        frac = a.get("overhead_frac")
        out.append(
            "<p class='meta'>tracer self-overhead: "
            f"<strong>{float(a.get('overhead_s') or 0.0) * 1e3:.3f} ms</strong>"
            f" across {a.get('records', '?')} record emissions"
            + (
                f" — <strong>{float(frac) * 100:.2f}%</strong> of wall-clock"
                if frac is not None else ""
            )
            + "</p>"
        )

    if stalls:
        out.append(
            f"<p class='violation'>{len(stalls)} worker stall(s):</p><ul>"
        )
        for s in stalls:
            out.append(
                f"<li class='violation'>{_esc(s.attrs.get('message'))}</li>"
            )
        out.append("</ul>")
    elif heartbeats:
        out.append(
            f"<p class='ok'>no stalls across {len(heartbeats)} "
            "heartbeat(s)</p>"
        )
    return "".join(out)


def _violations_section(records) -> str:
    violations = [r for r in records if r.name == "monitor.violation"]
    if not violations:
        return "<p class='ok'>no invariant violations recorded</p>"
    out = [f"<p class='violation'>{len(violations)} violations:</p><ul>"]
    for v in violations:
        out.append(
            f"<li class='violation'><code>{_esc(v.attrs.get('check'))}</code>"
            f" — {_esc(v.attrs.get('message'))}</li>"
        )
    out.append("</ul>")
    return "".join(out)


def _forensics_section(records) -> str:
    """Anomaly triage (:func:`repro.obs.forensics.triage`) as HTML.

    The report twin of ``repro why``: each ``monitor.violation`` /
    ``cost.mismatch`` with its enclosing span chain, nearest per-round
    counter deltas, and the records immediately preceding it.
    """
    anomalies = triage(records)
    if not anomalies:
        return (
            "<p class='ok'>no anomalies: no monitor.violation or "
            "cost.mismatch events in this trace</p>"
        )
    out = [
        f"<p class='violation'>{len(anomalies)} "
        f"anomal{'y' if len(anomalies) == 1 else 'ies'} "
        "(see <code>repro why</code> for the same triage on the CLI):</p>"
    ]
    for anomaly in anomalies:
        out.append(
            f"<details open><summary class='violation'>"
            f"{_esc(anomaly.headline)}</summary><ul>"
        )
        for label, items in (
            ("span chain", anomaly.chain),
            ("nearest counter deltas", anomaly.counter_deltas),
            ("preceding records", anomaly.preceding),
        ):
            if items:
                out.append(f"<li class='l'><strong>{label}</strong><ul>")
                out.extend(
                    f"<li class='l'><code>{_esc(item)}</code></li>"
                    for item in items
                )
                out.append("</ul></li>")
        out.append("</ul></details>")
    return "".join(out)


def render_html(records, *, title: str | None = None) -> str:
    """The self-contained HTML report for one trace."""
    records = list(records)
    experiment_ids = [
        r.attrs.get("experiment_id", "?")
        for r in records
        if r.name == "experiment" and r.kind == "span"
    ]
    if title is None:
        title = "trace report" + (
            f" — {', '.join(experiment_ids)}" if experiment_ids else ""
        )
    profiler = SpanProfiler.of(records)
    series = _round_series(records)

    sparkrows = []
    for label, values in series.items():
        stats = (
            f"min {min(values):g} · max {max(values):g}" if values else "empty"
        )
        sparkrows.append(
            f"<div class='sparkrow'>{_sparkline(values)}"
            f"<strong>{_esc(label)}</strong> "
            f"<span class='meta'>({len(values)} rounds; {stats})</span></div>"
        )

    headline = "".join(
        f"<tr><td class='l'><code>{_esc(k)}</code></td><td>{_esc(v)}</td></tr>"
        for k, v in _headline_rows(records)
    )

    parts = [
        "<!doctype html><html lang='en'><head><meta charset='utf-8'>",
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        f"<p class='meta'>{len(records)} trace records · "
        f"{len(experiment_ids)} experiment span(s)</p>",
        "<h2>Headline metrics</h2>",
        f"<table><tr><th class='l'>metric</th><th>value</th></tr>"
        f"{headline}</table>",
        "<h2>Per-round shape</h2>",
        *sparkrows,
        "<h2>Predicted vs measured (cost oracle)</h2>",
        _cost_section(records),
        "<h2>Estimates &amp; convergence</h2>",
        _estimates_section(records),
        "<h2>Hotspots</h2>",
        _hotspot_section(profiler),
        "<h2>Communication matrix</h2>",
        _matrix_section(records),
        "<h2>Oracle-query locality</h2>",
        _locality_section(records),
        "<h2>Critical path</h2>",
        _critical_path_section(records),
        "<h2>Invariant monitor</h2>",
        _violations_section(records),
        "<h2>Forensics</h2>",
        _forensics_section(records),
        "<h2>Runtime telemetry</h2>",
        _telemetry_section(records),
        "</body></html>",
    ]
    return "".join(parts)


def write_html_report(records, path: str, *, title: str | None = None) -> int:
    """Write the HTML report; returns the number of bytes written."""
    content = render_html(records, title=title)
    with open(path, "w") as fh:
        fh.write(content)
    return len(content)


# ---------------------------------------------------------------------------
# Run-history report (registry trends)
# ---------------------------------------------------------------------------


def render_history_html(report) -> str:
    """``repro runs trend -o trend.html``: registry history as HTML.

    ``report`` is a :class:`~repro.obs.history.TrendReport`; each
    experiment's series becomes an inline-SVG sparkline (the same
    renderer the trace report uses) with the rolling-window verdict
    alongside.  Self-contained like the trace report.
    """
    rows = []
    for series in report.series:
        if series.latest is None:
            verdict = (
                f"<span class='meta'>{series.n} run(s); gate needs "
                "&ge; 2</span>"
            )
        elif series.regressed:
            verdict = (
                f"<span class='violation'>REGRESSION: latest "
                f"{series.latest:g} vs window mean {series.baseline:g} "
                f"({series.ratio:.2f}x)</span>"
            )
        else:
            verdict = (
                f"<span class='ok'>ok: latest {series.latest:g} vs "
                f"window mean {series.baseline:g} "
                f"({series.ratio:.2f}x)</span>"
            )
        rows.append(
            f"<div class='sparkrow'>{_sparkline(series.values)}"
            f"<strong>{_esc(series.experiment_id)}</strong> "
            f"<span class='meta'>({series.n} runs, runs "
            f"#{series.run_ids[0]}–#{series.run_ids[-1]})</span> "
            f"{verdict}</div>"
        )
    flaky = []
    for flake in report.flaky:
        flaky.append(
            f"<li class='violation'><code>{_esc(flake.experiment_id)}</code>"
            f" (scale={_esc(flake.scale)}, seed={_esc(flake.seed)}): passed "
            f"in runs {flake.pass_ids}, failed in runs {flake.fail_ids}</li>"
        )
    flaky_html = (
        f"<ul>{''.join(flaky)}</ul>" if flaky
        else "<p class='ok'>no flaky verdicts</p>"
    )
    status = (
        "<p class='violation'>gate: FAIL</p>" if report.failed
        else "<p class='ok'>gate: ok</p>"
    )
    title = f"run history — {_esc(report.metric)}"
    parts = [
        "<!doctype html><html lang='en'><head><meta charset='utf-8'>",
        f"<title>{title}</title><style>{_CSS}</style></head><body>",
        f"<h1>{title}</h1>",
        f"<p class='meta'>rolling window {report.window}, threshold "
        f"{report.threshold:.0%}; latest run vs window mean</p>",
        status,
        "<h2>Per-experiment history</h2>",
        *(rows or ["<p class='meta'>no runs recorded</p>"]),
        "<h2>Flaky verdicts</h2>",
        flaky_html,
        "</body></html>",
    ]
    return "".join(parts)


def write_history_html(report, path: str) -> int:
    """Write the run-history report; returns the number of bytes written."""
    content = render_history_html(report)
    with open(path, "w") as fh:
        fh.write(content)
    return len(content)
