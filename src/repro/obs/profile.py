"""Hotspot profiling over the trace stream (``repro profile``).

The tracer answers *what happened*; this module answers *where the
wall-clock went*.  Three tools, composable on one traced run:

* :class:`SpanProfiler` -- a tracer subscriber (or offline folder via
  :meth:`SpanProfiler.of`) that reconstructs span nesting from the
  completion-ordered record stream and aggregates, per span name,
  **cumulative** time (time inside the span, recursion counted once)
  and **self** time (cumulative minus direct children -- the time the
  span spent in its own code).  ``mpc.machine_step`` events carry a
  ``dur`` attr and are treated as spans, so an MPC round's self time is
  pure routing/bookkeeping overhead while machine compute shows up as
  its own row.
* :class:`ScopedCProfile` -- a :class:`~repro.obs.tracer.SpanHook`
  that attaches ``cProfile`` to exactly one span kind (only inside
  ``mpc.round``, or only inside the oracle's per-query window), so the
  function-level profile is not drowned by setup and analysis code.
* :class:`RoundMemorySampler` -- optional ``tracemalloc`` peak sampling
  per MPC round (the peak is reset at every round boundary).

``profile_experiment`` wires all three around one experiment run; the
CLI's ``repro profile`` is a thin shell over it.

Span nesting is reconstructed without start notifications: records
arrive in completion order, so when a span arrives, every already-seen
span that *started* inside it is one of its descendants, and the ones
not yet claimed by an intermediate span are its direct children.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.tracer import SpanHook, TraceRecord

__all__ = [
    "Hotspot",
    "RoundProfile",
    "SpanProfiler",
    "ScopedCProfile",
    "RoundMemorySampler",
    "ProfileSession",
    "profile_experiment",
]


@dataclass
class Hotspot:
    """Aggregated timing for one span name."""

    name: str
    count: int = 0
    cum_s: float = 0.0
    self_s: float = 0.0
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.cum_s / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "cum_s": round(self.cum_s, 6),
            "self_s": round(self.self_s, 6),
            "mean_s": round(self.mean_s, 6),
            "max_s": round(self.max_s, 6),
        }


@dataclass
class RoundProfile:
    """Where one MPC round's latency went."""

    round: int
    latency_s: float = 0.0
    machine_s: float = 0.0  # sum of machine_step durations
    messages: int = 0
    oracle_queries: int = 0
    slowest_machine: int | None = None
    slowest_machine_s: float = 0.0

    @property
    def overhead_s(self) -> float:
        """Round latency not inside any machine step (routing etc.)."""
        return max(0.0, self.latency_s - self.machine_s)

    def to_dict(self) -> dict:
        return {
            "round": self.round,
            "latency_s": round(self.latency_s, 6),
            "machine_s": round(self.machine_s, 6),
            "overhead_s": round(self.overhead_s, 6),
            "messages": self.messages,
            "oracle_queries": self.oracle_queries,
            "slowest_machine": self.slowest_machine,
            "slowest_machine_s": round(self.slowest_machine_s, 6),
        }


@dataclass
class _Node:
    """One closed interval awaiting adoption by its parent."""

    name: str
    start: float
    dur: float
    # name -> cumulative seconds inside this subtree, same-name
    # descendants subsumed by the shallowest occurrence.
    cum_by_name: dict[str, float] = field(default_factory=dict)


class SpanProfiler:
    """Self/cumulative time per span name, streamed or offline.

    Subscribe it to a live tracer (``tracer.subscribe(profiler)``) or
    fold an existing record list with :meth:`of`.  Spans from several
    MPC runs within one experiment aggregate together; per-round rows
    merge by round index.
    """

    def __init__(self) -> None:
        self._pending: list[_Node] = []
        self._by_name: dict[str, Hotspot] = {}
        self._rounds: dict[int, RoundProfile] = {}

    @classmethod
    def of(cls, records) -> "SpanProfiler":
        profiler = cls()
        for record in records:
            profiler(record)
        return profiler

    def __call__(self, record: TraceRecord) -> None:
        if record.kind == "span" and record.dur is not None:
            start = record.ts
            if "worker" in record.attrs:
                # Spans replayed over the repro.parallel bridge carry
                # the replay timestamp (the parent-stream emission
                # time), not the true start; the measured dur is real,
                # so the start is recovered the same way as for
                # duration-carrying events.  Without this, a trial's
                # rounds are never adopted by its mpc.run and nested
                # durations double-count as siblings.
                start = record.ts - record.dur
            self._close(record.name, start, record.dur, record.attrs)
        elif record.kind == "event":
            dur = record.attrs.get("dur")
            if isinstance(dur, (int, float)):
                # Duration-carrying events (mpc.machine_step) are spans
                # emitted at their end time.
                self._close(record.name, record.ts - dur, float(dur),
                            record.attrs)

    def _close(self, name: str, start: float, dur: float, attrs: dict) -> None:
        children: list[_Node] = []
        while self._pending and self._pending[-1].start >= start:
            children.append(self._pending.pop())
        child_dur = sum(c.dur for c in children)
        self_s = max(0.0, dur - child_dur)

        cum_by_name: dict[str, float] = {}
        for child in children:
            for child_name, seconds in child.cum_by_name.items():
                cum_by_name[child_name] = cum_by_name.get(child_name, 0.0) + seconds
        # This span subsumes any same-name descendants: its own full
        # duration is the subtree's cumulative time for this name.
        cum_by_name[name] = dur
        self._pending.append(_Node(name, start, dur, cum_by_name))

        spot = self._by_name.get(name)
        if spot is None:
            spot = self._by_name[name] = Hotspot(name)
        spot.count += 1
        spot.self_s += self_s
        spot.max_s = max(spot.max_s, dur)

        round_k = attrs.get("round")
        if isinstance(round_k, int):
            self._on_round_interval(name, dur, round_k, attrs)

    def _on_round_interval(self, name: str, dur: float, round_k: int,
                           attrs: dict) -> None:
        row = self._rounds.get(round_k)
        if row is None:
            row = self._rounds[round_k] = RoundProfile(round_k)
        if name == "mpc.round":
            row.latency_s += dur
            row.messages += attrs.get("messages", 0)
            row.oracle_queries += attrs.get("oracle_queries", 0)
        elif name == "mpc.machine_step":
            row.machine_s += dur
            if dur > row.slowest_machine_s:
                row.slowest_machine_s = dur
                row.slowest_machine = attrs.get("machine")

    def hotspots(self) -> list[Hotspot]:
        """Per-name aggregates, hottest self-time first.

        Cumulative times are finalized here from the unclaimed root
        intervals, so recursion and repeated runs count each second of
        wall-clock exactly once.
        """
        cum: dict[str, float] = {}
        for root in self._pending:
            for name, seconds in root.cum_by_name.items():
                cum[name] = cum.get(name, 0.0) + seconds
        out = []
        for name, spot in self._by_name.items():
            out.append(Hotspot(
                name=name,
                count=spot.count,
                cum_s=cum.get(name, 0.0),
                self_s=spot.self_s,
                max_s=spot.max_s,
            ))
        out.sort(key=lambda h: (-h.self_s, h.name))
        return out

    def hotspot_map(self) -> dict[str, Hotspot]:
        """Hotspots keyed by span name (the shape differential
        profiling aligns on -- :mod:`repro.perfwatch.diffprof`)."""
        return {h.name: h for h in self.hotspots()}

    def rounds(self) -> list[RoundProfile]:
        """Per-round latency decomposition, in round order."""
        return [self._rounds[k] for k in sorted(self._rounds)]

    @property
    def total_s(self) -> float:
        """Total traced wall-clock: the sum of root span durations."""
        return sum(root.dur for root in self._pending)

    def render(self, *, top: int | None = None, slow_rounds: int = 5) -> str:
        """The sorted hotspot table ``repro profile`` prints."""
        hotspots = self.hotspots()
        shown = hotspots if top is None else hotspots[:top]
        lines = [
            f"hotspots ({len(hotspots)} span kinds, "
            f"total {self.total_s:.4f}s traced):"
        ]
        if shown:
            width = max(len(h.name) for h in shown)
            lines.append(
                f"  {'span':<{width}}  {'count':>7}  {'cum s':>9}  "
                f"{'self s':>9}  {'self %':>6}  {'mean ms':>9}  {'max ms':>9}"
            )
            total = self.total_s or 1.0
            for h in shown:
                lines.append(
                    f"  {h.name:<{width}}  {h.count:>7}  {h.cum_s:>9.4f}  "
                    f"{h.self_s:>9.4f}  {100 * h.self_s / total:>5.1f}%  "
                    f"{h.mean_s * 1e3:>9.3f}  {h.max_s * 1e3:>9.3f}"
                )
        rounds = self.rounds()
        if rounds and slow_rounds:
            slowest = sorted(rounds, key=lambda r: -r.latency_s)[:slow_rounds]
            lines.append(f"  slowest rounds (of {len(rounds)}):")
            for row in slowest:
                who = (
                    f"machine {row.slowest_machine} "
                    f"{row.slowest_machine_s * 1e3:.3f}ms"
                    if row.slowest_machine is not None
                    else "-"
                )
                lines.append(
                    f"    round {row.round:<5} {row.latency_s * 1e3:9.3f}ms  "
                    f"compute {row.machine_s * 1e3:9.3f}ms  "
                    f"overhead {row.overhead_s * 1e3:9.3f}ms  "
                    f"slowest: {who}"
                )
        return "\n".join(lines)


class ScopedCProfile(SpanHook):
    """``cProfile`` attached to one span kind via span hooks.

    With ``span=None`` the profile covers everything between
    :meth:`start` and :meth:`stop`.  With ``span="mpc.round"`` (or any
    span / hook-scope name: ``oracle.query``, ``mpc.machine_step``,
    ``experiment`` ...) the profiler is enabled only while a span of
    that name is open, so the function table shows just that code path.
    Nested occurrences are depth-counted; unbalanced exits (a run that
    raises mid-span) are cleaned up by :meth:`stop`.
    """

    def __init__(self, span: str | None = None) -> None:
        import cProfile

        self.span = span
        self._profile = cProfile.Profile()
        self._depth = 0
        self._running = False

    def _enable(self) -> None:
        if not self._running:
            self._profile.enable()
            self._running = True

    def _disable(self) -> None:
        if self._running:
            self._profile.disable()
            self._running = False

    def start(self) -> None:
        """Begin a profiling session (enables now when unscoped)."""
        if self.span is None:
            self._enable()

    def stop(self) -> None:
        """End the session; always safe to call in ``finally``."""
        self._depth = 0
        self._disable()

    def span_start(self, name: str, attrs: dict) -> None:
        if name == self.span:
            self._depth += 1
            if self._depth == 1:
                self._enable()

    def span_end(self, name: str) -> None:
        if name == self.span and self._depth > 0:
            self._depth -= 1
            if self._depth == 0:
                self._disable()

    def stats_table(self, *, top: int = 20, sort: str = "cumulative") -> str:
        """The ``pstats`` function table, as a string."""
        import io
        import pstats

        self._disable()
        buf = io.StringIO()
        stats = pstats.Stats(self._profile, stream=buf)
        stats.sort_stats(sort).print_stats(top)
        return buf.getvalue().rstrip()


class RoundMemorySampler:
    """Per-round peak heap usage via ``tracemalloc``.

    A tracer subscriber: at every closing ``mpc.round`` span it records
    ``tracemalloc``'s peak traced size since the previous round and
    resets the peak, giving a round-indexed memory profile.  Rounds
    with the same index across multiple runs keep the larger peak.
    Tracing costs real time and memory -- attach only when profiling.
    """

    def __init__(self) -> None:
        self.peak_bytes: dict[int, int] = {}
        self._started_here = False

    def start(self) -> None:
        import tracemalloc

        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_here = True
        tracemalloc.reset_peak()

    def stop(self) -> None:
        import tracemalloc

        if self._started_here and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._started_here = False

    def __call__(self, record: TraceRecord) -> None:
        if record.kind != "span" or record.name != "mpc.round":
            return
        import tracemalloc

        if not tracemalloc.is_tracing():
            return
        round_k = record.attrs.get("round", 0)
        peak = tracemalloc.get_traced_memory()[1]
        self.peak_bytes[round_k] = max(self.peak_bytes.get(round_k, 0), peak)
        tracemalloc.reset_peak()

    def render(self, *, top: int = 5) -> str:
        if not self.peak_bytes:
            return "round memory: no mpc.round spans sampled"
        worst = sorted(self.peak_bytes.items(), key=lambda kv: -kv[1])[:top]
        lines = [
            f"round memory peaks ({len(self.peak_bytes)} rounds, "
            f"max {max(self.peak_bytes.values()) / 1024:.1f} KiB):"
        ]
        for round_k, peak in worst:
            lines.append(f"  round {round_k:<5} {peak / 1024:9.1f} KiB")
        return "\n".join(lines)


@dataclass
class ProfileSession:
    """Everything one ``profile_experiment`` run produced."""

    result: object  # ExperimentResult (not imported here: layering)
    records: tuple
    profiler: SpanProfiler
    cprofile: ScopedCProfile | None = None
    memory: RoundMemorySampler | None = None
    #: Execution backend that produced these records ("python"/"fast").
    backend: str = "python"


def profile_experiment(
    experiment_id: str,
    scale: str = "quick",
    *,
    cprofile: bool = False,
    cprofile_span: str | None = None,
    memory: bool = False,
) -> ProfileSession:
    """Run one experiment under the full profiling harness.

    ``cprofile_span`` implies ``cprofile`` and scopes it to that span
    kind; ``memory`` attaches the per-round ``tracemalloc`` sampler.
    """
    # Imported here: repro.experiments itself imports repro.obs.
    from repro.engine.backend import default_backend
    from repro.experiments import run_experiment
    from repro.obs.tracer import Tracer, use_tracer

    backend = default_backend()
    tracer = Tracer()
    profiler = SpanProfiler()
    tracer.subscribe(profiler)
    scoped = (
        ScopedCProfile(cprofile_span) if (cprofile or cprofile_span) else None
    )
    sampler = RoundMemorySampler() if memory else None
    if scoped is not None:
        tracer.add_span_hook(scoped)
        scoped.start()
    if sampler is not None:
        tracer.subscribe(sampler)
        sampler.start()
    try:
        with use_tracer(tracer):
            # telemetry.* records sit outside the determinism contract,
            # so the label never perturbs trace-diff fingerprints.
            tracer.event("telemetry.backend", backend=backend)
            result = run_experiment(experiment_id, scale=scale)
    finally:
        if scoped is not None:
            scoped.stop()
            tracer.remove_span_hook(scoped)
        if sampler is not None:
            sampler.stop()
    return ProfileSession(
        result=result,
        records=tracer.records,
        profiler=profiler,
        cprofile=scoped,
        memory=sampler,
        backend=backend,
    )
