"""Live per-round progress: a tracer subscriber that narrates a run.

Long simulations (E-SCALE, full-scale E-LINE) used to be silent until
they finished; :class:`LiveProgress` subscribes to the same fan-out
stream the exporters and monitors use and renders one status line per
MPC round as it completes::

    [mpc m=8 s=256b] round 37  msgs=9  bits=464  q=12  active=2
    [mpc m=8 s=256b] done: 58 rounds (halted) 1392 msgs

On a TTY the round line is redrawn in place (carriage return); on plain
streams (CI logs, files) it prints every ``every``-th round so logs stay
bounded.  Experiment spans and ``monitor.violation`` events are always
printed on their own lines.
"""

from __future__ import annotations

import sys
from typing import IO

from repro.obs.tracer import TraceRecord

__all__ = ["LiveProgress"]


class LiveProgress:
    """Render run progress from the trace stream.

    Parameters
    ----------
    stream:
        Where to write (default ``sys.stderr``).
    every:
        On non-TTY streams, print one line per this many rounds
        (TTY streams redraw every round regardless).
    """

    def __init__(self, stream: IO[str] | None = None, *, every: int = 25
                 ) -> None:
        if every <= 0:
            raise ValueError(f"every must be positive, got {every}")
        self._stream = stream if stream is not None else sys.stderr
        self._every = every
        self._isatty = bool(getattr(self._stream, "isatty", lambda: False)())
        self._prefix = "[mpc]"
        self._line_open = False

    def _write(self, text: str, *, transient: bool = False) -> None:
        if transient and self._isatty:
            self._stream.write(f"\r{text}\x1b[K")
            self._line_open = True
        else:
            if self._line_open:
                self._stream.write("\n")
                self._line_open = False
            self._stream.write(text + "\n")
        self._stream.flush()

    def _end_transient(self) -> None:
        if self._line_open:
            self._stream.write("\n")
            self._stream.flush()
            self._line_open = False

    def close(self) -> None:
        """Finish any in-place round line; idempotent.

        A run that dies mid-round never emits the ``mpc.run`` span that
        would normally terminate the transient line, which on a TTY
        leaves the cursor parked on a half-drawn status line.  Callers
        that attach a renderer should ``close()`` it on every exit path
        (the CLI does so in ``finally``); the renderer itself never
        swallows the exception.
        """
        self._end_transient()

    def __call__(self, record: TraceRecord) -> None:
        name, a = record.name, record.attrs
        if name == "mpc.run_start":
            q = a.get("q")
            q_part = f" q={q}" if q is not None else ""
            self._prefix = f"[mpc m={a.get('m')} s={a.get('s_bits')}b{q_part}]"
        elif name == "mpc.round" and record.kind == "span":
            round_k = a.get("round", 0)
            line = (
                f"{self._prefix} round {round_k}  "
                f"msgs={a.get('messages', 0)}  "
                f"bits={a.get('message_bits', 0)}  "
                f"q={a.get('oracle_queries', 0)}  "
                f"active={a.get('active_machines', 0)}"
            )
            if self._isatty:
                self._write(line, transient=True)
            elif round_k % self._every == 0:
                self._write(line)
        elif name == "mpc.run" and record.kind == "span":
            self._end_transient()
            state = "halted" if a.get("halted") else "cut off at max_rounds"
            self._write(
                f"{self._prefix} done: {a.get('rounds', 0)} rounds ({state}) "
                f"{a.get('total_messages', 0)} msgs "
                f"{a.get('total_message_bits', 0)} bits"
            )
        elif name == "monitor.violation":
            self._end_transient()
            self._write(f"!! {a.get('check')}: {a.get('message')}")
        elif name == "experiment" and record.kind == "span":
            self._end_transient()
            verdict = "ok" if a.get("passed") else "FAIL"
            self._write(
                f"[experiment {a.get('experiment_id')}] {verdict} "
                f"({record.dur or 0.0:.1f}s)"
            )
