"""Unified tracing, metrics & invariant monitoring for the whole model.

The package has five parts (see docs/OBSERVABILITY.md for the trace
schema and a reading guide):

* :mod:`repro.obs.tracer` -- :class:`Tracer` / :class:`NullTracer`, the
  :class:`TraceRecord` stream with multi-subscriber fan-out, and the
  ambient-tracer context (:func:`get_tracer` / :func:`use_tracer`)
  instrumented code reports to;
* :mod:`repro.obs.exporters` -- JSONL files and human-readable summaries;
* :mod:`repro.obs.metrics` -- :class:`TraceMetrics`, the aggregated
  per-round latency / messages / bits / queries view;
* :mod:`repro.obs.monitor` -- :class:`InvariantMonitor`, live checks of
  the paper's resource budgets (memory <= s, communication <= s*m,
  query budgets, round prediction bands) with a strict hard-fail mode;
* :mod:`repro.obs.baseline` -- bench counter fingerprints, the
  committed ``benchmarks/baseline.json``, and the ``bench-compare``
  regression gate;
* :mod:`repro.obs.progress` -- :class:`LiveProgress`, a per-round
  progress renderer on the same stream.

Instrumentation lives in :mod:`repro.mpc.simulator`,
:mod:`repro.oracle.counting`, :mod:`repro.ram.machine`, and
:mod:`repro.experiments.base`; with the default :data:`NULL_TRACER` it
all reduces to one boolean check per site.
"""

from repro.obs.baseline import (
    BenchComparison,
    BenchEntry,
    Drift,
    bench_payload,
    compare_benchmarks,
    counters_of,
    load_baseline,
    load_bench_dir,
    save_baseline,
    write_bench_json,
)
from repro.obs.exporters import JsonlExporter, read_jsonl, summarize, write_jsonl
from repro.obs.metrics import Distribution, TraceMetrics
from repro.obs.monitor import InvariantMonitor, InvariantViolation, Violation
from repro.obs.progress import LiveProgress
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceRecord,
    Tracer,
    get_tracer,
    phase,
    set_tracer,
    use_tracer,
)

__all__ = [
    "BenchComparison",
    "BenchEntry",
    "Distribution",
    "Drift",
    "InvariantMonitor",
    "InvariantViolation",
    "JsonlExporter",
    "LiveProgress",
    "NULL_TRACER",
    "NullTracer",
    "TraceMetrics",
    "TraceRecord",
    "Tracer",
    "Violation",
    "bench_payload",
    "compare_benchmarks",
    "counters_of",
    "get_tracer",
    "load_baseline",
    "load_bench_dir",
    "phase",
    "read_jsonl",
    "save_baseline",
    "set_tracer",
    "summarize",
    "use_tracer",
    "write_bench_json",
    "write_jsonl",
]
