"""Unified tracing & metrics for the simulator, oracle, RAM, and experiments.

The package has three parts (see docs/OBSERVABILITY.md for the trace
schema and a reading guide):

* :mod:`repro.obs.tracer` -- :class:`Tracer` / :class:`NullTracer`, the
  :class:`TraceRecord` stream, and the ambient-tracer context
  (:func:`get_tracer` / :func:`use_tracer`) instrumented code reports to;
* :mod:`repro.obs.exporters` -- JSONL files and human-readable summaries;
* :mod:`repro.obs.metrics` -- :class:`TraceMetrics`, the aggregated
  per-round latency / messages / bits / queries view.

Instrumentation lives in :mod:`repro.mpc.simulator`,
:mod:`repro.oracle.counting`, :mod:`repro.ram.machine`, and
:mod:`repro.experiments.base`; with the default :data:`NULL_TRACER` it
all reduces to one boolean check per site.
"""

from repro.obs.exporters import JsonlExporter, read_jsonl, summarize, write_jsonl
from repro.obs.metrics import Distribution, TraceMetrics
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceRecord,
    Tracer,
    get_tracer,
    phase,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Distribution",
    "JsonlExporter",
    "NULL_TRACER",
    "NullTracer",
    "TraceMetrics",
    "TraceRecord",
    "Tracer",
    "get_tracer",
    "phase",
    "read_jsonl",
    "set_tracer",
    "summarize",
    "use_tracer",
    "write_jsonl",
]
