"""Unified tracing, metrics, monitoring & profiling for the whole model.

The package's parts (see docs/OBSERVABILITY.md for the trace schema
and a reading guide):

* :mod:`repro.obs.tracer` -- :class:`Tracer` / :class:`NullTracer`, the
  :class:`TraceRecord` stream with multi-subscriber fan-out, span
  boundary hooks (:class:`SpanHook`), and the ambient-tracer context
  (:func:`get_tracer` / :func:`use_tracer`) instrumented code reports
  to;
* :mod:`repro.obs.exporters` -- JSONL files and human-readable summaries;
* :mod:`repro.obs.metrics` -- :class:`TraceMetrics`, the aggregated
  per-round latency / messages / bits / queries view (nested and
  flat-dotted-key forms);
* :mod:`repro.obs.monitor` -- :class:`InvariantMonitor`, live checks of
  the paper's resource budgets (memory <= s, communication <= s*m,
  query budgets, round prediction bands) with a strict hard-fail mode;
* :mod:`repro.obs.baseline` -- bench counter fingerprints, the
  committed ``benchmarks/baseline.json``, and the ``bench-compare``
  regression gate;
* :mod:`repro.obs.progress` -- :class:`LiveProgress`, a per-round
  progress renderer on the same stream;
* :mod:`repro.obs.profile` -- :class:`SpanProfiler` hotspot self/cum
  times, span-scoped ``cProfile``, per-round ``tracemalloc`` peaks
  (``repro profile``);
* :mod:`repro.obs.analysis` -- communication matrices, critical path,
  oracle-query locality, and the structural trace diff
  (``repro trace-diff``);
* :mod:`repro.obs.report` -- the self-contained HTML report and the
  Chrome/Perfetto trace export (``repro report <trace.jsonl>``);
* :mod:`repro.obs.forensics` -- the columnar SQLite trace index
  (``repro index``), the first-divergence explainer
  (``trace-diff --explain``), and anomaly triage (``repro why``);
* :mod:`repro.obs.query` -- the filter/aggregate query language over
  an indexed trace (``repro query``);
* :mod:`repro.obs.registry` -- :class:`RunRegistry`, the append-only
  SQLite store of every experiment run (auto-recorded by ``repro
  run``/``run-all``, ``--registry PATH`` / ``REPRO_REGISTRY``);
* :mod:`repro.obs.convergence` -- streaming Welford/Wilson confidence
  intervals over the per-trial ``trial.result`` stream and the
  :class:`ConvergenceMonitor` (``estimate.converged`` events, "verdict
  not statistically resolved" flags);
* :mod:`repro.obs.history` -- cross-run analytics over the registry:
  the ``repro runs {list,show,compare,trend,gc}`` toolchain with a
  rolling-window regression gate and flaky-verdict detection;
* :mod:`repro.obs.trendstats` -- the shared trend arithmetic (rolling
  gates, robust MAD z-scores, sparklines) behind both ``runs trend``
  and the performance observatory's ``bench trend``
  (:mod:`repro.perfwatch`).

Instrumentation lives in :mod:`repro.mpc.simulator`,
:mod:`repro.oracle.counting`, :mod:`repro.ram.machine`, and
:mod:`repro.experiments.base`; with the default :data:`NULL_TRACER` it
all reduces to one boolean check per site.
"""

from repro.obs.analysis import (
    CommMatrix,
    CriticalStep,
    LocalityReport,
    TraceDiff,
    communication_matrix,
    critical_path,
    diff_traces,
    query_locality,
)
from repro.obs.baseline import (
    BenchComparison,
    BenchEntry,
    Drift,
    bench_payload,
    compare_benchmarks,
    counters_of,
    load_baseline,
    load_bench_dir,
    save_baseline,
    write_bench_json,
)
from repro.obs.convergence import (
    ConvergenceMonitor,
    EstimateStats,
    WelfordAccumulator,
    WilsonAccumulator,
    attach_estimates,
    estimates_from_records,
)
from repro.obs.exporters import (
    JsonlExporter,
    TraceFormatError,
    coerce_jsonable,
    iter_trace_records,
    read_jsonl,
    summarize,
    write_jsonl,
)
from repro.obs.forensics import (
    Anomaly,
    CausalContext,
    Divergence,
    TraceIndex,
    build_index,
    causal_context,
    ensure_index,
    explain_divergence,
    explain_trace_files,
    render_divergence,
    render_triage,
    triage,
    triage_file,
)
from repro.obs.query import (
    Query,
    QueryError,
    QueryResult,
    parse_query,
    render_result,
    run_query,
)
from repro.obs.history import (
    FlakyVerdict,
    RunComparison,
    TrendReport,
    TrendSeries,
    ascii_sparkline,
    compare_runs,
    render_runs_table,
    trend_report,
)
from repro.obs.metrics import Distribution, TraceMetrics, flatten_dotted
from repro.obs.trendstats import (
    RollingGate,
    mad,
    median,
    robust_z,
    rolling_gate,
    rolling_window,
)
from repro.obs.monitor import InvariantMonitor, InvariantViolation, Violation
from repro.obs.profile import (
    ProfileSession,
    RoundMemorySampler,
    ScopedCProfile,
    SpanProfiler,
    profile_experiment,
)
from repro.obs.progress import LiveProgress
from repro.obs.registry import (
    BenchResult,
    RunRecord,
    RunRegistry,
    default_registry_path,
    deterministic_metrics,
    git_sha,
)
from repro.obs.report import (
    chrome_trace_events,
    render_history_html,
    render_html,
    write_chrome_trace,
    write_history_html,
    write_html_report,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    SpanHook,
    TraceRecord,
    Tracer,
    get_tracer,
    phase,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Anomaly",
    "BenchComparison",
    "BenchEntry",
    "BenchResult",
    "CausalContext",
    "CommMatrix",
    "ConvergenceMonitor",
    "CriticalStep",
    "Distribution",
    "Divergence",
    "Drift",
    "EstimateStats",
    "FlakyVerdict",
    "InvariantMonitor",
    "InvariantViolation",
    "JsonlExporter",
    "LiveProgress",
    "LocalityReport",
    "NULL_TRACER",
    "NullTracer",
    "ProfileSession",
    "Query",
    "QueryError",
    "QueryResult",
    "RollingGate",
    "RoundMemorySampler",
    "RunComparison",
    "RunRecord",
    "RunRegistry",
    "ScopedCProfile",
    "SpanHook",
    "SpanProfiler",
    "TraceDiff",
    "TraceFormatError",
    "TraceIndex",
    "TraceMetrics",
    "TraceRecord",
    "Tracer",
    "TrendReport",
    "TrendSeries",
    "Violation",
    "WelfordAccumulator",
    "WilsonAccumulator",
    "ascii_sparkline",
    "attach_estimates",
    "bench_payload",
    "build_index",
    "causal_context",
    "chrome_trace_events",
    "coerce_jsonable",
    "communication_matrix",
    "compare_benchmarks",
    "compare_runs",
    "counters_of",
    "critical_path",
    "default_registry_path",
    "deterministic_metrics",
    "diff_traces",
    "ensure_index",
    "estimates_from_records",
    "explain_divergence",
    "explain_trace_files",
    "flatten_dotted",
    "get_tracer",
    "git_sha",
    "iter_trace_records",
    "load_baseline",
    "load_bench_dir",
    "mad",
    "median",
    "parse_query",
    "phase",
    "profile_experiment",
    "query_locality",
    "read_jsonl",
    "render_divergence",
    "render_history_html",
    "render_html",
    "render_result",
    "render_runs_table",
    "render_triage",
    "robust_z",
    "rolling_gate",
    "rolling_window",
    "run_query",
    "save_baseline",
    "set_tracer",
    "summarize",
    "trend_report",
    "triage",
    "triage_file",
    "use_tracer",
    "write_bench_json",
    "write_chrome_trace",
    "write_history_html",
    "write_html_report",
    "write_jsonl",
]
