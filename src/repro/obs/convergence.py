"""Monte-Carlo convergence observability: streaming CIs on the trial stream.

Every probability the experiments report is a Monte-Carlo estimate, and
a point estimate without a confidence interval cannot justify a
verdict.  This module computes 95% intervals **online** -- one update
per trial, no second pass over the trial list:

* :class:`WelfordAccumulator` -- streaming mean/variance (Welford's
  algorithm) for real-valued estimates; its t-based half-width matches
  :func:`repro.analysis.statistics.mean_ci` exactly;
* :class:`WilsonAccumulator` -- streaming success counts for binary
  estimates; its interval is
  :func:`repro.analysis.statistics.binomial_ci` (Wilson score), which
  needs only ``(successes, trials)`` and is therefore inherently
  single-pass;
* :class:`ConvergenceMonitor` -- a tracer subscriber consuming the
  ``trial.result`` events :mod:`repro.parallel.pool` emits as trial
  results are collected (the same ``worker=<chunk>/trial=<t>`` replay
  stream the metrics and invariant monitors ride).  It maintains one
  accumulator per estimate, emits an ``estimate.converged`` event the
  first time an estimate's CI half-width drops below the target, and
  can flag estimates whose decision threshold lies *inside* the 95%
  interval -- "verdict not statistically resolved": the data does not
  yet distinguish pass from fail.

Trace schema additions:

| name | kind | attrs |
|---|---|---|
| ``trial.result`` | event | ``estimate`` (name), ``trial``, ``worker``, ``value`` (float), ``binary`` (bool: Wilson vs Welford) |
| ``estimate.converged`` | event | ``estimate``, ``n``, ``value``, ``half_width``, ``target`` |

Both are emitted by the *parent* process during ordered result
collection, so their order and content are bit-identical at every
``--jobs N``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.analysis.statistics import binomial_ci
from repro.obs.tracer import TraceRecord, Tracer

__all__ = [
    "WelfordAccumulator",
    "WilsonAccumulator",
    "EstimateStats",
    "ConvergenceMonitor",
    "attach_estimates",
    "estimates_from_records",
]


@dataclass(frozen=True)
class EstimateStats:
    """A frozen snapshot of one estimate's streaming statistics."""

    name: str
    kind: str  # "binomial" | "mean"
    n: int
    value: float  # the point estimate (rate or mean)
    low: float
    high: float
    confidence: float = 0.95

    @property
    def half_width(self) -> float:
        """Half the CI width (``inf`` when the CI is unbounded)."""
        if math.isinf(self.low) or math.isinf(self.high):
            return math.inf
        return (self.high - self.low) / 2.0

    def resolved(self, threshold: float) -> bool:
        """Is a verdict that compares ``value`` against ``threshold``
        statistically resolved -- i.e. does the threshold fall *outside*
        the interval?  ``False`` means the CI still straddles the
        decision boundary and the verdict could flip with more trials.
        """
        return not (self.low <= threshold <= self.high)

    def to_dict(self) -> dict:
        out = {
            "kind": self.kind,
            "n": self.n,
            "value": round(self.value, 9),
            "ci95": [round(self.low, 9), round(self.high, 9)],
            "confidence": self.confidence,
        }
        out["half_width"] = (
            round(self.half_width, 9)
            if not math.isinf(self.half_width)
            else None
        )
        return out


class WelfordAccumulator:
    """Streaming mean and variance (Welford's online algorithm).

    One :meth:`add` per sample; O(1) state.  The confidence interval
    reproduces :func:`repro.analysis.statistics.mean_ci`: t-based, with
    an infinite half-width at ``n == 1`` and a zero half-width for a
    zero-variance stream.
    """

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0.0 until two samples exist."""
        if self.n < 2:
            return 0.0
        return self._m2 / (self.n - 1)

    def interval(self, confidence: float = 0.95) -> tuple[float, float, float]:
        """``(mean, low, high)`` of the t-based confidence interval."""
        if self.n == 0:
            raise ValueError("no samples")
        if self.n == 1:
            return self.mean, -math.inf, math.inf
        sem = math.sqrt(self.variance / self.n)
        if sem == 0.0:
            return self.mean, self.mean, self.mean
        from scipy import stats

        half = sem * float(stats.t.ppf((1 + confidence) / 2, self.n - 1))
        return self.mean, self.mean - half, self.mean + half

    def stats(self, name: str, confidence: float = 0.95) -> EstimateStats:
        mean, low, high = self.interval(confidence)
        return EstimateStats(name, "mean", self.n, mean, low, high, confidence)


class WilsonAccumulator:
    """Streaming Wilson score interval for a binary (success) stream.

    State is just ``(successes, trials)``, so the interval is exact and
    online by construction -- there is nothing a second pass could add.
    """

    def __init__(self) -> None:
        self.trials = 0
        self.successes = 0

    def add(self, success: bool) -> None:
        self.trials += 1
        if success:
            self.successes += 1

    @property
    def rate(self) -> float:
        if not self.trials:
            raise ValueError("no trials")
        return self.successes / self.trials

    def interval(self, confidence: float = 0.95) -> tuple[float, float, float]:
        """``(rate, low, high)`` -- delegates to :func:`binomial_ci`."""
        return binomial_ci(self.successes, self.trials, confidence)

    def stats(self, name: str, confidence: float = 0.95) -> EstimateStats:
        rate, low, high = self.interval(confidence)
        return EstimateStats(
            name, "binomial", self.trials, rate, low, high, confidence
        )


class ConvergenceMonitor:
    """A tracer subscriber accumulating CIs over ``trial.result`` events.

    Subscribe it to a :class:`~repro.obs.Tracer` (the CLI's ``repro
    trace`` does) and it folds every ``trial.result`` event into a
    per-estimate accumulator -- :class:`WilsonAccumulator` for binary
    trials, :class:`WelfordAccumulator` otherwise.  When an estimate's
    half-width first drops to ``target_half_width`` (and at least
    ``min_trials`` trials are in), an ``estimate.converged`` event is
    emitted back into the stream, so a JSONL trace records *when* each
    estimate stabilized.

    ``thresholds`` maps estimate names to the decision boundary their
    experiment's verdict compares against; :meth:`unresolved` (and the
    rendered report) flags estimates whose 95% interval still contains
    their threshold -- "verdict not statistically resolved".
    """

    def __init__(
        self,
        *,
        tracer: Tracer | None = None,
        target_half_width: float = 0.02,
        min_trials: int = 30,
        confidence: float = 0.95,
        thresholds: Mapping[str, float] | None = None,
    ) -> None:
        if target_half_width <= 0:
            raise ValueError(
                f"target_half_width must be > 0, got {target_half_width}"
            )
        self._tracer = tracer
        self.target_half_width = target_half_width
        self.min_trials = min_trials
        self.confidence = confidence
        self.thresholds = dict(thresholds or {})
        self._accumulators: dict[
            str, WelfordAccumulator | WilsonAccumulator
        ] = {}
        self.converged_at: dict[str, int] = {}

    # The subscriber protocol: called with every TraceRecord.
    def __call__(self, record: TraceRecord) -> None:
        if record.name != "trial.result":
            return
        attrs = record.attrs
        name = attrs.get("estimate")
        value = attrs.get("value")
        if name is None or not isinstance(value, (int, float)):
            return
        self.observe(str(name), float(value), binary=bool(attrs.get("binary")))

    def observe(self, name: str, value: float, *, binary: bool = False) -> None:
        """Fold one trial result (the direct, non-tracer entry point)."""
        acc = self._accumulators.get(name)
        if acc is None:
            acc = WilsonAccumulator() if binary else WelfordAccumulator()
            self._accumulators[name] = acc
        acc.add(bool(value) if isinstance(acc, WilsonAccumulator) else value)
        if name in self.converged_at:
            return
        stats = acc.stats(name, self.confidence)
        if stats.n >= self.min_trials and (
            stats.half_width <= self.target_half_width
        ):
            self.converged_at[name] = stats.n
            if self._tracer is not None and self._tracer.enabled:
                self._tracer.event(
                    "estimate.converged",
                    estimate=name,
                    n=stats.n,
                    value=round(stats.value, 9),
                    half_width=round(stats.half_width, 9),
                    target=self.target_half_width,
                )

    # -- reporting --------------------------------------------------------

    @property
    def names(self) -> list[str]:
        return sorted(self._accumulators)

    def stats(self, name: str) -> EstimateStats:
        """The current snapshot of one estimate (KeyError if unknown)."""
        return self._accumulators[name].stats(name, self.confidence)

    def estimates(self) -> dict[str, EstimateStats]:
        """Snapshots of every estimate, keyed by name."""
        return {name: self.stats(name) for name in self.names}

    def unresolved(self) -> list[str]:
        """Estimate names whose threshold lies inside the 95% interval."""
        out = []
        for name, threshold in sorted(self.thresholds.items()):
            if name in self._accumulators and not self.stats(name).resolved(
                threshold
            ):
                out.append(name)
        return out

    def to_dict(self) -> dict:
        """JSON view: per-estimate stats + convergence/resolution flags."""
        estimates = {}
        for name, stats in self.estimates().items():
            entry = stats.to_dict()
            entry["converged_at"] = self.converged_at.get(name)
            if name in self.thresholds:
                entry["threshold"] = self.thresholds[name]
                entry["resolved"] = stats.resolved(self.thresholds[name])
            estimates[name] = entry
        return {
            "target_half_width": self.target_half_width,
            "confidence": self.confidence,
            "estimates": estimates,
            "unresolved": self.unresolved(),
        }

    def render(self) -> str:
        """The human-readable convergence table ``repro trace`` prints."""
        if not self._accumulators:
            return "convergence: no estimates observed"
        lines = [
            f"convergence ({self.confidence:.0%} CIs, target half-width "
            f"{self.target_half_width:g}):"
        ]
        for name, stats in self.estimates().items():
            converged = self.converged_at.get(name)
            status = (
                f"converged @ n={converged}" if converged is not None
                else "not converged"
            )
            half = (
                "inf" if math.isinf(stats.half_width)
                else f"{stats.half_width:.4f}"
            )
            line = (
                f"  {name}: {stats.value:.4f} "
                f"[{stats.low:.4f}, {stats.high:.4f}] "
                f"(n={stats.n}, +/-{half}, {status})"
            )
            threshold = self.thresholds.get(name)
            if threshold is not None and not stats.resolved(threshold):
                line += (
                    f"  ** verdict not statistically resolved: threshold "
                    f"{threshold:g} inside the interval **"
                )
            lines.append(line)
        return "\n".join(lines)


def estimates_from_records(records) -> ConvergenceMonitor:
    """Replay a recorded stream through a fresh monitor (offline use).

    The HTML report builds its estimates section this way: the same
    accumulators, fed from the ``trial.result`` events a trace already
    holds.
    """
    monitor = ConvergenceMonitor()
    for record in records:
        monitor(record)
    return monitor


def attach_estimates(
    metrics: dict,
    entries: Mapping[str, EstimateStats],
    thresholds: Mapping[str, float] | None = None,
) -> dict:
    """Merge estimate snapshots into ``ExperimentResult.metrics``.

    Writes ``metrics["estimates"][name] = {kind, n, value, ci95, ...}``
    (plus ``threshold``/``resolved`` when a decision boundary is
    known), and returns the mutated dict.  Keys are sorted for stable
    flat-metric output.
    """
    thresholds = dict(thresholds or {})
    block = metrics.setdefault("estimates", {})
    for name in sorted(entries):
        entry = entries[name].to_dict()
        if name in thresholds:
            entry["threshold"] = thresholds[name]
            entry["resolved"] = entries[name].resolved(thresholds[name])
        block[name] = entry
    return metrics
