"""The persistent run registry: one SQLite row per experiment run.

Every ``repro run`` / ``repro run-all`` invocation records its outcome
into an **append-only** SQLite database, so regressions, flaky
verdicts, and estimator convergence are observable *across* runs, not
just within one trace.  The registry is the durable twin of the bench
gate: where ``BENCH_*.json`` files capture one CI invocation, the
registry accumulates every run ever made against a checkout.

Resolution order for the database path:

1. an explicit ``--registry PATH`` flag (:func:`RunRegistry.open` arg);
2. the ``REPRO_REGISTRY`` environment variable;
3. ``~/.repro/runs.db`` (created on first write).

One row per run (schema v3, ``PRAGMA user_version``; v1/v2 databases
are migrated in place on open -- v1 gains the two nullable telemetry
columns, and both gain the v3 ``bench_results`` table):

| column | meaning |
|---|---|
| ``id`` | monotonically increasing row id (the "run id" the CLI prints) |
| ``ts_utc`` | ISO-8601 UTC timestamp of the record call |
| ``git_sha`` | ``git rev-parse HEAD`` of the working tree (NULL outside a repo) |
| ``experiment_id`` / ``scale`` | what ran |
| ``params`` | JSON of run parameters (currently ``{"scale": ...}``) |
| ``seed`` | the experiment's deterministic seed family -- ``trial_seed(experiment_id, scale)`` |
| ``jobs`` | parallelism degree of the run |
| ``wall_s`` | wall-clock seconds (the one non-deterministic scalar) |
| ``verdict`` | ``"pass"`` / ``"fail"`` (the shape-check verdict) |
| ``metrics`` | JSON of **deterministic** flat metrics (wall-clock keys stripped -- see :func:`deterministic_metrics`) |
| ``counters`` | JSON of the bench fingerprint (:func:`repro.obs.baseline.counters_of`) |
| ``violations`` | invariant-monitor violation count |
| ``rss_peak_kb`` | peak RSS sampled during the run (NULL without ``--telemetry``) |
| ``overhead_frac`` | tracer self-overhead / wall-clock (NULL without ``--telemetry``) |

Because ``metrics``/``counters`` exclude every wall-clock quantity, a
serial run and a ``--jobs 8`` run of the same experiment record
byte-identical ``metrics`` and ``counters`` columns -- only ``wall_s``
and ``jobs`` differ.  Runtime-telemetry quantities (``telemetry.*``
flat keys) are likewise stripped from ``metrics`` and live only in
their own nullable columns, so a ``--telemetry`` run fingerprints
identically to a plain one.  That is the property the history analytics
(:mod:`repro.obs.history`) lean on: any cross-run difference in those
columns is a behavior change, never scheduling noise.

Schema v3 adds a second table, ``bench_results``: one row per
``repro bench run`` measurement (:mod:`repro.perfwatch.suite`).  Where
``runs`` rows are deterministic fingerprints with wall-clock as an
advisory sidecar, ``bench_results`` rows are the opposite -- wall-clock
*is* the payload (warmup + best-of-k timing), stamped with the
environment fingerprint (git SHA, python, CPU model/cores, backend,
jobs) that makes cross-machine comparisons honest.  Bench rows never
feed deterministic fingerprints; ``repro bench trend`` reads them for
the wall-clock changepoint gate.
"""

from __future__ import annotations

import json
import os
import sqlite3
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Iterator, Mapping

from repro.telemetry.config import TELEMETRY_NAME_PREFIX

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_REGISTRY",
    "BenchResult",
    "RunRecord",
    "RunRegistry",
    "default_registry_path",
    "deterministic_metrics",
    "git_sha",
]

SCHEMA_VERSION = 3

#: The home-directory default (``~`` expanded at open time).
DEFAULT_REGISTRY = os.path.join("~", ".repro", "runs.db")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    ts_utc        TEXT    NOT NULL,
    git_sha       TEXT,
    experiment_id TEXT    NOT NULL,
    scale         TEXT    NOT NULL,
    params        TEXT    NOT NULL DEFAULT '{}',
    seed          INTEGER,
    jobs          INTEGER NOT NULL DEFAULT 1,
    wall_s        REAL,
    verdict       TEXT    NOT NULL,
    metrics       TEXT    NOT NULL DEFAULT '{}',
    counters      TEXT    NOT NULL DEFAULT '{}',
    violations    INTEGER NOT NULL DEFAULT 0,
    rss_peak_kb   REAL,
    overhead_frac REAL
);
CREATE INDEX IF NOT EXISTS runs_experiment_ts
    ON runs (experiment_id, ts_utc);
CREATE TABLE IF NOT EXISTS bench_results (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    ts_utc        TEXT    NOT NULL,
    git_sha       TEXT,
    experiment_id TEXT    NOT NULL,
    suite         TEXT    NOT NULL DEFAULT 'quick',
    scale         TEXT    NOT NULL DEFAULT 'quick',
    backend       TEXT    NOT NULL DEFAULT 'python',
    jobs          INTEGER NOT NULL DEFAULT 1,
    warmup        INTEGER NOT NULL DEFAULT 0,
    repeats       INTEGER NOT NULL DEFAULT 1,
    wall_s        REAL,
    mean_s        REAL,
    rss_peak_kb   REAL,
    passed        INTEGER NOT NULL DEFAULT 1,
    fingerprint   TEXT    NOT NULL DEFAULT '{}',
    counters      TEXT    NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS bench_results_experiment_ts
    ON bench_results (experiment_id, ts_utc);
"""

#: Flat-metric keys (or key fragments) that measure wall-clock rather
#: than model behavior; stripped before a row is stored so the
#: ``metrics`` column is deterministic at every ``--jobs N``.
_WALL_CLOCK_KEYS = ("duration_s",)
_WALL_CLOCK_FRAGMENTS = (".round_latency_s.", ".wall_s")
_WALL_CLOCK_PREFIXES = (
    "trace.experiments.",
    "experiments.",
    TELEMETRY_NAME_PREFIX,
)


def deterministic_metrics(flat: Mapping) -> dict:
    """``flat`` minus every wall-clock key, sorted.

    The filter behind the registry's ``metrics`` column: of a flat
    ``ExperimentResult.flat_metrics`` mapping, keep only keys whose
    values are reproducible for a fixed tree (counters, histograms,
    estimator statistics) and drop timings (``duration_s``, per-round
    latency stats, per-experiment wall-clock) and runtime-telemetry
    readings (``telemetry.*`` -- RSS, CPU, sample counts, overhead
    fractions; those go in the dedicated nullable columns instead).
    """
    out = {}
    for key, value in flat.items():
        if key in _WALL_CLOCK_KEYS:
            continue
        if any(f in key for f in _WALL_CLOCK_FRAGMENTS):
            continue
        if any(key.startswith(p) for p in _WALL_CLOCK_PREFIXES):
            continue
        out[key] = value
    return dict(sorted(out.items()))


_GIT_SHA_CACHE: dict[str, str | None] = {}


def git_sha(cwd: str | None = None) -> str | None:
    """``git rev-parse HEAD`` for ``cwd`` (default: process cwd).

    Returns ``None`` outside a repository or when git is unavailable;
    cached per directory for the life of the process.
    """
    key = os.path.abspath(cwd or os.getcwd())
    if key not in _GIT_SHA_CACHE:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=key,
                capture_output=True,
                text=True,
                timeout=10,
            )
            sha = out.stdout.strip() if out.returncode == 0 else None
        except (OSError, subprocess.SubprocessError):
            sha = None
        _GIT_SHA_CACHE[key] = sha or None
    return _GIT_SHA_CACHE[key]


def default_registry_path() -> str:
    """``REPRO_REGISTRY`` if set, else ``~/.repro/runs.db`` (expanded)."""
    env = os.environ.get("REPRO_REGISTRY")
    if env:
        return os.path.expanduser(env)
    return os.path.expanduser(DEFAULT_REGISTRY)


@dataclass(frozen=True)
class RunRecord:
    """One registry row (``run_id`` is ``None`` until recorded)."""

    experiment_id: str
    scale: str
    verdict: str
    ts_utc: str = ""
    git_sha: str | None = None
    params: dict = field(default_factory=dict)
    seed: int | None = None
    jobs: int = 1
    wall_s: float | None = None
    metrics: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    violations: int = 0
    rss_peak_kb: float | None = None
    overhead_frac: float | None = None
    run_id: int | None = None

    @property
    def passed(self) -> bool:
        return self.verdict == "pass"

    def to_dict(self) -> dict:
        """JSON-serializable view (``repro runs show --json``)."""
        return {
            "run_id": self.run_id,
            "ts_utc": self.ts_utc,
            "git_sha": self.git_sha,
            "experiment_id": self.experiment_id,
            "scale": self.scale,
            "params": self.params,
            "seed": self.seed,
            "jobs": self.jobs,
            "wall_s": self.wall_s,
            "verdict": self.verdict,
            "metrics": self.metrics,
            "counters": self.counters,
            "violations": self.violations,
            "rss_peak_kb": self.rss_peak_kb,
            "overhead_frac": self.overhead_frac,
        }

    @staticmethod
    def from_result(
        result,
        *,
        scale: str,
        jobs: int = 1,
        counters: Mapping | None = None,
        trace_metrics: Mapping | None = None,
        violations: int = 0,
    ) -> "RunRecord":
        """Build a record from an ``ExperimentResult``.

        ``trace_metrics`` is the run's ``TraceMetrics.to_dict()`` (when
        it ran captured); it is merged under the ``trace.`` namespace
        exactly as ``repro trace`` does before flattening, then wall
        -clock keys are stripped (:func:`deterministic_metrics`).

        A ``result.metrics["telemetry"]`` summary (attached by the CLI
        when ``--telemetry`` is on) populates the ``rss_peak_kb`` /
        ``overhead_frac`` columns; its flat keys never reach the
        ``metrics`` JSON.
        """
        from repro.obs.metrics import flatten_dotted
        from repro.parallel.seeds import trial_seed

        merged = dict(result.metrics)
        if trace_metrics is not None and "trace" not in merged:
            merged = {**merged, "trace": dict(trace_metrics)}
        flat = flatten_dotted(merged)
        telemetry = result.metrics.get("telemetry") or {}
        return RunRecord(
            experiment_id=result.experiment_id,
            scale=scale,
            verdict="pass" if result.passed else "fail",
            params={"scale": scale},
            seed=trial_seed(result.experiment_id, scale),
            jobs=jobs,
            wall_s=result.metrics.get("duration_s"),
            metrics=deterministic_metrics(flat),
            counters=dict(counters or {}),
            violations=violations,
            rss_peak_kb=telemetry.get("rss_peak_kb"),
            overhead_frac=telemetry.get("overhead_frac"),
        )


@dataclass(frozen=True)
class BenchResult:
    """One ``bench_results`` row: a wall-clock measurement with context.

    ``wall_s`` is the **best-of-k** repeat (the robust point estimate
    the changepoint gate trends), ``mean_s`` the mean of the same
    repeats (spread diagnostic), ``rss_peak_kb`` the process RSS
    high-water mark after the bench (advisory -- see
    :mod:`repro.perfwatch.budgets`).  ``fingerprint`` is the
    environment stamp (:func:`repro.perfwatch.suite.environment_fingerprint`)
    and ``counters`` the deterministic model fingerprint of the traced
    verification run -- carried for cross-reference, never trended.
    """

    experiment_id: str
    wall_s: float | None
    suite: str = "quick"
    scale: str = "quick"
    backend: str = "python"
    jobs: int = 1
    warmup: int = 0
    repeats: int = 1
    mean_s: float | None = None
    rss_peak_kb: float | None = None
    passed: bool = True
    fingerprint: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    ts_utc: str = ""
    git_sha: str | None = None
    bench_id: int | None = None

    def to_dict(self) -> dict:
        """JSON-serializable view (``repro bench run --json`` rows)."""
        return {
            "bench_id": self.bench_id,
            "ts_utc": self.ts_utc,
            "git_sha": self.git_sha,
            "experiment_id": self.experiment_id,
            "suite": self.suite,
            "scale": self.scale,
            "backend": self.backend,
            "jobs": self.jobs,
            "warmup": self.warmup,
            "repeats": self.repeats,
            "wall_s": self.wall_s,
            "mean_s": self.mean_s,
            "rss_peak_kb": self.rss_peak_kb,
            "passed": self.passed,
            "fingerprint": self.fingerprint,
            "counters": self.counters,
        }


class RunRegistry:
    """Append-only store of :class:`RunRecord` rows in one SQLite file.

    Use as a context manager or call :meth:`close`; every writer opens
    the schema idempotently, so concurrent CLI invocations against the
    same file are safe (SQLite serializes writers).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(path, timeout=30.0)
        self._conn.row_factory = sqlite3.Row
        self._conn.executescript(_SCHEMA)
        version = self._conn.execute("PRAGMA user_version").fetchone()[0]
        if version == 0:
            self._conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
            self._conn.commit()
        elif version in (1, 2):
            # v1 -> v2: the two nullable telemetry columns.  Additive,
            # so old rows read back with NULLs and old readers of the
            # migrated file would still see every v1 column.
            if version == 1:
                self._conn.execute(
                    "ALTER TABLE runs ADD COLUMN rss_peak_kb REAL"
                )
                self._conn.execute(
                    "ALTER TABLE runs ADD COLUMN overhead_frac REAL"
                )
            # v2 -> v3: the bench_results table, already created above
            # by the idempotent schema script; only the version stamp
            # moves.  Existing runs rows are untouched.
            self._conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
            self._conn.commit()
        elif version != SCHEMA_VERSION:
            self._conn.close()
            raise ValueError(
                f"{path}: unsupported registry schema version {version} "
                f"(this build reads version {SCHEMA_VERSION})"
            )

    @classmethod
    def open(cls, path: str | None = None) -> "RunRegistry":
        """Open ``path``, or the default (env var / home) location."""
        return cls(os.path.expanduser(path) if path else default_registry_path())

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- writes -----------------------------------------------------------

    def record(self, record: RunRecord) -> int:
        """Append one run; returns its assigned run id."""
        ts = record.ts_utc or datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        )
        sha = record.git_sha if record.git_sha is not None else git_sha()
        cursor = self._conn.execute(
            "INSERT INTO runs (ts_utc, git_sha, experiment_id, scale, "
            "params, seed, jobs, wall_s, verdict, metrics, counters, "
            "violations, rss_peak_kb, overhead_frac) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                ts,
                sha,
                record.experiment_id,
                record.scale,
                json.dumps(record.params, sort_keys=True),
                record.seed,
                record.jobs,
                record.wall_s,
                record.verdict,
                json.dumps(record.metrics, sort_keys=True),
                json.dumps(record.counters, sort_keys=True),
                record.violations,
                record.rss_peak_kb,
                record.overhead_frac,
            ),
        )
        self._conn.commit()
        return int(cursor.lastrowid)

    def record_bench(self, result: BenchResult) -> int:
        """Append one bench measurement; returns its assigned row id."""
        ts = result.ts_utc or datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        )
        sha = result.git_sha if result.git_sha is not None else git_sha()
        cursor = self._conn.execute(
            "INSERT INTO bench_results (ts_utc, git_sha, experiment_id, "
            "suite, scale, backend, jobs, warmup, repeats, wall_s, mean_s, "
            "rss_peak_kb, passed, fingerprint, counters) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                ts,
                sha,
                result.experiment_id,
                result.suite,
                result.scale,
                result.backend,
                result.jobs,
                result.warmup,
                result.repeats,
                result.wall_s,
                result.mean_s,
                result.rss_peak_kb,
                1 if result.passed else 0,
                json.dumps(result.fingerprint, sort_keys=True),
                json.dumps(result.counters, sort_keys=True),
            ),
        )
        self._conn.commit()
        return int(cursor.lastrowid)

    def gc(self, *, keep_last: int | None = None,
           before: str | None = None) -> int:
        """Delete old rows; returns the number removed.

        ``keep_last=N`` keeps the N most recent rows **per experiment**
        (the retention policy); ``before=ISO-TS`` additionally drops
        everything older than the timestamp.  With neither argument it
        is a no-op.
        """
        removed = 0
        if keep_last is not None:
            if keep_last < 0:
                raise ValueError(f"keep_last must be >= 0, got {keep_last}")
            cursor = self._conn.execute(
                "DELETE FROM runs WHERE id NOT IN ("
                "  SELECT id FROM ("
                "    SELECT id, ROW_NUMBER() OVER ("
                "      PARTITION BY experiment_id ORDER BY id DESC"
                "    ) AS rank FROM runs"
                "  ) WHERE rank <= ?)",
                (keep_last,),
            )
            removed += cursor.rowcount
        if before is not None:
            cursor = self._conn.execute(
                "DELETE FROM runs WHERE ts_utc < ?", (before,)
            )
            removed += cursor.rowcount
        self._conn.commit()
        return removed

    # -- reads ------------------------------------------------------------

    @staticmethod
    def _row_to_record(row: sqlite3.Row) -> RunRecord:
        return RunRecord(
            run_id=row["id"],
            ts_utc=row["ts_utc"],
            git_sha=row["git_sha"],
            experiment_id=row["experiment_id"],
            scale=row["scale"],
            params=json.loads(row["params"] or "{}"),
            seed=row["seed"],
            jobs=row["jobs"],
            wall_s=row["wall_s"],
            verdict=row["verdict"],
            metrics=json.loads(row["metrics"] or "{}"),
            counters=json.loads(row["counters"] or "{}"),
            violations=row["violations"],
            rss_peak_kb=row["rss_peak_kb"],
            overhead_frac=row["overhead_frac"],
        )

    def get(self, run_id: int) -> RunRecord:
        """One row by id (KeyError if absent)."""
        row = self._conn.execute(
            "SELECT * FROM runs WHERE id = ?", (run_id,)
        ).fetchone()
        if row is None:
            raise KeyError(f"no run {run_id} in {self.path}")
        return self._row_to_record(row)

    def runs(
        self,
        experiment_id: str | None = None,
        *,
        limit: int | None = None,
        newest_first: bool = True,
    ) -> list[RunRecord]:
        """Rows, optionally filtered to one experiment.

        ``newest_first=False`` returns chronological order (what the
        trend analytics consume).
        """
        sql = "SELECT * FROM runs"
        args: list = []
        if experiment_id is not None:
            sql += " WHERE experiment_id = ?"
            args.append(experiment_id)
        sql += f" ORDER BY id {'DESC' if newest_first else 'ASC'}"
        if limit is not None:
            sql += " LIMIT ?"
            args.append(limit)
        return [
            self._row_to_record(row)
            for row in self._conn.execute(sql, args)
        ]

    def experiment_ids(self) -> list[str]:
        """Distinct experiments recorded, sorted."""
        return [
            row[0]
            for row in self._conn.execute(
                "SELECT DISTINCT experiment_id FROM runs ORDER BY 1"
            )
        ]

    # -- bench_results (schema v3) ----------------------------------------

    @staticmethod
    def _row_to_bench(row: sqlite3.Row) -> BenchResult:
        return BenchResult(
            bench_id=row["id"],
            ts_utc=row["ts_utc"],
            git_sha=row["git_sha"],
            experiment_id=row["experiment_id"],
            suite=row["suite"],
            scale=row["scale"],
            backend=row["backend"],
            jobs=row["jobs"],
            warmup=row["warmup"],
            repeats=row["repeats"],
            wall_s=row["wall_s"],
            mean_s=row["mean_s"],
            rss_peak_kb=row["rss_peak_kb"],
            passed=bool(row["passed"]),
            fingerprint=json.loads(row["fingerprint"] or "{}"),
            counters=json.loads(row["counters"] or "{}"),
        )

    def bench_results(
        self,
        experiment_id: str | None = None,
        *,
        backend: str | None = None,
        suite: str | None = None,
        limit: int | None = None,
        newest_first: bool = True,
    ) -> list[BenchResult]:
        """Bench rows, optionally filtered; chronological order feeds
        the changepoint gate (``newest_first=False``)."""
        sql = "SELECT * FROM bench_results"
        clauses: list[str] = []
        args: list = []
        for column, value in (
            ("experiment_id", experiment_id),
            ("backend", backend),
            ("suite", suite),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                args.append(value)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += f" ORDER BY id {'DESC' if newest_first else 'ASC'}"
        if limit is not None:
            sql += " LIMIT ?"
            args.append(limit)
        return [
            self._row_to_bench(row)
            for row in self._conn.execute(sql, args)
        ]

    def bench_count(self) -> int:
        """Total bench_results rows."""
        return int(self._conn.execute(
            "SELECT COUNT(*) FROM bench_results"
        ).fetchone()[0])

    def count(self) -> int:
        """Total rows."""
        return int(self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0])

    def __len__(self) -> int:
        return self.count()

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self.runs(newest_first=False))
