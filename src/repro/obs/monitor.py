"""Streaming invariant monitors: check the model's budgets *live*.

The paper's claims are quantitative invariants -- per-machine memory at
most ``s`` bits, per-round communication at most ``s·m`` bits
(Definition 2.4), at most ``q`` oracle queries per machine per round
(Theorem 3.1), and round counts inside the prediction band of Lemma 3.2.
PR 1's tracer records those quantities; :class:`InvariantMonitor` is a
tracer *subscriber* that verifies them while the run executes, instead
of after the fact::

    tracer = Tracer()
    monitor = InvariantMonitor(tracer=tracer)
    tracer.subscribe(monitor)
    with use_tracer(tracer):
        run_chain(setup, oracle)
    assert not monitor.violations

Every failed check becomes a structured :class:`Violation` carrying the
offending round, machine, observed value, and limit; the monitor also
emits a ``monitor.violation`` event back into the trace stream so
violations land in the JSONL next to the records that triggered them.
With ``strict=True`` (the CLI's ``--strict-bounds``) the first violation
raises :class:`InvariantViolation` immediately, aborting the run.

Checks (all keyed off the ``mpc.run_start`` budget announcement):

* ``machine_memory`` -- ``mpc.machine_step.incoming_bits <= s``;
* ``round_communication`` -- cumulative ``sent_bits`` within a round,
  and the final ``mpc.round.message_bits``, stay at most ``s·m``;
* ``query_budget`` -- per-machine ``oracle_queries <= q`` and per-round
  totals at most ``m·q`` (when ``q`` is metered);
* ``round_band`` -- a protocol that knows its theory prediction emits a
  ``bounds.expect_rounds`` event (``lo``/``hi``, see
  :func:`repro.protocols.chain.run_chain`); the monitor checks the
  closing ``mpc.run`` span's round count against it;
* ``run_consistency`` -- the ``mpc.run`` totals must equal the sum of
  the per-round spans (the tracer cross-checking itself).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.tracer import TraceRecord, Tracer

__all__ = ["Violation", "InvariantViolation", "InvariantMonitor"]


@dataclass(frozen=True)
class Violation:
    """One failed invariant check.

    ``observed`` and ``limit`` are in the check's natural unit (bits,
    queries, or rounds); ``machine`` is ``None`` for run- or round-level
    checks with no single responsible machine.
    """

    check: str
    message: str
    round: int | None = None
    machine: int | None = None
    observed: float | None = None
    limit: float | None = None

    def to_attrs(self) -> dict:
        """The ``monitor.violation`` event payload (JSON-serializable)."""
        out: dict = {"check": self.check, "message": self.message}
        for key in ("round", "machine", "observed", "limit"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


class InvariantViolation(RuntimeError):
    """Raised by a strict monitor the moment an invariant fails."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(violation.message)
        self.violation = violation


class InvariantMonitor:
    """A tracer subscriber enforcing the model invariants in-stream.

    Parameters
    ----------
    strict:
        Raise :class:`InvariantViolation` on the first violation
        instead of merely recording it.
    tracer:
        Where to emit ``monitor.violation`` events (normally the same
        tracer this monitor subscribes to).  ``None`` records
        violations on the monitor only.
    """

    def __init__(self, *, strict: bool = False, tracer: Tracer | None = None
                 ) -> None:
        self._strict = strict
        self._tracer = tracer
        self.violations: list[Violation] = []
        # Budgets of the MPC run currently streaming (None = no run /
        # monitor attached mid-run: checks needing budgets are skipped).
        self._m: int | None = None
        self._s_bits: int | None = None
        self._q: int | None = None
        # Streaming per-round communication accumulator.
        self._comm_round: int | None = None
        self._comm_bits = 0
        self._comm_flagged_rounds: set[int] = set()
        # Run totals rebuilt from mpc.round spans (consistency check).
        self._rounds_seen = 0
        self._sum_message_bits = 0
        self._sum_oracle_queries = 0
        # Pending bounds.expect_rounds prediction band.
        self._band: dict | None = None

    @property
    def strict(self) -> bool:
        return self._strict

    def __call__(self, record: TraceRecord) -> None:
        name = record.name
        if name.startswith("monitor."):
            return  # our own emissions re-entering the fan-out
        if name == "mpc.run_start":
            self._on_run_start(record)
        elif name == "mpc.machine_step":
            self._on_machine_step(record)
        elif name == "mpc.round" and record.kind == "span":
            self._on_round(record)
        elif name == "bounds.expect_rounds":
            self._band = dict(record.attrs)
        elif name == "mpc.run" and record.kind == "span":
            self._on_run_end(record)

    # -- handlers ---------------------------------------------------------

    def _on_run_start(self, record: TraceRecord) -> None:
        a = record.attrs
        self._m = a.get("m")
        self._s_bits = a.get("s_bits")
        self._q = a.get("q")
        self._comm_round = None
        self._comm_bits = 0
        self._comm_flagged_rounds = set()
        self._rounds_seen = 0
        self._sum_message_bits = 0
        self._sum_oracle_queries = 0

    def _on_machine_step(self, record: TraceRecord) -> None:
        if self._m is None or self._s_bits is None:
            return
        a = record.attrs
        round_k = a.get("round")
        machine = a.get("machine")
        incoming = a.get("incoming_bits", 0)
        if incoming > self._s_bits:
            self._violate(Violation(
                check="machine_memory",
                message=(
                    f"machine {machine} holds {incoming} bits at round "
                    f"{round_k}, local memory is s={self._s_bits}"
                ),
                round=round_k,
                machine=machine,
                observed=incoming,
                limit=self._s_bits,
            ))
        if self._q is not None:
            queries = a.get("oracle_queries", 0)
            if queries > self._q:
                self._violate(Violation(
                    check="query_budget",
                    message=(
                        f"machine {machine} made {queries} oracle queries "
                        f"in round {round_k}, budget is q={self._q}"
                    ),
                    round=round_k,
                    machine=machine,
                    observed=queries,
                    limit=self._q,
                ))
        # Streaming s·m communication check: catch the machine whose
        # sends push the round over the total budget, as it happens.
        if round_k != self._comm_round:
            self._comm_round = round_k
            self._comm_bits = 0
        self._comm_bits += a.get("sent_bits", 0)
        comm_limit = self._s_bits * self._m
        if self._comm_bits > comm_limit and round_k not in self._comm_flagged_rounds:
            self._comm_flagged_rounds.add(round_k)
            self._violate(Violation(
                check="round_communication",
                message=(
                    f"round {round_k} communication reached "
                    f"{self._comm_bits} bits at machine {machine}, "
                    f"limit is s·m={comm_limit}"
                ),
                round=round_k,
                machine=machine,
                observed=self._comm_bits,
                limit=comm_limit,
            ))

    def _on_round(self, record: TraceRecord) -> None:
        if self._m is None or self._s_bits is None:
            return
        a = record.attrs
        round_k = a.get("round")
        bits = a.get("message_bits", 0)
        queries = a.get("oracle_queries", 0)
        self._rounds_seen += 1
        self._sum_message_bits += bits
        self._sum_oracle_queries += queries
        comm_limit = self._s_bits * self._m
        if bits > comm_limit and round_k not in self._comm_flagged_rounds:
            self._comm_flagged_rounds.add(round_k)
            self._violate(Violation(
                check="round_communication",
                message=(
                    f"round {round_k} sent {bits} message bits, "
                    f"limit is s·m={comm_limit}"
                ),
                round=round_k,
                observed=bits,
                limit=comm_limit,
            ))
        if self._q is not None and queries > self._m * self._q:
            self._violate(Violation(
                check="query_budget",
                message=(
                    f"round {round_k} made {queries} oracle queries, "
                    f"round budget is m·q={self._m * self._q}"
                ),
                round=round_k,
                observed=queries,
                limit=self._m * self._q,
            ))

    def _on_run_end(self, record: TraceRecord) -> None:
        a = record.attrs
        band, self._band = self._band, None
        budgets_known = self._m is not None
        if budgets_known and self._rounds_seen == a.get("rounds"):
            # Only cross-check totals when we observed the whole run.
            for total_key, summed in (
                ("total_message_bits", self._sum_message_bits),
                ("total_oracle_queries", self._sum_oracle_queries),
            ):
                total = a.get(total_key, 0)
                if total != summed:
                    self._violate(Violation(
                        check="run_consistency",
                        message=(
                            f"mpc.run {total_key}={total} disagrees with "
                            f"the per-round sum {summed}"
                        ),
                        observed=total,
                        limit=summed,
                    ))
        if band is not None and a.get("halted"):
            rounds = a.get("rounds", 0)
            lo, hi = band.get("lo", 0), band.get("hi", float("inf"))
            if not lo <= rounds <= hi:
                self._violate(Violation(
                    check="round_band",
                    message=(
                        f"run finished in {rounds} rounds, outside the "
                        f"predicted band [{lo:.2f}, {hi:.2f}] "
                        f"(source={band.get('source', '?')})"
                    ),
                    observed=rounds,
                    limit=hi if rounds > hi else lo,
                ))
        # Budgets are per-run; forget them so a stray mpc.round from a
        # differently-sized run cannot be judged against these limits.
        self._m = self._s_bits = self._q = None

    # -- reporting --------------------------------------------------------

    def _violate(self, violation: Violation) -> None:
        self.violations.append(violation)
        if self._tracer is not None:
            self._tracer.event("monitor.violation", **violation.to_attrs())
        if self._strict:
            raise InvariantViolation(violation)

    def render(self) -> str:
        """Human-readable violation report (empty string when clean)."""
        if not self.violations:
            return ""
        lines = [f"invariant violations: {len(self.violations)}"]
        for v in self.violations:
            lines.append(f"  [{v.check}] {v.message}")
        return "\n".join(lines)
