"""Historical trend analytics over the run registry.

The query layer behind ``repro runs {list,show,compare,trend,gc}``:
given a :class:`~repro.obs.registry.RunRegistry`, it builds
per-experiment time series of wall-clock and deterministic metrics and
turns them into three cross-run signals no single trace can see:

* **wall-clock regressions** -- a rolling-window gate: the latest run
  of an experiment is compared against the mean of the previous
  ``window`` runs; a relative slowdown beyond ``threshold`` is a
  regression (``repro runs trend`` exits 1, the CI contract);
* **flaky verdicts** -- experiments are deterministic (every RNG is
  seeded), so two runs with the same ``(experiment, scale, seed)`` must
  agree; a pass *and* a fail in the same group is a flake and fails
  the trend gate;
* **counter drift between any two runs** -- ``repro runs compare A B``
  diffs two rows' bench fingerprints and deterministic metrics the way
  ``bench-compare`` diffs a directory against a baseline.

Sparklines: the terminal trend view renders each series with unicode
block glyphs; ``repro runs trend -o trend.html`` reuses the HTML
report's inline-SVG sparklines (:func:`repro.obs.report.render_history_html`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.obs.registry import RunRecord, RunRegistry
from repro.obs.trendstats import ascii_sparkline, rolling_gate

__all__ = [
    "RunComparison",
    "TrendSeries",
    "TrendReport",
    "FlakyVerdict",
    "metric_series",
    "compare_runs",
    "trend_report",
    "render_runs_table",
    "ascii_sparkline",
]


def _metric_value(record: RunRecord, metric: str) -> float | None:
    """One run's value of ``metric``: ``wall_s``, a counter, or a flat key."""
    if metric == "wall_s":
        return record.wall_s
    if metric in record.counters:
        return float(record.counters[metric])
    value = record.metrics.get(metric)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return None


def metric_series(
    records: Sequence[RunRecord], metric: str = "wall_s"
) -> tuple[list[int], list[float]]:
    """``(run_ids, values)`` for the runs where ``metric`` is present."""
    ids: list[int] = []
    values: list[float] = []
    for record in records:
        value = _metric_value(record, metric)
        if value is not None:
            ids.append(record.run_id or 0)
            values.append(value)
    return ids, values


# ---------------------------------------------------------------------------
# runs compare
# ---------------------------------------------------------------------------


@dataclass
class RunComparison:
    """Diff of two registry rows (``repro runs compare A B``)."""

    a: RunRecord
    b: RunRecord
    counter_drifts: list[tuple[str, float, float]] = field(default_factory=list)
    metric_drifts: list[tuple[str, object, object]] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        """No deterministic difference (wall-clock is never compared)."""
        return not self.counter_drifts and not self.metric_drifts

    def to_dict(self) -> dict:
        return {
            "a": self.a.run_id,
            "b": self.b.run_id,
            "identical": self.identical,
            "counter_drifts": [
                {"key": k, "a": va, "b": vb}
                for k, va, vb in self.counter_drifts
            ],
            "metric_drifts": [
                {"key": k, "a": va, "b": vb}
                for k, va, vb in self.metric_drifts
            ],
            "wall_s": {"a": self.a.wall_s, "b": self.b.wall_s},
        }

    def render(self) -> str:
        head = (
            f"runs compare: #{self.a.run_id} ({self.a.experiment_id}"
            f"@{self.a.ts_utc}) vs #{self.b.run_id} "
            f"({self.b.experiment_id}@{self.b.ts_utc})"
        )
        lines = [head]
        if self.a.verdict != self.b.verdict:
            lines.append(
                f"  VERDICT {self.a.verdict} -> {self.b.verdict}"
            )
        for key, va, vb in self.counter_drifts:
            lines.append(f"  COUNTER {key}: {va:g} -> {vb:g}")
        for key, va, vb in self.metric_drifts:
            lines.append(f"  metric {key}: {va!r} -> {vb!r}")
        if self.a.wall_s and self.b.wall_s:
            ratio = self.b.wall_s / self.a.wall_s
            lines.append(
                f"  wall_s: {self.a.wall_s:.3f} -> {self.b.wall_s:.3f} "
                f"({ratio:.2f}x, advisory)"
            )
        if self.identical:
            lines.append("  deterministic columns identical")
        return "\n".join(lines)


def compare_runs(registry: RunRegistry, a: int, b: int) -> RunComparison:
    """Diff runs ``a`` and ``b`` (KeyError when either id is absent)."""
    ra, rb = registry.get(a), registry.get(b)
    comparison = RunComparison(ra, rb)
    for key in sorted(set(ra.counters) | set(rb.counters)):
        va, vb = ra.counters.get(key, 0), rb.counters.get(key, 0)
        if va != vb:
            comparison.counter_drifts.append((key, float(va), float(vb)))
    for key in sorted(set(ra.metrics) | set(rb.metrics)):
        va, vb = ra.metrics.get(key), rb.metrics.get(key)
        if va != vb:
            comparison.metric_drifts.append((key, va, vb))
    if ra.verdict != rb.verdict:
        comparison.metric_drifts.insert(0, ("verdict", ra.verdict, rb.verdict))
    return comparison


# ---------------------------------------------------------------------------
# runs trend
# ---------------------------------------------------------------------------


@dataclass
class FlakyVerdict:
    """One (experiment, scale, seed) group whose verdicts disagree."""

    experiment_id: str
    scale: str
    seed: int | None
    pass_ids: list[int]
    fail_ids: list[int]

    def to_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "scale": self.scale,
            "seed": self.seed,
            "pass_ids": self.pass_ids,
            "fail_ids": self.fail_ids,
        }


@dataclass
class TrendSeries:
    """One experiment's chronological series of a single metric."""

    experiment_id: str
    metric: str
    run_ids: list[int]
    values: list[float]
    window: int
    threshold: float
    min_delta: float = 0.0
    baseline: float | None = None  # mean of the pre-latest window
    latest: float | None = None
    ratio: float | None = None
    regressed: bool = False

    @property
    def n(self) -> int:
        return len(self.values)

    def to_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "metric": self.metric,
            "run_ids": self.run_ids,
            "values": [round(v, 6) for v in self.values],
            "baseline": None if self.baseline is None else round(self.baseline, 6),
            "latest": None if self.latest is None else round(self.latest, 6),
            "ratio": None if self.ratio is None else round(self.ratio, 4),
            "regressed": self.regressed,
        }


def _detect_regression(series: TrendSeries) -> None:
    """Rolling-window gate: latest vs the mean of the previous window.

    The arithmetic -- relative ``threshold`` gated by the absolute
    ``min_delta`` noise floor -- is the shared
    :func:`repro.obs.trendstats.rolling_gate`, the same primitive
    ``repro bench trend`` builds its robust variant on.
    """
    gate = rolling_gate(
        series.values,
        window=series.window,
        threshold=series.threshold,
        min_delta=series.min_delta,
    )
    series.latest = gate.latest
    series.baseline = gate.baseline
    series.ratio = gate.ratio
    series.regressed = gate.regressed


@dataclass
class TrendReport:
    """The full ``repro runs trend`` outcome."""

    metric: str
    window: int
    threshold: float
    min_delta: float = 0.0
    series: list[TrendSeries] = field(default_factory=list)
    flaky: list[FlakyVerdict] = field(default_factory=list)

    @property
    def regressions(self) -> list[TrendSeries]:
        return [s for s in self.series if s.regressed]

    @property
    def failed(self) -> bool:
        """The CI gate: any regression or any flaky verdict."""
        return bool(self.regressions or self.flaky)

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "window": self.window,
            "threshold": self.threshold,
            "min_delta": self.min_delta,
            "series": [s.to_dict() for s in self.series],
            "regressions": [s.experiment_id for s in self.regressions],
            "flaky": [f.to_dict() for f in self.flaky],
            "failed": self.failed,
        }

    def render(self) -> str:
        if not self.series:
            return "runs trend: no runs recorded"
        lines = [
            f"runs trend: metric={self.metric}, window={self.window}, "
            f"threshold={self.threshold:.0%}"
        ]
        width = max(len(s.experiment_id) for s in self.series)
        for s in self.series:
            spark = ascii_sparkline(s.values)
            if s.latest is None:
                detail = f"{s.n} run(s), need >= 2 for the gate"
            else:
                marker = "REGRESSION" if s.regressed else "ok"
                detail = (
                    f"latest {s.latest:g} vs window mean {s.baseline:g} "
                    f"({s.ratio:.2f}x) {marker}"
                )
            lines.append(
                f"  {s.experiment_id:<{width}}  {spark}  {detail}"
            )
        for flake in self.flaky:
            lines.append(
                f"  FLAKY {flake.experiment_id} (scale={flake.scale}, "
                f"seed={flake.seed}): passed in runs {flake.pass_ids}, "
                f"failed in runs {flake.fail_ids}"
            )
        if self.failed:
            lines.append(
                f"FAIL: {len(self.regressions)} regressions, "
                f"{len(self.flaky)} flaky verdict group(s)"
            )
        else:
            lines.append(
                f"ok: no regressions across {len(self.series)} experiment(s)"
            )
        return "\n".join(lines)


def _find_flaky(records: Sequence[RunRecord]) -> list[FlakyVerdict]:
    groups: dict[tuple[str, str, int | None], dict[str, list[int]]] = {}
    for record in records:
        key = (record.experiment_id, record.scale, record.seed)
        bucket = groups.setdefault(key, {"pass": [], "fail": []})
        bucket[record.verdict if record.verdict in ("pass", "fail") else "fail"
               ].append(record.run_id or 0)
    out = []
    for (experiment_id, scale, seed), bucket in sorted(groups.items()):
        if bucket["pass"] and bucket["fail"]:
            out.append(FlakyVerdict(
                experiment_id, scale, seed, bucket["pass"], bucket["fail"]
            ))
    return out


def trend_report(
    registry: RunRegistry,
    *,
    experiment_id: str | None = None,
    metric: str = "wall_s",
    window: int = 5,
    threshold: float = 0.5,
    min_delta: float = 0.0,
) -> TrendReport:
    """Build the trend gate over recorded history.

    ``metric`` is ``wall_s`` (default), any bench-counter name
    (``mpc.rounds``), or any deterministic flat-metric key.  ``window``
    is the number of pre-latest runs averaged into the baseline;
    ``threshold`` the relative slowdown that fails the gate;
    ``min_delta`` an absolute increase below which the gate never
    fires (noise immunity for sub-second runs).
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    report = TrendReport(
        metric=metric, window=window, threshold=threshold, min_delta=min_delta
    )
    ids = (
        [experiment_id] if experiment_id is not None
        else registry.experiment_ids()
    )
    all_records: list[RunRecord] = []
    for eid in ids:
        records = registry.runs(eid, newest_first=False)
        all_records.extend(records)
        run_ids, values = metric_series(records, metric)
        if not values:
            continue
        series = TrendSeries(
            experiment_id=eid,
            metric=metric,
            run_ids=run_ids,
            values=values,
            window=window,
            threshold=threshold,
            min_delta=min_delta,
        )
        _detect_regression(series)
        report.series.append(series)
    report.flaky = _find_flaky(all_records)
    return report


# ---------------------------------------------------------------------------
# runs list
# ---------------------------------------------------------------------------


def render_runs_table(records: Sequence[RunRecord]) -> str:
    """The aligned table ``repro runs list`` prints (newest first).

    ``rss_peak`` and ``ovh%`` come from the registry's nullable
    telemetry columns; runs recorded without ``--telemetry`` show "-".
    """
    if not records:
        return "runs list: registry is empty"
    headers = ("id", "timestamp (UTC)", "experiment", "scale", "verdict",
               "wall_s", "jobs", "viol", "rss_peak", "ovh%", "sha")
    rows = []
    for r in records:
        rows.append((
            str(r.run_id),
            r.ts_utc,
            r.experiment_id,
            r.scale,
            r.verdict,
            "-" if r.wall_s is None else f"{r.wall_s:.3f}",
            str(r.jobs),
            str(r.violations),
            "-" if r.rss_peak_kb is None else f"{r.rss_peak_kb / 1024:.1f}M",
            "-" if r.overhead_frac is None else f"{r.overhead_frac * 100:.2f}",
            (r.git_sha or "-")[:10],
        ))
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in rows))
        for c in range(len(headers))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    for row in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
