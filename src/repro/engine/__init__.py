"""Execution backends for the hot loops.

The reference implementations -- :class:`repro.mpc.MPCSimulator` and the
``if/elif`` word-RAM interpreter in :class:`repro.ram.RamMachine` -- are
deliberately straight-line and auditable.  This package provides the
``fast`` backend: a steady-state-memoizing MPC round engine
(:mod:`repro.engine.fastsim`) and a closure/codegen-compiled RAM core
(:mod:`repro.engine.fastram`), selected via ``--backend fast`` or
``REPRO_BACKEND=fast``.

The contract is *observable equivalence*: a fast run produces the same
outputs, the same ``MPCStats``/``ExecutionStats``, the same faults, and
-- when tracing -- the byte-identical deterministic record stream as the
python backend (only wall-clock attrs differ, and those are excluded
from the determinism fingerprint).  ``repro trace-diff`` and ``repro
cost check --strict`` hold the contract down in CI.

Protocol runners go through :func:`make_simulator` instead of naming a
simulator class, so one ambient :func:`use_backend` scope switches every
layer at once -- including :mod:`repro.parallel` pool workers, which
inherit the choice through the ``REPRO_BACKEND`` environment variable.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.bits import Bits
from repro.engine.backend import (
    BACKENDS,
    default_backend,
    resolve_backend,
    use_backend,
)
from repro.engine.fastsim import FastMPCSimulator
from repro.mpc.machine import Machine
from repro.mpc.model import MPCParams
from repro.mpc.simulator import MPCSimulator
from repro.mpc.tape import SharedTape
from repro.oracle.base import Oracle

__all__ = [
    "BACKENDS",
    "FastMPCSimulator",
    "default_backend",
    "make_simulator",
    "resolve_backend",
    "use_backend",
]


def make_simulator(
    params: MPCParams,
    machines: Sequence[Machine],
    *,
    oracle: Oracle | None = None,
    tape: SharedTape | None = None,
    inbox_observer: Callable[[int, int, tuple[tuple[int, Bits], ...]], None]
    | None = None,
    backend: str | None = None,
) -> MPCSimulator:
    """Build the round engine for the resolved backend.

    ``backend=None`` resolves the ambient choice (the CLI's
    ``--backend`` scope, then ``REPRO_BACKEND``, then ``"python"``).
    Both classes share one constructor signature and one observable
    behavior; ``"fast"`` returns the memoizing subclass.
    """
    cls = (
        FastMPCSimulator
        if resolve_backend(backend) == "fast"
        else MPCSimulator
    )
    return cls(
        params,
        machines,
        oracle=oracle,
        tape=tape,
        inbox_observer=inbox_observer,
    )
