"""Execution-backend selection.

Two backends exist for the hot loops (the MPC round engine and the
word-RAM interpreter):

* ``"python"`` -- the reference implementations, straight-line and
  auditable (:class:`repro.mpc.MPCSimulator`, the ``if/elif`` dispatch
  in :class:`repro.ram.RamMachine`);
* ``"fast"`` -- the engines in :mod:`repro.engine`: a steady-state
  memoizing MPC round loop and a closure-compiled RAM core, proven
  observably identical by the trace-diff/cost-check gates.

Selection mirrors :func:`repro.parallel.use_jobs`: explicit argument
beats the ambient :func:`use_backend` scope (the CLI's ``--backend``),
which beats the ``REPRO_BACKEND`` environment variable, which beats the
default ``"python"``.  :func:`use_backend` also exports its choice into
``REPRO_BACKEND`` so process-pool workers spawned inside the scope
(:mod:`repro.parallel`) inherit the backend, exactly as they inherit
seeds and telemetry switches.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = ["BACKENDS", "default_backend", "resolve_backend", "use_backend"]

#: The recognized backend names.
BACKENDS = ("python", "fast")

_ambient_backend: str | None = None


def _validate(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {'/'.join(BACKENDS)}"
        )
    return backend


def default_backend() -> str:
    """The ambient backend (no explicit ``backend=`` given).

    An enclosing :func:`use_backend` scope wins; otherwise the
    ``REPRO_BACKEND`` environment variable (ignored if unrecognized);
    otherwise ``"python"``.
    """
    if _ambient_backend is not None:
        return _ambient_backend
    env = os.environ.get("REPRO_BACKEND")
    if env in BACKENDS:
        return env
    return "python"


def resolve_backend(backend: str | None) -> str:
    """Normalize a ``backend`` argument: ``None`` means ambient."""
    if backend is None:
        return default_backend()
    return _validate(backend)


@contextmanager
def use_backend(backend: str | None) -> Iterator[str]:
    """Set the ambient execution backend for a scope.

    ``None`` leaves the ambient value untouched (so callers can write
    ``with use_backend(args.backend):`` unconditionally).  The choice is
    mirrored into ``REPRO_BACKEND`` for the duration of the scope so
    forked/spawned pool workers resolve the same backend.
    """
    global _ambient_backend
    if backend is None:
        yield default_backend()
        return
    chosen = _validate(backend)
    previous = _ambient_backend
    previous_env = os.environ.get("REPRO_BACKEND")
    _ambient_backend = chosen
    os.environ["REPRO_BACKEND"] = chosen
    try:
        yield chosen
    finally:
        _ambient_backend = previous
        if previous_env is None:
            os.environ.pop("REPRO_BACKEND", None)
        else:
            os.environ["REPRO_BACKEND"] = previous_env
