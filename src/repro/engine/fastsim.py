"""The fast MPC round engine: steady-state memoization.

Profiling the python backend on E-LINE shows where the time goes: in a
``w``-node chain over ``m`` machines, each round advances exactly one
frontier, yet **every** machine re-decodes and re-encodes its STORE
records to mail them to itself (machines are memoryless, so state
persists only via self-messages).  That is ``O(m * w)`` decode/encode
work for ``O(w + m)`` useful progress.

:class:`FastMPCSimulator` eliminates the redundant work without changing
one observable bit.  Per machine it remembers the last ``(incoming ->
RoundOutput)`` invocation; when the same machine starts a later round
with *equal* incoming messages, the cached output is replayed instead of
re-running ``run_round``.  Replay is only sound -- and only attempted --
when every leg of the argument holds:

* the machine opts in via :attr:`repro.mpc.machine.Machine.round_oblivious`
  (its output for rounds ``>= 1`` is a pure function of ``incoming``);
* the replayed call is at round ``>= 1`` and the cached call was too
  (round 0 may read ``ctx.round``);
* the cached call made **zero** oracle queries -- a querying step must
  re-execute so the query transcript, budget accounting, and
  ``oracle.query`` events stay position-for-position identical;
* no span hooks are active (scoped profilers want real windows).

Everything the simulator emits for a replayed step -- message routing,
``RoundStats`` edges, the ``mpc.machine_step`` event attributes -- is
recomputed from the cached output, so a traced fast run produces the
byte-identical deterministic record stream the python backend produces
(``dur`` is wall-clock and already excluded from the determinism
contract).  An untraced fast run additionally skips all tracer
bookkeeping and ``RoundContext`` construction for replayed steps.
The trace-diff and cost-check CI gates hold this equivalence down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits import Bits
from repro.mpc.errors import MemoryExceeded, ProtocolError
from repro.mpc.machine import RoundContext, RoundOutput
from repro.mpc.simulator import MPCResult, MPCSimulator
from repro.mpc.stats import MPCStats, RoundStats
from repro.obs import get_tracer

__all__ = ["FastMPCSimulator"]


@dataclass
class _MemoEntry:
    """One machine's cached previous invocation plus derived counters."""

    incoming: tuple[tuple[int, Bits], ...]
    incoming_bits: int
    result: RoundOutput
    active: bool
    sent_messages: int
    sent_bits: int
    sent_to: dict[str, int]
    edges: tuple[tuple[int, int, int], ...]


class FastMPCSimulator(MPCSimulator):
    """Drop-in :class:`MPCSimulator` with the steady-state memo."""

    def run(self, initial_memories) -> MPCResult:
        params = self._params
        if len(initial_memories) != params.m:
            raise ValueError(
                f"need {params.m} initial memories, got {len(initial_memories)}"
            )
        tracer = get_tracer()
        traced = tracer.enabled
        hooked = traced and tracer.has_span_hooks
        run_span = tracer.begin_span(
            "mpc.run", m=params.m, s_bits=params.s_bits, q=params.q
        ) if traced else None
        if traced:
            tracer.event(
                "mpc.run_start",
                m=params.m,
                s_bits=params.s_bits,
                q=params.q,
                max_rounds=params.max_rounds,
            )
        inboxes: list[list[tuple[int, Bits]]] = [
            [(-1, mem)] if len(mem) else [] for mem in initial_memories
        ]
        stats = MPCStats()
        outputs: dict[int, Bits] = {}
        first_output_round: int | None = None

        m = params.m
        s_bits = params.s_bits
        machines = self._machines
        oracle = self._oracle
        observer = self._inbox_observer
        tape = self._tape
        now = tracer.now
        emit = tracer.event
        # Span hooks observe real work windows; with hooks active the
        # memo is disabled wholesale and every step executes.
        memoizable = [
            (not hooked) and machine.round_oblivious for machine in machines
        ]
        memo: list[_MemoEntry | None] = [None] * m

        for round_k in range(params.max_rounds):
            round_span = (
                tracer.begin_span("mpc.round", round=round_k) if traced else None
            )
            next_inboxes: list[list[tuple[int, Bits]]] = [[] for _ in range(m)]
            round_messages = 0
            round_message_bits = 0
            round_edges: list[tuple[int, int, int]] = []
            round_queries_before = oracle.total_queries if oracle else 0
            active = 0
            halted_count = 0

            for i, machine in enumerate(machines):
                incoming = tuple(inboxes[i])
                entry = memo[i] if round_k else None
                if entry is not None and entry.incoming == incoming:
                    # ---- replayed step: identical observables, no work
                    if observer is not None:
                        observer(round_k, i, incoming)
                    result = entry.result
                    for dst, payload in result.messages.items():
                        next_inboxes[dst].append((i, payload))
                    round_messages += entry.sent_messages
                    round_message_bits += entry.sent_bits
                    round_edges.extend(entry.edges)
                    if entry.active:
                        active += 1
                    if traced:
                        emit(
                            "mpc.machine_step",
                            round=round_k,
                            machine=i,
                            dur=0.0,
                            incoming_bits=entry.incoming_bits,
                            sent_messages=entry.sent_messages,
                            sent_bits=entry.sent_bits,
                            sent_to=dict(entry.sent_to),
                            oracle_queries=0,
                        )
                    if result.output is not None:
                        outputs[i] = result.output
                        if first_output_round is None:
                            first_output_round = round_k
                    if result.halt:
                        halted_count += 1
                    continue

                # ---- executed step: the python backend's loop verbatim
                incoming_bits = sum(len(p) for _, p in incoming)
                if incoming_bits > s_bits:
                    raise MemoryExceeded(
                        f"machine {i} holds {incoming_bits} bits at round "
                        f"{round_k}, local memory is s={s_bits}"
                    )
                if observer is not None:
                    observer(round_k, i, incoming)
                if oracle is not None:
                    oracle.set_context(round=round_k, machine=i)
                ctx = RoundContext(
                    round=round_k,
                    machine_id=i,
                    num_machines=m,
                    incoming=incoming,
                    oracle=oracle,
                    tape=tape,
                )
                if traced:
                    step_start = now()
                    if hooked:
                        with tracer.hook_scope("mpc.machine_step"):
                            result = machine.run_round(ctx)
                    else:
                        result = machine.run_round(ctx)
                    step_dur = now() - step_start
                else:
                    result = machine.run_round(ctx)
                if not isinstance(result, RoundOutput):
                    raise ProtocolError(
                        f"machine {i} returned {type(result).__name__}, "
                        "expected RoundOutput"
                    )
                step_active = bool(
                    incoming or result.messages or result.output is not None
                )
                if step_active:
                    active += 1
                sent_messages = 0
                sent_bits = 0
                sent_to: dict[str, int] = {}
                step_edges: list[tuple[int, int, int]] = []
                for dst, payload in result.messages.items():
                    if not 0 <= dst < m:
                        raise ProtocolError(
                            f"machine {i} sent a message to invalid machine {dst}"
                        )
                    if not isinstance(payload, Bits):
                        raise ProtocolError(
                            f"machine {i} sent a non-Bits payload to {dst}"
                        )
                    next_inboxes[dst].append((i, payload))
                    width = len(payload)
                    round_messages += 1
                    round_message_bits += width
                    step_edges.append((i, dst, width))
                    sent_messages += 1
                    sent_bits += width
                    key = str(dst)
                    sent_to[key] = sent_to.get(key, 0) + width
                round_edges.extend(step_edges)
                step_queries = (
                    oracle.queries_in_context() if oracle is not None else 0
                )
                if traced:
                    emit(
                        "mpc.machine_step",
                        round=round_k,
                        machine=i,
                        dur=step_dur,
                        incoming_bits=incoming_bits,
                        sent_messages=sent_messages,
                        sent_bits=sent_bits,
                        sent_to=dict(sent_to),
                        oracle_queries=step_queries,
                    )
                if memoizable[i] and round_k and step_queries == 0:
                    memo[i] = _MemoEntry(
                        incoming=incoming,
                        incoming_bits=incoming_bits,
                        result=result,
                        active=step_active,
                        sent_messages=sent_messages,
                        sent_bits=sent_bits,
                        sent_to=sent_to,
                        edges=tuple(step_edges),
                    )
                else:
                    memo[i] = None
                if result.output is not None:
                    outputs[i] = result.output
                    if first_output_round is None:
                        first_output_round = round_k
                if result.halt:
                    halted_count += 1

            queries = (
                oracle.total_queries - round_queries_before if oracle else 0
            )
            stats.record(
                RoundStats(
                    round=round_k,
                    message_count=round_messages,
                    message_bits=round_message_bits,
                    oracle_queries=queries,
                    active_machines=active,
                    edges=tuple(round_edges),
                )
            )
            if traced:
                tracer.end_span(
                    round_span,
                    messages=round_messages,
                    message_bits=round_message_bits,
                    oracle_queries=queries,
                    active_machines=active,
                    halted_machines=halted_count,
                )

            if halted_count == m:
                if traced:
                    self._trace_run(tracer, run_span, round_k + 1, True, stats)
                return MPCResult(
                    rounds=round_k + 1,
                    outputs=outputs,
                    stats=stats,
                    halted=True,
                    oracle=oracle,
                    first_output_round=first_output_round,
                )
            inboxes = next_inboxes

        if traced:
            self._trace_run(tracer, run_span, params.max_rounds, False, stats)
        return MPCResult(
            rounds=params.max_rounds,
            outputs=outputs,
            stats=stats,
            halted=False,
            oracle=oracle,
            first_output_round=first_output_round,
        )
