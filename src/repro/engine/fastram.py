"""The fast word-RAM core: closure dispatch and basic-block codegen.

The python backend (:meth:`repro.ram.RamMachine.run`) decodes every
instruction on every visit: two dataclass attribute loads, an ``Op``
enum identity chain, and tuple indexing per retired instruction.  This
module lowers a :class:`~repro.ram.isa.Program` once and executes the
lowered form:

* **Closure dispatch** -- each instruction becomes one specialized
  closure over its decoded operands (``regs/mem`` list ops only) that
  returns the next pc.  The driver loop keeps the python backend's exact
  per-instruction envelope: the ``max_steps`` check *before* each
  instruction, ``ram.batch`` events at exact
  :data:`~repro.ram.machine.TRACE_BATCH_INSTRUCTIONS` multiples, and
  the same fault messages.  Traced runs always use this path so the
  event stream is position-identical to the python backend.

* **Basic-block codegen** -- untraced runs execute Python source
  generated from the program's control-flow blocks, with registers as
  local variables and immediates inlined.  Block-granular instruction
  counting cannot place a mid-block ``max_steps`` fault exactly, so a
  block that *might* cross the limit is never entered: the generated
  function bails out with its full state and the closure interpreter
  finishes the run instruction-by-instruction (this also handles a
  HALT sitting before the limit inside that final block).

Both paths produce the same :class:`~repro.ram.machine.ExecutionStats`,
registers, memory, and faults as the python backend; the equivalence
suite and the CI trace-diff gate enforce it.
"""

from __future__ import annotations

from typing import Callable, Sequence
from weakref import WeakKeyDictionary

from repro.obs import get_tracer
from repro.ram.isa import NUM_REGISTERS, Op, Program
from repro.ram.machine import (
    TRACE_BATCH_INSTRUCTIONS,
    ExecutionStats,
    RamError,
    RamOracleAdapter,
    RunResult,
)

__all__ = ["run_fast"]

#: Stats cells shared between driver and closures:
#: ``st = [peak_memory_words, oracle_queries, extra_time]`` where
#: ``time = instructions + extra_time``.
_PEAK, _QUERIES, _EXTRA = 0, 1, 2


# ----------------------------------------------------------------------
# Closure compilation (the traced / exact-stepping core)
# ----------------------------------------------------------------------
def _compile_closures(
    program: Program,
    mask: int,
    memory_words: int,
    adapter: RamOracleAdapter | None,
) -> list:
    """Lower a program to per-instruction closures.

    Each closure is ``fn(regs, mem, st) -> next_pc``; ``HALT`` lowers to
    the sentinel ``None`` (checked by identity in the driver, cheaper
    than a call).
    """
    code: list = []
    for idx, ins in enumerate(program.instructions):
        op = ins.op
        a = ins.args
        npc = idx + 1
        if op is Op.HALT:
            code.append(None)
        elif op is Op.LOADI:
            def f(regs, mem, st, d=a[0], v=a[1] & mask, npc=npc):
                regs[d] = v
                return npc
            code.append(f)
        elif op is Op.MOV:
            def f(regs, mem, st, d=a[0], s=a[1], npc=npc):
                regs[d] = regs[s]
                return npc
            code.append(f)
        elif op is Op.LOAD:
            def f(regs, mem, st, d=a[0], s=a[1], npc=npc, mw=memory_words):
                addr = regs[s]
                if addr >= mw:
                    raise RamError(f"memory access at {addr} out of range")
                if addr >= st[_PEAK]:
                    st[_PEAK] = addr + 1
                regs[d] = mem[addr]
                return npc
            code.append(f)
        elif op is Op.STORE:
            def f(regs, mem, st, d=a[0], s=a[1], npc=npc, mw=memory_words):
                addr = regs[d]
                if addr >= mw:
                    raise RamError(f"memory access at {addr} out of range")
                if addr >= st[_PEAK]:
                    st[_PEAK] = addr + 1
                mem[addr] = regs[s]
                return npc
            code.append(f)
        elif op is Op.ADD:
            def f(regs, mem, st, d=a[0], x=a[1], y=a[2], npc=npc, mask=mask):
                regs[d] = (regs[x] + regs[y]) & mask
                return npc
            code.append(f)
        elif op is Op.ADDI:
            def f(regs, mem, st, d=a[0], x=a[1], v=a[2], npc=npc, mask=mask):
                regs[d] = (regs[x] + v) & mask
                return npc
            code.append(f)
        elif op is Op.SUB:
            def f(regs, mem, st, d=a[0], x=a[1], y=a[2], npc=npc, mask=mask):
                regs[d] = (regs[x] - regs[y]) & mask
                return npc
            code.append(f)
        elif op is Op.MUL:
            def f(regs, mem, st, d=a[0], x=a[1], y=a[2], npc=npc, mask=mask):
                regs[d] = (regs[x] * regs[y]) & mask
                return npc
            code.append(f)
        elif op is Op.AND:
            def f(regs, mem, st, d=a[0], x=a[1], y=a[2], npc=npc):
                regs[d] = regs[x] & regs[y]
                return npc
            code.append(f)
        elif op is Op.OR:
            def f(regs, mem, st, d=a[0], x=a[1], y=a[2], npc=npc):
                regs[d] = regs[x] | regs[y]
                return npc
            code.append(f)
        elif op is Op.XOR:
            def f(regs, mem, st, d=a[0], x=a[1], y=a[2], npc=npc):
                regs[d] = regs[x] ^ regs[y]
                return npc
            code.append(f)
        elif op is Op.SHL:
            def f(regs, mem, st, d=a[0], x=a[1], v=a[2], npc=npc, mask=mask):
                regs[d] = (regs[x] << v) & mask
                return npc
            code.append(f)
        elif op is Op.SHR:
            def f(regs, mem, st, d=a[0], x=a[1], v=a[2], npc=npc):
                regs[d] = regs[x] >> v
                return npc
            code.append(f)
        elif op is Op.JMP:
            def f(regs, mem, st, t=a[0]):
                return t
            code.append(f)
        elif op is Op.JZ:
            def f(regs, mem, st, r=a[0], t=a[1], npc=npc):
                return t if regs[r] == 0 else npc
            code.append(f)
        elif op is Op.JNZ:
            def f(regs, mem, st, r=a[0], t=a[1], npc=npc):
                return t if regs[r] != 0 else npc
            code.append(f)
        elif op is Op.JLT:
            def f(regs, mem, st, x=a[0], y=a[1], t=a[2], npc=npc):
                return t if regs[x] < regs[y] else npc
            code.append(f)
        elif op is Op.JGE:
            def f(regs, mem, st, x=a[0], y=a[1], t=a[2], npc=npc):
                return t if regs[x] >= regs[y] else npc
            code.append(f)
        elif op is Op.ORACLE:
            if adapter is None:
                def f(regs, mem, st):
                    raise RamError(
                        "ORACLE executed on a machine without an oracle"
                    )
                code.append(f)
            else:
                def f(
                    regs,
                    mem,
                    st,
                    dd=a[0],
                    ss=a[1],
                    npc=npc,
                    mw=memory_words,
                    mask=mask,
                    inw=adapter.in_words,
                    outw=adapter.out_words,
                    tc1=adapter.time_cost - 1,
                    call=adapter.call,
                ):
                    src = regs[ss]
                    dst = regs[dd]
                    if src >= mw:
                        raise RamError(f"memory access at {src} out of range")
                    if src >= st[_PEAK]:
                        st[_PEAK] = src + 1
                    end = src + inw - 1
                    if end < 0 or end >= mw:
                        raise RamError(f"memory access at {end} out of range")
                    if end >= st[_PEAK]:
                        st[_PEAK] = end + 1
                    words_out = call(mem[src : src + inw])
                    if len(words_out) != outw:
                        raise RamError(
                            f"oracle adapter returned {len(words_out)} words, "
                            f"declared {outw}"
                        )
                    if dst >= mw:
                        raise RamError(f"memory access at {dst} out of range")
                    if dst >= st[_PEAK]:
                        st[_PEAK] = dst + 1
                    end = dst + outw - 1
                    if end < 0 or end >= mw:
                        raise RamError(f"memory access at {end} out of range")
                    if end >= st[_PEAK]:
                        st[_PEAK] = end + 1
                    for j, wv in enumerate(words_out):
                        mem[dst + j] = wv & mask
                    st[_QUERIES] += 1
                    st[_EXTRA] += tc1
                    return npc
                code.append(f)
        else:  # pragma: no cover - exhaustive over Op
            raise RamError(f"unknown opcode {op}")
    return code


def _interp(
    code: list,
    regs: list[int],
    mem: list[int],
    st: list[int],
    pc: int,
    icount: int,
    max_steps: int,
    tracer,
    traced: bool,
) -> int:
    """Drive the closure list; returns the final instruction count.

    Replicates the python backend's envelope exactly: pc bound check,
    then ``max_steps`` check, then counting, then the batch event, then
    dispatch (HALT consumes an instruction and may land on a batch
    boundary, like the python backend).
    """
    ncode = len(code)
    batch = TRACE_BATCH_INSTRUCTIONS
    while True:
        if pc >= ncode:
            raise RamError(f"pc {pc} ran past program end without HALT")
        if icount >= max_steps:
            raise RamError(f"exceeded max_steps={max_steps}")
        fn = code[pc]
        icount += 1
        if traced and icount % batch == 0:
            tracer.event(
                "ram.batch",
                instructions=icount,
                time=icount + st[_EXTRA],
                oracle_queries=st[_QUERIES],
            )
        if fn is None:  # HALT
            return icount
        pc = fn(regs, mem, st)


# ----------------------------------------------------------------------
# Basic-block codegen (the untraced core)
# ----------------------------------------------------------------------
_REG_LOCALS = ", ".join(f"r{j}" for j in range(NUM_REGISTERS))

_JUMP_OPS = (Op.JMP, Op.JZ, Op.JNZ, Op.JLT, Op.JGE)

#: Compiled block functions, keyed weakly by program then by the
#: machine-shape parameters the generated source bakes in.
_BLOCK_CACHE: "WeakKeyDictionary[Program, dict[tuple, Callable]]" = (
    WeakKeyDictionary()
)


def _leaders(program: Program) -> list[int]:
    leaders = {0}
    for idx, ins in enumerate(program.instructions):
        if ins.op in _JUMP_OPS:
            sig_targets = (
                [ins.args[0]] if ins.op is Op.JMP else [ins.args[-1]]
            )
            leaders.update(sig_targets)
            leaders.add(idx + 1)
    return sorted(t for t in leaders if t < len(program.instructions))


def _gen_instruction(ins, mask: int, mw: int, adapter_shape) -> list[str]:
    """Source lines for one straight-line instruction on register locals."""
    op = ins.op
    a = ins.args
    if op is Op.LOADI:
        return [f"r{a[0]} = {a[1] & mask}"]
    if op is Op.MOV:
        return [f"r{a[0]} = r{a[1]}"]
    if op is Op.LOAD:
        return [
            f"addr = r{a[1]}",
            f"if addr >= {mw}:",
            "    raise RamError(f'memory access at {addr} out of range')",
            "if addr >= peak:",
            "    peak = addr + 1",
            f"r{a[0]} = mem[addr]",
        ]
    if op is Op.STORE:
        return [
            f"addr = r{a[0]}",
            f"if addr >= {mw}:",
            "    raise RamError(f'memory access at {addr} out of range')",
            "if addr >= peak:",
            "    peak = addr + 1",
            f"mem[addr] = r{a[1]}",
        ]
    if op is Op.ADD:
        return [f"r{a[0]} = (r{a[1]} + r{a[2]}) & {mask}"]
    if op is Op.ADDI:
        return [f"r{a[0]} = (r{a[1]} + {a[2]}) & {mask}"]
    if op is Op.SUB:
        return [f"r{a[0]} = (r{a[1]} - r{a[2]}) & {mask}"]
    if op is Op.MUL:
        return [f"r{a[0]} = (r{a[1]} * r{a[2]}) & {mask}"]
    if op is Op.AND:
        return [f"r{a[0]} = r{a[1]} & r{a[2]}"]
    if op is Op.OR:
        return [f"r{a[0]} = r{a[1]} | r{a[2]}"]
    if op is Op.XOR:
        return [f"r{a[0]} = r{a[1]} ^ r{a[2]}"]
    if op is Op.SHL:
        return [f"r{a[0]} = (r{a[1]} << {a[2]}) & {mask}"]
    if op is Op.SHR:
        return [f"r{a[0]} = r{a[1]} >> {a[2]}"]
    if op is Op.ORACLE:
        if adapter_shape is None:
            return [
                "raise RamError("
                "'ORACLE executed on a machine without an oracle')"
            ]
        inw, outw, tc1 = adapter_shape
        return [
            f"src = r{a[1]}",
            f"dst = r{a[0]}",
            f"if src >= {mw}:",
            "    raise RamError(f'memory access at {src} out of range')",
            "if src >= peak:",
            "    peak = src + 1",
            f"end = src + {inw - 1}",
            f"if end < 0 or end >= {mw}:",
            "    raise RamError(f'memory access at {end} out of range')",
            "if end >= peak:",
            "    peak = end + 1",
            f"words_out = acall(mem[src : src + {inw}])",
            f"if len(words_out) != {outw}:",
            "    raise RamError(f'oracle adapter returned "
            f"{{len(words_out)}} words, declared {outw}')",
            f"if dst >= {mw}:",
            "    raise RamError(f'memory access at {dst} out of range')",
            "if dst >= peak:",
            "    peak = dst + 1",
            f"end = dst + {outw - 1}",
            f"if end < 0 or end >= {mw}:",
            "    raise RamError(f'memory access at {end} out of range')",
            "if end >= peak:",
            "    peak = end + 1",
            "for _j, _wv in enumerate(words_out):",
            f"    mem[dst + _j] = _wv & {mask}",
            "queries += 1",
            f"extra += {tc1}",
        ]
    raise RamError(f"unsupported opcode for codegen {op}")  # pragma: no cover


def _compile_blocks(
    program: Program,
    mask: int,
    memory_words: int,
    adapter: RamOracleAdapter | None,
) -> Callable:
    """Generate ``fn(mem, adapter, max_steps, peak0)`` for the program.

    Returns ``("halt", icount, queries, extra, peak, r0..r7)`` on HALT,
    or ``("bail", pc, icount, queries, extra, peak, r0..r7)`` when the
    next block might cross ``max_steps`` (the caller finishes on the
    closure interpreter).
    """
    has_oracle = any(ins.op is Op.ORACLE for ins in program.instructions)
    adapter_shape = None
    if has_oracle and adapter is not None:
        adapter_shape = (adapter.in_words, adapter.out_words, adapter.time_cost - 1)
    key = (mask, memory_words, adapter_shape)
    per_program = _BLOCK_CACHE.setdefault(program, {})
    cached = per_program.get(key)
    if cached is not None:
        return cached

    code = program.instructions
    leaders = _leaders(program)
    leader_set = set(leaders)
    state = f"icount, queries, extra, peak, {_REG_LOCALS}"
    lines = [
        "def _ramrun(mem, adapter, max_steps, peak0):",
        "    " + " = ".join(f"r{j}" for j in range(NUM_REGISTERS)) + " = 0",
        "    icount = 0",
        "    queries = 0",
        "    extra = 0",
        "    peak = peak0",
        "    acall = adapter.call if adapter is not None else None",
        "    pc = 0",
        "    while True:",
    ]
    for leader in leaders:
        # Block body: from the leader up to and including a jump/HALT,
        # or up to (excluding) the next leader.
        end = leader
        while end < len(code):
            op = code[end].op
            end += 1
            if op is Op.HALT or op in _JUMP_OPS:
                break
            if end in leader_set:
                break
        block = code[leader:end]
        blen = len(block)
        b = f"        if pc == {leader}:"
        lines.append(b)
        lines.append(f"            if icount + {blen} > max_steps:")
        lines.append(
            f"                return ('bail', pc, {state})"
        )
        lines.append(f"            icount += {blen}")
        emit = lines.append
        indent = "            "
        for off, ins in enumerate(block):
            op = ins.op
            a = ins.args
            if op is Op.HALT:
                emit(indent + f"return ('halt', {state})")
                break
            if op is Op.JMP:
                emit(indent + f"pc = {a[0]}")
                emit(indent + "continue")
                break
            if op in _JUMP_OPS:
                cond = {
                    Op.JZ: f"r{a[0]} == 0",
                    Op.JNZ: f"r{a[0]} != 0",
                    Op.JLT: f"r{a[0]} < r{a[1]}",
                    Op.JGE: f"r{a[0]} >= r{a[1]}",
                }[op]
                emit(indent + f"if {cond}:")
                emit(indent + f"    pc = {a[-1]}")
                emit(indent + "    continue")
                emit(indent + f"pc = {leader + off + 1}")
                break
            for src_line in _gen_instruction(ins, mask, memory_words, adapter_shape):
                emit(indent + src_line)
        else:
            # Straight-line fall-through into the next leader.
            emit(indent + f"pc = {end}")
        # Conditional-jump fall-through also lands here via the emitted
        # ``pc = ...``; the next sequential ``if pc == ...:`` picks it up.
    lines.append(
        "        raise RamError("
        "f'pc {pc} ran past program end without HALT')"
    )
    source = "\n".join(lines) + "\n"
    namespace: dict = {"RamError": RamError}
    exec(compile(source, f"<ram-block-jit:{id(program)}>", "exec"), namespace)
    fn = namespace["_ramrun"]
    fn._source = source  # for debugging / tests
    per_program[key] = fn
    return fn


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_fast(
    machine, program: Program, initial_memory: Sequence[int] | None = None
) -> RunResult:
    """Execute ``program`` on the fast core; observably identical to
    :meth:`repro.ram.RamMachine.run` on the python backend."""
    tracer = get_tracer()
    traced = tracer.enabled
    run_start = tracer.now() if traced else 0.0
    mask = machine._mask
    mem = [0] * machine.memory_words
    if initial_memory is not None:
        if len(initial_memory) > machine.memory_words:
            raise RamError(
                f"initial memory of {len(initial_memory)} words exceeds "
                f"machine memory of {machine.memory_words}"
            )
        for i, v in enumerate(initial_memory):
            mem[i] = v & mask
    regs = [0] * NUM_REGISTERS
    peak0 = len(initial_memory or ())
    st = [peak0, 0, 0]
    adapter = machine.oracle_adapter
    max_steps = machine.max_steps

    if traced:
        code = _compile_closures(program, mask, machine.memory_words, adapter)
        icount = _interp(code, regs, mem, st, 0, 0, max_steps, tracer, True)
    else:
        fn = _compile_blocks(program, mask, machine.memory_words, adapter)
        out = fn(mem, adapter, max_steps, peak0)
        tag, rest = out[0], out[1:]
        if tag == "halt":
            icount, st[_QUERIES], st[_EXTRA], st[_PEAK] = rest[:4]
            regs = list(rest[4:])
        else:  # bail: finish exactly on the closure interpreter
            pc = rest[0]
            icount, st[_QUERIES], st[_EXTRA], st[_PEAK] = rest[1:5]
            regs = list(rest[5:])
            code = _compile_closures(
                program, mask, machine.memory_words, adapter
            )
            icount = _interp(
                code, regs, mem, st, pc, icount, max_steps, tracer, False
            )

    stats = ExecutionStats(
        instructions=icount,
        time=icount + st[_EXTRA],
        oracle_queries=st[_QUERIES],
        peak_memory_words=st[_PEAK],
    )
    if traced:
        tracer.record_span(
            "ram.run",
            run_start,
            instructions=stats.instructions,
            time=stats.time,
            oracle_queries=stats.oracle_queries,
            peak_memory_words=stats.peak_memory_words,
        )
    return RunResult(stats=stats, registers=regs, memory=mem)
