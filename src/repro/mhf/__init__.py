"""Memory-hard functions -- the paper's closest cryptographic relative.

Section 1.2: the ``Line`` construction "uses RO in an analogous way as
practically-used MHFs (both rely on sequential queries to the oracle)",
but "the machines can make an arbitrary number of adaptive queries to
the oracle for free in one round, whereas the need of adaptive queries
is the source of hardness for high cumulative memory complexity".

This package implements that paragraph:

* :mod:`~repro.mhf.romix` -- scrypt's ROMix over our oracle interface,
  with a step-by-step memory trace;
* :mod:`~repro.mhf.cmc` -- cumulative memory complexity accounting;
* :mod:`~repro.mhf.attack` -- the classic checkpoint (time-memory
  trade-off) evaluation: peak memory drops by the spacing factor, time
  rises, CMC stays ``Theta(N^2)`` -- scrypt's memory-hardness;
* :mod:`~repro.mhf.mpc_romix` -- a **one-round** MPC machine computing
  ROMix with ``O(n)`` memory and ``O(N^2)`` in-round queries: memory
  hardness without round hardness, exactly why the paper needed a
  different function and a different analysis for MPC.
"""

from repro.mhf.attack import checkpoint_romix
from repro.mhf.cmc import MemoryTrace, cumulative_memory_complexity
from repro.mhf.mpc_romix import build_one_round_romix, run_one_round_romix
from repro.mhf.romix import romix, romix_trace, sequential_depth

__all__ = [
    "MemoryTrace",
    "build_one_round_romix",
    "checkpoint_romix",
    "cumulative_memory_complexity",
    "romix",
    "romix_trace",
    "run_one_round_romix",
    "sequential_depth",
]
