"""Cumulative memory complexity.

The MHF literature's cost measure (Alwen--Serbinenko and successors):
the *sum over time of the memory in use* -- the area under the memory
curve.  Time-memory trade-offs move points along the curve, but for
scrypt-like functions the area is provably ``Omega(N^2)`` however the
adversary schedules recomputation ("scrypt is maximally memory-hard").
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MemoryTrace", "cumulative_memory_complexity"]


@dataclass
class MemoryTrace:
    """Per-oracle-call memory usage of one evaluation.

    ``blocks_in_use[t]`` is the number of ``n``-bit blocks resident when
    the ``t``-th oracle call is made; the trace length is the evaluation's
    sequential time in oracle calls.
    """

    blocks_in_use: list[int] = field(default_factory=list)

    def record(self, blocks: int) -> None:
        """Log the resident block count at the next oracle call."""
        if blocks < 0:
            raise ValueError(f"negative block count {blocks}")
        self.blocks_in_use.append(blocks)

    @property
    def time(self) -> int:
        """Sequential time in oracle calls."""
        return len(self.blocks_in_use)

    @property
    def peak_memory(self) -> int:
        """Maximum resident blocks."""
        return max(self.blocks_in_use, default=0)


def cumulative_memory_complexity(trace: MemoryTrace) -> int:
    """The area under the memory curve, in block-steps."""
    return sum(trace.blocks_in_use)
