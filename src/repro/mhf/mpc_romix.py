"""One MPC round suffices for ROMix -- memory hardness != round hardness.

The crux of the paper's Section 1.2 comparison: an MPC machine may make
*arbitrarily many adaptive oracle queries within one round*, so it can
evaluate ROMix holding only ``O(n)`` bits -- whenever phase 2 needs
``V[j]`` it recomputes the block from the input with ``j`` fresh
in-round calls.  Total queries ``O(N^2)``, rounds **one**, local memory
a few blocks.  Hence scrypt-style memory hardness gives no MPC round
lower bound, and ``Line`` needs the extra ingredient (the machine
cannot *store* the input pieces the pointer will ask for).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits import Bits
from repro.mhf.romix import romix
from repro.mpc.machine import Machine, RoundContext, RoundOutput
from repro.mpc.model import MPCParams
from repro.engine import make_simulator
from repro.mpc.simulator import MPCResult
from repro.oracle.base import Oracle

__all__ = ["OneRoundROMixMachine", "build_one_round_romix", "run_one_round_romix"]


class OneRoundROMixMachine(Machine):
    """Evaluate ROMix in one round with O(1) blocks of memory.

    State held at any instant: the running phase-2 state, one scratch
    block being recomputed, and the input block -- never the V table.
    """

    def __init__(self, cost: int) -> None:
        if cost <= 0:
            raise ValueError(f"cost parameter N must be positive, got {cost}")
        self._cost = cost

    def _v_block(self, oracle: Oracle, x: Bits, j: int) -> Bits:
        """Recompute V[j] = H^j(x) from scratch, in-round."""
        block = x
        for _ in range(j):
            block = oracle.query(block)
        return block

    def run_round(self, ctx: RoundContext) -> RoundOutput:
        if not ctx.incoming:
            return RoundOutput(halt=True)
        x = ctx.incoming[0][1]
        state = self._v_block(ctx.oracle, x, self._cost)  # end of phase 1
        for _ in range(self._cost):
            j = state.value % self._cost
            block = self._v_block(ctx.oracle, x, j)
            state = ctx.oracle.query(state ^ block)
        return RoundOutput(output=state, halt=True)


@dataclass
class OneRoundROMixSetup:
    """Configuration for the one-round evaluation."""

    cost: int
    mpc_params: MPCParams
    machines: list[OneRoundROMixMachine]
    initial_memories: list[Bits]


def build_one_round_romix(x: Bits, cost: int) -> OneRoundROMixSetup:
    """One machine, memory = one block, queries ~ N^2 / 2 in the round."""
    params = MPCParams(
        m=1,
        s_bits=len(x),
        q=cost * (cost + 2),  # worst-case in-round query budget
        max_rounds=3,
    )
    return OneRoundROMixSetup(
        cost=cost,
        mpc_params=params,
        machines=[OneRoundROMixMachine(cost)],
        initial_memories=[x],
    )


def run_one_round_romix(
    setup: OneRoundROMixSetup, oracle: Oracle
) -> tuple[MPCResult, Bits]:
    """Run and cross-check against the honest sequential evaluation."""
    sim = make_simulator(setup.mpc_params, setup.machines, oracle=oracle)
    result = sim.run(setup.initial_memories)
    reference = romix(oracle, setup.initial_memories[0], setup.cost)
    return result, reference
