"""ROMix -- the scrypt core -- over the library's oracle interface.

Percival's construction (RFC 7914), with the oracle standing in for the
BlockMix/Salsa hash:

    phase 1:  V[i] = X;  X = H(X)          for i in 0..N-1
    phase 2:  j = Integerify(X) mod N;  X = H(X xor V[j])   (N times)

Phase 2's data-dependent indices force either N resident blocks or
recomputation -- the same "you must hold the input to proceed" flavour
as ``Line``'s oracle-chosen pointer ``l_i``, which is why the paper
calls its construction analogous to MHFs.
"""

from __future__ import annotations

from repro.bits import Bits
from repro.mhf.cmc import MemoryTrace
from repro.oracle.base import Oracle

__all__ = ["romix", "romix_trace", "sequential_depth"]


def _check(oracle: Oracle, x: Bits, cost: int) -> None:
    if oracle.n_in != oracle.n_out:
        raise ValueError("ROMix needs an n -> n oracle")
    if len(x) != oracle.n_in:
        raise ValueError(
            f"input has {len(x)} bits, oracle works on {oracle.n_in}"
        )
    if cost <= 0:
        raise ValueError(f"cost parameter N must be positive, got {cost}")


def romix(oracle: Oracle, x: Bits, cost: int) -> Bits:
    """Evaluate ROMix honestly (N blocks resident in phase 2)."""
    out, _ = romix_trace(oracle, x, cost)
    return out


def romix_trace(oracle: Oracle, x: Bits, cost: int) -> tuple[Bits, MemoryTrace]:
    """Evaluate and record the honest memory trace.

    Phase 1 holds ``i`` blocks at step ``i`` (V grows as it is filled);
    phase 2 holds all ``N`` -- giving the honest CMC of ``~1.5 N^2``.
    """
    _check(oracle, x, cost)
    trace = MemoryTrace()
    v: list[Bits] = []
    state = x
    for _ in range(cost):
        v.append(state)
        trace.record(len(v))
        state = oracle.query(state)
    for _ in range(cost):
        j = state.value % cost
        trace.record(cost)
        state = oracle.query(state ^ v[j])
    return state, trace


def sequential_depth(cost: int) -> int:
    """The query-dependency depth of ROMix: ``2N`` strictly sequential
    calls (each query's input depends on the previous answer) -- the
    same chain structure as ``Line`` with ``w = 2N``."""
    if cost <= 0:
        raise ValueError(f"cost parameter N must be positive, got {cost}")
    return 2 * cost
