"""The checkpoint time-memory trade-off against ROMix.

Store only every ``spacing``-th V block; when phase 2 asks for ``V[j]``,
recompute it from the nearest checkpoint at or below ``j``.  Peak memory
drops to ``~N/spacing`` blocks, sequential time grows by the expected
recomputation distance ``~spacing/2`` per phase-2 step -- and the
*cumulative* memory complexity stays ``Theta(N^2)``, which is scrypt's
security claim and the reason the MHF cost measure is CMC, not peak
memory.
"""

from __future__ import annotations

from repro.bits import Bits
from repro.mhf.cmc import MemoryTrace
from repro.oracle.base import Oracle

__all__ = ["checkpoint_romix"]


def checkpoint_romix(
    oracle: Oracle, x: Bits, cost: int, *, spacing: int
) -> tuple[Bits, MemoryTrace]:
    """Evaluate ROMix keeping one block per ``spacing`` (plus scratch).

    Returns the (identical) output and the attack's memory trace.
    """
    if spacing <= 0 or spacing > cost:
        raise ValueError(f"spacing {spacing} out of range for N={cost}")
    if oracle.n_in != oracle.n_out or len(x) != oracle.n_in:
        raise ValueError("oracle/input shapes do not match")

    trace = MemoryTrace()
    checkpoints: dict[int, Bits] = {}
    state = x
    for i in range(cost):
        if i % spacing == 0:
            checkpoints[i] = state
        trace.record(len(checkpoints))
        state = oracle.query(state)

    resident = len(checkpoints)
    for _ in range(cost):
        j = state.value % cost
        base = j - (j % spacing)
        block = checkpoints[base]
        # Recompute V[j] from the checkpoint: j - base extra calls, each
        # holding the checkpoint set plus one scratch block.
        for _step in range(j - base):
            trace.record(resident + 1)
            block = oracle.query(block)
        trace.record(resident + 1)
        state = oracle.query(state ^ block)
    return state, trace
