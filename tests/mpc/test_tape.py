"""Tests for the shared random tape."""

import pytest

from repro.mpc import SharedTape


class TestSharedTape:
    def test_deterministic(self):
        a = SharedTape(seed=1)
        b = SharedTape(seed=1)
        assert [a.bit(i) for i in range(100)] == [b.bit(i) for i in range(100)]

    def test_order_independent(self):
        a = SharedTape(seed=2)
        b = SharedTape(seed=2)
        forward = [a.bit(i) for i in range(200)]
        backward = [b.bit(i) for i in reversed(range(200))]
        assert forward == list(reversed(backward))

    def test_seed_changes_tape(self):
        a = SharedTape(seed=1)
        b = SharedTape(seed=2)
        assert any(a.bit(i) != b.bit(i) for i in range(128))

    def test_read_matches_bits(self):
        tape = SharedTape(seed=3)
        chunk = tape.read(10, 40)
        assert len(chunk) == 40
        assert list(chunk) == [tape.bit(10 + i) for i in range(40)]

    def test_roughly_balanced(self):
        tape = SharedTape(seed=4)
        ones = sum(tape.bit(i) for i in range(4000))
        assert 1700 < ones < 2300

    def test_negative_position_rejected(self):
        with pytest.raises(ValueError):
            SharedTape().bit(-1)
        with pytest.raises(ValueError):
            SharedTape().read(-1, 4)
        with pytest.raises(ValueError):
            SharedTape().read(0, -4)
