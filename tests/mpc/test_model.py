"""Tests for MPC parameters and regime checks."""

import pytest

from repro.mpc import MPCParams


class TestMPCParams:
    def test_valid(self):
        p = MPCParams(m=4, s_bits=128, q=10)
        assert p.total_memory_bits == 512

    def test_validation(self):
        with pytest.raises(ValueError):
            MPCParams(m=0, s_bits=1)
        with pytest.raises(ValueError):
            MPCParams(m=1, s_bits=0)
        with pytest.raises(ValueError):
            MPCParams(m=1, s_bits=1, q=0)
        with pytest.raises(ValueError):
            MPCParams(m=1, s_bits=1, max_rounds=0)

    def test_memory_ratio(self):
        p = MPCParams(m=4, s_bits=50)
        assert p.memory_ratio(200) == pytest.approx(0.25)
        with pytest.raises(ValueError):
            p.memory_ratio(0)

    def test_standard_regime(self):
        # N = 1024, m = 8, s = 256: ms = 2048 in [N, 4N]; 1024^0.1 ~ 2 <= 8 <= 1024^0.9 ~ 512.
        p = MPCParams(m=8, s_bits=256)
        report = p.standard_regime_report(1024)
        assert report["total_memory_theta_N"]
        assert report["machine_count_polynomial"]

    def test_nonstandard_regime_flagged(self):
        p = MPCParams(m=1, s_bits=8)
        report = p.standard_regime_report(1024)
        assert not report["total_memory_theta_N"]
        assert not report["machine_count_polynomial"]

    def test_regime_validation(self):
        p = MPCParams(m=2, s_bits=8)
        with pytest.raises(ValueError):
            p.standard_regime_report(0)
        with pytest.raises(ValueError):
            p.standard_regime_report(100, eps=0.7)

    def test_describe(self):
        assert "m=4" in MPCParams(m=4, s_bits=8, q=3).describe()
        assert "q=" not in MPCParams(m=4, s_bits=8).describe()
